#!/usr/bin/env python
"""Scaling study: how the maximum load and convergence time grow with n.

Reproduces the quantitative heart of the paper on a sweep of system sizes,
using the parallel Monte-Carlo runner to spread independent trials across
CPU cores:

* window maximum load from a legitimate start  -> fits c * log n (Theorem 1),
  compared against the one-shot balls-into-bins maximum (log n / log log n)
  and the sqrt(t) envelope of the earlier analysis;
* convergence time from the all-in-one start   -> fits a power law with
  exponent ~ 1 (linear, Theorem 1).

Run with ``python examples/scaling_study.py [--workers K]``.
"""

from __future__ import annotations

import argparse
import math

import numpy as np

from repro import LoadConfiguration, RepeatedBallsIntoBins, one_shot_max_load
from repro.analysis.bounds import sqrt_window_bound
from repro.analysis.fitting import fit_log_growth, fit_power_law
from repro.experiments import format_table
from repro.parallel.runner import run_trials
from repro.rng import as_generator


def stability_trial(trial_index: int, seed, n: int, rounds: int) -> dict:
    """One stability trial: window max load from a one-shot random start."""
    rng = as_generator(seed)
    process = RepeatedBallsIntoBins(n, initial=LoadConfiguration.random_uniform(n, seed=rng), seed=rng)
    result = process.run(rounds)
    return {"window_max": result.max_load_seen}


def convergence_trial(trial_index: int, seed, n: int) -> dict:
    """One convergence trial: rounds to legitimacy from the all-in-one start."""
    rng = as_generator(seed)
    process = RepeatedBallsIntoBins(n, initial=LoadConfiguration.all_in_one(n), seed=rng)
    hit = process.run_until_legitimate(max_rounds=30 * n)
    return {"convergence": -1 if hit is None else hit}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=0, help="worker processes (0 = sequential)")
    parser.add_argument("--trials", type=int, default=8, help="Monte-Carlo trials per size")
    args = parser.parse_args()

    sizes = [64, 128, 256, 512, 1024, 2048]
    rows = []
    window_maxima = []
    convergence_means = []
    for n in sizes:
        rounds = 4 * n
        stability_records = run_trials(
            stability_trial, args.trials, seed=10 + n, n_workers=args.workers, n=n, rounds=rounds
        )
        convergence_records = run_trials(
            convergence_trial, args.trials, seed=20 + n, n_workers=args.workers, n=n
        )
        window_max = float(np.mean([r["window_max"] for r in stability_records]))
        convergence = float(np.mean([r["convergence"] for r in convergence_records]))
        one_shot = float(np.mean([one_shot_max_load(n, seed=s) for s in range(args.trials)]))
        window_maxima.append(window_max)
        convergence_means.append(convergence)
        rows.append(
            {
                "n": n,
                "window_max": round(window_max, 1),
                "window_max/log_n": round(window_max / math.log(n), 2),
                "one_shot_max": round(one_shot, 1),
                "sqrt_t_envelope": round(sqrt_window_bound(rounds), 1),
                "convergence": round(convergence, 1),
                "convergence/n": round(convergence / n, 2),
            }
        )

    print(format_table(rows, title="Scaling of the repeated balls-into-bins process"))

    log_fit = fit_log_growth(sizes, window_maxima)
    power_fit = fit_power_law(sizes, convergence_means)
    print(
        f"\nwindow max load ~ {log_fit.params['coefficient']:.2f} * log n + "
        f"{log_fit.params['intercept']:.2f}   (R^2 = {log_fit.r_squared:.3f}; "
        "Theorem 1 predicts Theta(log n))"
    )
    print(
        f"convergence time ~ {power_fit.params['coefficient']:.2f} * n^"
        f"{power_fit.params['exponent']:.2f}   (R^2 = {power_fit.r_squared:.3f}; "
        "Theorem 1 predicts a linear law)"
    )
    print(
        "\nNote how the measured window maximum sits far below the sqrt(t) envelope of the\n"
        "earlier analysis and just above the one-shot maximum — exactly the paper's point."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
