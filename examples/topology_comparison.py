#!/usr/bin/env python
"""The open question of Section 5: the process on general graph topologies.

On the complete graph the paper proves the maximum load stays O(log n); it
*conjectures* the same for every regular graph, and notes that rings and
other sparse topologies are the hard case.  This example runs the
constrained parallel random walks (one token forwarded per node per round)
on a range of topologies and compares the congestion they accumulate over
the same window, together with the prior O(sqrt(t)) envelope known for
regular graphs.

Run with ``python examples/topology_comparison.py``.
"""

from __future__ import annotations

import math

import numpy as np

from repro import ConstrainedParallelWalks
from repro.analysis.bounds import sqrt_window_bound
from repro.experiments import format_table
from repro.graphs import (
    complete_graph,
    cycle_graph,
    hypercube_graph,
    random_regular_graph,
    star_graph,
    torus_grid_graph,
)


def measure(topology, rounds: int, trials: int, seed: int) -> dict:
    maxima = []
    empties = []
    for t in range(trials):
        walks = ConstrainedParallelWalks(topology, seed=seed + t)
        outcome = walks.run(rounds)
        maxima.append(outcome.max_load_seen)
        empties.append(outcome.min_empty_nodes_seen / topology.num_nodes)
    n = topology.num_nodes
    return {
        "topology": topology.name,
        "n": n,
        "degree": topology.degree if topology.is_regular else "irregular",
        "window_max_load": round(float(np.mean(maxima)), 1),
        "max_load/log_n": round(float(np.mean(maxima)) / math.log(n), 2),
        "min_empty_fraction": round(float(np.min(empties)), 3),
    }


def main() -> int:
    target_n = 256
    rounds = 8 * target_n
    topologies = [
        complete_graph(target_n),
        hypercube_graph(8),                      # 256 nodes, 8-regular
        random_regular_graph(target_n, 4, seed=1),
        torus_grid_graph(16, 16),                # 256 nodes, 4-regular
        cycle_graph(target_n),                   # 2-regular: the hard case
        star_graph(target_n),                    # maximally irregular stress case
    ]
    rows = [measure(topo, rounds, trials=3, seed=100) for topo in topologies]
    print(
        format_table(
            rows,
            title=f"Constrained parallel random walks, n ~ {target_n} tokens, {rounds} rounds",
        )
    )
    print(
        f"\nFor reference, the earlier O(sqrt(t)) bound for regular graphs allows loads up to "
        f"~{sqrt_window_bound(rounds):.0f} over this window.\n"
        "Dense, fast-mixing topologies (clique, hypercube, random 4-regular) stay within a small\n"
        "multiple of log n, supporting the paper's conjecture; the ring and (to a lesser degree)\n"
        "the torus accumulate clearly more congestion, and the star — which is not regular — piles\n"
        "almost everything onto the hub.  This is exactly why the general-graph question is open."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
