#!/usr/bin/env python
"""Occupancy analysis: how the repeated process distributes load across bins.

The maximum load is the paper's headline metric, but the full load
*distribution* explains why the process is so well behaved: after the
process forgets its start, the occupancy of a typical bin is close to the
Poisson(1) profile of independent throws, with a geometrically decaying
tail — each extra unit of load costs another unlucky round against the
negative drift.  This example compares

* the empirical occupancy of the repeated process (m = n and m = 2n),
* the Poisson(m/n) reference (the one-shot / independent-throws limit), and
* the fitted geometric tail-decay rate,

and relates the empty-bin mass to the n/4 bound of Lemmas 1-2.

Run with ``python examples/occupancy_analysis.py``.
"""

from __future__ import annotations

from repro.analysis.occupancy import (
    empirical_occupancy,
    geometric_tail_fit,
    poisson_occupancy,
)
from repro.experiments import format_table


def analyze(n: int, ratio: float, rounds: int, seed: int) -> dict:
    m = int(ratio * n)
    dist = empirical_occupancy(n, rounds=rounds, n_balls=m, seed=seed)
    reference = poisson_occupancy(mean=m / n)
    return {
        "n": n,
        "m": m,
        "mean_load": round(dist.mean, 3),
        "empty_fraction": round(dist.empty_fraction, 3),
        "P(load>=3)": round(dist.tail(3), 4),
        "P(load>=6)": round(dist.tail(6), 5),
        "tv_vs_poisson": round(dist.total_variation(reference), 3),
        "geometric_decay_rate": round(geometric_tail_fit(dist, start=1), 3),
        "p99_load": dist.quantile(0.99),
    }


def main() -> int:
    n = 512
    rounds = 8 * n
    rows = [
        analyze(n, ratio=1.0, rounds=rounds, seed=0),
        analyze(n, ratio=0.5, rounds=rounds, seed=1),
        analyze(n, ratio=2.0, rounds=rounds, seed=2),
    ]
    print(
        format_table(
            rows,
            title=f"Stationary occupancy of the repeated balls-into-bins process (n = {n}, {rounds} rounds)",
        )
    )
    print(
        "\nReading the table:\n"
        "  * empty_fraction comfortably exceeds the 0.25 bound of Lemmas 1-2 for m <= n;\n"
        "  * the distance to the Poisson(m/n) reference is small — correlations exist\n"
        "    (Appendix B) but they barely distort the bulk of the occupancy profile;\n"
        "  * the tail decays geometrically (decay rate well below 1), which is why the\n"
        "    maximum over n bins and poly(n) rounds stays at O(log n) — Theorem 1's shape."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
