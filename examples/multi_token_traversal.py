#!/usr/bin/env python
"""Multi-token traversal: parallel resource assignment on an anonymous network.

This is the scenario that motivates the paper (Section 1.1 and Section 4):
``n`` resources (tokens) must each visit every node of an anonymous network,
with every node able to process and forward at most one token per round.  On
the complete graph this is exactly the repeated balls-into-bins process.

The example measures, for a few system sizes:

* the parallel cover time (first round by which every token visited every
  node) — Corollary 1 says O(n log^2 n);
* the single-token random-walk cover time — the classical Theta(n log n)
  baseline;
* the worst per-node congestion (buffer size a node must provision); and
* the progress guarantee under FIFO (every token keeps moving).

Run with ``python examples/multi_token_traversal.py``.
"""

from __future__ import annotations

import math

import numpy as np

from repro import MultiTokenTraversal, SingleTokenWalk, expected_single_cover_time
from repro.experiments import format_table
from repro.traversal.progress import progress_statistics


def measure(n: int, trials: int, seed: int) -> dict:
    multi_covers = []
    max_loads = []
    single_covers = []
    for t in range(trials):
        traversal = MultiTokenTraversal(n, discipline="fifo", seed=seed + t)
        outcome = traversal.run()
        if outcome.cover_time is None:
            continue
        multi_covers.append(outcome.cover_time)
        max_loads.append(outcome.max_load_seen)
        single = SingleTokenWalk(n, seed=seed + 1000 + t).cover_time()
        if single is not None:
            single_covers.append(single)

    log_n = math.log(n)
    multi_mean = float(np.mean(multi_covers))
    single_mean = float(np.mean(single_covers))
    return {
        "n": n,
        "multi_cover": round(multi_mean),
        "single_cover": round(single_mean),
        "single_cover_theory": round(expected_single_cover_time(n)),
        "slowdown": round(multi_mean / single_mean, 2),
        "slowdown_over_log_n": round(multi_mean / single_mean / log_n, 2),
        "cover_over_nlog2n": round(multi_mean / (n * log_n * log_n), 2),
        "max_node_congestion": int(np.max(max_loads)),
    }


def progress_demo(n: int, seed: int = 7) -> None:
    """Show the FIFO progress guarantee: every token keeps making steps."""
    traversal = MultiTokenTraversal(n, discipline="fifo", seed=seed)
    traversal.run(max_rounds=10 * n)
    stats = progress_statistics(traversal.process)
    print(
        f"FIFO progress over {stats.rounds} rounds at n = {n}: the slowest token made "
        f"{stats.min_moves} moves ({stats.min_progress_rate:.2%} of rounds, i.e. "
        f"{stats.progress_rate_times_log_n:.2f} / log n), the longest total wait was "
        f"{stats.max_waiting_rounds} rounds."
    )


def main() -> int:
    rows = [measure(n, trials=3, seed=42) for n in (16, 32, 64, 128)]
    print(
        format_table(
            rows,
            title="Multi-token traversal on the clique (Corollary 1) vs a single random walk",
        )
    )
    print(
        "The slowdown over a single token grows like log n (column slowdown_over_log_n is "
        "roughly flat), i.e. the parallel cover time is Theta(n log^2 n) while a single token "
        "needs Theta(n log n).\n"
    )
    progress_demo(128)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
