#!/usr/bin/env python
"""Adversarial faults and self-stabilizing recovery (Section 4.1).

An adversary periodically reassigns every token to a single node (the worst
ball-conserving fault).  Because the process is self-stabilizing with linear
convergence time (Theorem 1), faults that are at least ``6 n`` rounds apart
are fully absorbed: the system recovers to a legitimate configuration long
before the next fault, so long-run guarantees (cover time, congestion)
degrade by at most a constant factor.

The example sweeps the fault period and reports recovery times and the load
profile, for both the worst-case "concentrate" adversary and the harmless
"shuffle" adversary.

Run with ``python examples/adversarial_recovery.py``.
"""

from __future__ import annotations

import numpy as np

from repro import FaultyProcess, legitimacy_threshold
from repro.experiments import format_table


def run_scenario(n: int, gamma: float | None, adversary: str, seed: int) -> dict:
    """Run one fault-injection scenario and summarize recoveries."""
    rounds = 40 * n
    if gamma is None:
        process = FaultyProcess(n, adversary=adversary, seed=seed)
        period_label = "no faults"
    else:
        process = FaultyProcess.with_gamma(n, gamma=gamma, adversary=adversary, seed=seed)
        period_label = f"every {int(gamma * n)} rounds"
    outcome = process.run(rounds)
    recovered = [r for r in outcome.recovery_times if r >= 0]
    return {
        "adversary": adversary,
        "fault_period": period_label,
        "faults": len(outcome.fault_rounds),
        "mean_recovery_rounds": round(float(np.mean(recovered)), 1) if recovered else None,
        "max_recovery_rounds": max(recovered) if recovered else None,
        "recovery_over_n": round(float(np.mean(recovered)) / n, 2) if recovered else None,
        "window_max_load": outcome.max_load_seen,
        "final_max_load": outcome.final_configuration.max_load,
        "final_legitimate": outcome.final_configuration.is_legitimate(),
    }


def main() -> int:
    n = 512
    print(
        f"Fault injection on the repeated balls-into-bins process, n = {n} "
        f"(legitimacy threshold ~ {legitimacy_threshold(n):.0f} balls per bin)\n"
    )

    rows = [
        run_scenario(n, None, "concentrate", seed=0),
        run_scenario(n, 12.0, "concentrate", seed=1),
        run_scenario(n, 6.0, "concentrate", seed=2),
        run_scenario(n, 2.0, "concentrate", seed=3),
        run_scenario(n, 6.0, "shuffle", seed=4),
    ]
    print(format_table(rows, title="Recovery from periodic adversarial faults"))
    print(
        "\nObservations:\n"
        "  * Recovery from a total concentration fault takes ~1.5 n rounds regardless of the\n"
        "    fault frequency — it is a property of the process, not of the schedule.\n"
        "  * For fault periods >= 6 n (the paper's regime) the system therefore spends only a\n"
        "    constant fraction of its time recovering, and the final configuration is legitimate.\n"
        "  * A label-shuffling adversary never disturbs the load profile at all: the window max\n"
        "    stays at the fault-free O(log n) level."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
