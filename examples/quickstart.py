#!/usr/bin/env python
"""Quickstart: simulate the repeated balls-into-bins process.

This example walks through the paper's two headline claims (Theorem 1) on a
single system size:

1. *Stability* — starting from a legitimate configuration, the maximum load
   stays O(log n) over a long window.
2. *Self-stabilization* — starting from the worst possible configuration
   (every ball in one bin), the process reaches a legitimate configuration
   within O(n) rounds.

Run with ``python examples/quickstart.py [n]`` (default n = 1024).
"""

from __future__ import annotations

import math
import sys

from repro import (
    EmptyBinsTracker,
    LegitimacyTracker,
    LoadConfiguration,
    MaxLoadTracker,
    RepeatedBallsIntoBins,
    legitimacy_threshold,
)
from repro.experiments import format_table


def stability_demo(n: int, seed: int = 0) -> dict:
    """Run the process from a balanced start and report the window maximum."""
    process = RepeatedBallsIntoBins(n, seed=seed)
    max_load = MaxLoadTracker(record_series=False)
    empty_bins = EmptyBinsTracker(record_series=False)
    rounds = 8 * n
    process.run(rounds, observers=[max_load, empty_bins])
    return {
        "scenario": "stability (balanced start)",
        "rounds": rounds,
        "window_max_load": max_load.window_max,
        "legitimacy_threshold": round(legitimacy_threshold(n), 1),
        "min_empty_fraction": round(empty_bins.min_fraction, 3),
        "log_n": round(math.log(n), 2),
    }


def self_stabilization_demo(n: int, seed: int = 1) -> dict:
    """Run the process from the all-in-one-bin start and time the recovery."""
    process = RepeatedBallsIntoBins(n, initial=LoadConfiguration.all_in_one(n), seed=seed)
    legitimacy = LegitimacyTracker()
    process.run(8 * n, observers=[legitimacy])
    return {
        "scenario": "self-stabilization (all balls in one bin)",
        "rounds": 8 * n,
        "window_max_load": n,  # the initial pile dominates the window max
        "legitimacy_threshold": round(legitimacy_threshold(n), 1),
        "convergence_round": legitimacy.first_legitimate_round,
        "convergence_over_n": round(legitimacy.first_legitimate_round / n, 2),
        "stable_afterwards": legitimacy.stable_after_convergence,
    }


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1024
    print(f"Repeated balls-into-bins with n = {n} bins and n balls\n")

    stability = stability_demo(n)
    recovery = self_stabilization_demo(n)

    print(format_table([stability], title="Theorem 1, part 1 — stability"))
    print(
        f"  -> max load over {stability['rounds']} rounds is "
        f"{stability['window_max_load']} ~ "
        f"{stability['window_max_load'] / stability['log_n']:.1f} * log n "
        f"(threshold {stability['legitimacy_threshold']})\n"
    )

    print(format_table([recovery], title="Theorem 1, part 2 — self-stabilization"))
    print(
        f"  -> from the worst configuration, a legitimate configuration is reached after "
        f"{recovery['convergence_round']} rounds ~ {recovery['convergence_over_n']} * n, "
        f"and legitimacy then holds for the rest of the window: {recovery['stable_afterwards']}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
