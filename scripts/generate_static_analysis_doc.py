#!/usr/bin/env python3
"""Render ``docs/STATIC_ANALYSIS.md`` from the live tool catalogs.

The document is *generated*: the lint rule table comes from
``repro.lint.RULES``, the checked symbol table from
``repro.core.native.kernel_abi()``, and the sanitizer matrix from
``SANITIZE_MODES`` plus the variant ladder — so the prose can never
drift from what the tools actually enforce.  CI runs ``--check`` and
fails when the checked-in file is stale.

Usage::

    python scripts/generate_static_analysis_doc.py           # rewrite the doc
    python scripts/generate_static_analysis_doc.py --check   # fail if stale
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.lint.doc import render_static_analysis_doc  # noqa: E402

DOC_PATH = ROOT / "docs" / "STATIC_ANALYSIS.md"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when the checked-in doc differs from the "
        "rendered one (used by CI)",
    )
    parser.add_argument(
        "--out",
        default=str(DOC_PATH),
        help=f"output path (default {DOC_PATH})",
    )
    args = parser.parse_args(argv)

    rendered = render_static_analysis_doc()
    target = Path(args.out)
    if args.check:
        if not target.exists():
            print(f"STALE: {target} does not exist; regenerate with "
                  f"`python {Path(__file__).relative_to(ROOT)}`")
            return 1
        current = target.read_text()
        if current != rendered:
            print(
                f"STALE: {target} does not match the tool catalogs; "
                f"regenerate with `python {Path(__file__).relative_to(ROOT)}`"
            )
            return 1
        print(f"{target} is up to date")
        return 0
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(rendered)
    print(f"wrote {target}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
