#!/usr/bin/env python3
"""Render ``docs/VERIFICATION.md`` from the conformance-case catalog.

The matrix is *generated*: every :class:`repro.verify.ConformanceCase`
contributes its engine coordinate, process, size, horizons, and exact
ground truth, so the document can never drift from the enforced
coverage — CI runs ``--check`` and fails when the checked-in file is
stale.

Usage::

    python scripts/generate_verification_matrix.py           # rewrite the matrix
    python scripts/generate_verification_matrix.py --check   # fail if stale
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.verify import render_verification_doc  # noqa: E402

MATRIX_PATH = ROOT / "docs" / "VERIFICATION.md"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when the checked-in matrix differs from the "
        "rendered one (used by CI)",
    )
    parser.add_argument(
        "--out",
        default=str(MATRIX_PATH),
        help=f"output path (default {MATRIX_PATH})",
    )
    args = parser.parse_args(argv)

    rendered = render_verification_doc()
    target = Path(args.out)
    if args.check:
        if not target.exists():
            print(f"STALE: {target} does not exist; regenerate with "
                  f"`python {Path(__file__).relative_to(ROOT)}`")
            return 1
        current = target.read_text()
        if current != rendered:
            print(
                f"STALE: {target} does not match the verify catalog; "
                f"regenerate with `python {Path(__file__).relative_to(ROOT)}`"
            )
            return 1
        print(f"{target} is up to date")
        return 0
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(rendered)
    print(f"wrote {target}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
