#!/usr/bin/env python3
"""Render ``docs/EXPERIMENTS.md`` from the experiment registry.

The catalog is *generated*: every registered experiment contributes its id,
claim, expected shape, default parameters, report-scale overrides, and
engine support, so the document can never drift from the code — CI runs
``--check`` and fails when the checked-in file is stale.

Usage::

    python scripts/generate_experiment_catalog.py           # rewrite the catalog
    python scripts/generate_experiment_catalog.py --check   # fail if stale
"""

from __future__ import annotations

import argparse
import io
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.experiments import registry  # noqa: E402
from repro.experiments.report import report_scale_params  # noqa: E402
from repro.parallel.ensemble import PROCESSES  # noqa: E402
from repro.sweeps import available_sweeps, expand_sweep, get_sweep  # noqa: E402

CATALOG_PATH = ROOT / "docs" / "EXPERIMENTS.md"

HEADER = """\
# Experiment catalog

<!-- GENERATED FILE — do not edit by hand.
     Regenerate with: python scripts/generate_experiment_catalog.py
     CI fails when this file is stale (--check). -->

Every quantitative claim of the paper is registered as an experiment; this
catalog is rendered from that registry
(`repro.experiments.registry`), so ids, parameters, and engine support are
always in sync with the code.  Run any experiment with:

```bash
PYTHONPATH=src python -m repro run <ID> [-p KEY=VALUE ...] [--engine batched|sequential]
```

`python -m repro report` runs experiments at *report scale* (the overrides
listed per experiment below) and writes their measured tables; this file
documents what exists, not one run's numbers.
"""


def _engine_support(spec) -> str:
    if "engine" in spec.default_params:
        return (
            "batched & sequential (`--engine` / `-p engine=...`; "
            f"default `{spec.default_params['engine']}`)"
        )
    return "per-trial only (no `engine` parameter)"


def _format_value(value) -> str:
    return f"`{value!r}`"


def render_catalog() -> str:
    out = io.StringIO()
    out.write(HEADER)
    ids = registry.all_ids()
    out.write("\n## Index\n\n")
    out.write("| id | claim | title | engines |\n")
    out.write("|---|---|---|---|\n")
    for experiment_id in ids:
        spec = registry.get(experiment_id).spec
        engines = (
            "batched, sequential"
            if "engine" in spec.default_params
            else "per-trial"
        )
        out.write(
            f"| {spec.experiment_id} | {spec.claim} | {spec.title} | {engines} |\n"
        )

    for experiment_id in ids:
        spec = registry.get(experiment_id).spec
        out.write(f"\n## {spec.experiment_id} — {spec.title}\n\n")
        out.write(f"- **Claim:** {spec.claim}\n")
        if spec.expected_shape:
            out.write(f"- **Expected shape:** {spec.expected_shape}\n")
        out.write(f"- **Engine support:** {_engine_support(spec)}\n")
        out.write("\n### Default parameters\n\n")
        out.write("| parameter | default |\n")
        out.write("|---|---|\n")
        for key, value in spec.default_params.items():
            out.write(f"| `{key}` | {_format_value(value)} |\n")
        overrides = report_scale_params(spec.experiment_id)
        if overrides:
            out.write("\n### Report-scale overrides\n\n")
            out.write("| parameter | report value |\n")
            out.write("|---|---|\n")
            for key, value in overrides.items():
                out.write(f"| `{key}` | {_format_value(value)} |\n")

    out.write("\n## Process families\n\n")
    out.write(
        "Ensemble experiments route through `run_ensemble`, whose "
        "`EnsembleSpec.process` selector accepts "
        + ", ".join(f"`{p}`" for p in PROCESSES)
        + ": the plain 1-choice repeated balls-into-bins process, the "
        "repeated Greedy[d] allocator, the plain process under the "
        "Section 4.1 adversarial fault model, and topology-constrained "
        "parallel walks on the graph named by `topology=` (e.g. "
        "`\"torus:32x32\"`).\n"
    )

    out.write("\n## Sweep-generated families\n\n")
    out.write(
        "The multi-point parameter families below are generated from "
        "declarative sweep specs (`repro.sweeps.catalog`): the sweep "
        "planner expands the grid and assigns grid-size-independent "
        "per-point seeds, and the same specs run standalone — with a "
        "durable, resumable result store — via "
        "`repro sweep run <name> --store DIR`.  The E9 and A2 experiment "
        "tables are built from these specs (A2 executes through the sweep "
        "scheduler and consumes the store's streaming summaries).\n\n"
    )
    out.write("| sweep | points | description |\n")
    out.write("|---|---|---|\n")
    for name in available_sweeps():
        sweep = get_sweep(name)
        out.write(
            f"| `{name}` | {expand_sweep(sweep).n_points} | "
            f"{sweep.description} |\n"
        )
    return out.getvalue()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when the checked-in catalog differs from the "
        "rendered one (used by CI)",
    )
    parser.add_argument(
        "--out",
        default=str(CATALOG_PATH),
        help=f"output path (default {CATALOG_PATH})",
    )
    args = parser.parse_args(argv)

    rendered = render_catalog()
    target = Path(args.out)
    if args.check:
        if not target.exists():
            print(f"STALE: {target} does not exist; regenerate with "
                  f"`python {Path(__file__).relative_to(ROOT)}`")
            return 1
        current = target.read_text()
        if current != rendered:
            print(
                f"STALE: {target} does not match the experiment registry; "
                f"regenerate with `python {Path(__file__).relative_to(ROOT)}`"
            )
            return 1
        print(f"{target} is up to date")
        return 0
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(rendered)
    print(f"wrote {target}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
