#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md by running every registered experiment at report scale.

Usage:
    python scripts/generate_experiments_report.py [--out EXPERIMENTS.md] [--seed 0] [--only E1 E2 ...]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.experiments.report import generate_full_report

PREAMBLE = """\
This file records a reproduction run of every experiment defined in DESIGN.md for
*Self-stabilizing repeated balls-into-bins* (Becchetti, Clementi, Natale, Pasquale, Posta;
SPAA 2015 / Distributed Computing 2019).  The paper is purely analytical (no tables or
figures), so each "experiment" verifies the shape of one theorem/lemma/corollary at finite
n.  Absolute constants are not expected to match anything (the paper does not report any);
the growth rates, dominance relations, and pass/fail shape checks are the reproduction
targets.  Regenerate with `python scripts/generate_experiments_report.py`.
"""


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="EXPERIMENTS.md", help="output path")
    parser.add_argument("--seed", type=int, default=0, help="root seed")
    parser.add_argument("--only", nargs="*", default=None, help="subset of experiment ids")
    parser.add_argument(
        "--engine",
        choices=["batched", "sequential"],
        default=None,
        help="Monte-Carlo engine for the ensemble experiments",
    )
    args = parser.parse_args()

    report = generate_full_report(
        experiment_ids=args.only, seed=args.seed, preamble=PREAMBLE, engine=args.engine
    )
    Path(args.out).write_text(report)
    print(f"wrote {args.out} ({len(report.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
