#!/usr/bin/env bash
# Run a command against sanitizer-instrumented native kernels.
#
# Usage:
#   scripts/with_sanitizer.sh <asan|ubsan|tsan> <command...>
#   REPRO_SANITIZE=asan scripts/with_sanitizer.sh <command...>
#
# The script exports REPRO_SANITIZE (selecting the instrumented build
# variant in repro.core.native), resolves the sanitizer runtime that a
# stock CPython needs preloaded (ASan/TSan), sets sane *SAN_OPTIONS
# defaults, and then — before running anything — asserts that both
# kernels actually load instrumented.  A sanitizer leg that silently
# fell back to the numpy kernels would test nothing, so the fallback is
# an error here, never a skip.
#
# The probe and the command both run as children of a small Python
# driver rather than directly from this shell: TSan's startup is
# sensitive to the address-space layout it inherits, and spawning from a
# Python parent is the configuration that works reliably across the
# kernels/containers we run on.
#
# The caller provides PYTHONPATH (CI: PYTHONPATH=src).
set -euo pipefail

if [[ "${1:-}" =~ ^(asan|ubsan|tsan)$ ]]; then
    export REPRO_SANITIZE="$1"
    shift
fi
if [[ -z "${REPRO_SANITIZE:-}" || $# -eq 0 ]]; then
    echo "usage: with_sanitizer.sh <asan|ubsan|tsan> <command...>" >&2
    exit 2
fi

CC_BIN="${CC:-cc}"
runtime=""
case "$REPRO_SANITIZE" in
    asan)
        runtime="$("$CC_BIN" -print-file-name=libasan.so)"
        # The kernels are leak-checked by their own tests; Python's
        # allocator noise would drown real reports.
        export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}"
        ;;
    ubsan)
        # UBSan's runtime links into the .so itself; no preload needed.
        export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
        ;;
    tsan)
        runtime="$("$CC_BIN" -print-file-name=libtsan.so)"
        export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"
        ;;
    *)
        echo "with_sanitizer.sh: REPRO_SANITIZE must be asan, ubsan or tsan; got '$REPRO_SANITIZE'" >&2
        exit 2
        ;;
esac

if [[ -n "$runtime" ]]; then
    if [[ "$runtime" == lib*.so || ! -e "$runtime" ]]; then
        echo "with_sanitizer.sh: $CC_BIN has no runtime for $REPRO_SANITIZE (got '$runtime')" >&2
        exit 2
    fi
    export REPRO_SANITIZER_RUNTIME="$runtime"
fi

exec python - "$@" <<'PY'
import os
import subprocess
import sys

command = sys.argv[1:]
env = dict(os.environ)
runtime = env.pop("REPRO_SANITIZER_RUNTIME", "")
if runtime:
    tail = env.get("LD_PRELOAD")
    env["LD_PRELOAD"] = f"{runtime}:{tail}" if tail else runtime

probe = (
    "from repro.core.native import native_available, native_status, sanitize_mode\n"
    "mode = sanitize_mode()\n"
    "for kernel in ('rbb', 'walks'):\n"
    "    status = native_status(kernel)\n"
    "    assert native_available(kernel), f'{kernel}: {status}'\n"
    "    assert f'[sanitize={mode}]' in status, f'{kernel}: {status}'\n"
    "    print(f'[with_sanitizer] {kernel}: {status}', flush=True)\n"
)
rc = subprocess.run([sys.executable, "-c", probe], env=env).returncode
if rc != 0:
    print("with_sanitizer.sh: instrumented kernels failed to load", file=sys.stderr)
    sys.exit(rc)
sys.exit(subprocess.run(command, env=env).returncode)
PY
