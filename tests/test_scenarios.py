"""The scenario DSL: parser, compiler, event semantics, engine equality.

Covers the four layers of :mod:`repro.scenarios` — spec validation and
JSON round-trips, the segment compiler's observation-grid invariance,
vectorized event application (conservation where required), and the
interpreter contracts: no-op bit-equality against static runs, ``R = 1``
stream equality between the batched and sequential drivers under
events, and the observation clock staying put when events fire between
grid points.  Also pins the `EnsembleSpec` constructor guards that ride
along: the fault-schedule-past-window check and the scenario
compatibility rules.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batched import BatchedRepeatedBallsIntoBins
from repro.core.native import native_available
from repro.errors import ConfigurationError, ScenarioError
from repro.parallel.ensemble import EnsembleSpec, run_ensemble
from repro.scenarios import (
    ScenarioEvent,
    ScenarioSpec,
    apply_event,
    available_scenarios,
    bin_churn,
    burst_recovery,
    compile_scenario,
    get_scenario,
    resolve_scenario,
    staged_adversary,
)
from repro.scenarios.engine import Run
from repro.scenarios.events import apply_bin_churn, apply_burst, apply_drain

needs_native = pytest.mark.skipif(
    not native_available(), reason="native kernel unavailable (no C compiler)"
)


# ----------------------------------------------------------------------
# spec layer: validation + serialization
# ----------------------------------------------------------------------
class TestScenarioEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ScenarioError, match="unknown event kind"):
            ScenarioEvent(kind="meteor", round=1)

    def test_round_must_be_positive(self):
        with pytest.raises(ScenarioError):
            ScenarioEvent(kind="burst", round=0, count=3)

    def test_until_requires_every(self):
        with pytest.raises(ScenarioError):
            ScenarioEvent(kind="burst", round=2, until=8, count=3)

    def test_until_before_round_rejected(self):
        with pytest.raises(ScenarioError):
            ScenarioEvent(kind="burst", round=8, every=2, until=4, count=3)

    def test_required_payload_field_enforced(self):
        with pytest.raises(ScenarioError, match="count"):
            ScenarioEvent(kind="burst", round=1)
        with pytest.raises(ScenarioError, match="adversary"):
            ScenarioEvent(kind="adversary", round=1)

    def test_inapplicable_payload_field_rejected(self):
        with pytest.raises(ScenarioError):
            ScenarioEvent(kind="burst", round=1, count=3, adversary="pyramid")

    def test_firings_periodic_expansion_and_clipping(self):
        event = ScenarioEvent(kind="burst", round=3, every=4, count=1)
        assert event.firings(12) == (3, 7, 11)
        clipped = ScenarioEvent(kind="burst", round=3, every=4, until=8, count=1)
        assert clipped.firings(100) == (3, 7)

    def test_first_firing_past_window_errors(self):
        event = ScenarioEvent(kind="burst", round=9, count=1)
        with pytest.raises(ScenarioError, match="past"):
            event.firings(8)

    def test_dict_round_trip_rejects_unknown_fields(self):
        event = ScenarioEvent(kind="drain", round=5, count=2)
        assert ScenarioEvent.from_dict(event.to_dict()) == event
        with pytest.raises(ScenarioError):
            ScenarioEvent.from_dict({"kind": "drain", "round": 5, "count": 2, "x": 1})


class TestScenarioSpec:
    def test_json_round_trip_is_canonical(self):
        spec = burst_recovery(at=4, count=8, drain_at=10)
        again = ScenarioSpec.from_json(spec.to_json())
        assert again == spec
        assert again.to_json() == spec.to_json()

    def test_expand_events_sorted_by_round(self):
        spec = staged_adversary(switch=9, every=4)
        rounds = [when for when, _ in spec.expand_events(16)]
        assert rounds == sorted(rounds) == [4, 8, 9, 13]

    def test_noop(self):
        assert resolve_scenario('{"events": []}').is_noop
        assert not burst_recovery().is_noop


class TestCatalog:
    def test_available_scenarios_lists_all(self):
        assert sorted(available_scenarios()) == [
            "bin_churn",
            "burst_recovery",
            "staged_adversary",
        ]

    def test_get_scenario_with_overrides(self):
        spec = get_scenario("bin_churn:start=2,every=3,count=1,until=9")
        assert spec.events[0].firings(20) == (2, 5, 8)

    def test_unknown_name_and_bad_params(self):
        with pytest.raises(ScenarioError, match="unknown scenario"):
            get_scenario("nope")
        with pytest.raises(ScenarioError):
            get_scenario("burst_recovery:nonsense=1")

    def test_burst_recovery_drain_must_follow_burst(self):
        with pytest.raises(ScenarioError):
            burst_recovery(at=8, drain_at=8)

    def test_staged_adversary_until_before_switch_rejected(self):
        with pytest.raises(ScenarioError):
            staged_adversary(switch=10, every=4, until=9)

    def test_resolve_scenario_spellings(self):
        from_name = resolve_scenario("burst_recovery")
        from_dict = resolve_scenario(from_name.to_dict())
        from_json = resolve_scenario(from_name.to_json())
        assert from_name == from_dict == from_json
        assert resolve_scenario(None) is None
        with pytest.raises(ScenarioError):
            resolve_scenario(42)


# ----------------------------------------------------------------------
# compiler
# ----------------------------------------------------------------------
class TestCompiler:
    def test_noop_compiles_to_single_static_run(self):
        program = compile_scenario(resolve_scenario('{"events": []}'), 40, 8)
        assert program.actions == (Run(rounds=40, observe_every=8, observed=True),)
        assert program.observation_rounds == (8, 16, 24, 32, 40)

    def test_events_do_not_shift_the_observation_grid(self):
        scenario = ScenarioSpec(
            events=(
                ScenarioEvent(kind="burst", round=13, count=4),
                ScenarioEvent(kind="drain", round=27, count=4),
            )
        )
        program = compile_scenario(scenario, 40, 8)
        assert program.observation_rounds == (8, 16, 24, 32, 40)
        assert program.n_events == 2

    def test_observe_every_event_changes_stride_mid_run(self):
        scenario = ScenarioSpec(
            events=(ScenarioEvent(kind="observe_every", round=9, value=2),)
        )
        program = compile_scenario(scenario, 16, 4)
        assert program.observation_rounds == (4, 8, 10, 12, 14, 16)

    def test_zero_rounds(self):
        program = compile_scenario(resolve_scenario('{"events": []}'), 0, 4)
        assert program.observation_rounds == ()


# ----------------------------------------------------------------------
# event application on (R, n) states
# ----------------------------------------------------------------------
class TestEvents:
    def test_burst_adds_exactly_count_per_replica(self):
        rng = np.random.default_rng(0)
        loads = np.full((3, 4), 2, dtype=np.int64)
        out = apply_burst(loads, 5, rng)
        assert np.array_equal(out.sum(axis=1), np.full(3, 13))
        assert np.all(out >= loads)

    def test_drain_removes_exactly_count_per_replica(self):
        rng = np.random.default_rng(0)
        loads = np.full((3, 4), 2, dtype=np.int64)
        out = apply_drain(loads, 5, rng)
        assert np.array_equal(out.sum(axis=1), np.full(3, 3))
        assert np.all(out >= 0)

    def test_drain_below_zero_rejected(self):
        rng = np.random.default_rng(0)
        loads = np.ones((2, 3), dtype=np.int64)
        with pytest.raises(ScenarioError, match="drain"):
            apply_drain(loads, 4, rng)

    def test_bin_churn_conserves_and_empties_churned_bins(self):
        rng = np.random.default_rng(1)
        loads = np.arange(12, dtype=np.int64).reshape(3, 4)
        out = apply_bin_churn(loads, 2, rng)
        assert np.array_equal(out.sum(axis=1), loads.sum(axis=1))
        # exactly the churned bins lost their entire load; with count=2
        # of 4 bins, at least 2 bins differ from the original per replica
        assert np.all((out != loads).sum(axis=1) >= 1)

    def test_apply_event_rejects_non_state_edits(self):
        rng = np.random.default_rng(0)
        loads = np.ones((1, 3), dtype=np.int64)
        with pytest.raises(ScenarioError):
            apply_event(
                ScenarioEvent(kind="rewire", round=1, topology="cycle:3"),
                loads,
                rng,
            )

    def test_adversary_event_conserves(self):
        rng = np.random.default_rng(2)
        loads = np.full((4, 6), 3, dtype=np.int64)
        out = apply_event(
            ScenarioEvent(kind="adversary", round=1, adversary="concentrate"),
            loads,
            rng,
        )
        assert np.array_equal(out.sum(axis=1), loads.sum(axis=1))


# ----------------------------------------------------------------------
# EnsembleSpec integration + guards
# ----------------------------------------------------------------------
class TestSpecIntegration:
    def test_scenario_field_accepts_all_spellings(self):
        for spelling in (
            "burst_recovery:at=2,count=4",
            '{"events": [{"kind": "burst", "round": 2, "count": 4}]}',
            burst_recovery(at=2, count=4),
        ):
            spec = EnsembleSpec(
                n_bins=4, n_replicas=2, rounds=8, scenario=spelling
            )
            assert not spec.resolved_scenario().is_noop

    def test_scenario_rejects_faulty_process(self):
        with pytest.raises(ConfigurationError, match="adversary.*events"):
            EnsembleSpec(
                n_bins=4,
                n_replicas=2,
                rounds=8,
                process="faulty",
                adversary="concentrate",
                fault_period=2,
                scenario="burst_recovery:at=2",
            )

    def test_scenario_rejects_stop_when_legitimate_and_warmup(self):
        with pytest.raises(ConfigurationError):
            EnsembleSpec(
                n_bins=4,
                n_replicas=2,
                rounds=8,
                stop_when_legitimate=True,
                scenario="burst_recovery:at=2",
            )
        with pytest.raises(ConfigurationError):
            EnsembleSpec(
                n_bins=4,
                n_replicas=2,
                rounds=8,
                warmup_rounds=2,
                scenario="burst_recovery:at=2",
            )

    def test_rewire_requires_graph_walks(self):
        scenario = ScenarioSpec(
            events=(ScenarioEvent(kind="rewire", round=2, topology="cycle:4"),)
        )
        with pytest.raises(ConfigurationError, match="graph_walks"):
            EnsembleSpec(n_bins=4, n_replicas=2, rounds=8, scenario=scenario)
        # node-count mismatch is also caught at spec construction
        with pytest.raises(ConfigurationError):
            EnsembleSpec(
                n_bins=4,
                n_replicas=2,
                rounds=8,
                process="graph_walks",
                topology="cycle:4",
                scenario=ScenarioSpec(
                    events=(
                        ScenarioEvent(kind="rewire", round=2, topology="cycle:5"),
                    )
                ),
            )

    def test_bin_churn_count_bounded_by_bins(self):
        with pytest.raises(ConfigurationError):
            EnsembleSpec(
                n_bins=4,
                n_replicas=2,
                rounds=16,
                scenario="bin_churn:start=2,every=4,count=4",
            )

    def test_drain_past_zero_balls_rejected_at_spec_time(self):
        with pytest.raises(ConfigurationError, match="drain"):
            EnsembleSpec(
                n_bins=4,
                n_replicas=2,
                rounds=8,
                scenario='{"events": [{"kind": "drain", "round": 2, "count": 5}]}',
            )

    def test_event_past_window_rejected(self):
        with pytest.raises(ConfigurationError, match="past"):
            EnsembleSpec(
                n_bins=4, n_replicas=2, rounds=8, scenario="burst_recovery:at=9"
            )


class TestFaultScheduleWindowGuard:
    """Satellite: fault schedules that never fire now fail at spec time."""

    def test_first_fault_past_window_errors(self):
        with pytest.raises(ConfigurationError, match="past the window"):
            EnsembleSpec(
                n_bins=4,
                n_replicas=2,
                rounds=8,
                process="faulty",
                adversary="concentrate",
                fault_period=9,
            )

    def test_offset_past_window_errors(self):
        with pytest.raises(ConfigurationError, match="past the window"):
            EnsembleSpec(
                n_bins=4,
                n_replicas=2,
                rounds=8,
                process="faulty",
                adversary="concentrate",
                fault_period=2,
                fault_offset=11,
            )

    def test_schedule_inside_window_accepted(self):
        spec = EnsembleSpec(
            n_bins=4,
            n_replicas=2,
            rounds=8,
            process="faulty",
            adversary="concentrate",
            fault_period=8,
        )
        assert spec.fault_schedule().is_faulty(8)
        # offset exactly at the horizon still fires once
        EnsembleSpec(
            n_bins=4,
            n_replicas=2,
            rounds=8,
            process="faulty",
            adversary="concentrate",
            fault_period=3,
            fault_offset=8,
        )


# ----------------------------------------------------------------------
# interpreter contracts
# ----------------------------------------------------------------------
EVENTFUL_SCENARIO = (
    '{"events": ['
    '{"kind": "burst", "round": 3, "count": 7},'
    '{"kind": "adversary", "round": 5, "adversary": "concentrate"},'
    '{"kind": "bin_churn", "round": 8, "count": 2},'
    '{"kind": "drain", "round": 10, "count": 7}'
    "]}"
)


class TestInterpreter:
    def test_noop_scenario_bit_equal_to_static_run(self):
        config = dict(
            n_bins=5,
            n_replicas=8,
            rounds=12,
            start="all_in_one",
            metrics="max_load,empty_bins",
            observe_every=3,
        )
        static = run_ensemble(EnsembleSpec(**config), seed=7, kernel="numpy")
        noop = run_ensemble(
            EnsembleSpec(**config, scenario='{"events": []}'),
            seed=7,
            kernel="numpy",
        )
        assert np.array_equal(static.final_loads, noop.final_loads)
        assert np.array_equal(static.max_load_seen, noop.max_load_seen)
        assert np.array_equal(
            static.first_legitimate_round, noop.first_legitimate_round
        )
        for name in static.metrics:
            assert np.array_equal(
                static.metrics[name].rounds, noop.metrics[name].rounds
            )
            for key, series in static.metrics[name].series.items():
                assert np.array_equal(series, noop.metrics[name].series[key])

    def test_r1_stream_equality_with_events(self):
        config = dict(
            n_bins=6,
            n_replicas=1,
            rounds=12,
            start="balanced",
            scenario=EVENTFUL_SCENARIO,
        )
        batched = run_ensemble(
            EnsembleSpec(**config), seed=11, engine="batched", kernel="numpy"
        )
        sequential = run_ensemble(
            EnsembleSpec(**config), seed=11, engine="sequential"
        )
        assert np.array_equal(batched.final_loads, sequential.final_loads)
        assert np.array_equal(batched.max_load_seen, sequential.max_load_seen)
        assert np.array_equal(
            batched.min_empty_bins_seen, sequential.min_empty_bins_seen
        )
        assert np.array_equal(
            batched.first_legitimate_round, sequential.first_legitimate_round
        )

    def test_ball_accounting_across_events(self):
        spec = EnsembleSpec(
            n_bins=6,
            n_replicas=4,
            rounds=12,
            start="balanced",
            scenario=EVENTFUL_SCENARIO,
        )
        result = run_ensemble(spec, seed=0, kernel="numpy")
        # burst +7 at 3, drain -7 at 10; conserving events in between
        assert np.all(result.final_loads.sum(axis=1) == 6)
        assert np.all(result.final_loads >= 0)

    @needs_native
    def test_native_kernel_runs_scenarios(self):
        spec = EnsembleSpec(
            n_bins=6,
            n_replicas=4,
            rounds=12,
            start="balanced",
            scenario=EVENTFUL_SCENARIO,
            metrics="max_load",
            observe_every=4,
        )
        result = run_ensemble(spec, seed=0, kernel="native")
        assert np.all(result.final_loads.sum(axis=1) == 6)
        assert tuple(int(r) for r in result.metrics["max_load"].rounds) == (
            4,
            8,
            12,
        )

    def test_rewire_scenario_switches_topology(self):
        spec = EnsembleSpec(
            n_bins=4,
            n_replicas=2,
            rounds=8,
            process="graph_walks",
            topology="cycle:4",
            scenario=ScenarioSpec(
                events=(
                    ScenarioEvent(kind="rewire", round=4, topology="star:4"),
                )
            ),
        )
        batched = run_ensemble(spec, seed=5, engine="batched", kernel="numpy")
        sequential = run_ensemble(spec, seed=5, engine="sequential")
        assert np.all(batched.final_loads.sum(axis=1) == 4)
        # R>1 rewire keeps per-replica streams going; the R=1 slice agrees
        spec1 = EnsembleSpec(
            n_bins=4,
            n_replicas=1,
            rounds=8,
            process="graph_walks",
            topology="cycle:4",
            scenario=spec.scenario,
        )
        b1 = run_ensemble(spec1, seed=5, engine="batched", kernel="numpy")
        s1 = run_ensemble(spec1, seed=5, engine="sequential")
        assert np.array_equal(b1.final_loads, s1.final_loads)
        assert sequential.final_loads.shape == (2, 4)


def _process_builders():
    """One builder per process family, all at ``R = 3`` replicas."""
    from repro.adversary.batched import BatchedFaultyProcess
    from repro.baselines.d_choices import BatchedDChoices
    from repro.graphs.batched import BatchedConstrainedWalks
    from repro.graphs.generators import resolve_topology

    return [
        pytest.param(
            lambda: BatchedRepeatedBallsIntoBins(5, 3, seed=0, kernel="numpy"),
            id="rbb",
        ),
        pytest.param(lambda: BatchedDChoices(5, 3, d=2, seed=0), id="d_choices"),
        pytest.param(
            lambda: BatchedConstrainedWalks(
                resolve_topology("cycle:5"), 3, seed=0, kernel="numpy"
            ),
            id="graph_walks",
        ),
        pytest.param(
            lambda: BatchedFaultyProcess(5, 3, seed=0, kernel="numpy").process,
            id="faulty",
        ),
    ]


class TestInjectLoadsConservation:
    """Satellite: the Section 4.1 conservation gate on every process family.

    ``inject_loads`` must accept any per-replica rearrangement of the
    current balls and reject any matrix that creates or destroys balls in
    *any single replica* — including matrices whose grand total is right
    but whose per-replica totals are not (the ``R > 1`` failure mode a
    global-sum check would miss).
    """

    @pytest.mark.parametrize("build", _process_builders())
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_per_replica_permutations_accepted(self, build, seed):
        process = build()
        process.run(3)
        rng = np.random.default_rng(seed)
        before = process.loads
        shuffled = np.stack([rng.permutation(row) for row in before])
        process.inject_loads(shuffled)
        assert np.array_equal(process.loads.sum(axis=1), before.sum(axis=1))

    @pytest.mark.parametrize("build", _process_builders())
    def test_cross_replica_transfer_rejected(self, build):
        process = build()
        process.run(3)
        bad = process.loads.copy()
        # move one ball from replica 1 to replica 0: the grand total is
        # unchanged, but both replicas now violate conservation
        src = int(np.flatnonzero(bad[1] > 0)[0])
        bad[0, 0] += 1
        bad[1, src] -= 1
        with pytest.raises(ConfigurationError, match="conserve"):
            process.inject_loads(bad)
        # the failed injection must not have modified the state
        assert np.array_equal(
            process.loads.sum(axis=1), np.full(3, process.loads.shape[1])
        )

    @pytest.mark.parametrize("build", _process_builders())
    def test_single_replica_surplus_rejected(self, build):
        process = build()
        bad = process.loads.copy()
        bad[2, 0] += 1
        with pytest.raises(ConfigurationError, match="replica 2"):
            process.inject_loads(bad)

    def test_replace_loads_rebaselines_conservation(self):
        process = BatchedRepeatedBallsIntoBins(5, 3, seed=0, kernel="numpy")
        grown = process.loads.copy()
        grown[:, 0] += 4
        process.replace_loads(grown)
        process.run(2)
        assert np.all(process.loads.sum(axis=1) == 9)
        # and the conservation gate now tracks the new totals
        with pytest.raises(ConfigurationError, match="conserve"):
            process.inject_loads(np.zeros((3, 5), dtype=np.int64))


class TestObservationClock:
    """Satellite: events between grid points must not shift observations."""

    EXPECTED = [8, 16, 24, 32, 40]

    def _config(self):
        return dict(
            n_bins=8,
            n_replicas=3,
            rounds=40,
            observe_every=8,
            start="balanced",
            metrics="max_load",
            scenario='{"events": [{"kind": "burst", "round": 13, "count": 6}]}',
        )

    def _rounds(self, **kwargs):
        result = run_ensemble(EnsembleSpec(**self._config()), seed=2, **kwargs)
        return [int(r) for r in result.metrics["max_load"].rounds]

    def test_batched_numpy(self):
        assert self._rounds(engine="batched", kernel="numpy") == self.EXPECTED

    def test_sequential(self):
        assert self._rounds(engine="sequential") == self.EXPECTED

    @needs_native
    def test_native_fused(self):
        assert self._rounds(engine="batched", kernel="native") == self.EXPECTED

    @needs_native
    def test_native_segmented(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_FUSED", "0")
        assert self._rounds(engine="batched", kernel="native") == self.EXPECTED
