"""Unit tests for repro.traversal (multi-token traversal, single token, progress)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.config import LoadConfiguration
from repro.core.token_process import TokenRepeatedBallsIntoBins
from repro.errors import ConfigurationError
from repro.traversal.multi_token import MultiTokenTraversal
from repro.traversal.progress import progress_statistics
from repro.traversal.single_token import (
    SingleTokenWalk,
    expected_single_cover_time,
    harmonic_number,
)


class TestHarmonicAndCoverFormulas:
    def test_harmonic_small_values(self):
        assert harmonic_number(1) == pytest.approx(1.0)
        assert harmonic_number(2) == pytest.approx(1.5)
        assert harmonic_number(4) == pytest.approx(1 + 0.5 + 1 / 3 + 0.25)

    def test_harmonic_zero(self):
        assert harmonic_number(0) == 0.0

    def test_harmonic_large_approximation(self):
        # Euler–Maclaurin branch agrees with the exact sum at the crossover
        exact = sum(1.0 / k for k in range(1, 201))
        assert harmonic_number(200) == pytest.approx(exact, rel=1e-8)

    def test_harmonic_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            harmonic_number(-1)

    def test_expected_single_cover_time(self):
        assert expected_single_cover_time(1) == 0.0
        # for n=2: one missing coupon, collected with probability 1/2 per round
        assert expected_single_cover_time(2) == pytest.approx(2.0)
        with pytest.raises(ConfigurationError):
            expected_single_cover_time(0)


class TestSingleTokenWalk:
    def test_initial_state(self):
        walk = SingleTokenWalk(8, start=3, seed=0)
        assert walk.position == 3
        assert walk.visited_count == 1
        assert not walk.covered

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SingleTokenWalk(0)
        with pytest.raises(ConfigurationError):
            SingleTokenWalk(4, start=9)

    def test_step_moves_and_counts(self):
        walk = SingleTokenWalk(4, seed=1)
        for _ in range(20):
            pos = walk.step()
            assert 0 <= pos < 4
        assert walk.round_index == 20
        assert 1 <= walk.visited_count <= 4

    def test_cover_time_reached(self):
        walk = SingleTokenWalk(16, seed=2)
        cover = walk.cover_time()
        assert cover is not None
        assert walk.covered
        assert cover >= 15  # needs at least n-1 jumps

    def test_cover_time_timeout(self):
        walk = SingleTokenWalk(64, seed=3)
        assert walk.cover_time(max_rounds=5) is None

    def test_single_node_already_covered(self):
        walk = SingleTokenWalk(1, seed=0)
        assert walk.covered
        assert walk.cover_time() == 0

    def test_mean_cover_time_matches_coupon_collector(self):
        n = 32
        expected = expected_single_cover_time(n)
        covers = []
        for seed in range(60):
            covers.append(SingleTokenWalk(n, seed=seed).cover_time())
        assert all(c is not None for c in covers)
        assert abs(float(np.mean(covers)) - expected) < 0.25 * expected


class TestMultiTokenTraversal:
    def test_construction_defaults(self):
        traversal = MultiTokenTraversal(16, seed=0)
        assert traversal.n_nodes == 16
        assert traversal.n_tokens == 16

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MultiTokenTraversal(0)

    def test_budget_formula(self):
        traversal = MultiTokenTraversal(64, seed=0)
        budget = traversal.default_round_budget(safety_factor=10.0)
        assert budget >= 10 * 64 * math.log(64) ** 2

    def test_run_completes_small_instance(self):
        traversal = MultiTokenTraversal(16, seed=1)
        result = traversal.run()
        assert result.completed
        assert result.cover_time is not None
        assert result.cover_time >= 15
        assert np.all(result.token_cover_times >= 0)
        assert int(result.token_cover_times.max()) == result.cover_time
        assert result.normalized_cover_time() > 0

    def test_run_times_out_with_tiny_budget(self):
        traversal = MultiTokenTraversal(32, seed=2)
        result = traversal.run(max_rounds=3)
        assert not result.completed
        assert result.cover_time is None
        assert result.normalized_cover_time() is None
        assert result.mean_token_cover_time is None

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiTokenTraversal(8, seed=0).run(max_rounds=-1)

    def test_initial_placement_respected(self):
        initial = LoadConfiguration.all_in_one(8)
        traversal = MultiTokenTraversal(8, initial=initial, seed=3)
        assert traversal.process.max_load == 8

    def test_cover_time_between_single_walk_and_budget(self):
        """Corollary 1 at small scale: the parallel cover time is within a
        logarithmic factor of the single-token cover time."""
        n = 32
        result = MultiTokenTraversal(n, seed=4).run()
        assert result.completed
        single_expected = expected_single_cover_time(n)
        log_n = math.log(n)
        assert result.cover_time >= 0.5 * single_expected  # cannot beat a single walk by much
        assert result.cover_time <= 20 * n * log_n * log_n  # comfortably inside O(n log^2 n)

    def test_discipline_parameter_accepted(self):
        result = MultiTokenTraversal(8, discipline="random", seed=5).run()
        assert result.completed


class TestProgressStatistics:
    def test_basic_fields(self):
        process = TokenRepeatedBallsIntoBins(32, seed=0)
        process.run(200)
        stats = progress_statistics(process)
        assert stats.rounds == 200
        assert 0 <= stats.min_moves <= stats.mean_moves <= stats.max_moves <= 200
        assert stats.min_progress_rate == pytest.approx(stats.min_moves / 200)
        assert stats.max_waiting_rounds >= 0
        assert stats.progress_rate_times_log_n >= 0

    def test_requires_at_least_one_round(self):
        process = TokenRepeatedBallsIntoBins(8, seed=0)
        with pytest.raises(ConfigurationError):
            progress_statistics(process)

    def test_fifo_progress_rate_bounded_below(self):
        """Theorem 1's corollary: under FIFO every ball makes Omega(t / log n)
        progress; check the normalized rate is bounded away from zero."""
        n = 64
        process = TokenRepeatedBallsIntoBins(n, discipline="fifo", seed=1)
        process.run(8 * n)
        stats = progress_statistics(process)
        assert stats.progress_rate_times_log_n > 0.3
