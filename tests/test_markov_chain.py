"""Unit tests for repro.markov.chain (generic finite DTMC tools)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.markov.chain import FiniteMarkovChain


@pytest.fixture
def two_state_chain() -> FiniteMarkovChain:
    """A simple ergodic two-state chain with known stationary distribution."""
    P = np.array([[0.9, 0.1], [0.3, 0.7]])
    return FiniteMarkovChain(P, state_labels=["a", "b"])


@pytest.fixture
def absorbing_chain() -> FiniteMarkovChain:
    """A three-state chain where state 0 is absorbing."""
    P = np.array(
        [
            [1.0, 0.0, 0.0],
            [0.5, 0.25, 0.25],
            [0.0, 0.5, 0.5],
        ]
    )
    return FiniteMarkovChain(P)


class TestConstruction:
    def test_basic_properties(self, two_state_chain):
        assert two_state_chain.num_states == 2
        assert two_state_chain.state_labels == ["a", "b"]
        assert two_state_chain.index_of("b") == 1

    def test_unknown_label(self, two_state_chain):
        with pytest.raises(ConfigurationError):
            two_state_chain.index_of("c")

    def test_rejects_non_square(self):
        with pytest.raises(ConfigurationError):
            FiniteMarkovChain(np.ones((2, 3)) / 3)

    def test_rejects_bad_row_sums(self):
        with pytest.raises(ConfigurationError):
            FiniteMarkovChain(np.array([[0.5, 0.2], [0.5, 0.5]]))

    def test_rejects_negative_entries(self):
        with pytest.raises(ConfigurationError):
            FiniteMarkovChain(np.array([[1.5, -0.5], [0.5, 0.5]]))

    def test_rejects_wrong_label_count(self):
        with pytest.raises(ConfigurationError):
            FiniteMarkovChain(np.eye(2), state_labels=["only-one"])

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            FiniteMarkovChain(np.zeros((0, 0)))

    def test_transition_matrix_copy(self, two_state_chain):
        P = two_state_chain.transition_matrix
        P[0, 0] = 0.0
        assert two_state_chain.transition_matrix[0, 0] == pytest.approx(0.9)


class TestDistributions:
    def test_step_distribution(self, two_state_chain):
        mu0 = np.array([1.0, 0.0])
        mu1 = two_state_chain.step_distribution(mu0)
        assert mu1 == pytest.approx(np.array([0.9, 0.1]))
        mu2 = two_state_chain.step_distribution(mu0, steps=2)
        assert mu2.sum() == pytest.approx(1.0)

    def test_step_distribution_validation(self, two_state_chain):
        with pytest.raises(ConfigurationError):
            two_state_chain.step_distribution(np.array([1.0, 0.0, 0.0]))
        with pytest.raises(ConfigurationError):
            two_state_chain.step_distribution(np.array([1.0, 0.0]), steps=-1)

    def test_k_step_matrix(self, two_state_chain):
        P2 = two_state_chain.k_step_matrix(2)
        assert P2 == pytest.approx(
            two_state_chain.transition_matrix @ two_state_chain.transition_matrix
        )
        assert two_state_chain.k_step_matrix(0) == pytest.approx(np.eye(2))

    def test_stationary_distribution(self, two_state_chain):
        pi = two_state_chain.stationary_distribution()
        # solve by hand: pi = (0.75, 0.25)
        assert pi == pytest.approx(np.array([0.75, 0.25]), abs=1e-8)
        assert pi @ two_state_chain.transition_matrix == pytest.approx(pi, abs=1e-8)


class TestHittingAndAbsorption:
    def test_expected_hitting_times_two_state(self, two_state_chain):
        h = two_state_chain.expected_hitting_times(["a"])
        assert h[0] == pytest.approx(0.0)
        # from b: geometric with success probability 0.3 -> expectation 1/0.3
        assert h[1] == pytest.approx(1.0 / 0.3)

    def test_expected_hitting_times_all_targets(self, two_state_chain):
        h = two_state_chain.expected_hitting_times(["a", "b"])
        assert h.tolist() == [0.0, 0.0]

    def test_hitting_requires_targets(self, two_state_chain):
        with pytest.raises(ConfigurationError):
            two_state_chain.expected_hitting_times([])

    def test_absorption_probabilities(self, absorbing_chain):
        probs = absorbing_chain.absorption_probabilities([0])
        # the chain is eventually absorbed from every state
        assert probs == pytest.approx(np.ones(3), abs=1e-8)

    def test_absorption_from_unreachable_state(self):
        # state 2 never reaches state 0
        P = np.array([[1.0, 0.0, 0.0], [0.5, 0.5, 0.0], [0.0, 0.0, 1.0]])
        chain = FiniteMarkovChain(P)
        probs = chain.absorption_probabilities([0])
        assert probs[1] == pytest.approx(1.0, abs=1e-8)
        assert probs[2] == pytest.approx(0.0, abs=1e-8)


class TestSimulation:
    def test_sample_path_length_and_labels(self, two_state_chain):
        path = two_state_chain.sample_path("a", length=10, seed=0)
        assert len(path) == 11
        assert set(path) <= {"a", "b"}
        assert path[0] == "a"

    def test_sample_path_deterministic(self, two_state_chain):
        p1 = two_state_chain.sample_path("a", length=20, seed=42)
        p2 = two_state_chain.sample_path("a", length=20, seed=42)
        assert p1 == p2

    def test_sample_path_validation(self, two_state_chain):
        with pytest.raises(ConfigurationError):
            two_state_chain.sample_path("a", length=-1)

    def test_absorbing_path_stays_absorbed(self, absorbing_chain):
        path = absorbing_chain.sample_path(0, length=5, seed=0)
        assert path == [0] * 6
