"""Tests for the batched Greedy[d] baseline (BatchedDChoices + one-shot).

The load-bearing guarantee mirrors the batched engine's: with ``R == 1``
and the same seed, :class:`BatchedDChoices` must reproduce
:class:`DChoicesProcess` step for step (identical generator consumption),
and in particular the max-load distribution over a fixed seed grid must
match quantile for quantile.  On top of that sit conservation checks at
``R > 1``, protocol conformance, and the ensemble-engine routing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.d_choices import (
    BatchedDChoices,
    DChoicesProcess,
    batched_one_shot_d_choices_max_load,
    one_shot_d_choices_max_load,
)
from repro.core.batched import (
    BatchedProcess,
    BatchedRepeatedBallsIntoBins,
    make_ensemble_initial,
)
from repro.errors import ConfigurationError
from repro.parallel.ensemble import EnsembleSpec, run_ensemble

SEED_GRID = list(range(24))


# ----------------------------------------------------------------------
# R = 1 equivalence with the sequential Greedy[d] simulator
# ----------------------------------------------------------------------
class TestSequentialEquivalence:
    @pytest.mark.parametrize("d", [1, 2, 3])
    def test_step_for_step(self, d):
        sequential = DChoicesProcess(24, d=d, seed=99)
        batched = BatchedDChoices(24, 1, d=d, seed=99)
        for _ in range(80):
            assert np.array_equal(sequential.step(), batched.step()[0])

    def test_distribution_consistent_on_seed_grid_d1(self):
        """ISSUE requirement: R=1, d=1 max-load quantiles over a seed grid."""
        n, rounds = 32, 96
        sequential_max = []
        batched_max = []
        for seed in SEED_GRID:
            sequential = DChoicesProcess(n, d=1, seed=seed)
            sequential_max.append(sequential.run(rounds).max_load_seen)
            batched = BatchedDChoices(n, 1, d=1, seed=seed)
            batched_max.append(int(batched.run(rounds).max_load_seen[0]))
        # the numpy paths are stream-equal, so the per-seed values (and
        # hence every quantile of the seed-grid distribution) coincide
        assert sequential_max == batched_max
        for q in (0.1, 0.25, 0.5, 0.75, 0.9):
            assert np.quantile(sequential_max, q) == np.quantile(batched_max, q)

    def test_distribution_consistent_on_seed_grid_d2(self):
        n, rounds = 32, 64
        pairs = [
            (
                DChoicesProcess(n, d=2, seed=seed).run(rounds).max_load_seen,
                int(BatchedDChoices(n, 1, d=2, seed=seed).run(rounds).max_load_seen[0]),
            )
            for seed in SEED_GRID
        ]
        assert all(a == b for a, b in pairs)

    def test_d1_matches_plain_batched_process(self):
        """Greedy[1] degenerates to the plain process — stream-equal at any R."""
        greedy = BatchedDChoices(16, 6, d=1, seed=5)
        plain = BatchedRepeatedBallsIntoBins(16, 6, seed=5, kernel="numpy")
        for _ in range(40):
            assert np.array_equal(greedy.step(), plain.step())


# ----------------------------------------------------------------------
# Ensemble semantics at R > 1
# ----------------------------------------------------------------------
class TestBatchedDChoices:
    def test_protocol_conformance(self):
        assert isinstance(BatchedDChoices(8, 2, seed=0), BatchedProcess)

    def test_ball_conservation_heterogeneous(self):
        initial = make_ensemble_initial("random_uniform", 16, 10, n_balls=40, seed=1)
        batched = BatchedDChoices(16, 10, d=2, initial=initial, seed=2)
        result = batched.run(60)
        assert np.array_equal(result.n_balls, initial.sum(axis=1))

    def test_power_of_two_choices_reduces_window_max(self):
        n, trials, rounds = 64, 60, 128
        one = BatchedDChoices(n, trials, d=1, seed=3).run(rounds)
        two = BatchedDChoices(n, trials, d=2, seed=3).run(rounds)
        assert two.max_load_seen.mean() < one.max_load_seen.mean()

    def test_early_stop_freezes_replicas(self):
        initial = make_ensemble_initial("all_in_one", 32, 8)
        batched = BatchedDChoices(32, 8, d=2, initial=initial, seed=4)
        result = batched.run(20 * 32, stop_when_legitimate=True)
        assert result.converged_fraction == 1.0
        frozen = batched.loads.copy()
        batched.run(10)
        assert np.array_equal(batched.loads, frozen)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BatchedDChoices(8, 2, d=0)
        with pytest.raises(ConfigurationError):
            BatchedDChoices(0, 2)
        with pytest.raises(ConfigurationError):
            BatchedDChoices(8, 2, seed=0).run(-1)


# ----------------------------------------------------------------------
# Batched one-shot greedy[d]
# ----------------------------------------------------------------------
class TestBatchedOneShot:
    @pytest.mark.parametrize("d", [1, 2, 3])
    def test_r1_matches_scalar_helper(self, d):
        for seed in range(6):
            scalar = one_shot_d_choices_max_load(37, d=d, seed=seed)
            vector = batched_one_shot_d_choices_max_load(37, 1, d=d, seed=seed)
            assert vector.shape == (1,)
            assert scalar == int(vector[0])

    def test_two_choices_beats_one_choice(self):
        n, trials = 256, 80
        one = batched_one_shot_d_choices_max_load(n, trials, d=1, seed=0)
        two = batched_one_shot_d_choices_max_load(n, trials, d=2, seed=0)
        assert two.mean() < one.mean()

    def test_zero_balls(self):
        out = batched_one_shot_d_choices_max_load(8, 5, d=2, n_balls=0, seed=0)
        assert np.array_equal(out, np.zeros(5))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            batched_one_shot_d_choices_max_load(0, 1)
        with pytest.raises(ConfigurationError):
            batched_one_shot_d_choices_max_load(8, 0)
        with pytest.raises(ConfigurationError):
            batched_one_shot_d_choices_max_load(8, 1, d=0)
        with pytest.raises(ConfigurationError):
            batched_one_shot_d_choices_max_load(8, 1, n_balls=-1)


# ----------------------------------------------------------------------
# Engine routing through run_ensemble
# ----------------------------------------------------------------------
class TestEnsembleRouting:
    def test_engines_share_schema_d_choices(self):
        spec = EnsembleSpec(
            n_bins=32, n_replicas=10, rounds=40, process="d_choices", d=2
        )
        batched = run_ensemble(spec, seed=0, engine="batched")
        sequential = run_ensemble(spec, seed=0, engine="sequential")
        for result in (batched, sequential):
            assert result.n_replicas == 10
            assert (result.n_balls == 32).all()
            assert result.max_load_seen.shape == (10,)

    def test_engines_agree_distributionally_d_choices(self):
        spec = EnsembleSpec(
            n_bins=32, n_replicas=50, rounds=64, process="d_choices", d=2
        )
        batched = run_ensemble(spec, seed=1, engine="batched")
        sequential = run_ensemble(spec, seed=1, engine="sequential")
        mean_b = batched.max_load_seen.mean()
        mean_s = sequential.max_load_seen.mean()
        assert abs(mean_b - mean_s) < 0.25 * max(mean_b, mean_s) + 0.5

    def test_engines_share_schema_faulty(self):
        spec = EnsembleSpec(
            n_bins=32,
            n_replicas=8,
            rounds=50,
            process="faulty",
            adversary="concentrate",
            fault_period=20,
        )
        batched = run_ensemble(spec, seed=2, engine="batched", kernel="numpy")
        sequential = run_ensemble(spec, seed=2, engine="sequential")
        for result in (batched, sequential):
            assert result.n_replicas == 8
            assert (result.n_balls == 32).all()
            # concentrate spikes the whole ball count into one bin
            assert (result.max_load_seen == 32).all()

    def test_faulty_spec_validation(self):
        with pytest.raises(ConfigurationError):
            EnsembleSpec(
                n_bins=8, n_replicas=2, rounds=4, process="faulty",
                stop_when_legitimate=True,
            )
        with pytest.raises(ConfigurationError):
            EnsembleSpec(
                n_bins=8, n_replicas=2, rounds=4, process="faulty",
                warmup_rounds=1,
            )
        with pytest.raises(ConfigurationError):
            EnsembleSpec(
                n_bins=8, n_replicas=2, rounds=4, process="faulty",
                adversary="gremlin",
            )
        with pytest.raises(ConfigurationError):
            EnsembleSpec(n_bins=8, n_replicas=2, rounds=4, process="quantum")

    def test_deterministic_per_engine(self):
        spec = EnsembleSpec(
            n_bins=16, n_replicas=6, rounds=30, process="d_choices", d=3
        )
        a = run_ensemble(spec, seed=3, engine="batched")
        b = run_ensemble(spec, seed=3, engine="batched")
        assert np.array_equal(a.final_loads, b.final_loads)

    def test_sharded_pool_runs_d_choices(self):
        spec = EnsembleSpec(
            n_bins=16, n_replicas=9, rounds=20, process="d_choices", d=2
        )
        result = run_ensemble(spec, seed=4, engine="batched", n_workers=2)
        assert result.n_replicas == 9
