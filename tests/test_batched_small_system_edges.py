"""Exact-chain audits of the batched engine's edge branches at n=2, m=2.

The verify-harness bugfix sweep: the idle-replica branch, the
``stop_when_legitimate`` pre-check, mixed activity masks, and
``observe_every`` segment restarts (numpy and native, fused and
segmented) are each driven at the smallest non-trivial system and
compared against powers of the exact transition matrix — the branches
that a plain end-to-end run never isolates.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.batched import BatchedRepeatedBallsIntoBins
from repro.core.config import legitimacy_threshold
from repro.markov.small_n import exact_rbb_transition_matrix
from repro.verify.cases import native_kernel_available
from repro.verify.stats import pooled_chi_square

needs_native = pytest.mark.skipif(
    not native_kernel_available("rbb"), reason="native rbb kernel unavailable"
)

START = (2, 0)
R = 8000
ALPHA = 1e-4

P, STATES = exact_rbb_transition_matrix(2, 2)
INDEX = {s: i for i, s in enumerate(STATES)}


def _dist_after(rounds: int) -> np.ndarray:
    mu = np.zeros(len(STATES))
    mu[INDEX[START]] = 1.0
    return mu @ np.linalg.matrix_power(P, rounds)


def _counts_of(loads: np.ndarray) -> np.ndarray:
    counts = np.zeros(len(STATES))
    for row in loads:
        counts[INDEX[tuple(int(x) for x in row)]] += 1
    return counts


def _engine(seed: int, kernel: str = "numpy", n_replicas: int = R):
    initial = np.tile(np.array(START), (n_replicas, 1))
    return BatchedRepeatedBallsIntoBins(
        2, n_replicas, initial=initial, seed=seed, kernel=kernel
    )


class TestSegmentRestarts:
    def test_repeated_run_calls_match_exact_chain(self):
        """run(1) x 4 through the public API == one P^4 step distribution."""
        batch = _engine(seed=1)
        for _ in range(4):
            result = batch.run(1)
        gof = pooled_chi_square(_counts_of(result.final_loads), _dist_after(4))
        assert gof.passed(ALPHA), gof

    def test_idle_calls_do_not_perturb_the_chain(self):
        """Interleaved run(0) calls consume no randomness and change nothing."""
        batch = _engine(seed=2)
        batch.run(0)
        first = batch.run(2)
        idle = batch.run(0)
        result = batch.run(2)
        gof = pooled_chi_square(_counts_of(result.final_loads), _dist_after(4))
        assert gof.passed(ALPHA), gof
        # the idle call's window statistics report the *observed* current
        # configuration (the branch the harness distribution-tests here)
        assert np.array_equal(idle.max_load_seen, first.final_loads.max(axis=1))
        assert np.array_equal(
            idle.min_empty_bins_seen, (first.final_loads == 0).sum(axis=1)
        )

    def test_windows_are_fresh_per_run_call(self):
        """A second run() call's window covers only its own rounds."""
        batch = _engine(seed=3, n_replicas=2000)
        snapshots = []

        def record(round_index, loads):
            snapshots.append((int(round_index), loads.copy()))

        batch.run(3, observers=record, observe_every=1)
        second = batch.run(3, observers=record, observe_every=1)
        tail = [loads for r, loads in snapshots if r >= 4]
        assert np.array_equal(
            second.max_load_seen, np.max([s.max(axis=1) for s in tail], axis=0)
        )
        assert np.array_equal(
            second.min_empty_bins_seen,
            np.min([(s == 0).sum(axis=1) for s in tail], axis=0),
        )


class TestLegitimacyPreCheck:
    def test_legitimate_start_freezes_before_round_one(self):
        # at n=2 the threshold is 4.0, so m=2 configurations are always
        # legitimate: every replica must freeze at round 0 untouched
        initial = np.tile(np.array((1, 1)), (200, 1))
        batch = BatchedRepeatedBallsIntoBins(2, 200, initial=initial, seed=4)
        result = batch.run(5, stop_when_legitimate=True)
        assert (result.first_legitimate_round == 0).all()
        assert set(result.rounds.tolist()) == {0}
        assert (result.final_loads == initial).all()
        # frozen replicas report their observed configuration
        assert set(result.max_load_seen.tolist()) == {1}
        assert set(result.min_empty_bins_seen.tolist()) == {0}

    def test_mixed_activity_masks_only_advance_active_replicas(self):
        """Half frozen at round 0, half active: the masked kernel branch."""
        threshold = legitimacy_threshold(2)
        half = 1000
        initial = np.vstack(
            [np.tile([6, 0], (half, 1)), np.tile([3, 3], (half, 1))]
        )
        batch = BatchedRepeatedBallsIntoBins(2, 2 * half, initial=initial, seed=5)
        result = batch.run(3, stop_when_legitimate=True)
        # the balanced half is legitimate immediately and never advances
        assert (result.first_legitimate_round[half:] == 0).all()
        assert (result.final_loads[half:] == [3, 3]).all()
        assert set(result.rounds[half:].tolist()) == {0}
        # the concentrated half freezes exactly when its max drops under
        # the threshold, never after
        active = result.final_loads[:half]
        hit = result.first_legitimate_round[:half]
        assert (
            ((hit >= 0) & (active.max(axis=1) <= threshold))
            | ((hit < 0) & (active.max(axis=1) > threshold))
        ).all()


@needs_native
class TestNativeSegmentedRestarts:
    def test_uneven_final_segment_matches_exact_chain(self):
        """observe_every=2 over 5 rounds: the 1-round tail segment."""
        batch = _engine(seed=6, kernel="native")
        observed = []
        result = batch.run(
            5, observers=lambda r, loads: observed.append(int(r)), observe_every=2
        )
        assert observed == [2, 4, 5]
        gof = pooled_chi_square(_counts_of(result.final_loads), _dist_after(5))
        assert gof.passed(ALPHA), gof

    def test_segmented_fallback_is_bit_identical(self):
        batch = _engine(seed=6, kernel="native")
        fused = batch.run(5, observe_every=2)
        os.environ["REPRO_NATIVE_FUSED"] = "0"
        try:
            batch = _engine(seed=6, kernel="native")
            segmented = batch.run(5, observe_every=2)
        finally:
            del os.environ["REPRO_NATIVE_FUSED"]
        assert (fused.final_loads == segmented.final_loads).all()
        assert (fused.max_load_seen == segmented.max_load_seen).all()
        assert (fused.min_empty_bins_seen == segmented.min_empty_bins_seen).all()

    def test_restarted_native_segments_match_exact_chain(self):
        """run(2) x 3 with observe_every=2: segment state across calls."""
        batch = _engine(seed=7, kernel="native")
        for _ in range(3):
            result = batch.run(2, observe_every=2)
        gof = pooled_chi_square(_counts_of(result.final_loads), _dist_after(6))
        assert gof.passed(ALPHA), gof
