"""Tests of the top-level public API surface (imports, __all__, docstrings)."""

from __future__ import annotations

import importlib
import inspect

import pytest

import repro


SUBPACKAGES = [
    "repro.core",
    "repro.markov",
    "repro.graphs",
    "repro.traversal",
    "repro.adversary",
    "repro.baselines",
    "repro.analysis",
    "repro.metrics",
    "repro.parallel",
    "repro.sweeps",
    "repro.store",
    "repro.experiments",
]

MODULES = [
    "repro.rng",
    "repro.types",
    "repro.errors",
    "repro.cli",
    "repro.core.config",
    "repro.core.process",
    "repro.core.tetris",
    "repro.core.coupling",
    "repro.core.queueing",
    "repro.core.token_process",
    "repro.core.metrics",
    "repro.core.observers",
    "repro.markov.chain",
    "repro.markov.absorbing",
    "repro.markov.small_n",
    "repro.markov.spectral",
    "repro.graphs.topology",
    "repro.graphs.generators",
    "repro.graphs.walks",
    "repro.traversal.multi_token",
    "repro.traversal.single_token",
    "repro.traversal.progress",
    "repro.adversary.adversaries",
    "repro.adversary.faulty_process",
    "repro.baselines.one_shot",
    "repro.baselines.d_choices",
    "repro.baselines.birth_death",
    "repro.analysis.bounds",
    "repro.analysis.concentration",
    "repro.analysis.negative_association",
    "repro.analysis.occupancy",
    "repro.analysis.statistics",
    "repro.analysis.fitting",
    "repro.metrics.base",
    "repro.metrics.trackers",
    "repro.metrics.window",
    "repro.metrics.payload",
    "repro.metrics.registry",
    "repro.metrics.adapters",
    "repro.parallel.seeding",
    "repro.parallel.runner",
    "repro.parallel.aggregate",
    "repro.sweeps.spec",
    "repro.sweeps.plan",
    "repro.sweeps.scheduler",
    "repro.sweeps.catalog",
    "repro.store.store",
    "repro.store.streaming",
    "repro.experiments.spec",
    "repro.experiments.tables",
    "repro.experiments.io",
    "repro.experiments.harness",
    "repro.experiments.report",
    "repro.experiments.registry",
    "repro.experiments.definitions_core",
    "repro.experiments.definitions_extended",
]


class TestImports:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize("name", SUBPACKAGES + MODULES)
    def test_module_imports_and_has_docstring(self, name):
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} is missing a module docstring"

    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing attribute {name}"

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_subpackage_all_resolves(self, name):
        module = importlib.import_module(name)
        for attr in getattr(module, "__all__", []):
            assert hasattr(module, attr), f"{name}.__all__ lists missing attribute {attr}"


class TestDocumentation:
    @pytest.mark.parametrize(
        "obj",
        [
            repro.LoadConfiguration,
            repro.RepeatedBallsIntoBins,
            repro.TetrisProcess,
            repro.ProbabilisticTetris,
            repro.CoupledRun,
            repro.TokenRepeatedBallsIntoBins,
            repro.MultiTokenTraversal,
            repro.SingleTokenWalk,
            repro.FaultyProcess,
            repro.Topology,
            repro.ConstrainedParallelWalks,
            repro.FiniteMarkovChain,
            repro.BinLoadChain,
            repro.DChoicesProcess,
            repro.IndependentThrowsProcess,
        ],
    )
    def test_public_classes_have_docstrings(self, obj):
        assert inspect.getdoc(obj), f"{obj.__name__} is missing a class docstring"

    def test_public_class_methods_have_docstrings(self):
        """Every public method of the main simulators carries a docstring."""
        for cls in (repro.RepeatedBallsIntoBins, repro.TetrisProcess, repro.CoupledRun):
            for name, member in inspect.getmembers(cls, predicate=inspect.isfunction):
                if name.startswith("_"):
                    continue
                assert inspect.getdoc(member), f"{cls.__name__}.{name} is missing a docstring"

    def test_package_docstring_mentions_the_paper(self):
        assert "balls-into-bins" in repro.__doc__
        assert "Becchetti" in repro.__doc__


class TestQuickstartDocExample:
    def test_module_docstring_example_runs(self):
        """The example in the package docstring must actually work."""
        process = repro.RepeatedBallsIntoBins(
            1024, initial=repro.LoadConfiguration.all_in_one(1024), seed=0
        )
        hit = process.run_until_legitimate(max_rounds=20 * 1024)
        assert hit is not None and hit <= 20 * 1024
