"""Unit tests for repro.analysis.statistics and repro.analysis.fitting."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.fitting import (
    compare_growth_models,
    fit_linear,
    fit_log_growth,
    fit_power_law,
)
from repro.analysis.statistics import (
    bootstrap_confidence_interval,
    empirical_whp_probability,
    mean_confidence_interval,
    summarize_trials,
)
from repro.errors import ConfigurationError


class TestSummaries:
    def test_summary_fields(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        summary = summarize_trials(values)
        assert summary.count == 5
        assert summary.mean == pytest.approx(3.0)
        assert summary.median == pytest.approx(3.0)
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0
        assert summary.ci_low <= summary.mean <= summary.ci_high
        assert summary.q10 <= summary.median <= summary.q90
        as_dict = summary.as_dict()
        assert as_dict["count"] == 5

    def test_single_value(self):
        summary = summarize_trials([7.0])
        assert summary.mean == 7.0
        assert summary.std == 0.0
        assert summary.ci_low == summary.ci_high == 7.0

    def test_constant_values(self):
        summary = summarize_trials([2.0] * 10)
        assert summary.std == 0.0
        assert summary.ci_low == summary.ci_high == 2.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            summarize_trials([])
        with pytest.raises(ConfigurationError):
            summarize_trials([1.0, float("nan")])
        with pytest.raises(ConfigurationError):
            summarize_trials(np.ones((2, 2)))

    def test_confidence_interval_contains_true_mean_usually(self):
        rng = np.random.default_rng(0)
        hits = 0
        for _ in range(100):
            sample = rng.normal(10.0, 2.0, size=30)
            _, low, high = mean_confidence_interval(sample, confidence=0.95)
            if low <= 10.0 <= high:
                hits += 1
        assert hits >= 85  # ~95% coverage, generous slack

    def test_confidence_validation(self):
        with pytest.raises(ConfigurationError):
            mean_confidence_interval([1.0, 2.0], confidence=1.5)


class TestBootstrap:
    def test_bootstrap_interval_contains_point(self):
        rng = np.random.default_rng(1)
        sample = rng.exponential(2.0, size=50)
        point, low, high = bootstrap_confidence_interval(sample, statistic=np.median, seed=0)
        assert low <= point <= high

    def test_bootstrap_validation(self):
        with pytest.raises(ConfigurationError):
            bootstrap_confidence_interval([1.0, 2.0], n_resamples=1)
        with pytest.raises(ConfigurationError):
            bootstrap_confidence_interval([1.0, 2.0], confidence=0.0)


class TestWhpProbability:
    def test_all_successes(self):
        p, low, high = empirical_whp_probability(100, 100)
        assert p == 1.0
        assert 0.9 < low < 1.0
        assert high == 1.0

    def test_no_successes(self):
        p, low, high = empirical_whp_probability(0, 50)
        assert p == 0.0
        assert low == pytest.approx(0.0, abs=1e-9)
        assert high < 0.1

    def test_half(self):
        p, low, high = empirical_whp_probability(50, 100)
        assert p == pytest.approx(0.5)
        assert low < 0.5 < high

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            empirical_whp_probability(5, 0)
        with pytest.raises(ConfigurationError):
            empirical_whp_probability(11, 10)
        with pytest.raises(ConfigurationError):
            empirical_whp_probability(1, 10, confidence=0.0)


class TestFitting:
    def test_power_law_recovers_exponent(self):
        x = np.array([10, 20, 40, 80, 160], dtype=float)
        y = 3.0 * x**1.5
        fit = fit_power_law(x, y)
        assert fit.params["exponent"] == pytest.approx(1.5, abs=1e-6)
        assert fit.params["coefficient"] == pytest.approx(3.0, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0, abs=1e-9)
        assert fit.predict(np.array([100.0]))[0] == pytest.approx(3.0 * 100**1.5, rel=1e-6)

    def test_log_growth_recovers_coefficients(self):
        x = np.array([16, 64, 256, 1024], dtype=float)
        y = 2.5 * np.log(x) + 1.0
        fit = fit_log_growth(x, y)
        assert fit.params["coefficient"] == pytest.approx(2.5, abs=1e-9)
        assert fit.params["intercept"] == pytest.approx(1.0, abs=1e-9)
        assert fit.predict(np.array([100.0]))[0] == pytest.approx(2.5 * math.log(100) + 1.0)

    def test_linear_fit(self):
        x = np.array([1, 2, 3, 4], dtype=float)
        y = 2.0 * x - 1.0
        fit = fit_linear(x, y)
        assert fit.params["slope"] == pytest.approx(2.0)
        assert fit.params["intercept"] == pytest.approx(-1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fit_power_law([1.0], [2.0])
        with pytest.raises(ConfigurationError):
            fit_power_law([1.0, -2.0], [2.0, 3.0])
        with pytest.raises(ConfigurationError):
            fit_power_law([1.0, 2.0], [2.0, -3.0])
        with pytest.raises(ConfigurationError):
            fit_linear([1.0, 2.0], [1.0])

    def test_compare_models_prefers_true_law(self):
        x = np.array([64, 128, 256, 512, 1024, 2048], dtype=float)
        rng = np.random.default_rng(2)
        y_log = 3.0 * np.log(x) + rng.normal(0, 0.05, size=x.size)
        results = compare_growth_models(x, y_log)
        assert "log" in results and "power" in results
        best = min(results.items(), key=lambda item: item[1].residual_norm)
        assert best[0] in ("log", "loglog")  # log-like laws fit a log signal best

        y_lin = 0.5 * x + rng.normal(0, 0.5, size=x.size)
        results = compare_growth_models(x, y_lin)
        best = min(results.items(), key=lambda item: item[1].residual_norm)
        assert best[0] in ("linear", "power")

    def test_compare_models_requires_some_fit(self):
        with pytest.raises(ConfigurationError):
            compare_growth_models([1.0], [1.0])

    def test_fit_result_unknown_model_prediction(self):
        fit = fit_linear([1.0, 2.0], [1.0, 2.0])
        object.__setattr__(fit, "model", "mystery")
        with pytest.raises(ConfigurationError):
            fit.predict(np.array([1.0]))
