"""Conformance-harness tests: gates pass on real engines, fire on broken ones.

The centerpiece is the injected-bug test: a deliberately biased re-throw
kernel (destinations drawn from ``[0, n-1)`` — the classic off-by-one in
the modulus) is monkeypatched into the batched engine, and the harness
must (a) fail its gates, (b) write a replayable counterexample artifact,
and (c) pass again when the artifact is replayed against the fixed engine.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.batched import BatchedRepeatedBallsIntoBins
from repro.errors import ConfigurationError
from repro.verify import (
    CounterexampleArtifact,
    ConformanceCase,
    bonferroni_alpha,
    build_cases,
    case_by_name,
    load_artifact,
    pooled_chi_square,
    replay_artifact,
    run_conformance,
    total_variation,
    write_artifact,
)
from repro.verify.cases import DEFAULT_CHECKS


class TestStats:
    def test_pooled_chi_square_accepts_the_true_distribution(self):
        rng = np.random.default_rng(0)
        probs = np.array([0.5, 0.3, 0.15, 0.05])
        counts = np.bincount(rng.choice(4, size=4000, p=probs), minlength=4)
        gof = pooled_chi_square(counts, probs)
        assert gof.passed(1e-3)
        assert gof.impossible_mass == 0.0

    def test_pooled_chi_square_rejects_a_wrong_distribution(self):
        rng = np.random.default_rng(1)
        counts = np.bincount(rng.choice(4, size=4000, p=[0.4, 0.4, 0.1, 0.1]), minlength=4)
        gof = pooled_chi_square(counts, np.array([0.25, 0.25, 0.25, 0.25]))
        assert not gof.passed(1e-3)

    def test_impossible_mass_is_an_unconditional_fail(self):
        # observed mass on a zero-probability cell fails at ANY alpha
        gof = pooled_chi_square(np.array([10, 10, 5]), np.array([0.5, 0.5, 0.0]))
        assert gof.impossible_mass > 0
        assert not gof.passed(1e-300)

    def test_small_cells_are_pooled(self):
        # at 300 samples each 1% cell expects 3 < 5, so the tail is pooled
        probs = np.array([0.97, 0.01, 0.01, 0.01])
        counts = np.array([291, 3, 3, 3])
        gof = pooled_chi_square(counts, probs, min_expected=5.0)
        assert gof.n_cells < 4
        assert gof.passed(1e-3)

    def test_bonferroni(self):
        assert bonferroni_alpha(1e-3, 100) == pytest.approx(1e-5)

    def test_total_variation(self):
        assert total_variation([0.5, 0.5], [1.0, 0.0]) == pytest.approx(0.5)


class TestCatalog:
    def test_levels_have_unique_names_and_smoke_is_a_subset_intent(self):
        smoke = build_cases("smoke")
        full = build_cases("full")
        assert len(smoke) < len(full)
        for cases in (smoke, full):
            names = [c.name for c in cases]
            assert len(names) == len(set(names))

    def test_every_engine_coordinate_is_covered_in_smoke(self):
        labels = {c.engine_label for c in build_cases("smoke")}
        assert "sequential" in labels
        assert "batched/numpy" in labels
        assert "batched/numpy/w2" in labels
        assert any(l.startswith("batched/native") and l.endswith("fused") for l in labels)
        assert any(l.startswith("batched/native") and l.endswith("segmented") for l in labels)
        assert "token" in labels
        assert "absorbing" in labels

    def test_unknown_level_rejected(self):
        with pytest.raises(ConfigurationError):
            build_cases("bogus")
        with pytest.raises(ConfigurationError):
            case_by_name("rbb-sequential", level="bogus")

    def test_case_by_name_round_trips(self):
        case = case_by_name("rbb-batched-numpy", level="smoke")
        assert case.engine == "batched"
        with pytest.raises(ConfigurationError):
            case_by_name("no-such-case", level="smoke")


def _tiny_case(R: int = 300, horizons=(2,), name: str = "tiny-rbb") -> ConformanceCase:
    return ConformanceCase(
        name=name,
        spec_config={
            "n_bins": 3,
            "n_replicas": R,
            "rounds": max(horizons),
            "start": "all_in_one",
        },
        engine="batched",
        kernel="numpy",
        horizons=horizons,
        checks=DEFAULT_CHECKS,
    )


class TestConformanceSmoke:
    def test_single_case_passes_against_exact_chain(self):
        report = run_conformance("smoke", seed=7, cases=[_tiny_case()])
        assert report.passed
        assert report.n_checks == len(DEFAULT_CHECKS)

    def test_only_filter_keeps_full_run_thresholds(self):
        full = run_conformance("smoke", seed=3, only="token-fifo")
        unfiltered_alpha = run_conformance("smoke", seed=3, only="no-match").alpha_per_test
        assert full.alpha_per_test == unfiltered_alpha
        assert all(o.case == "token-fifo" for o in full.outcomes)
        assert full.passed

    def test_absorbing_case_gates_survival_curve(self):
        report = run_conformance("smoke", seed=5, only="absorbing-bin-load")
        assert report.passed
        assert [o.check for o in report.outcomes] == ["absorption_time"]


def _broken_advance(self):
    """The injected bug: destinations drawn from [0, n-1) — bin n-1 starves.

    Note ``(dest + 1) % n`` would still be uniform and hence *undetectable*;
    the modulus-shrink is the genuinely biased off-by-one.
    """
    loads = self._loads
    nonempty = loads > 0
    counts = np.count_nonzero(nonempty, axis=1)
    if counts.any():
        loads -= nonempty
        total = int(counts.sum())
        destinations = self._rng.integers(0, self._n_bins - 1, size=total)
        rows = np.repeat(np.arange(self._n_replicas), counts)
        flat = rows * self._n_bins + destinations
        loads += np.bincount(
            flat, minlength=self._n_replicas * self._n_bins
        ).reshape(self._n_replicas, self._n_bins)


class TestInjectedBug:
    def test_broken_kernel_is_caught_with_replayable_artifact(self, tmp_path, monkeypatch):
        case = _tiny_case(R=400, horizons=(2,), name="rbb-batched-numpy")
        artifacts = tmp_path / "artifacts"

        monkeypatch.setattr(BatchedRepeatedBallsIntoBins, "_advance", _broken_advance)
        broken = run_conformance(
            "smoke", seed=11, cases=[case], artifacts_dir=str(artifacts)
        )
        assert not broken.passed
        # the state gate must fire (the bias shows in the full distribution)
        state_fail = [o for o in broken.failures if o.check == "state"]
        assert state_fail and state_fail[0].artifact_path is not None

        # artifact is self-contained: seed + spec + engine coords + evidence
        artifact = load_artifact(state_fail[0].artifact_path)
        assert artifact.kind == "conformance"
        assert artifact.case == "rbb-batched-numpy"
        assert artifact.violation["p_value"] < broken.alpha_per_test

        # replay against the FIXED engine (monkeypatch undone): gate passes,
        # proving the artifact pins the exact seed/case and the bug is gone
        monkeypatch.undo()
        replay = replay_artifact(state_fail[0].artifact_path)
        assert replay.passed

    def test_broken_kernel_replay_still_fails_while_bug_present(self, tmp_path, monkeypatch):
        case = _tiny_case(R=400, horizons=(2,), name="rbb-batched-numpy")
        artifacts = tmp_path / "artifacts"
        monkeypatch.setattr(BatchedRepeatedBallsIntoBins, "_advance", _broken_advance)
        broken = run_conformance(
            "smoke", seed=13, cases=[case], artifacts_dir=str(artifacts)
        )
        path = broken.failures[0].artifact_path
        replay = replay_artifact(path)
        assert not replay.passed


class TestArtifactRoundTrip:
    def test_json_round_trip_preserves_seed_streams(self, tmp_path):
        artifact = CounterexampleArtifact(
            kind="conformance",
            case="rbb-batched-numpy",
            check="state@t=2",
            seed_entropy=12345,
            seed_spawn_key=[4],
            spec={"n_bins": 3},
            engine={"engine": "batched"},
            violation={"p_value": 1e-9, "alpha": 1e-5},
        )
        path = write_artifact(artifact, str(tmp_path))
        loaded = load_artifact(path)
        assert loaded.seed_entropy == 12345
        assert loaded.seed_spawn_key == [4]
        seq = loaded.seed_sequence()
        assert seq.entropy == 12345 and seq.spawn_key == (4,)
        # the JSON on disk is plain and versioned
        data = json.loads(open(path).read())
        assert data["format_version"] == 1

    def test_unknown_format_version_rejected(self, tmp_path):
        artifact = CounterexampleArtifact(
            kind="conformance",
            case="x",
            check="y",
            seed_entropy=1,
            spec={},
            engine={},
        )
        path = write_artifact(artifact, str(tmp_path))
        data = json.loads(open(path).read())
        data["format_version"] = 99
        open(path, "w").write(json.dumps(data))
        with pytest.raises(ConfigurationError):
            load_artifact(path)


class TestShardedSeeding:
    """Satellite: verifier streams match engine streams across shard counts.

    The sequential engine derives one stream per *trial* from
    ``trial_seed(root, i)``, so worker count is purely an execution knob:
    results are bit-identical for n_workers in {1, 2}.  The batched
    engine derives one stream per *shard*, so different worker counts
    give different (distributionally equal) draws — which is exactly why
    the catalog distribution-tests the sharded coordinate instead of
    bit-comparing it.
    """

    def test_sequential_engine_bit_identical_across_worker_counts(self):
        from repro.parallel.ensemble import EnsembleSpec, run_ensemble

        spec = EnsembleSpec(
            n_bins=3, n_replicas=16, rounds=4, start="all_in_one"
        )
        one = run_ensemble(spec, seed=123, engine="sequential", n_workers=1)
        two = run_ensemble(spec, seed=123, engine="sequential", n_workers=2)
        assert np.array_equal(one.final_loads, two.final_loads)
        assert np.array_equal(one.max_load_seen, two.max_load_seen)
        assert np.array_equal(one.min_empty_bins_seen, two.min_empty_bins_seen)
        assert np.array_equal(
            one.first_legitimate_round, two.first_legitimate_round
        )

    def test_trial_seed_matches_spawn_and_survives_reconstruction(self):
        from repro.parallel.seeding import trial_seed

        root = np.random.SeedSequence(entropy=987)
        # trial_seed(s, i) == s.spawn(n)[i]: the verifier's per-case and
        # per-horizon derivations address the same streams the engines use
        spawned = np.random.SeedSequence(entropy=987).spawn(5)
        for i in range(5):
            derived = trial_seed(root, i)
            assert derived.entropy == spawned[i].entropy
            assert derived.spawn_key == spawned[i].spawn_key
        # and reconstruction from (entropy, spawn_key) — what artifacts
        # store — yields the identical generator stream
        case_seed = trial_seed(root, 3)
        run_seed = trial_seed(case_seed, 1)
        rebuilt = np.random.SeedSequence(
            entropy=run_seed.entropy, spawn_key=tuple(run_seed.spawn_key)
        )
        a = np.random.default_rng(run_seed).integers(0, 1 << 30, size=8)
        b = np.random.default_rng(rebuilt).integers(0, 1 << 30, size=8)
        assert np.array_equal(a, b)

    def test_sharded_case_gates_pass(self):
        case = ConformanceCase(
            name="tiny-sharded",
            spec_config={
                "n_bins": 3,
                "n_replicas": 300,
                "rounds": 2,
                "start": "all_in_one",
            },
            engine="batched",
            kernel="numpy",
            n_workers=2,
            horizons=(2,),
        )
        report = run_conformance("smoke", seed=17, cases=[case])
        assert report.passed
