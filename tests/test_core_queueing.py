"""Unit tests for repro.core.queueing (queue disciplines)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.queueing import (
    FIFODiscipline,
    LIFODiscipline,
    QueueDiscipline,
    RandomDiscipline,
    SmallestIDDiscipline,
    available_disciplines,
    get_discipline,
)
from repro.errors import ConfigurationError


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestSelections:
    def test_fifo_selects_front(self, rng):
        assert FIFODiscipline().select([10, 20, 30], rng) == 0

    def test_lifo_selects_back(self, rng):
        assert LIFODiscipline().select([10, 20, 30], rng) == 2

    def test_lifo_single_element(self, rng):
        assert LIFODiscipline().select([42], rng) == 0

    def test_random_in_range(self, rng):
        discipline = RandomDiscipline()
        queue = [1, 2, 3, 4, 5]
        picks = {discipline.select(queue, rng) for _ in range(200)}
        assert picks <= set(range(5))
        assert len(picks) == 5  # all positions eventually chosen

    def test_random_single_element_fast_path(self, rng):
        assert RandomDiscipline().select([7], rng) == 0

    def test_smallest_id(self, rng):
        assert SmallestIDDiscipline().select([30, 10, 20], rng) == 1
        assert SmallestIDDiscipline().select([5], rng) == 0

    def test_disciplines_do_not_mutate_queue(self, rng):
        queue = [3, 1, 2]
        for discipline in (FIFODiscipline(), LIFODiscipline(), RandomDiscipline(), SmallestIDDiscipline()):
            discipline.select(queue, rng)
            assert queue == [3, 1, 2]


class TestRegistry:
    def test_available_names(self):
        names = available_disciplines()
        assert names == sorted(names)
        assert {"fifo", "lifo", "random", "smallest_id"} <= set(names)

    def test_get_by_name_case_insensitive(self):
        assert isinstance(get_discipline("FIFO"), FIFODiscipline)
        assert isinstance(get_discipline("lifo"), LIFODiscipline)

    def test_get_by_class(self):
        assert isinstance(get_discipline(RandomDiscipline), RandomDiscipline)

    def test_get_by_instance_passthrough(self):
        instance = SmallestIDDiscipline()
        assert get_discipline(instance) is instance

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            get_discipline("priority")

    def test_garbage_rejected(self):
        with pytest.raises(ConfigurationError):
            get_discipline(42)

    def test_all_registered_are_disciplines(self):
        for name in available_disciplines():
            assert isinstance(get_discipline(name), QueueDiscipline)
