"""The scenario tier of `repro verify`: no-op equality and invariant replay.

Exercises :mod:`repro.verify.scenario` directly (equality harness, event
ball accounting, observation-schedule conformance), the ``scenario_noop``
runner wired into the conformance loop, and the catalog/ground-truth
plumbing that lets adversary-only scenarios face the same exact chain as
the faulty engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.parallel.ensemble import EnsembleSpec
from repro.verify import (
    NOOP_SCENARIO,
    build_cases,
    case_by_name,
    check_observation_schedule,
    check_scenario_event_invariants,
    noop_differences,
    run_noop_equality,
)
from repro.verify.conformance import _ground_truth, run_case
from repro.verify.scenario import fresh_seed


class TestNoopEquality:
    def test_noop_scenario_constant_is_eventless(self):
        from repro.scenarios import resolve_scenario

        assert resolve_scenario(NOOP_SCENARIO).is_noop

    def test_equality_holds_on_batched_numpy(self):
        diffs = run_noop_equality(
            {
                "n_bins": 3,
                "n_replicas": 16,
                "observe_every": 2,
                "start": "all_in_one",
                "metrics": ("max_load", "trace"),
            },
            4,
            seed=9,
        )
        assert diffs == []

    def test_equality_holds_on_sequential(self):
        diffs = run_noop_equality(
            {"n_bins": 3, "n_replicas": 8, "start": "all_in_one"},
            4,
            seed=9,
            engine="sequential",
        )
        assert diffs == []

    def test_noop_differences_reports_mismatches(self):
        from repro.parallel.ensemble import run_ensemble

        spec = EnsembleSpec(
            n_bins=3, n_replicas=4, rounds=3, start="all_in_one", metrics="max_load"
        )
        a = run_ensemble(spec, seed=fresh_seed(1), kernel="numpy")
        b = run_ensemble(spec, seed=fresh_seed(1), kernel="numpy")
        assert noop_differences(a, b) == []
        b.final_loads[0, 0] += 1
        b.metrics["max_load"].rounds = np.array([99])
        diffs = noop_differences(a, b)
        assert any("final_loads" in d for d in diffs)
        assert any("max_load" in d for d in diffs)

    def test_fresh_seed_replays_identically(self):
        root = np.random.SeedSequence(1234).spawn(3)[1]
        a = fresh_seed(root)
        b = fresh_seed(root)
        assert np.array_equal(
            np.random.default_rng(a).integers(0, 100, 8),
            np.random.default_rng(b).integers(0, 100, 8),
        )


class TestEventInvariants:
    def test_burst_drain_walk_passes(self):
        violations = check_scenario_event_invariants(
            {
                "n_bins": 6,
                "n_replicas": 4,
                "rounds": 12,
                "start": "balanced",
                "scenario": "burst_recovery:at=3,count=9,drain_at=9",
            },
            seed=0,
        )
        assert violations == []

    def test_conserving_events_pass(self):
        violations = check_scenario_event_invariants(
            {
                "n_bins": 6,
                "n_replicas": 3,
                "rounds": 10,
                "start": "balanced",
                "scenario": "staged_adversary:switch=5,every=2,until=8",
            },
            seed=1,
        )
        assert violations == []

    def test_requires_a_scenario(self):
        with pytest.raises(ConfigurationError):
            check_scenario_event_invariants(
                {"n_bins": 4, "n_replicas": 2, "rounds": 4}, seed=0
            )


class TestObservationSchedule:
    def test_off_grid_events_keep_the_grid(self):
        violations = check_observation_schedule(
            {
                "n_bins": 8,
                "n_replicas": 3,
                "rounds": 40,
                "observe_every": 8,
                "start": "balanced",
                "metrics": "max_load,empty_bins",
                "scenario": '{"events": [{"kind": "burst", "round": 13, "count": 5}]}',
            },
            seed=0,
        )
        assert violations == []

    def test_stride_change_event_reflected(self):
        violations = check_observation_schedule(
            {
                "n_bins": 6,
                "n_replicas": 2,
                "rounds": 16,
                "observe_every": 4,
                "start": "balanced",
                "metrics": "max_load",
                "scenario": '{"events": [{"kind": "observe_every", "round": 9, "value": 2}]}',
            },
            seed=0,
        )
        assert violations == []

    def test_metricless_spec_is_flagged(self):
        violations = check_observation_schedule(
            {
                "n_bins": 4,
                "n_replicas": 2,
                "rounds": 8,
                "scenario": "burst_recovery:at=2,count=2",
            },
            seed=0,
        )
        assert violations == ["spec produced no metric payloads to check"]


class TestConformanceWiring:
    def test_catalog_contains_scenario_cases_at_both_levels(self):
        for level in ("smoke", "full"):
            names = [case.name for case in build_cases(level)]
            assert any(name.startswith("scenario-noop-") for name in names)
            assert any(name.startswith("scenario-adversary-") for name in names)

    def test_scenario_noop_case_passes(self):
        case = case_by_name("scenario-noop-batched-numpy", level="smoke")
        outcomes = run_case(case, np.random.SeedSequence(5), alpha=1e-6)
        assert outcomes and all(o.passed for o in outcomes)
        assert {o.check for o in outcomes} == {"noop_bit_equality"}

    def test_scenario_adversary_ground_truth_matches_faulty_schedule(self):
        scenario_case = case_by_name("scenario-adversary-batched-numpy", "smoke")
        spec = EnsembleSpec(**dict(scenario_case.spec_config))
        truth = _ground_truth(spec, 4)
        assert truth.fault_rounds == (2, 4)
        assert truth.F is not None
        faulty_case = case_by_name("faulty-concentrate-batched-numpy", "smoke")
        faulty_spec = EnsembleSpec(**dict(faulty_case.spec_config))
        faulty_truth = _ground_truth(faulty_spec, 4)
        assert truth.fault_rounds == faulty_truth.fault_rounds
        assert np.array_equal(truth.F, faulty_truth.F)
        assert np.array_equal(truth.P, faulty_truth.P)

    def test_ground_truth_rejects_non_adversary_scenarios(self):
        spec = EnsembleSpec(
            n_bins=3,
            n_replicas=4,
            rounds=4,
            start="balanced",
            scenario='{"events": [{"kind": "burst", "round": 2, "count": 1}]}',
        )
        with pytest.raises(ConfigurationError, match="adversary"):
            _ground_truth(spec, 4)

    def test_report_rows_label_scenario_cases(self):
        from repro.verify import ground_truth_rows

        rows = {row["case"]: row for row in ground_truth_rows("smoke")}
        assert rows["scenario-noop-batched-numpy"]["process"] == "rbb+noop-scenario"
        assert rows["scenario-adversary-batched-numpy"]["process"] == "rbb+scenario"
        assert (
            rows["scenario-noop-batched-numpy"]["engine"] == "batched/numpy"
        )
