"""Tests for batched adversarial fault injection.

The load-bearing invariant is the Section 4.1 constraint applied per
replica: however an adversary rewrites the ``(R, n)`` ensemble state, the
total number of balls of **every replica** must be conserved — by the
vectorized ``apply_batch`` reassignments themselves, and across whole
:class:`BatchedFaultyProcess` runs with repeated fault injection.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversary import (
    Adversary,
    BatchedFaultyProcess,
    FaultSchedule,
    FaultyProcess,
    available_adversaries,
    get_adversary,
)
from repro.baselines.d_choices import BatchedDChoices
from repro.core.batched import BatchedRepeatedBallsIntoBins, make_ensemble_initial
from repro.core.config import LoadConfiguration
from repro.errors import ConfigurationError

ALL_ADVERSARIES = available_adversaries()


@pytest.fixture
def load_matrix() -> np.ndarray:
    rng = np.random.default_rng(123)
    # heterogeneous per-replica totals, including an all-empty replica
    matrix = rng.integers(0, 9, size=(8, 24)).astype(np.int64)
    matrix[3] = 0
    return matrix


# ----------------------------------------------------------------------
# apply_batch: per-replica ball conservation for every adversary
# ----------------------------------------------------------------------
class TestApplyBatch:
    @pytest.mark.parametrize("name", ALL_ADVERSARIES)
    def test_conserves_balls_per_replica(self, name, load_matrix):
        adversary = get_adversary(name)
        out = adversary.apply_batch(load_matrix, np.random.default_rng(0))
        assert out.shape == load_matrix.shape
        assert np.array_equal(out.sum(axis=1), load_matrix.sum(axis=1))
        assert (out >= 0).all()

    @pytest.mark.parametrize("name", ALL_ADVERSARIES)
    def test_rejects_non_matrix_input(self, name):
        adversary = get_adversary(name)
        with pytest.raises(ConfigurationError):
            adversary.apply_batch(np.ones(8, dtype=np.int64), np.random.default_rng(0))

    def test_concentrate_piles_everything_in_one_bin(self, load_matrix):
        out = get_adversary("concentrate").apply_batch(
            load_matrix, np.random.default_rng(1)
        )
        assert np.array_equal(out.max(axis=1), load_matrix.sum(axis=1))
        assert ((out > 0).sum(axis=1) <= 1).all()

    def test_shuffle_preserves_load_multiset_per_replica(self, load_matrix):
        out = get_adversary("shuffle").apply_batch(
            load_matrix, np.random.default_rng(2)
        )
        assert np.array_equal(np.sort(out, axis=1), np.sort(load_matrix, axis=1))

    def test_pyramid_rows_match_single_vector_form(self, load_matrix):
        out = get_adversary("pyramid").apply_batch(
            load_matrix, np.random.default_rng(3)
        )
        for replica in range(load_matrix.shape[0]):
            expected = LoadConfiguration.pyramid(
                load_matrix.shape[1], int(load_matrix[replica].sum())
            ).as_array()
            assert np.array_equal(out[replica], expected)

    def test_target_heaviest_moves_the_clipped_quota(self, load_matrix):
        adversary = get_adversary("target_heaviest")
        out = adversary.apply_batch(load_matrix, np.random.default_rng(4))
        for replica in range(load_matrix.shape[0]):
            row = load_matrix[replica]
            total = int(row.sum())
            target = int(row.argmax())
            quota = int(adversary.fraction * total)
            gain = min(quota, total - int(row[target]))
            assert int(out[replica, target]) == int(row[target]) + gain

    def test_default_batch_falls_back_to_rowwise_reassign(self, load_matrix):
        class ReverseAdversary(Adversary):
            name = "reverse"

            def reassign(self, loads, rng):
                return np.asarray(loads)[::-1]

        out = ReverseAdversary().apply_batch(load_matrix, np.random.default_rng(5))
        assert np.array_equal(out, load_matrix[:, ::-1])

    def test_batch_validation_catches_nonconserving_adversary(self, load_matrix):
        class BallEater(Adversary):
            name = "eater"

            def reassign(self, loads, rng):
                return np.zeros_like(np.asarray(loads))

        with pytest.raises(ConfigurationError, match="replica"):
            BallEater().apply_batch(load_matrix, np.random.default_rng(6))


# ----------------------------------------------------------------------
# BatchedFaultyProcess: conservation across faults, recovery bookkeeping
# ----------------------------------------------------------------------
class TestBatchedFaultyProcess:
    @pytest.mark.parametrize("name", ALL_ADVERSARIES)
    def test_ball_conservation_across_faults(self, name):
        initial = make_ensemble_initial("random_uniform", 32, 12, n_balls=48, seed=0)
        process = BatchedFaultyProcess(
            32,
            12,
            adversary=name,
            schedule=FaultSchedule(period=10),
            initial=initial,
            seed=1,
            kernel="numpy",
        )
        result = process.run(95)
        assert result.fault_rounds == [10, 20, 30, 40, 50, 60, 70, 80, 90]
        assert np.array_equal(result.final_loads.sum(axis=1), initial.sum(axis=1))
        # the invariant holds mid-run too (process state, not just the result)
        assert np.array_equal(process.process.loads.sum(axis=1), initial.sum(axis=1))

    @pytest.mark.parametrize("kernel", ["numpy", "auto"])
    def test_recovery_times_shape_and_range(self, kernel):
        process = BatchedFaultyProcess(
            64,
            10,
            adversary="concentrate",
            schedule=FaultSchedule(period=384),
            seed=2,
            kernel=kernel,
        )
        result = process.run(1152)
        assert result.fault_rounds == [384, 768, 1152]
        assert result.recovery_times.shape == (3, 10)
        assert result.n_faults == 3
        assert result.fault_count == 30
        recovered = result.flat_recoveries()
        assert (recovered >= 0).all()
        # a recovery is bounded by the gap to the next fault / end of run
        assert (recovered < 384).all()
        # concentrate spikes the full ball count, so the window max sees it
        assert (result.max_load_seen >= 64).all()

    def test_matches_sequential_faulty_process_distributionally(self):
        n, trials, rounds = 64, 40, 1536
        schedule = FaultSchedule(period=384)
        batched = BatchedFaultyProcess(
            n, trials, adversary="concentrate", schedule=schedule, seed=3,
            kernel="numpy",
        ).run(rounds)
        rng = np.random.default_rng(3)
        sequential = []
        for _ in range(trials):
            process = FaultyProcess(
                n, adversary="concentrate", schedule=schedule, seed=rng
            )
            sequential.extend(
                r for r in process.run(rounds).recovery_times if r >= 0
            )
        batched_mean = batched.flat_recoveries().mean()
        sequential_mean = float(np.mean(sequential))
        assert abs(batched_mean - sequential_mean) < 0.3 * sequential_mean + 2.0

    def test_no_faults_matches_plain_window_metrics(self):
        process = BatchedFaultyProcess(
            32, 6, schedule=FaultSchedule.never(), seed=4, kernel="numpy"
        )
        result = process.run(50)
        assert result.fault_rounds == []
        assert result.recovery_times.shape == (0, 6)
        assert result.n_faults == 0
        assert not result.all_recovered  # vacuously false with zero faults
        ensemble = result.to_ensemble_result()
        assert ensemble.max_load_seen.shape == (6,)
        assert (ensemble.rounds == 50).all()

    def test_explicit_fault_rounds(self):
        schedule = FaultSchedule(explicit_rounds=frozenset({5, 17}))
        process = BatchedFaultyProcess(
            16, 4, adversary="shuffle", schedule=schedule, seed=5, kernel="numpy"
        )
        result = process.run(30)
        assert result.fault_rounds == [5, 17]

    def test_wraps_custom_batched_process(self):
        inner = BatchedDChoices(16, 5, d=2, seed=6)
        process = BatchedFaultyProcess(
            16,
            5,
            adversary="concentrate",
            schedule=FaultSchedule(period=8),
            process=inner,
            seed=7,
        )
        result = process.run(40)
        assert result.fault_rounds == [8, 16, 24, 32, 40]
        assert np.array_equal(result.final_loads.sum(axis=1), np.full(5, 16))

    def test_process_shape_mismatch_rejected(self):
        inner = BatchedRepeatedBallsIntoBins(16, 5, seed=8, kernel="numpy")
        with pytest.raises(ConfigurationError):
            BatchedFaultyProcess(16, 6, process=inner)
        with pytest.raises(ConfigurationError):
            BatchedFaultyProcess(32, 5, process=inner)

    def test_with_gamma_period(self):
        process = BatchedFaultyProcess.with_gamma(32, 4, gamma=2.0, seed=9)
        assert process.schedule.period == 64
        with pytest.raises(ConfigurationError):
            BatchedFaultyProcess.with_gamma(32, 4, gamma=0.0)

    def test_negative_rounds_rejected(self):
        with pytest.raises(ConfigurationError):
            BatchedFaultyProcess(8, 2, seed=10).run(-1)


# ----------------------------------------------------------------------
# inject_loads: the conservation gate faults pass through
# ----------------------------------------------------------------------
class TestInjectLoads:
    def test_accepts_conserving_matrix(self):
        batched = BatchedRepeatedBallsIntoBins(8, 3, seed=0, kernel="numpy")
        replacement = make_ensemble_initial("all_in_one", 8, 3)
        batched.inject_loads(replacement)
        assert np.array_equal(batched.loads, replacement)

    def test_rejects_nonconserving_matrix(self):
        batched = BatchedRepeatedBallsIntoBins(8, 3, seed=0, kernel="numpy")
        bad = make_ensemble_initial("all_in_one", 8, 3)
        bad[1, 0] += 1
        with pytest.raises(ConfigurationError, match="conserve"):
            batched.inject_loads(bad)

    def test_rejects_wrong_shape_and_negative(self):
        batched = BatchedRepeatedBallsIntoBins(8, 3, seed=0, kernel="numpy")
        with pytest.raises(ConfigurationError):
            batched.inject_loads(np.ones((2, 8), dtype=np.int64))
        bad = np.ones((3, 8), dtype=np.int64)
        bad[0, 0] = -1
        bad[0, 1] = 3
        with pytest.raises(ConfigurationError):
            batched.inject_loads(bad)

    def test_rejects_fractional_loads_even_when_sums_match(self):
        batched = BatchedRepeatedBallsIntoBins(8, 3, seed=0, kernel="numpy")
        fractional = np.ones((3, 8), dtype=float)
        fractional[0, 0] = 0.5
        fractional[0, 1] = 1.5  # row still sums to 8
        with pytest.raises(ConfigurationError, match="integer"):
            batched.inject_loads(fractional)
        # integral floats are fine
        batched.inject_loads(np.ones((3, 8), dtype=float))
        assert (batched.loads == 1).all()
