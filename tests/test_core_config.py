"""Unit tests for repro.core.config (load configurations and legitimacy)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.config import DEFAULT_BETA, LoadConfiguration, legitimacy_threshold
from repro.errors import ConfigurationError


class TestLegitimacyThreshold:
    def test_scales_with_log_n(self):
        assert legitimacy_threshold(1024, beta=2.0) == pytest.approx(2.0 * math.log(1024))

    def test_clamped_for_tiny_n(self):
        # log(1) = 0 and log(2) < 1: the threshold never drops below beta
        assert legitimacy_threshold(1, beta=3.0) == pytest.approx(3.0)
        assert legitimacy_threshold(2, beta=3.0) == pytest.approx(3.0)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            legitimacy_threshold(0)
        with pytest.raises(ConfigurationError):
            legitimacy_threshold(10, beta=0.0)
        with pytest.raises(ConfigurationError):
            legitimacy_threshold(10, beta=-1.0)


class TestConstructionAndValidation:
    def test_from_list(self):
        config = LoadConfiguration.from_loads([0, 2, 1])
        assert config.n_bins == 3
        assert config.n_balls == 3
        assert config.max_load == 2
        assert config.min_load == 0

    def test_float_integer_values_accepted(self):
        config = LoadConfiguration(np.array([1.0, 2.0, 0.0]))
        assert config.n_balls == 3
        assert config.loads.dtype == np.int64

    def test_non_integer_rejected(self):
        with pytest.raises(ConfigurationError):
            LoadConfiguration(np.array([0.5, 1.5]))

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            LoadConfiguration(np.array([1, -1]))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            LoadConfiguration(np.array([], dtype=np.int64))

    def test_two_dimensional_rejected(self):
        with pytest.raises(ConfigurationError):
            LoadConfiguration(np.zeros((2, 2), dtype=np.int64))

    def test_loads_are_immutable(self):
        config = LoadConfiguration.from_loads([1, 1])
        with pytest.raises(ValueError):
            config.loads[0] = 5

    def test_input_array_is_copied(self):
        source = np.array([1, 2, 3], dtype=np.int64)
        config = LoadConfiguration(source)
        source[0] = 99
        assert config[0] == 1

    def test_as_array_returns_writable_copy(self):
        config = LoadConfiguration.from_loads([1, 2])
        arr = config.as_array()
        arr[0] = 7
        assert config[0] == 1


class TestProperties:
    def test_counts(self):
        config = LoadConfiguration.from_loads([0, 0, 3, 1])
        assert config.num_empty_bins == 2
        assert config.num_nonempty_bins == 2
        assert config.empty_fraction == pytest.approx(0.5)

    def test_histogram(self):
        config = LoadConfiguration.from_loads([0, 0, 3, 1])
        hist = config.load_histogram()
        assert hist.tolist() == [2, 1, 0, 1]

    def test_legitimacy_predicate(self):
        n = 1024
        ok = LoadConfiguration.balanced(n)
        assert ok.is_legitimate()
        bad = LoadConfiguration.all_in_one(n)
        assert not bad.is_legitimate()

    def test_dunder_len_getitem_iter(self):
        config = LoadConfiguration.from_loads([2, 0, 1])
        assert len(config) == 3
        assert config[0] == 2
        assert list(config) == [2, 0, 1]

    def test_equality_and_hash(self):
        a = LoadConfiguration.from_loads([1, 2])
        b = LoadConfiguration.from_loads([1, 2])
        c = LoadConfiguration.from_loads([2, 1])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "not a configuration"


class TestCanonicalConstructors:
    def test_balanced_default_one_per_bin(self):
        config = LoadConfiguration.balanced(5)
        assert config.loads.tolist() == [1, 1, 1, 1, 1]

    def test_balanced_uneven(self):
        config = LoadConfiguration.balanced(4, 6)
        assert config.n_balls == 6
        assert config.max_load - config.min_load <= 1

    def test_all_in_one(self):
        config = LoadConfiguration.all_in_one(8, bin_index=3)
        assert config.n_balls == 8
        assert config[3] == 8
        assert config.num_empty_bins == 7

    def test_all_in_one_bad_bin(self):
        with pytest.raises(ConfigurationError):
            LoadConfiguration.all_in_one(4, bin_index=9)

    def test_random_uniform_conserves_balls(self):
        config = LoadConfiguration.random_uniform(100, seed=0)
        assert config.n_balls == 100
        # reproducible
        again = LoadConfiguration.random_uniform(100, seed=0)
        assert config == again

    def test_pyramid_shape(self):
        config = LoadConfiguration.pyramid(8)
        assert config.n_balls == 8
        assert config[0] >= config[1] >= config[2]

    def test_pyramid_with_many_balls(self):
        config = LoadConfiguration.pyramid(4, 100)
        assert config.n_balls == 100

    def test_legitimate_extreme_is_legitimate(self):
        n = 256
        config = LoadConfiguration.legitimate_extreme(n)
        assert config.n_balls == n
        assert config.is_legitimate(DEFAULT_BETA)
        # it should be near the boundary: max load within one of the threshold cap
        cap = int(legitimacy_threshold(n, DEFAULT_BETA))
        assert config.max_load >= cap - 1

    def test_constructors_reject_bad_counts(self):
        with pytest.raises(ConfigurationError):
            LoadConfiguration.balanced(0)
        with pytest.raises(ConfigurationError):
            LoadConfiguration.balanced(4, -1)
        with pytest.raises(ConfigurationError):
            LoadConfiguration.random_uniform(0)
