"""Unit tests for repro.core.coupling (the Lemma 3 coupling)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import LoadConfiguration
from repro.core.coupling import CoupledRun
from repro.errors import ConfigurationError


def make_sparse_config(n: int, seed: int = 0) -> LoadConfiguration:
    """A configuration of n balls with at least n/2 empty bins.

    The first half of the bins hold two balls each (plus the remainder in
    bin 0 for odd n), so the Lemma 3 precondition of >= n/4 empty bins is
    always satisfied regardless of the seed.
    """
    loads = np.zeros(n, dtype=np.int64)
    loads[: n // 2] = 2
    loads[0] += n - int(loads.sum())
    return LoadConfiguration(loads)


class TestConstruction:
    def test_requires_enough_empty_bins_by_default(self):
        full = LoadConfiguration.balanced(16)  # zero empty bins
        with pytest.raises(ConfigurationError):
            CoupledRun(16, initial=full, seed=0)

    def test_precondition_can_be_disabled(self):
        full = LoadConfiguration.balanced(16)
        run = CoupledRun(16, initial=full, seed=0, enforce_precondition=False)
        assert run.n_bins == 16

    def test_wrong_size_rejected(self):
        with pytest.raises(ConfigurationError):
            CoupledRun(8, initial=LoadConfiguration.balanced(4), seed=0)

    def test_default_initial_is_random_one_shot(self):
        run = CoupledRun(64, seed=0)
        assert int(run.original_loads.sum()) == 64
        assert np.array_equal(run.original_loads, run.tetris_loads)

    def test_bad_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            CoupledRun(0, seed=0)
        with pytest.raises(ConfigurationError):
            CoupledRun(8, initial=make_sparse_config(8), arrivals_per_round=-1, seed=0)


class TestCouplingDynamics:
    def test_both_processes_conserve_their_invariants(self):
        n = 64
        run = CoupledRun(n, initial=make_sparse_config(n), seed=1)
        for _ in range(50):
            run.step()
            assert int(run.original_loads.sum()) == n  # original conserves balls
            assert int(run.original_loads.min()) >= 0
            assert int(run.tetris_loads.min()) >= 0

    def test_domination_holds_from_shared_sparse_start(self):
        n = 128
        run = CoupledRun(n, initial=make_sparse_config(n, seed=2), seed=2)
        result = run.run(2 * n)
        assert result.domination_held
        assert result.max_load_dominated
        assert result.first_domination_failure is None

    def test_case_ii_rare_in_normal_operation(self):
        n = 128
        run = CoupledRun(n, initial=make_sparse_config(n, seed=3), seed=3)
        result = run.run(2 * n)
        assert result.case_ii_rounds == []

    def test_step_returns_coupled_flag(self):
        n = 32
        run = CoupledRun(n, initial=make_sparse_config(n, seed=4), seed=4)
        assert run.step() is True

    def test_case_ii_triggers_when_too_many_nonempty_bins(self):
        # with arrivals_per_round=0 every round has more non-empty original
        # bins than arrivals, forcing case (ii)
        n = 16
        run = CoupledRun(
            n,
            initial=make_sparse_config(n, seed=5),
            seed=5,
            arrivals_per_round=0,
            enforce_precondition=False,
        )
        coupled = run.step()
        assert coupled is False
        result = run.run(3)
        assert len(result.case_ii_rounds) == 3

    def test_negative_rounds_rejected(self):
        run = CoupledRun(16, initial=make_sparse_config(16), seed=0)
        with pytest.raises(ConfigurationError):
            run.run(-1)

    def test_result_records_min_empty_bins(self):
        n = 64
        run = CoupledRun(n, initial=make_sparse_config(n, seed=6), seed=6)
        result = run.run(n)
        assert 0 <= result.min_empty_bins <= n

    def test_domination_statistics_across_seeds(self):
        # Lemma 3: domination should hold in essentially every trial.  The
        # failure probability decays exponentially in n, so at n = 128 a
        # failure among 15 trials would be a strong signal of a bug.
        n = 128
        held = 0
        trials = 15
        for seed in range(trials):
            run = CoupledRun(n, initial=make_sparse_config(n, seed=seed), seed=seed)
            if run.run(n).domination_held:
                held += 1
        assert held == trials
