"""Unit tests for repro.analysis.negative_association."""

from __future__ import annotations

import pytest

from repro.analysis.negative_association import (
    empirical_arrival_correlation,
    empirical_zero_zero_probability,
    is_negatively_associated_pair,
    negative_association_gap,
)
from repro.errors import ConfigurationError
from repro.markov.small_n import arrival_joint_distribution_n2


class TestGapComputation:
    def test_independent_pair_has_zero_gap(self):
        # X, Y independent Bernoulli(1/2)
        joint = {(0, 0): 0.25, (0, 1): 0.25, (1, 0): 0.25, (1, 1): 0.25}
        assert negative_association_gap(joint) == pytest.approx(0.0)
        assert is_negatively_associated_pair(joint)

    def test_negatively_associated_pair(self):
        # Y = 1 - X: zero-zero never happens
        joint = {(0, 1): 0.5, (1, 0): 0.5}
        assert negative_association_gap(joint) == pytest.approx(-0.25)
        assert is_negatively_associated_pair(joint)

    def test_positively_associated_pair(self):
        # X = Y Bernoulli(1/2)
        joint = {(0, 0): 0.5, (1, 1): 0.5}
        assert negative_association_gap(joint) == pytest.approx(0.25)
        assert not is_negatively_associated_pair(joint)

    def test_paper_counterexample_gap(self):
        joint = arrival_joint_distribution_n2(rounds=2)
        gap = negative_association_gap(joint)
        assert gap == pytest.approx(1 / 8 - 3 / 32)
        assert not is_negatively_associated_pair(joint)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            negative_association_gap({})
        with pytest.raises(ConfigurationError):
            negative_association_gap({(0, 0): 0.4})  # does not sum to 1


class TestEmpiricalEstimates:
    def test_n2_estimates_match_exact(self):
        estimate = empirical_zero_zero_probability(2, trials=5000, seed=0)
        assert abs(estimate["p_first_zero"] - 0.25) < 0.03
        assert abs(estimate["p_second_zero"] - 0.375) < 0.03
        assert abs(estimate["p_joint_zero"] - 0.125) < 0.03
        assert estimate["gap"] > 0

    def test_positive_gap_persists_for_larger_n(self):
        estimate = empirical_zero_zero_probability(8, trials=4000, seed=1)
        assert estimate["gap"] > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            empirical_zero_zero_probability(1, trials=10)
        with pytest.raises(ConfigurationError):
            empirical_zero_zero_probability(4, trials=0)
        with pytest.raises(ConfigurationError):
            empirical_zero_zero_probability(4, trials=10, observed_bin=9)
        with pytest.raises(ConfigurationError):
            empirical_zero_zero_probability(4, trials=10, rounds=(2, 2))

    def test_lag_one_arrival_correlation_positive(self):
        """Arrivals at a bin in consecutive rounds are positively correlated —
        the large-n analogue of Appendix B."""
        corr = empirical_arrival_correlation(8, window=60, trials=60, seed=2)
        assert corr > 0.0

    def test_correlation_validation(self):
        with pytest.raises(ConfigurationError):
            empirical_arrival_correlation(8, window=2, trials=10)
        with pytest.raises(ConfigurationError):
            empirical_arrival_correlation(8, window=10, trials=0)
