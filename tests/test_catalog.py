"""The generated experiment catalog must stay in sync with the registry.

``docs/EXPERIMENTS.md`` is rendered by
``scripts/generate_experiment_catalog.py``; CI runs the same ``--check``
invocation, but keeping it in the tier-1 suite means a stale catalog fails
fast locally too.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
SCRIPT = ROOT / "scripts" / "generate_experiment_catalog.py"


def test_catalog_is_up_to_date():
    proc = subprocess.run(
        [sys.executable, str(SCRIPT), "--check"],
        capture_output=True,
        text=True,
        cwd=ROOT,
    )
    assert proc.returncode == 0, (
        "docs/EXPERIMENTS.md is stale — regenerate with "
        "`python scripts/generate_experiment_catalog.py`\n"
        f"{proc.stdout}{proc.stderr}"
    )


def test_check_flags_a_stale_catalog(tmp_path):
    stale = tmp_path / "EXPERIMENTS.md"
    stale.write_text("# outdated\n")
    proc = subprocess.run(
        [sys.executable, str(SCRIPT), "--check", "--out", str(stale)],
        capture_output=True,
        text=True,
        cwd=ROOT,
    )
    assert proc.returncode == 1
    assert "STALE" in proc.stdout
