"""Tests for the project linter (repro.lint): rules R1-R5, the ABI
cross-checker, pragma handling, the engine, and the CLI exit codes."""

import ast
import ctypes
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.native import KERNEL_ABI, SymbolABI, kernel_abi
from repro.lint import (
    Finding,
    RULE_IDS,
    RULES,
    check_abi,
    check_broad_except,
    check_observer_contracts,
    check_spec_contracts,
    check_unseeded_rng,
    check_wall_clock,
    collect_pragmas,
    compare_symbol,
    default_root,
    parse_exported_functions,
    rule_by_id,
    run_lint,
)
from repro.lint.cli import main as lint_main
from repro.lint.engine import normalize_selection

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"
TREE = FIXTURES / "tree"
BAD_KERNEL = FIXTURES / "abi_bad_kernel.c"
REPO_ROOT = Path(__file__).resolve().parent.parent


def _keys(findings):
    return {(f.path, f.line, f.rule) for f in findings}


def _run_rule(checker, source, rel_path):
    tree = ast.parse(source)
    pragmas, pragma_findings = collect_pragmas(source, rel_path)
    assert pragma_findings == []
    return checker(tree, rel_path, pragmas)


# ---------------------------------------------------------------------
# catalog
# ---------------------------------------------------------------------
class TestCatalog:
    def test_rule_ids_cover_catalog(self):
        assert RULE_IDS == tuple(info.rule for info in RULES)
        assert set(RULE_IDS) == {"R1", "R2", "R3", "R4", "R5", "ABI"}

    def test_lookup_by_id_and_slug(self):
        assert rule_by_id("R5").slug == "broad-except"
        assert rule_by_id("broad-except").rule == "R5"
        assert rule_by_id("abi-drift").rule == "ABI"

    def test_unknown_rule_raises(self):
        with pytest.raises(KeyError):
            rule_by_id("R99")

    def test_finding_render_format(self):
        f = Finding("a/b.py", 7, "R5", "broad-except", "msg")
        assert f.render() == "a/b.py:7: R5 [broad-except] msg"

    def test_findings_order_stably(self):
        a = Finding("a.py", 2, "R1", "unseeded-rng", "x")
        b = Finding("a.py", 10, "R1", "unseeded-rng", "x")
        c = Finding("b.py", 1, "R1", "unseeded-rng", "x")
        assert sorted([c, b, a]) == [a, b, c]

    def test_normalize_selection(self):
        assert normalize_selection(None) == RULE_IDS
        assert normalize_selection("R1,R5") == ("R1", "R5")
        assert normalize_selection(["abi-drift"]) == ("ABI",)
        with pytest.raises(KeyError):
            normalize_selection("R1,R99")


# ---------------------------------------------------------------------
# AST rules on the fixture tree
# ---------------------------------------------------------------------
class TestFixtureTree:
    def test_exact_findings(self):
        report = run_lint(root=TREE, select=["R1", "R2", "R5"])
        assert _keys(report.findings) == {
            ("bad_pragma.py", 7, "R0"),
            ("bad_pragma.py", 7, "R5"),
            ("bad_pragma.py", 14, "R0"),
            ("bad_pragma.py", 14, "R5"),
            ("bad_pragma.py", 21, "R0"),
            ("bad_pragma.py", 21, "R5"),
            ("broad.py", 7, "R5"),
            ("broad.py", 14, "R5"),
            ("core/unseeded.py", 9, "R1"),
            ("core/unseeded.py", 10, "R1"),
            ("core/unseeded.py", 11, "R1"),
            ("core/wall_clock.py", 9, "R2"),
            ("core/wall_clock.py", 10, "R2"),
            ("core/wall_clock.py", 11, "R2"),
        }
        assert not report.clean
        assert report.n_files == 6

    def test_r1_exemption_for_seeding_module(self):
        report = run_lint(root=TREE, select=["R1"])
        assert not any(f.path == "parallel/seeding.py" for f in report.findings)

    def test_r2_scope_excludes_top_level_modules(self):
        report = run_lint(root=TREE, select=["R2"])
        assert all(f.path.startswith("core/") for f in report.findings if f.rule == "R2")

    def test_valid_pragmas_suppress(self):
        report = run_lint(root=TREE, select=["R5"])
        assert not any(f.path == "suppressed.py" for f in report.findings)

    def test_malformed_pragmas_are_findings(self):
        report = run_lint(root=TREE, select=["R5"])
        r0 = [f for f in report.findings if f.rule == "R0"]
        assert _keys(r0) == {
            ("bad_pragma.py", 7, "R0"),
            ("bad_pragma.py", 14, "R0"),
            ("bad_pragma.py", 21, "R0"),
        }


# ---------------------------------------------------------------------
# alias-awareness of the AST rules (inline sources)
# ---------------------------------------------------------------------
class TestAliasResolution:
    def test_r1_sees_numpy_submodule_alias(self):
        findings = _run_rule(
            check_unseeded_rng,
            "import numpy.random as npr\nrng = npr.default_rng()\n",
            "core/x.py",
        )
        assert _keys(findings) == {("core/x.py", 2, "R1")}

    def test_r1_sees_renamed_from_import(self):
        findings = _run_rule(
            check_unseeded_rng,
            "from random import random as r\nvalue = r()\n",
            "core/x.py",
        )
        # the import line and the call line both fire
        assert _keys(findings) == {("core/x.py", 1, "R1"), ("core/x.py", 2, "R1")}

    def test_r1_allows_seeded_default_rng(self):
        findings = _run_rule(
            check_unseeded_rng,
            "import numpy as np\nrng = np.random.default_rng(42)\n",
            "core/x.py",
        )
        assert findings == []

    def test_r2_sees_renamed_time_import(self):
        findings = _run_rule(
            check_wall_clock,
            "from time import time as now\nstamp = now()\n",
            "core/x.py",
        )
        assert _keys(findings) == {("core/x.py", 2, "R2")}

    def test_r2_allows_perf_counter(self):
        findings = _run_rule(
            check_wall_clock,
            "import time\nelapsed = time.perf_counter()\n",
            "core/x.py",
        )
        assert findings == []

    def test_r2_flags_secrets_import(self):
        findings = _run_rule(
            check_wall_clock, "import secrets\n", "metrics/x.py"
        )
        assert _keys(findings) == {("metrics/x.py", 1, "R2")}

    def test_r5_flags_broad_in_tuple(self):
        findings = _run_rule(
            check_broad_except,
            "try:\n    pass\nexcept (ValueError, Exception):\n    pass\n",
            "x.py",
        )
        assert _keys(findings) == {("x.py", 3, "R5")}


# ---------------------------------------------------------------------
# contract rules R3/R4 against broken fakes
# ---------------------------------------------------------------------
class TestContracts:
    def test_r3_flags_non_scalar_field(self):
        import dataclasses

        @dataclasses.dataclass
        class BadSpec:
            n_bins: int = 8
            n_replicas: int = 2
            rounds: int = 4
            metrics: object = None
            observe_every: int = 0
            scenario: object = None
            payload: object = dataclasses.field(default_factory=dict)

        findings = check_spec_contracts(spec_cls=BadSpec, include_catalogs=False)
        assert findings, "a dict-valued field must fail R3"
        assert all(f.rule == "R3" for f in findings)

    def test_r3_clean_on_real_spec(self):
        assert check_spec_contracts() == []

    def test_r4_flags_missing_observe(self):
        class NoObserve:
            def bind(self, n_replicas, n_bins):
                pass

            def payload(self):
                return None

        findings = check_observer_contracts(factories={"fake": NoObserve})
        assert len(findings) == 1
        assert findings[0].rule == "R4"
        assert "observe" in findings[0].message

    def test_r4_flags_wrong_payload_type(self):
        class WrongPayload:
            def bind(self, n_replicas, n_bins):
                pass

            def observe(self, t, loads):
                pass

            def payload(self):
                return {"not": "a MetricPayload"}

        findings = check_observer_contracts(factories={"fake": WrongPayload})
        assert len(findings) == 1
        assert "MetricPayload" in findings[0].message

    def test_r4_clean_on_real_registry(self):
        assert check_observer_contracts() == []


# ---------------------------------------------------------------------
# ABI cross-checker
# ---------------------------------------------------------------------
def _bad_symbols(**entries):
    return {
        name: SymbolABI(name=name, argtypes=argtypes, restype=restype, source=BAD_KERNEL)
        for name, (argtypes, restype) in entries.items()
    }


class TestABI:
    def test_parses_all_real_exports(self):
        for abi in kernel_abi().values():
            exported = {
                f.name: f for f in parse_exported_functions(abi.source)
            }
            assert abi.name in exported, f"{abi.name} not parsed from {abi.source}"
            assert len(exported[abi.name].params) == len(abi.argtypes)

    def test_real_abi_is_clean(self):
        assert check_abi() == []

    def test_good_fixture_symbol_is_clean(self):
        symbols = _bad_symbols(
            good_fn=(
                (
                    ctypes.POINTER(ctypes.c_int32),
                    ctypes.c_int64,
                    ctypes.c_int64,
                ),
                None,
            ),
        )
        findings = check_abi(symbols)
        # only the orphaned C exports fire; good_fn itself is silent
        assert all("good_fn" not in f.message for f in findings)

    def test_c_int_vs_c_int32_do_not_false_positive(self):
        good = parse_exported_functions(BAD_KERNEL)
        by_name = {f.name: f for f in good}
        abi = SymbolABI(
            name="width_fn",
            argtypes=(ctypes.POINTER(ctypes.c_int32), ctypes.c_longlong),
            restype=None,
            source=BAD_KERNEL,
        )
        # int64_t == c_longlong on this platform: no width finding
        assert compare_symbol(by_name["width_fn"], abi) == []

    def test_arity_drift(self):
        symbols = _bad_symbols(
            arity_fn=((ctypes.POINTER(ctypes.c_int32), ctypes.c_int64), None),
        )
        findings = [f for f in check_abi(symbols) if "arity_fn" in f.message]
        assert len(findings) == 1
        assert "3 parameter(s)" in findings[0].message
        assert "2" in findings[0].message

    def test_width_drift(self):
        symbols = _bad_symbols(
            width_fn=((ctypes.POINTER(ctypes.c_int64), ctypes.c_int64), None),
        )
        findings = [f for f in check_abi(symbols) if "width_fn" in f.message]
        assert len(findings) == 1
        assert "parameter 0" in findings[0].message
        assert "int32" in findings[0].message and "int64" in findings[0].message

    def test_argument_order_drift(self):
        # C order is (int64_t n, int32_t *loads); mirror declares the swap
        symbols = _bad_symbols(
            order_fn=((ctypes.POINTER(ctypes.c_int32), ctypes.c_int64), None),
        )
        findings = [f for f in check_abi(symbols) if "order_fn" in f.message]
        assert len(findings) == 2
        assert any("parameter 0" in f.message for f in findings)
        assert any("parameter 1" in f.message for f in findings)

    def test_restype_drift(self):
        symbols = _bad_symbols(ret_fn=((), ctypes.c_int64))
        findings = [f for f in check_abi(symbols) if "ret_fn" in f.message]
        assert len(findings) == 1
        assert "returns" in findings[0].message

    def test_orphaned_c_export_is_flagged(self):
        symbols = _bad_symbols(ret_fn=((), ctypes.c_int32))
        findings = check_abi(symbols)
        orphans = [f for f in findings if "no ctypes declaration" in f.message]
        assert {f.message.split("'")[1] for f in orphans} >= {
            "good_fn",
            "orphan_fn",
        }
        # the unmarked static helper stays invisible
        assert all("helper" not in f.message for f in findings)

    def test_missing_c_definition_is_flagged(self):
        symbols = _bad_symbols(ghost_fn=((), None))
        findings = [f for f in check_abi(symbols) if "ghost_fn" in f.message]
        assert len(findings) == 1
        assert "no REPRO_ABI-marked definition" in findings[0].message

    def test_missing_source_file_is_flagged(self):
        symbols = {
            "gone": SymbolABI(
                name="gone",
                argtypes=(),
                restype=None,
                source=FIXTURES / "does_not_exist.c",
            )
        }
        findings = check_abi(symbols)
        assert len(findings) == 1
        assert "missing" in findings[0].message

    def test_real_kernel_argtypes_are_all_recognized(self):
        from repro.lint.abi import _desc_of_ctypes

        for abi in KERNEL_ABI.values():
            for argtype in abi.argtypes:
                assert _desc_of_ctypes(argtype) is not None, (
                    f"{abi.name}: unrecognized argtype {argtype!r}"
                )


# ---------------------------------------------------------------------
# engine + self-hosting
# ---------------------------------------------------------------------
class TestEngine:
    def test_repo_is_lint_clean(self):
        report = run_lint()
        assert report.clean, report.render()
        assert report.n_files > 50

    def test_default_root_is_the_package(self):
        assert default_root().name == "repro"
        assert (default_root() / "lint" / "engine.py").exists()

    def test_report_is_sorted_and_deduplicated(self):
        report = run_lint(root=TREE, select=["R1", "R2", "R5"])
        assert list(report.findings) == sorted(set(report.findings))

    def test_report_to_dict_round_trips_json(self):
        report = run_lint(root=TREE, select=["R5"])
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["clean"] is False
        assert len(payload["findings"]) == len(report.findings)

    def test_syntax_error_is_a_finding(self, tmp_path):
        (tmp_path / "broken.py").write_text("def broken(:\n")
        report = run_lint(root=tmp_path, select=["R5"])
        assert _keys(report.findings) == {("broken.py", 1, "R0")}

    def test_pycache_is_skipped(self, tmp_path):
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "ghost.py").write_text("import random\nrandom.random()\n")
        report = run_lint(root=tmp_path, select=["R1"])
        assert report.clean
        assert report.n_files == 0


# ---------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------
class TestCLI:
    def test_clean_repo_exits_zero(self, capsys):
        assert lint_main([]) == 0
        assert "clean" in capsys.readouterr().out

    def test_fixture_tree_exits_one(self, capsys):
        code = lint_main(["--root", str(TREE), "--select", "R1,R2,R5"])
        assert code == 1
        out = capsys.readouterr().out
        assert "core/unseeded.py:9" in out

    def test_json_format(self, capsys):
        code = lint_main(["--root", str(TREE), "--select", "R5", "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["rules"] == ["R5"]
        assert payload["clean"] is False

    def test_list_rules_exits_zero(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for info in RULES:
            assert info.rule in out
            assert info.slug in out

    def test_unknown_rule_exits_two(self, capsys):
        assert lint_main(["--select", "R99"]) == 2
        assert "unknown lint rule" in capsys.readouterr().err

    def test_empty_select_exits_two(self):
        assert lint_main(["--select", " , "]) == 2

    def test_missing_root_exits_two(self):
        assert lint_main(["--root", str(TREE / "nope")]) == 2

    def test_bad_flag_exits_two(self):
        assert lint_main(["--format", "xml"]) == 2

    def test_module_entry_point(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", "--list-rules"],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "abi-drift" in proc.stdout

    def test_umbrella_cli_subcommand(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "lint",
                "--root",
                str(TREE),
                "--select",
                "R5",
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert proc.returncode == 1, proc.stderr
        assert "broad.py:7" in proc.stdout


class TestStaticAnalysisDoc:
    """The generated docs/STATIC_ANALYSIS.md stays wired to the catalogs."""

    def test_renderer_covers_every_rule(self):
        from repro.lint import render_static_analysis_doc

        doc = render_static_analysis_doc()
        for info in RULES:
            assert f"| {info.rule} |" in doc, info.rule
            assert info.slug in doc
        for symbol in kernel_abi():
            assert symbol in doc

    def test_renderer_covers_every_sanitize_mode(self):
        from repro.core.native import SANITIZE_MODES
        from repro.lint import render_static_analysis_doc

        doc = render_static_analysis_doc()
        for mode in SANITIZE_MODES:
            assert f"| {mode} |" in doc

    def test_checked_in_doc_is_current(self):
        from repro.lint import render_static_analysis_doc

        committed = REPO_ROOT / "docs" / "STATIC_ANALYSIS.md"
        assert committed.exists(), "docs/STATIC_ANALYSIS.md missing"
        assert committed.read_text() == render_static_analysis_doc(), (
            "docs/STATIC_ANALYSIS.md is stale; rerun "
            "scripts/generate_static_analysis_doc.py"
        )

    def test_generator_check_mode(self):
        proc = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "scripts" / "generate_static_analysis_doc.py"),
                "--check",
            ],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
