"""Integration tests: cross-module scenarios that mirror the paper's storyline.

Each test stitches several subsystems together the way the experiments do:
process + metrics + analysis, coupling + Tetris + bounds, traversal +
baselines, adversary + recovery, harness + io + cli-level table rendering.
"""

from __future__ import annotations

import math

import numpy as np

from repro import (
    ConcentrateAdversary,
    ConstrainedParallelWalks,
    FaultSchedule,
    FaultyProcess,
    LoadConfiguration,
    MultiTokenTraversal,
    RepeatedBallsIntoBins,
    SingleTokenWalk,
    TetrisProcess,
    TokenRepeatedBallsIntoBins,
    complete_graph,
)
from repro.analysis.bounds import log_bound, sqrt_window_bound
from repro.analysis.fitting import fit_log_growth, fit_power_law
from repro.baselines.one_shot import one_shot_max_load
from repro.core.metrics import EmptyBinsTracker, LegitimacyTracker, MaxLoadTracker
from repro.experiments import format_table, run_experiment, save_result_json, load_result_json
from repro.parallel.aggregate import aggregate_records
from repro.parallel.runner import run_trials
from repro.traversal.progress import progress_statistics


class TestTheoremOneStory:
    """Theorem 1 end-to-end: convergence then stability, with observers."""

    def test_convergence_then_stability(self):
        n = 256
        process = RepeatedBallsIntoBins(n, initial=LoadConfiguration.all_in_one(n), seed=0)
        legitimacy = LegitimacyTracker()
        empties = EmptyBinsTracker()
        max_load = MaxLoadTracker(record_series=False)
        process.run(8 * n, observers=[legitimacy, empties, max_load])

        # convergence within O(n): well inside the 8n window
        assert legitimacy.converged
        assert legitimacy.first_legitimate_round <= 4 * n
        # once legitimate it stays legitimate for the rest of the window
        assert legitimacy.stable_after_convergence
        # empty bins: at least n/4 once the initial pile has drained
        assert empties.window_min >= 0
        # the window max load is dominated by the initial pile, but the final
        # configuration is logarithmic
        assert process.max_load <= 2 * log_bound(n)

    def test_window_max_scales_logarithmically_in_n(self):
        sizes = [64, 128, 256, 512]
        maxima = []
        for n in sizes:
            process = RepeatedBallsIntoBins(n, seed=n)
            maxima.append(process.run(2 * n).max_load_seen)
        fit = fit_log_growth(sizes, maxima)
        # a log fit describes the data well and the slope is a small constant
        assert fit.r_squared > 0.5
        assert 0.0 < fit.params["coefficient"] < 6.0

    def test_convergence_time_scales_linearly_in_n(self):
        sizes = [64, 128, 256, 512]
        times = []
        for n in sizes:
            trial_times = []
            for seed in range(3):
                process = RepeatedBallsIntoBins(
                    n, initial=LoadConfiguration.all_in_one(n), seed=seed
                )
                hit = process.run_until_legitimate(max_rounds=30 * n)
                assert hit is not None
                trial_times.append(hit)
            times.append(float(np.mean(trial_times)))
        fit = fit_power_law(sizes, times)
        assert 0.7 <= fit.params["exponent"] <= 1.3  # Theorem 1: linear


class TestLemmaPipeline:
    """Lemmas 1-6 chained the way the proof uses them."""

    def test_empty_bins_feed_the_coupling_precondition(self):
        n = 256
        process = RepeatedBallsIntoBins(n, seed=1)
        process.step()
        # Lemma 1-2: >= n/4 empty bins after round 1 ...
        assert process.num_empty_bins >= n / 4
        # ... which is exactly the precondition Lemma 3's coupling needs:
        from repro.core.coupling import CoupledRun

        coupled = CoupledRun(n, initial=process.configuration(), seed=2)
        outcome = coupled.run(2 * n)
        assert outcome.domination_held
        # Lemma 6: the dominating Tetris max load is itself logarithmic
        assert outcome.tetris_max_load <= 5 * log_bound(n)

    def test_tetris_emptying_supports_self_stabilization(self):
        n = 256
        tetris = TetrisProcess(n, initial=LoadConfiguration.all_in_one(n), seed=3)
        outcome = tetris.run(5 * n)
        assert outcome.all_bins_emptied_by is not None
        assert outcome.all_bins_emptied_by <= 5 * n


class TestTraversalStory:
    """Section 4: cover time of the parallel protocol vs the single token."""

    def test_parallel_cover_time_within_log_factor_of_single(self):
        n = 48
        multi = MultiTokenTraversal(n, seed=4).run()
        assert multi.completed
        singles = [SingleTokenWalk(n, seed=s).cover_time() for s in range(10)]
        single_mean = float(np.mean([s for s in singles if s is not None]))
        slowdown = multi.cover_time / single_mean
        # Corollary 1: slowdown is O(log n); allow a generous constant
        assert slowdown <= 4 * math.log(n)
        # and the parallel protocol cannot beat a single token by much
        assert multi.cover_time >= 0.5 * single_mean

    def test_progress_guarantee_under_fifo(self):
        n = 64
        process = TokenRepeatedBallsIntoBins(n, discipline="fifo", seed=5)
        rounds = 10 * n
        process.run(rounds)
        stats = progress_statistics(process)
        # Omega(t / log n) progress per ball
        assert stats.min_moves >= 0.2 * rounds / math.log(n)

    def test_clique_walks_equal_rbb_equal_traversal_loads(self):
        """The three views of the same process (anonymous loads, graph walks on
        the clique, token process) produce statistically consistent loads."""
        n = 64
        rounds = 4 * n
        rbb = RepeatedBallsIntoBins(n, seed=6).run(rounds).max_load_seen
        walks = ConstrainedParallelWalks(complete_graph(n), seed=7).run(rounds).max_load_seen
        tokens = TokenRepeatedBallsIntoBins(n, seed=8).run(rounds).max_load_seen
        values = [rbb, walks, tokens]
        assert max(values) - min(values) <= 4
        assert max(values) <= 3 * log_bound(n)


class TestAdversarialStory:
    """Section 4.1: periodic adversarial faults are absorbed."""

    def test_recovery_much_faster_than_fault_period(self):
        n = 128
        gamma = 6.0
        faulty = FaultyProcess.with_gamma(n, gamma=gamma, adversary=ConcentrateAdversary(), seed=9)
        # leave 4n rounds of slack after the last fault so it can recover
        result = faulty.run(int(2 * gamma * n) + 4 * n)
        assert len(result.fault_rounds) >= 2
        assert result.all_recovered
        assert result.max_recovery_time < gamma * n / 2

    def test_shuffle_faults_are_harmless(self):
        n = 128
        faulty = FaultyProcess(
            n, adversary="shuffle", schedule=FaultSchedule.every(n), seed=10
        )
        result = faulty.run(5 * n)
        assert result.max_load_seen <= 3 * log_bound(n)


class TestComparativeStory:
    """The comparisons the paper makes against prior bounds and baselines."""

    def test_repeated_process_beats_sqrt_t_envelope_for_long_windows(self):
        n = 128
        rounds = 64 * n
        window_max = RepeatedBallsIntoBins(n, seed=11).run(rounds).max_load_seen
        assert window_max < sqrt_window_bound(rounds)
        assert window_max <= 3 * log_bound(n)

    def test_repeated_window_max_exceeds_one_shot_max(self):
        n = 1024
        one_shot = float(np.mean([one_shot_max_load(n, seed=s) for s in range(5)]))
        repeated = RepeatedBallsIntoBins(n, seed=12).run(n).max_load_seen
        assert repeated >= one_shot - 1


class TestHarnessIntegration:
    """Experiments + parallel runner + persistence + rendering round trip."""

    def test_experiment_to_json_and_table(self, tmp_path):
        result = run_experiment(
            "E1", params={"sizes": [16, 32], "trials": 2, "rounds_factor": 1.0}, seed=0
        )
        path = save_result_json(result, tmp_path / "e1.json")
        loaded = load_result_json(path)
        assert loaded.experiment_id == "E1"
        table = format_table(loaded.rows, style="markdown")
        assert table.count("|") > 4

    def test_parallel_runner_inside_experiment(self):
        """E1 produces identical tables sequentially and with 2 workers."""
        params = {"sizes": [16, 32], "trials": 3, "rounds_factor": 1.0}
        sequential = run_experiment("E1", params={**params, "n_workers": 0}, seed=7)
        parallel = run_experiment("E1", params={**params, "n_workers": 2}, seed=7)
        assert sequential.rows == parallel.rows

    def test_trial_records_aggregate_cleanly(self):
        def trial(i, seed, n=64):
            process = RepeatedBallsIntoBins(n, seed=seed)
            result = process.run(n)
            return {
                "window_max": result.max_load_seen,
                "min_empty": result.min_empty_bins_seen,
            }

        records = run_trials(trial, 6, seed=13)
        agg = aggregate_records(records)
        assert agg.n_trials == 6
        assert agg.mean("window_max") <= 3 * log_bound(64)
        assert agg.min("min_empty") >= 64 / 4
