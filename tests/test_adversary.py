"""Unit tests for repro.adversary (adversaries and fault injection)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversary.adversaries import (
    Adversary,
    ConcentrateAdversary,
    PyramidAdversary,
    ShuffleAdversary,
    TargetHeaviestAdversary,
    available_adversaries,
    get_adversary,
)
from repro.adversary.faulty_process import FaultSchedule, FaultyProcess
from repro.errors import ConfigurationError


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestAdversaries:
    def test_concentrate(self, rng):
        loads = np.array([2, 3, 1, 0], dtype=np.int64)
        out = ConcentrateAdversary()(loads, rng)
        assert int(out.sum()) == 6
        assert int(out.max()) == 6
        assert int(np.count_nonzero(out)) == 1

    def test_pyramid(self, rng):
        loads = np.array([1, 1, 1, 1, 1, 1, 1, 1], dtype=np.int64)
        out = PyramidAdversary()(loads, rng)
        assert int(out.sum()) == 8
        assert out[0] >= out[1] >= out[2]

    def test_shuffle_preserves_multiset(self, rng):
        loads = np.array([5, 0, 2, 1], dtype=np.int64)
        out = ShuffleAdversary()(loads, rng)
        assert sorted(out.tolist()) == sorted(loads.tolist())

    def test_target_heaviest(self, rng):
        loads = np.array([4, 3, 2, 1], dtype=np.int64)
        out = TargetHeaviestAdversary(fraction=0.5)(loads, rng)
        assert int(out.sum()) == 10
        assert int(out.max()) >= 4 + 5 - 1  # at least ~half the balls moved onto the heaviest

    def test_target_heaviest_empty_system(self, rng):
        loads = np.zeros(4, dtype=np.int64)
        out = TargetHeaviestAdversary()(loads, rng)
        assert int(out.sum()) == 0

    def test_target_heaviest_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            TargetHeaviestAdversary(fraction=0.0)
        with pytest.raises(ConfigurationError):
            TargetHeaviestAdversary(fraction=1.5)

    def test_call_wrapper_checks_conservation(self, rng):
        class BrokenAdversary(Adversary):
            name = "broken"

            def reassign(self, loads, rng):
                return np.zeros_like(np.asarray(loads))

        with pytest.raises(ConfigurationError):
            BrokenAdversary()(np.array([1, 2], dtype=np.int64), rng)

    def test_registry(self):
        assert {"concentrate", "pyramid", "shuffle", "target_heaviest"} <= set(
            available_adversaries()
        )
        assert isinstance(get_adversary("concentrate"), ConcentrateAdversary)
        assert isinstance(get_adversary(ShuffleAdversary), ShuffleAdversary)
        instance = PyramidAdversary()
        assert get_adversary(instance) is instance
        with pytest.raises(ConfigurationError):
            get_adversary("nonexistent")
        with pytest.raises(ConfigurationError):
            get_adversary(3.14)


class TestFaultSchedule:
    def test_periodic(self):
        schedule = FaultSchedule.every(10)
        assert not schedule.is_faulty(1)
        assert schedule.is_faulty(10)
        assert schedule.is_faulty(20)
        assert not schedule.is_faulty(25)

    def test_offset(self):
        schedule = FaultSchedule.every(10, offset=3)
        assert schedule.is_faulty(3)
        assert schedule.is_faulty(13)
        assert not schedule.is_faulty(10)
        assert not schedule.is_faulty(1)

    def test_explicit_rounds(self):
        schedule = FaultSchedule(period=None, explicit_rounds={5, 9})
        assert schedule.is_faulty(5)
        assert schedule.is_faulty(9)
        assert not schedule.is_faulty(6)

    def test_never(self):
        schedule = FaultSchedule.never()
        assert not any(schedule.is_faulty(t) for t in range(1, 100))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule(period=0)
        with pytest.raises(ConfigurationError):
            FaultSchedule(period=5, offset=0)


class TestFaultyProcess:
    def test_no_faults_matches_plain_process_statistics(self):
        n = 64
        faulty = FaultyProcess(n, schedule=FaultSchedule.never(), seed=0)
        result = faulty.run(4 * n)
        assert result.fault_rounds == []
        assert result.recovery_times == []
        assert result.max_load_seen <= 6 * np.log(n)

    def test_faults_fire_on_schedule(self):
        n = 32
        faulty = FaultyProcess(
            n, adversary="concentrate", schedule=FaultSchedule.every(50), seed=1
        )
        result = faulty.run(160)
        assert result.fault_rounds == [50, 100, 150]
        # a concentrate fault makes the max load jump to n right away
        assert result.max_load_seen == n

    def test_recovery_after_each_fault(self):
        n = 64
        faulty = FaultyProcess.with_gamma(n, gamma=6.0, adversary="concentrate", seed=2)
        result = faulty.run(2 * 6 * n + 4 * n)
        assert len(result.fault_rounds) >= 2
        assert result.all_recovered
        # Theorem 1: recovery is linear in n, hence well below the 6n period
        assert result.max_recovery_time is not None
        assert result.max_recovery_time <= 5 * n

    def test_unrecovered_fault_reported(self):
        n = 256
        # fault at round 10, run only 12 rounds: cannot recover from a full pile-up
        faulty = FaultyProcess(
            n,
            adversary="concentrate",
            schedule=FaultSchedule(period=None, explicit_rounds={10}),
            seed=3,
        )
        result = faulty.run(12)
        assert result.fault_rounds == [10]
        assert result.recovery_times == [-1]
        assert not result.all_recovered
        assert result.max_recovery_time is None

    def test_with_gamma_validation(self):
        with pytest.raises(ConfigurationError):
            FaultyProcess.with_gamma(16, gamma=0.0)

    def test_negative_rounds_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultyProcess(8, seed=0).run(-1)

    def test_shuffle_adversary_does_not_disrupt_loads(self):
        n = 64
        faulty = FaultyProcess(
            n, adversary="shuffle", schedule=FaultSchedule.every(20), seed=4
        )
        result = faulty.run(200)
        # shuffling bin labels never creates a heavy bin
        assert result.max_load_seen <= 6 * np.log(n)
        assert result.all_recovered

    def test_observer_sees_wrapper_round_numbers(self):
        rounds_seen = []
        FaultyProcess(16, schedule=FaultSchedule.never(), seed=5).run(
            10, observers=lambda t, loads: rounds_seen.append(t)
        )
        assert rounds_seen == list(range(1, 11))
