"""Unit tests for repro.markov.small_n (exact small-system analysis, Appendix B)."""

from __future__ import annotations


import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.markov.small_n import (
    appendix_b_counterexample,
    arrival_joint_distribution_n2,
    enumerate_configurations,
    exact_rbb_chain,
    exact_rbb_transition_matrix,
)


class TestEnumeration:
    def test_counts_match_stars_and_bars(self):
        # C(m + n - 1, n - 1)
        assert len(enumerate_configurations(2, 2)) == 3
        assert len(enumerate_configurations(3, 3)) == 10
        assert len(enumerate_configurations(4, 3)) == 15

    def test_every_configuration_sums_to_m(self):
        for config in enumerate_configurations(3, 3):
            assert sum(config) == 3
            assert len(config) == 3

    def test_configurations_unique(self):
        configs = enumerate_configurations(4, 4)
        assert len(configs) == len(set(configs))

    def test_zero_balls(self):
        assert enumerate_configurations(0, 3) == [(0, 0, 0)]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            enumerate_configurations(1, 0)
        with pytest.raises(ConfigurationError):
            enumerate_configurations(-1, 2)


class TestExactTransitionMatrix:
    def test_rows_are_stochastic(self):
        P, states = exact_rbb_transition_matrix(3)
        assert P.shape == (len(states), len(states))
        assert np.allclose(P.sum(axis=1), 1.0)
        assert np.all(P >= 0)

    def test_n2_transition_probabilities_by_hand(self):
        P, states = exact_rbb_transition_matrix(2)
        index = {s: i for i, s in enumerate(states)}
        # from (1,1): both balls re-thrown independently; outcomes
        # (2,0) w.p. 1/4, (0,2) w.p. 1/4, (1,1) w.p. 1/2
        row = P[index[(1, 1)]]
        assert row[index[(2, 0)]] == pytest.approx(0.25)
        assert row[index[(0, 2)]] == pytest.approx(0.25)
        assert row[index[(1, 1)]] == pytest.approx(0.5)
        # from (2,0): only one ball moves; (1,1) w.p. 1/2, (2,0) w.p. 1/2
        row = P[index[(2, 0)]]
        assert row[index[(1, 1)]] == pytest.approx(0.5)
        assert row[index[(2, 0)]] == pytest.approx(0.5)
        assert row[index[(0, 2)]] == pytest.approx(0.0)

    def test_symmetry_of_stationary_distribution(self):
        chain = exact_rbb_chain(2)
        pi = chain.stationary_distribution()
        labels = chain.state_labels
        index = {s: i for i, s in enumerate(labels)}
        # bins are exchangeable: pi(2,0) == pi(0,2)
        assert pi[index[(2, 0)]] == pytest.approx(pi[index[(0, 2)]], abs=1e-8)
        assert pi.sum() == pytest.approx(1.0)

    def test_n3_stationary_is_exchangeable(self):
        chain = exact_rbb_chain(3)
        pi = chain.stationary_distribution()
        labels = chain.state_labels
        index = {s: i for i, s in enumerate(labels)}
        assert pi[index[(3, 0, 0)]] == pytest.approx(pi[index[(0, 0, 3)]], abs=1e-6)
        assert pi[index[(2, 1, 0)]] == pytest.approx(pi[index[(0, 1, 2)]], abs=1e-6)

    def test_ball_count_preserved_by_support(self):
        P, states = exact_rbb_transition_matrix(2, n_balls=3)
        for i, config in enumerate(states):
            for j, target in enumerate(states):
                if P[i, j] > 0:
                    assert sum(target) == sum(config)


class TestAppendixB:
    def test_exact_counterexample_values(self):
        values = appendix_b_counterexample()
        assert values["p_x1_0"] == pytest.approx(1 / 4)
        assert values["p_x2_0"] == pytest.approx(3 / 8)
        assert values["p_joint_00"] == pytest.approx(1 / 8)
        assert values["product"] == pytest.approx(3 / 32)
        assert values["violates_negative_association"] == 1.0

    def test_joint_distribution_is_a_pmf(self):
        joint = arrival_joint_distribution_n2(rounds=2)
        assert sum(joint.values()) == pytest.approx(1.0)
        assert all(p >= 0 for p in joint.values())
        # arrivals per round at one bin of a 2-bin system are at most 2
        assert all(max(history) <= 2 for history in joint)

    def test_single_round_marginal(self):
        joint = arrival_joint_distribution_n2(rounds=1)
        # X1 ~ Binomial(2, 1/2): P(0)=1/4, P(1)=1/2, P(2)=1/4
        assert joint[(0,)] == pytest.approx(1 / 4)
        assert joint[(1,)] == pytest.approx(1 / 2)
        assert joint[(2,)] == pytest.approx(1 / 4)

    def test_observed_bin_symmetry(self):
        joint0 = arrival_joint_distribution_n2(observed_bin=0, rounds=2)
        joint1 = arrival_joint_distribution_n2(observed_bin=1, rounds=2)
        for key, value in joint0.items():
            assert joint1[key] == pytest.approx(value)

    def test_three_round_distribution_consistent(self):
        joint3 = arrival_joint_distribution_n2(rounds=3)
        assert sum(joint3.values()) == pytest.approx(1.0)
        # marginalizing the third round recovers the two-round joint
        joint2 = arrival_joint_distribution_n2(rounds=2)
        marginal = {}
        for (x1, x2, _x3), p in joint3.items():
            marginal[(x1, x2)] = marginal.get((x1, x2), 0.0) + p
        for key, value in joint2.items():
            assert marginal[key] == pytest.approx(value)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            arrival_joint_distribution_n2(observed_bin=2)
        with pytest.raises(ConfigurationError):
            arrival_joint_distribution_n2(rounds=0)


class TestAgreementWithSimulation:
    def test_simulated_two_round_frequencies_match_exact(self):
        """Monte-Carlo check that the exact n=2 joint matches the simulator."""
        from repro.analysis.negative_association import empirical_zero_zero_probability

        estimate = empirical_zero_zero_probability(2, trials=6000, seed=0)
        exact = appendix_b_counterexample()
        assert abs(estimate["p_first_zero"] - exact["p_x1_0"]) < 0.03
        assert abs(estimate["p_second_zero"] - exact["p_x2_0"]) < 0.03
        assert abs(estimate["p_joint_zero"] - exact["p_joint_00"]) < 0.03

    def test_exact_chain_agrees_with_long_run_frequencies(self):
        """The n=3 stationary distribution matches empirical visit frequencies."""
        from repro.core.process import RepeatedBallsIntoBins

        chain = exact_rbb_chain(3)
        pi = chain.stationary_distribution()
        labels = chain.state_labels
        index = {s: i for i, s in enumerate(labels)}

        process = RepeatedBallsIntoBins(3, seed=11)
        counts = np.zeros(len(labels))
        total = 30_000
        for _ in range(total):
            loads = tuple(int(x) for x in process.step())
            counts[index[loads]] += 1
        empirical = counts / total
        # total-variation distance between empirical occupancy and pi is small
        tv = 0.5 * float(np.abs(empirical - pi).sum())
        assert tv < 0.05


class TestProcessChains:
    """Exact chains for Greedy[d], the token process, and graph walks."""

    def test_all_exact_matrices_are_row_stochastic(self):
        from repro.graphs.generators import resolve_topology
        from repro.markov.small_n import (
            exact_greedy_d_transition_matrix,
            exact_token_transition_matrix,
            exact_walk_transition_matrix,
        )

        matrices = [
            exact_rbb_transition_matrix(3),
            exact_greedy_d_transition_matrix(3, d=2),
            exact_token_transition_matrix(3),
            exact_walk_transition_matrix(resolve_topology("cycle:3")),
            exact_walk_transition_matrix(
                resolve_topology("star:3"), constrained=False
            ),
        ]
        for P, states in matrices:
            assert P.shape == (len(states), len(states))
            assert np.all(P >= 0)
            assert np.allclose(P.sum(axis=1), 1.0)

    def test_greedy_d1_reduces_to_rbb(self):
        """With d=1 the candidate set is a single uniform bin: exactly RBB."""
        from repro.markov.small_n import exact_greedy_d_transition_matrix

        P_rbb, states_rbb = exact_rbb_transition_matrix(3)
        P_g1, states_g1 = exact_greedy_d_transition_matrix(3, d=1)
        assert states_rbb == states_g1
        assert np.allclose(P_rbb, P_g1)

    def test_greedy_d2_concentrates_less_than_rbb(self):
        """Two choices make the fully-concentrated state strictly rarer."""
        from repro.markov.small_n import exact_greedy_d_chain

        chain_rbb = exact_rbb_chain(3)
        chain_g2 = exact_greedy_d_chain(3, d=2)
        assert chain_rbb.state_labels == chain_g2.state_labels
        index = {s: i for i, s in enumerate(chain_rbb.state_labels)}
        pi_rbb = chain_rbb.stationary_distribution()
        pi_g2 = chain_g2.stationary_distribution()
        concentrated = pi_rbb[index[(3, 0, 0)]], pi_g2[index[(3, 0, 0)]]
        assert concentrated[1] < concentrated[0]

    def test_token_chain_equals_rbb_chain(self):
        """Queue discipline does not affect load dynamics (load-level invariance)."""
        from repro.markov.small_n import exact_token_transition_matrix

        P_rbb, states_rbb = exact_rbb_transition_matrix(3)
        P_tok, states_tok = exact_token_transition_matrix(3)
        assert states_rbb == states_tok
        assert np.allclose(P_rbb, P_tok)

    def test_complete_graph_walk_equals_rbb(self):
        """Constrained walks on complete:n with self-loops are exactly RBB."""
        from repro.graphs.generators import resolve_topology
        from repro.markov.small_n import exact_walk_transition_matrix

        P_rbb, states_rbb = exact_rbb_transition_matrix(3)
        P_walk, states_walk = exact_walk_transition_matrix(
            resolve_topology("complete:3")
        )
        assert states_rbb == states_walk
        assert np.allclose(P_rbb, P_walk)

    def test_cycle_walk_differs_from_rbb(self):
        from repro.graphs.generators import resolve_topology
        from repro.markov.small_n import exact_walk_transition_matrix

        P_rbb, _ = exact_rbb_transition_matrix(3)
        P_walk, _ = exact_walk_transition_matrix(resolve_topology("cycle:3"))
        assert not np.allclose(P_rbb, P_walk)


class TestSpectralCrossModule:
    """The exact chains feed repro.markov.spectral without adaptation."""

    def test_rbb_chain_has_positive_spectral_gap(self):
        from repro.markov.spectral import spectral_gap

        chain = exact_rbb_chain(3)
        gap = spectral_gap(chain.transition_matrix)
        assert 0.0 < gap <= 1.0

    def test_mixing_time_bound_consistent_with_exact_powers(self):
        """After the spectral mixing-time bound, chain powers are within eps of pi."""
        from repro.markov.spectral import (
            empirical_mixing_time,
            total_variation_distance,
        )

        chain = exact_rbb_chain(3)
        P = chain.transition_matrix
        pi = chain.stationary_distribution()
        eps = 0.01
        t_mix = 0
        for start in range(len(pi)):
            mu = np.zeros(len(pi))
            mu[start] = 1.0
            t = empirical_mixing_time(P, mu, epsilon=eps)
            assert t is not None
            t_mix = max(t_mix, t)
        assert t_mix >= 1
        worst = 0.0
        for start in range(len(pi)):
            mu = np.zeros(len(pi))
            mu[start] = 1.0
            dist = mu @ np.linalg.matrix_power(P, t_mix)
            worst = max(worst, total_variation_distance(dist, pi))
        assert worst <= eps + 1e-9

    def test_spectral_tv_matches_verify_stats_tv(self):
        """Two independent TV implementations agree on the same pmfs."""
        from repro.markov.spectral import total_variation_distance
        from repro.verify.stats import total_variation

        chain = exact_rbb_chain(3)
        pi = chain.stationary_distribution()
        mu = np.zeros(len(pi))
        mu[0] = 1.0
        one_step = mu @ chain.transition_matrix
        assert total_variation(one_step, pi) == pytest.approx(
            total_variation_distance(one_step, pi)
        )
