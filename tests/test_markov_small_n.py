"""Unit tests for repro.markov.small_n (exact small-system analysis, Appendix B)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.markov.small_n import (
    appendix_b_counterexample,
    arrival_joint_distribution_n2,
    enumerate_configurations,
    exact_rbb_chain,
    exact_rbb_transition_matrix,
)


class TestEnumeration:
    def test_counts_match_stars_and_bars(self):
        # C(m + n - 1, n - 1)
        assert len(enumerate_configurations(2, 2)) == 3
        assert len(enumerate_configurations(3, 3)) == 10
        assert len(enumerate_configurations(4, 3)) == 15

    def test_every_configuration_sums_to_m(self):
        for config in enumerate_configurations(3, 3):
            assert sum(config) == 3
            assert len(config) == 3

    def test_configurations_unique(self):
        configs = enumerate_configurations(4, 4)
        assert len(configs) == len(set(configs))

    def test_zero_balls(self):
        assert enumerate_configurations(0, 3) == [(0, 0, 0)]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            enumerate_configurations(1, 0)
        with pytest.raises(ConfigurationError):
            enumerate_configurations(-1, 2)


class TestExactTransitionMatrix:
    def test_rows_are_stochastic(self):
        P, states = exact_rbb_transition_matrix(3)
        assert P.shape == (len(states), len(states))
        assert np.allclose(P.sum(axis=1), 1.0)
        assert np.all(P >= 0)

    def test_n2_transition_probabilities_by_hand(self):
        P, states = exact_rbb_transition_matrix(2)
        index = {s: i for i, s in enumerate(states)}
        # from (1,1): both balls re-thrown independently; outcomes
        # (2,0) w.p. 1/4, (0,2) w.p. 1/4, (1,1) w.p. 1/2
        row = P[index[(1, 1)]]
        assert row[index[(2, 0)]] == pytest.approx(0.25)
        assert row[index[(0, 2)]] == pytest.approx(0.25)
        assert row[index[(1, 1)]] == pytest.approx(0.5)
        # from (2,0): only one ball moves; (1,1) w.p. 1/2, (2,0) w.p. 1/2
        row = P[index[(2, 0)]]
        assert row[index[(1, 1)]] == pytest.approx(0.5)
        assert row[index[(2, 0)]] == pytest.approx(0.5)
        assert row[index[(0, 2)]] == pytest.approx(0.0)

    def test_symmetry_of_stationary_distribution(self):
        chain = exact_rbb_chain(2)
        pi = chain.stationary_distribution()
        labels = chain.state_labels
        index = {s: i for i, s in enumerate(labels)}
        # bins are exchangeable: pi(2,0) == pi(0,2)
        assert pi[index[(2, 0)]] == pytest.approx(pi[index[(0, 2)]], abs=1e-8)
        assert pi.sum() == pytest.approx(1.0)

    def test_n3_stationary_is_exchangeable(self):
        chain = exact_rbb_chain(3)
        pi = chain.stationary_distribution()
        labels = chain.state_labels
        index = {s: i for i, s in enumerate(labels)}
        assert pi[index[(3, 0, 0)]] == pytest.approx(pi[index[(0, 0, 3)]], abs=1e-6)
        assert pi[index[(2, 1, 0)]] == pytest.approx(pi[index[(0, 1, 2)]], abs=1e-6)

    def test_ball_count_preserved_by_support(self):
        P, states = exact_rbb_transition_matrix(2, n_balls=3)
        for i, config in enumerate(states):
            for j, target in enumerate(states):
                if P[i, j] > 0:
                    assert sum(target) == sum(config)


class TestAppendixB:
    def test_exact_counterexample_values(self):
        values = appendix_b_counterexample()
        assert values["p_x1_0"] == pytest.approx(1 / 4)
        assert values["p_x2_0"] == pytest.approx(3 / 8)
        assert values["p_joint_00"] == pytest.approx(1 / 8)
        assert values["product"] == pytest.approx(3 / 32)
        assert values["violates_negative_association"] == 1.0

    def test_joint_distribution_is_a_pmf(self):
        joint = arrival_joint_distribution_n2(rounds=2)
        assert sum(joint.values()) == pytest.approx(1.0)
        assert all(p >= 0 for p in joint.values())
        # arrivals per round at one bin of a 2-bin system are at most 2
        assert all(max(history) <= 2 for history in joint)

    def test_single_round_marginal(self):
        joint = arrival_joint_distribution_n2(rounds=1)
        # X1 ~ Binomial(2, 1/2): P(0)=1/4, P(1)=1/2, P(2)=1/4
        assert joint[(0,)] == pytest.approx(1 / 4)
        assert joint[(1,)] == pytest.approx(1 / 2)
        assert joint[(2,)] == pytest.approx(1 / 4)

    def test_observed_bin_symmetry(self):
        joint0 = arrival_joint_distribution_n2(observed_bin=0, rounds=2)
        joint1 = arrival_joint_distribution_n2(observed_bin=1, rounds=2)
        for key, value in joint0.items():
            assert joint1[key] == pytest.approx(value)

    def test_three_round_distribution_consistent(self):
        joint3 = arrival_joint_distribution_n2(rounds=3)
        assert sum(joint3.values()) == pytest.approx(1.0)
        # marginalizing the third round recovers the two-round joint
        joint2 = arrival_joint_distribution_n2(rounds=2)
        marginal = {}
        for (x1, x2, _x3), p in joint3.items():
            marginal[(x1, x2)] = marginal.get((x1, x2), 0.0) + p
        for key, value in joint2.items():
            assert marginal[key] == pytest.approx(value)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            arrival_joint_distribution_n2(observed_bin=2)
        with pytest.raises(ConfigurationError):
            arrival_joint_distribution_n2(rounds=0)


class TestAgreementWithSimulation:
    def test_simulated_two_round_frequencies_match_exact(self):
        """Monte-Carlo check that the exact n=2 joint matches the simulator."""
        from repro.analysis.negative_association import empirical_zero_zero_probability

        estimate = empirical_zero_zero_probability(2, trials=6000, seed=0)
        exact = appendix_b_counterexample()
        assert abs(estimate["p_first_zero"] - exact["p_x1_0"]) < 0.03
        assert abs(estimate["p_second_zero"] - exact["p_x2_0"]) < 0.03
        assert abs(estimate["p_joint_zero"] - exact["p_joint_00"]) < 0.03

    def test_exact_chain_agrees_with_long_run_frequencies(self):
        """The n=3 stationary distribution matches empirical visit frequencies."""
        from repro.core.process import RepeatedBallsIntoBins

        chain = exact_rbb_chain(3)
        pi = chain.stationary_distribution()
        labels = chain.state_labels
        index = {s: i for i, s in enumerate(labels)}

        process = RepeatedBallsIntoBins(3, seed=11)
        counts = np.zeros(len(labels))
        total = 30_000
        for _ in range(total):
            loads = tuple(int(x) for x in process.step())
            counts[index[loads]] += 1
        empirical = counts / total
        # total-variation distance between empirical occupancy and pi is small
        tv = 0.5 * float(np.abs(empirical - pi).sum())
        assert tv < 0.05
