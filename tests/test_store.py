"""Unit tests for repro.store (streaming aggregation + result store)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.parallel.ensemble import EnsembleSpec, run_ensemble
from repro.store import ResultStore, StreamingMoments, TailCounter
from repro.store.store import METRICS


class TestStreamingMoments:
    def test_matches_numpy_on_random_data(self):
        rng = np.random.default_rng(0)
        data = rng.normal(3.0, 2.0, size=997)
        moments = StreamingMoments()
        moments.update(data)
        assert moments.count == 997
        assert moments.mean == pytest.approx(data.mean(), abs=1e-12)
        assert moments.variance() == pytest.approx(data.var(), rel=1e-12)
        assert moments.variance(ddof=1) == pytest.approx(data.var(ddof=1), rel=1e-12)
        assert moments.std(ddof=1) == pytest.approx(data.std(ddof=1), rel=1e-12)
        assert moments.minimum == data.min() and moments.maximum == data.max()

    def test_chunked_updates_match_single_batch(self):
        rng = np.random.default_rng(1)
        data = rng.integers(0, 50, size=500).astype(float)
        whole = StreamingMoments()
        whole.update(data)
        chunked = StreamingMoments()
        for lo in range(0, data.size, 37):
            chunked.update(data[lo : lo + 37])
        assert chunked.count == whole.count
        assert chunked.mean == pytest.approx(whole.mean, abs=1e-12)
        assert chunked.m2 == pytest.approx(whole.m2, rel=1e-12)

    def test_merge_matches_union(self):
        rng = np.random.default_rng(2)
        a, b = rng.normal(size=100), rng.normal(loc=5.0, size=23)
        ma, mb = StreamingMoments(), StreamingMoments()
        ma.update(a)
        mb.update(b)
        merged = ma.merged(mb)
        union = np.concatenate([a, b])
        assert merged.count == union.size
        assert merged.mean == pytest.approx(union.mean(), abs=1e-12)
        assert merged.variance() == pytest.approx(union.var(), rel=1e-12)

    def test_merge_with_empty_is_identity(self):
        m = StreamingMoments()
        m.update([1.0, 2.0])
        assert m.merged(StreamingMoments()).mean == m.mean
        assert StreamingMoments().merged(m).count == 2

    def test_single_value(self):
        m = StreamingMoments()
        m.update(4.0)
        assert m.count == 1 and m.variance() == 0.0 and m.variance(ddof=1) == 0.0

    def test_non_finite_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamingMoments().update([1.0, float("nan")])

    def test_dict_round_trip(self):
        m = StreamingMoments()
        m.update([1.0, 5.0, 9.0])
        clone = StreamingMoments.from_dict(json.loads(json.dumps(m.to_dict())))
        assert clone == m
        assert StreamingMoments.from_dict(StreamingMoments().to_dict()).count == 0


class TestTailCounter:
    def test_counts_and_tail(self):
        t = TailCounter()
        t.update([3, 3, 5, 7])
        assert t.total == 4
        assert t.tail(4) == 2
        assert t.tail(8) == 0
        assert t.tail_fraction(3) == 1.0
        assert TailCounter().tail_fraction(1) == 0.0

    def test_merge(self):
        a, b = TailCounter(), TailCounter()
        a.update([1, 2])
        b.update([2, 3])
        merged = a.merged(b)
        assert merged.counts == {1: 1, 2: 2, 3: 1}

    def test_non_integer_rejected(self):
        with pytest.raises(ConfigurationError):
            TailCounter().update([1.5])

    def test_dict_round_trip(self):
        t = TailCounter()
        t.update([10, 9, 10])
        clone = TailCounter.from_dict(json.loads(json.dumps(t.to_dict())))
        assert clone == t


def _append_demo_point(store, index=0, n_bins=8, n_replicas=4, process="rbb", **extra):
    spec = EnsembleSpec(
        n_bins=n_bins, n_replicas=n_replicas, rounds=4, process=process, **extra
    )
    result = run_ensemble(spec, seed=index, engine="batched", kernel="numpy")
    config = {
        "n_bins": n_bins,
        "n_replicas": n_replicas,
        "rounds": 4,
        "process": process,
        **extra,
    }
    from repro.sweeps import point_id_of

    record = store.append_point(
        index=index,
        point_id=point_id_of(config),
        config=config,
        result=result,
        engine="batched",
        kernel="numpy",
        seed_entropy=index,
    )
    return record


class TestResultStore:
    def test_create_refuses_existing(self, tmp_path):
        store = ResultStore.create(tmp_path / "s")
        store.write_header({"x": 1})
        with pytest.raises(ConfigurationError, match="already exists"):
            ResultStore.create(tmp_path / "s")

    def test_open_requires_header(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not a sweep store"):
            ResultStore.open(tmp_path / "missing")

    def test_header_idempotent_but_pinned(self, tmp_path):
        store = ResultStore.create(tmp_path / "s")
        store.write_header({"seed": 1})
        store.write_header({"seed": 1})  # same header: fine
        with pytest.raises(ConfigurationError, match="different sweep"):
            store.write_header({"seed": 2})
        reopened = ResultStore.open(tmp_path / "s")
        assert reopened.read_header() == {"seed": 1}

    def test_append_select_and_aliases(self, tmp_path):
        store = ResultStore.create(tmp_path / "s")
        store.write_header({})
        _append_demo_point(store, index=0, n_bins=8)
        _append_demo_point(store, index=1, n_bins=16)
        _append_demo_point(store, index=2, n_bins=16, process="d_choices", d=2)
        assert len(store) == 3
        assert len(store.select()) == 3
        assert len(store.select(n_bins=16)) == 2
        assert len(store.select(n=16)) == 2  # paper alias
        assert len(store.select(n=16, process="d_choices")) == 1
        assert len(store.select(R=4)) == 3
        row = store.select(n=8).rows[0]
        assert row["process"] == "rbb"
        assert "window_max_load_mean" in row and "converged_fraction" in row

    def test_unknown_filter_field_rejected(self, tmp_path):
        store = ResultStore.create(tmp_path / "s")
        store.write_header({})
        _append_demo_point(store)
        with pytest.raises(ConfigurationError, match="unknown filter field"):
            store.select(bogus=1)

    def test_duplicate_append_rejected(self, tmp_path):
        store = ResultStore.create(tmp_path / "s")
        store.write_header({})
        _append_demo_point(store)
        with pytest.raises(ConfigurationError, match="append-only"):
            _append_demo_point(store)

    def test_replicas_round_trip_disk_and_memory(self, tmp_path):
        disk = ResultStore.create(tmp_path / "s")
        disk.write_header({})
        memory = ResultStore.in_memory()
        rd = _append_demo_point(disk, index=3, n_bins=8)
        rm = _append_demo_point(memory, index=3, n_bins=8)
        assert rd["point_id"] == rm["point_id"]
        from_disk = disk.replicas(rd["point_id"])
        from_memory = memory.replicas(rm["point_id"])
        assert set(from_disk) == set(METRICS)
        for name in METRICS:
            np.testing.assert_array_equal(from_disk[name], from_memory[name])
        with pytest.raises(ConfigurationError):
            disk.replicas("nope")
        with pytest.raises(ConfigurationError):
            memory.replicas("nope")

    def test_manifest_survives_reopen(self, tmp_path):
        store = ResultStore.create(tmp_path / "s")
        store.write_header({})
        record = _append_demo_point(store)
        reopened = ResultStore.open(tmp_path / "s")
        assert reopened.records() == [record]
        assert reopened.manifest_bytes() == store.manifest_bytes()

    def test_torn_trailing_line_truncated_on_open(self, tmp_path):
        store = ResultStore.create(tmp_path / "s")
        store.write_header({})
        _append_demo_point(store)
        good = store.manifest_bytes()
        manifest = tmp_path / "s" / ResultStore.MANIFEST_NAME
        manifest.write_bytes(good + b'{"point_id": "torn...')
        with pytest.warns(RuntimeWarning, match="torn record"):
            reopened = ResultStore.open(tmp_path / "s")
        assert len(reopened) == 1
        assert manifest.read_bytes() == good

    def test_summary_matches_batch_recompute(self, tmp_path):
        store = ResultStore.create(tmp_path / "s")
        store.write_header({})
        record = _append_demo_point(store, index=0, n_bins=16, n_replicas=9)
        vectors = store.replicas(record["point_id"])
        for name in METRICS:
            moments = StreamingMoments.from_dict(
                record["summary"]["metrics"][name]
            )
            data = vectors[name].astype(float)
            assert moments.count == data.size
            assert moments.mean == pytest.approx(data.mean(), abs=1e-12)
            assert moments.variance() == pytest.approx(data.var(), abs=1e-12)

    def test_summarize_merges_across_points(self, tmp_path):
        store = ResultStore.create(tmp_path / "s")
        store.write_header({})
        r0 = _append_demo_point(store, index=0, n_bins=8)
        r1 = _append_demo_point(store, index=1, n_bins=8, n_replicas=6)
        merged = store.summarize("window_max_load", n=8)
        combined = np.concatenate(
            [
                store.replicas(r0["point_id"])["window_max_load"],
                store.replicas(r1["point_id"])["window_max_load"],
            ]
        ).astype(float)
        assert merged.count == combined.size
        assert merged.mean == pytest.approx(combined.mean(), abs=1e-12)
        assert merged.variance() == pytest.approx(combined.var(), rel=1e-12)
        tail = store.max_load_tail(n=8)
        assert tail.total == combined.size
        assert tail.tail(0) == combined.size
        with pytest.raises(ConfigurationError, match="unknown metric"):
            store.summarize("bogus")

    def test_manifest_is_canonical_strict_json(self, tmp_path):
        store = ResultStore.create(tmp_path / "s")
        store.write_header({})
        _append_demo_point(store)
        line = store.manifest_bytes().decode().strip()
        record = json.loads(line)
        assert json.dumps(
            record, sort_keys=True, separators=(",", ":"), allow_nan=False
        ) == line
