"""Unit tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import _parse_overrides, build_parser, main
from repro.errors import ReproError


class TestParser:
    def test_list_command_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_parses(self):
        args = build_parser().parse_args(
            ["run", "E1", "--seed", "3", "-p", "sizes=[16]", "--markdown"]
        )
        assert args.command == "run"
        assert args.experiment_id == "E1"
        assert args.seed == 3
        assert args.param == ["sizes=[16]"]
        assert args.markdown

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestOverrideParsing:
    def test_json_values(self):
        overrides = _parse_overrides(["sizes=[16, 32]", "trials=3", "factor=1.5"])
        assert overrides == {"sizes": [16, 32], "trials": 3, "factor": 1.5}

    def test_string_fallback(self):
        assert _parse_overrides(["adversary=concentrate"]) == {"adversary": "concentrate"}

    def test_missing_equals_rejected(self):
        with pytest.raises(ReproError):
            _parse_overrides(["oops"])


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E15" in out and "A1" in out

    def test_describe(self, capsys):
        assert main(["describe", "E14"]) == 0
        out = capsys.readouterr().out
        assert "Appendix B" in out
        assert "default params" in out

    def test_describe_unknown_returns_error_code(self, capsys):
        assert main(["describe", "E99"]) == 2
        assert "error" in capsys.readouterr().err

    def test_run_small_experiment(self, capsys, tmp_path):
        json_path = tmp_path / "e14.json"
        csv_path = tmp_path / "e14.csv"
        code = main(
            [
                "run",
                "E14",
                "-p",
                "mc_sizes=[2]",
                "-p",
                "mc_trials=200",
                "--json",
                str(json_path),
                "--csv",
                str(csv_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Appendix B" in out
        assert "note:" in out
        assert json_path.exists() and csv_path.exists()
        payload = json.loads(json_path.read_text())
        assert payload["experiment_id"] == "E14"

    def test_run_markdown_output(self, capsys):
        code = main(["run", "E14", "-p", "mc_sizes=[2]", "-p", "mc_trials=100", "--markdown"])
        assert code == 0
        assert "| n |" in capsys.readouterr().out

    def test_run_bad_parameter(self, capsys):
        assert main(["run", "E1", "-p", "bogus=1"]) == 2
        assert "error" in capsys.readouterr().err

    def test_run_with_engine_flag(self, capsys):
        code = main(
            [
                "run",
                "E1",
                "-p",
                "sizes=[16]",
                "-p",
                "trials=2",
                "-p",
                "rounds_factor=1.0",
                "--engine",
                "sequential",
            ]
        )
        assert code == 0
        assert "mean_window_max" in capsys.readouterr().out

    def test_engine_flag_ignored_for_non_ensemble_experiment(self, capsys):
        code = main(
            ["run", "E14", "-p", "mc_sizes=[2]", "-p", "mc_trials=100", "--engine", "batched"]
        )
        assert code == 0
        assert "--engine ignored" in capsys.readouterr().err

    def test_engine_flag_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "E1", "--engine", "quantum"])
