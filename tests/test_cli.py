"""Unit tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import _parse_overrides, build_parser, main
from repro.errors import ReproError


class TestParser:
    def test_list_command_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_parses(self):
        args = build_parser().parse_args(
            ["run", "E1", "--seed", "3", "-p", "sizes=[16]", "--markdown"]
        )
        assert args.command == "run"
        assert args.experiment_id == "E1"
        assert args.seed == 3
        assert args.param == ["sizes=[16]"]
        assert args.markdown

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestOverrideParsing:
    def test_json_values(self):
        overrides = _parse_overrides(["sizes=[16, 32]", "trials=3", "factor=1.5"])
        assert overrides == {"sizes": [16, 32], "trials": 3, "factor": 1.5}

    def test_string_fallback(self):
        assert _parse_overrides(["adversary=concentrate"]) == {"adversary": "concentrate"}

    def test_missing_equals_rejected(self):
        with pytest.raises(ReproError):
            _parse_overrides(["oops"])


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E15" in out and "A1" in out

    def test_describe(self, capsys):
        assert main(["describe", "E14"]) == 0
        out = capsys.readouterr().out
        assert "Appendix B" in out
        assert "default params" in out

    def test_describe_unknown_returns_error_code(self, capsys):
        assert main(["describe", "E99"]) == 2
        assert "error" in capsys.readouterr().err

    def test_run_small_experiment(self, capsys, tmp_path):
        json_path = tmp_path / "e14.json"
        csv_path = tmp_path / "e14.csv"
        code = main(
            [
                "run",
                "E14",
                "-p",
                "mc_sizes=[2]",
                "-p",
                "mc_trials=200",
                "--json",
                str(json_path),
                "--csv",
                str(csv_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Appendix B" in out
        assert "note:" in out
        assert json_path.exists() and csv_path.exists()
        payload = json.loads(json_path.read_text())
        assert payload["experiment_id"] == "E14"

    def test_run_markdown_output(self, capsys):
        code = main(["run", "E14", "-p", "mc_sizes=[2]", "-p", "mc_trials=100", "--markdown"])
        assert code == 0
        assert "| n |" in capsys.readouterr().out

    def test_run_bad_parameter(self, capsys):
        assert main(["run", "E1", "-p", "bogus=1"]) == 2
        assert "error" in capsys.readouterr().err

    def test_run_with_engine_flag(self, capsys):
        code = main(
            [
                "run",
                "E1",
                "-p",
                "sizes=[16]",
                "-p",
                "trials=2",
                "-p",
                "rounds_factor=1.0",
                "--engine",
                "sequential",
            ]
        )
        assert code == 0
        assert "mean_window_max" in capsys.readouterr().out

    def test_engine_flag_ignored_for_non_ensemble_experiment(self, capsys):
        code = main(
            ["run", "E14", "-p", "mc_sizes=[2]", "-p", "mc_trials=100", "--engine", "batched"]
        )
        assert code == 0
        assert "--engine ignored" in capsys.readouterr().err

    def test_engine_flag_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "E1", "--engine", "quantum"])


class TestSweepCli:
    def test_parser_parses_sweep_run(self):
        args = build_parser().parse_args(
            ["sweep", "run", "smoke", "--store", "s", "--seed", "3", "--max-points", "2"]
        )
        assert args.command == "sweep" and args.sweep_command == "run"
        assert args.name == "smoke" and args.max_points == 2

    def test_sweep_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep"])

    def test_sweep_list(self, capsys):
        assert main(["sweep", "list"]) == 0
        out = capsys.readouterr().out
        assert "smoke" in out and "a2_d_choices" in out and "e9_adversarial" in out

    def test_sweep_run_status_query(self, capsys, tmp_path):
        store = tmp_path / "store"
        code = main(
            ["sweep", "run", "smoke", "--store", str(store), "--seed", "3", "--kernel", "numpy"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "4 point(s) run" in out
        assert (store / "sweep.json").exists()
        assert (store / "manifest.jsonl").exists()
        assert len(list((store / "shards").glob("*.npz"))) == 4

        assert main(["sweep", "status", "--store", str(store)]) == 0
        assert "4/4" in capsys.readouterr().out

        assert main(["sweep", "query", "--store", str(store), "-w", "process=rbb"]) == 0
        out = capsys.readouterr().out
        assert "window_max_load_mean" in out and "rbb" in out

    def test_sweep_run_with_observed_metrics(self, capsys, tmp_path):
        store = tmp_path / "store"
        code = main(
            [
                "sweep", "run", "smoke",
                "--store", str(store),
                "--seed", "3",
                "--kernel", "numpy",
                "--metrics", "max_load,legitimacy",
                "--observe-every", "4",
            ]
        )
        assert code == 0
        capsys.readouterr()
        code = main(
            [
                "sweep", "query",
                "--store", str(store),
                "--columns", "index", "max_load_window_max_mean",
                "legitimacy_violations_mean",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "max_load_window_max_mean" in out
        # the observation selection is pinned in the header: resume needs no flags
        from repro.store import ResultStore

        header = ResultStore.open(store).read_header()
        assert header["spec"]["base"]["metrics"] == "max_load,legitimacy"
        assert header["spec"]["base"]["observe_every"] == 4

    def test_sweep_run_rejects_unknown_metric(self, capsys, tmp_path):
        code = main(
            [
                "sweep", "run", "smoke",
                "--store", str(tmp_path / "store"),
                "--metrics", "max_loda",
            ]
        )
        assert code == 2
        assert "unknown metric" in capsys.readouterr().err

    def test_sweep_run_refuses_existing_store(self, capsys, tmp_path):
        store = tmp_path / "store"
        assert main(["sweep", "run", "smoke", "--store", str(store), "--kernel", "numpy"]) == 0
        capsys.readouterr()
        assert main(["sweep", "run", "smoke", "--store", str(store)]) == 2
        assert "sweep resume" in capsys.readouterr().err

    def test_sweep_run_refuses_headerless_manifest_dir(self, capsys, tmp_path):
        store = tmp_path / "store"
        store.mkdir()
        (store / "manifest.jsonl").write_text("{}\n")
        assert main(["sweep", "run", "smoke", "--store", str(store)]) == 2
        assert "damaged" in capsys.readouterr().err

    def test_sweep_kill_and_resume_matches_full_run(self, capsys, tmp_path):
        full, killed = tmp_path / "full", tmp_path / "killed"
        common = ["--seed", "7", "--kernel", "numpy"]
        assert main(["sweep", "run", "smoke", "--store", str(full)] + common) == 0
        assert (
            main(
                ["sweep", "run", "smoke", "--store", str(killed), "--max-points", "2"]
                + common
            )
            == 0
        )
        assert main(["sweep", "resume", "--store", str(killed)]) == 0
        capsys.readouterr()
        assert (full / "manifest.jsonl").read_bytes() == (
            killed / "manifest.jsonl"
        ).read_bytes()

    def test_sweep_run_from_spec_file(self, capsys, tmp_path):
        import json as json_module

        spec_path = tmp_path / "sweep.json"
        spec_path.write_text(
            json_module.dumps(
                {
                    "name": "custom",
                    "base": {"n_replicas": 2, "rounds": 2},
                    "grid": {"n_bins": [8, 16]},
                }
            )
        )
        store = tmp_path / "store"
        code = main(
            [
                "sweep", "run",
                "--spec-file", str(spec_path),
                "--store", str(store),
                "--kernel", "numpy",
            ]
        )
        assert code == 0
        assert "2 point(s) run" in capsys.readouterr().out

    def test_sweep_run_requires_exactly_one_source(self, capsys, tmp_path):
        assert main(["sweep", "run", "--store", str(tmp_path / "s")]) == 2
        assert "exactly one" in capsys.readouterr().err
        assert (
            main(
                [
                    "sweep", "run", "smoke",
                    "--spec-file", "x.json",
                    "--store", str(tmp_path / "s"),
                ]
            )
            == 2
        )

    def test_sweep_query_empty_result(self, capsys, tmp_path):
        store = tmp_path / "store"
        assert main(["sweep", "run", "smoke", "--store", str(store), "--kernel", "numpy"]) == 0
        capsys.readouterr()
        assert main(["sweep", "query", "--store", str(store), "-w", "n=999"]) == 0
        assert "no matching points" in capsys.readouterr().out

    def test_sweep_query_csv_export(self, capsys, tmp_path):
        store = tmp_path / "store"
        assert main(["sweep", "run", "smoke", "--store", str(store), "--kernel", "numpy"]) == 0
        csv_path = tmp_path / "out.csv"
        assert main(["sweep", "query", "--store", str(store), "--csv", str(csv_path)]) == 0
        assert csv_path.exists()
        header = csv_path.read_text().splitlines()[0]
        assert "point_id" in header and "window_max_load_mean" in header


class TestVerifyCommand:
    def test_parser_parses_verify(self):
        parser = build_parser()
        args = parser.parse_args(["verify", "--level", "full", "--only", "token"])
        assert args.command == "verify"
        assert args.level == "full"
        assert args.only == "token"

    def test_verify_rejects_unknown_level(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["verify", "--level", "bogus"])

    def test_verify_list(self, capsys):
        assert main(["verify", "--list"]) == 0
        out = capsys.readouterr().out
        assert "rbb-batched-numpy" in out
        assert "exact_rbb_transition_matrix" in out

    def test_verify_single_case_runs_and_passes(self, capsys):
        code = main(["verify", "--only", "token-fifo", "--no-artifacts", "--seed", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "verify smoke: PASS" in out
        assert "token-fifo" in out

    def test_verify_replay_missing_artifact_errors(self, capsys):
        assert main(["verify", "--replay", "/nonexistent/artifact.json"]) == 2
        assert "error:" in capsys.readouterr().err
