"""Unit tests for repro.core.process (the repeated balls-into-bins simulator)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import LoadConfiguration
from repro.core.metrics import EmptyBinsTracker, MaxLoadTracker
from repro.core.process import RepeatedBallsIntoBins
from repro.errors import ConfigurationError


class TestConstruction:
    def test_default_balanced_start(self):
        process = RepeatedBallsIntoBins(10, seed=0)
        assert process.n_bins == 10
        assert process.n_balls == 10
        assert process.loads.tolist() == [1] * 10

    def test_custom_ball_count(self):
        process = RepeatedBallsIntoBins(10, n_balls=25, seed=0)
        assert process.n_balls == 25
        assert int(process.loads.sum()) == 25

    def test_initial_configuration(self):
        initial = LoadConfiguration.all_in_one(8)
        process = RepeatedBallsIntoBins(8, initial=initial, seed=0)
        assert process.max_load == 8

    def test_initial_as_plain_array(self):
        process = RepeatedBallsIntoBins(4, initial=np.array([4, 0, 0, 0]), seed=0)
        assert process.max_load == 4

    def test_inconsistent_initial_rejected(self):
        with pytest.raises(ConfigurationError):
            RepeatedBallsIntoBins(8, initial=LoadConfiguration.balanced(4), seed=0)
        with pytest.raises(ConfigurationError):
            RepeatedBallsIntoBins(4, n_balls=7, initial=LoadConfiguration.balanced(4), seed=0)

    def test_bad_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            RepeatedBallsIntoBins(0)
        with pytest.raises(ConfigurationError):
            RepeatedBallsIntoBins(4, n_balls=-1)

    def test_loads_view_is_read_only(self):
        process = RepeatedBallsIntoBins(4, seed=0)
        with pytest.raises(ValueError):
            process.loads[0] = 3


class TestDynamics:
    def test_ball_conservation_over_many_rounds(self):
        process = RepeatedBallsIntoBins(64, seed=1)
        for _ in range(200):
            loads = process.step()
            assert int(loads.sum()) == 64
            assert int(loads.min()) >= 0

    def test_round_counter_increments(self):
        process = RepeatedBallsIntoBins(8, seed=0)
        process.step()
        process.step()
        assert process.round_index == 2

    def test_deterministic_given_seed(self):
        a = RepeatedBallsIntoBins(32, seed=7)
        b = RepeatedBallsIntoBins(32, seed=7)
        for _ in range(50):
            assert np.array_equal(a.step(), b.step())

    def test_different_seeds_diverge(self):
        a = RepeatedBallsIntoBins(64, seed=1)
        b = RepeatedBallsIntoBins(64, seed=2)
        diverged = any(not np.array_equal(a.step(), b.step()) for _ in range(20))
        assert diverged

    def test_single_bin_system_is_fixed_point(self):
        process = RepeatedBallsIntoBins(1, seed=0)
        for _ in range(5):
            assert process.step().tolist() == [1]

    def test_empty_system_stays_empty(self):
        process = RepeatedBallsIntoBins(4, n_balls=0, seed=0)
        for _ in range(5):
            assert process.step().tolist() == [0, 0, 0, 0]

    def test_all_in_one_decreases_by_one_per_round_initially(self):
        n = 16
        process = RepeatedBallsIntoBins(n, initial=LoadConfiguration.all_in_one(n), seed=3)
        before = process.max_load
        process.step()
        # the congested bin loses exactly one ball and can gain at most a few
        assert process.loads[0] >= before - 1 - 3
        assert process.loads[0] <= before  # cannot gain more than it lost plus arrivals... sanity


class TestRun:
    def test_run_result_fields(self):
        process = RepeatedBallsIntoBins(32, seed=0)
        result = process.run(10)
        assert result.rounds == 10
        assert result.final_configuration.n_balls == 32
        assert result.max_load_seen >= 1
        assert 0 <= result.min_empty_bins_seen <= 32

    def test_run_zero_rounds(self):
        process = RepeatedBallsIntoBins(8, seed=0)
        result = process.run(0)
        assert result.rounds == 0
        assert result.final_configuration == process.configuration()

    def test_run_negative_rounds_rejected(self):
        process = RepeatedBallsIntoBins(8, seed=0)
        with pytest.raises(ConfigurationError):
            process.run(-1)

    def test_observers_called_every_round(self):
        process = RepeatedBallsIntoBins(16, seed=0)
        tracker = MaxLoadTracker()
        empties = EmptyBinsTracker()
        process.run(25, observers=[tracker, empties])
        assert tracker.rounds_observed == 25
        assert empties.rounds_observed == 25
        assert len(tracker.series) == 25

    def test_callable_observer(self):
        seen = []
        process = RepeatedBallsIntoBins(8, seed=0)
        process.run(5, observers=lambda t, loads: seen.append(t))
        assert seen == [1, 2, 3, 4, 5]

    def test_stop_when_legitimate(self):
        n = 128
        process = RepeatedBallsIntoBins(n, initial=LoadConfiguration.all_in_one(n), seed=0)
        result = process.run(50 * n, stop_when_legitimate=True)
        assert result.first_legitimate_round is not None
        assert result.rounds == result.first_legitimate_round
        assert result.ended_legitimate

    def test_run_until_legitimate_returns_round(self):
        n = 128
        process = RepeatedBallsIntoBins(n, initial=LoadConfiguration.all_in_one(n), seed=0)
        hit = process.run_until_legitimate(max_rounds=50 * n)
        assert hit is not None
        assert hit <= 50 * n

    def test_run_until_legitimate_already_legitimate(self):
        process = RepeatedBallsIntoBins(64, seed=0)
        assert process.run_until_legitimate(max_rounds=10) == 0

    def test_run_until_legitimate_timeout(self):
        n = 4096
        process = RepeatedBallsIntoBins(n, initial=LoadConfiguration.all_in_one(n), seed=0)
        # a 3-round budget cannot possibly drain a bin with 4096 balls
        assert process.run_until_legitimate(max_rounds=3) is None


class TestReset:
    def test_reset_to_default(self):
        process = RepeatedBallsIntoBins(8, seed=0)
        process.run(5)
        process.reset()
        assert process.round_index == 0
        assert process.loads.tolist() == [1] * 8

    def test_reset_to_explicit_configuration(self):
        process = RepeatedBallsIntoBins(8, seed=0)
        process.reset(LoadConfiguration.all_in_one(8))
        assert process.max_load == 8
        assert process.n_balls == 8

    def test_reset_wrong_size_rejected(self):
        process = RepeatedBallsIntoBins(8, seed=0)
        with pytest.raises(ConfigurationError):
            process.reset(LoadConfiguration.balanced(4))

    def test_inject_loads_conserves_and_keeps_clock(self):
        process = RepeatedBallsIntoBins(8, seed=0)
        process.run(5)
        process.inject_loads(LoadConfiguration.all_in_one(8))
        assert process.max_load == 8
        assert process.round_index == 5  # unlike reset(), the clock runs on

    def test_inject_loads_rejects_nonconserving(self):
        process = RepeatedBallsIntoBins(8, seed=0)
        with pytest.raises(ConfigurationError, match="conserve"):
            process.inject_loads(LoadConfiguration.all_in_one(8, n_balls=9))
        with pytest.raises(ConfigurationError):
            process.inject_loads(LoadConfiguration.balanced(4))


class TestPaperBehaviour:
    """Statistical sanity checks tied to the paper's claims (small scale)."""

    def test_max_load_stays_moderate_from_balanced_start(self):
        n = 256
        process = RepeatedBallsIntoBins(n, seed=11)
        result = process.run(4 * n)
        # Theorem 1: O(log n); a window max above 6*log2(n) would be wildly off
        assert result.max_load_seen <= 6 * np.log(n)

    def test_empty_bins_exceed_quarter_after_first_round(self):
        n = 512
        process = RepeatedBallsIntoBins(n, seed=13)
        process.step()
        minimum_empty = n
        for _ in range(200):
            loads = process.step()
            minimum_empty = min(minimum_empty, int(np.count_nonzero(loads == 0)))
        assert minimum_empty >= n / 4

    def test_self_stabilizes_within_linear_time(self):
        n = 256
        process = RepeatedBallsIntoBins(n, initial=LoadConfiguration.all_in_one(n), seed=17)
        hit = process.run_until_legitimate(max_rounds=20 * n)
        assert hit is not None
        assert hit <= 5 * n
