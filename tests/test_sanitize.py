"""Sanitizer build-variant tests: REPRO_SANITIZE parsing, the flag
ladder, cache fingerprint/filename isolation, and (where the toolchain
cooperates) actually compiling and loading instrumented kernels."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core import native
from repro.core.native import (
    SANITIZE_MODES,
    _FLAG_VARIANTS,
    _KERNELS,
    _fingerprint,
    _variant_ladder,
    sanitize_mode,
)
from repro.errors import ConfigurationError

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def _isolate_kernel_cache(monkeypatch):
    """Keep the in-process kernel cache out of cross-test state."""
    saved = dict(native._CACHE)
    yield
    native._CACHE.clear()
    native._CACHE.update(saved)


def _sanitizer_runtime(lib: str):
    cc = native._compiler()
    if cc is None:
        return None
    proc = subprocess.run(
        [cc, f"-print-file-name={lib}"], capture_output=True, text=True
    )
    path = proc.stdout.strip()
    if proc.returncode != 0 or not path or path == lib:
        return None
    resolved = Path(path)
    return resolved if resolved.exists() else None


def _python_survives_preload(runtime: Path) -> bool:
    """Some containers segfault any TSan-preloaded process (mmap layout)."""
    env = dict(os.environ)
    env["LD_PRELOAD"] = str(runtime)
    env["ASAN_OPTIONS"] = "detect_leaks=0"
    proc = subprocess.run(
        [sys.executable, "-c", "print('ok')"],
        capture_output=True,
        text=True,
        env=env,
        timeout=60,
    )
    return proc.returncode == 0 and "ok" in proc.stdout


class TestMode:
    def test_unset_means_fast(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert sanitize_mode() is None

    @pytest.mark.parametrize("mode", sorted(SANITIZE_MODES))
    def test_valid_modes(self, monkeypatch, mode):
        monkeypatch.setenv("REPRO_SANITIZE", mode)
        assert sanitize_mode() == mode

    def test_mode_is_case_insensitive(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", " ASan ")
        assert sanitize_mode() == "asan"

    def test_invalid_mode_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "msan")
        with pytest.raises(ConfigurationError, match="REPRO_SANITIZE"):
            sanitize_mode()

    def test_catalog_covers_the_three_sanitizers(self):
        assert set(SANITIZE_MODES) == {"asan", "ubsan", "tsan"}
        for flags in SANITIZE_MODES.values():
            assert any(f.startswith("-fsanitize=") for f in flags)


class TestLadder:
    def test_no_mode_is_the_fast_ladder(self):
        assert _variant_ladder(None) == _FLAG_VARIANTS

    @pytest.mark.parametrize("mode", sorted(SANITIZE_MODES))
    def test_every_variant_carries_the_mode_flags(self, mode):
        extra = SANITIZE_MODES[mode]
        for flags in _variant_ladder(mode):
            assert flags[-len(extra):] == extra

    def test_tsan_drops_march_native(self):
        for flags in _variant_ladder("tsan"):
            assert "-march=native" not in flags

    def test_asan_keeps_march_native(self):
        assert any("-march=native" in flags for flags in _variant_ladder("asan"))

    def test_tsan_ladder_has_no_duplicates(self):
        ladder = _variant_ladder("tsan")
        assert len(ladder) == len(set(ladder))


class TestCacheIsolation:
    def test_fingerprints_differ_per_flag_variant(self):
        spec = _KERNELS["rbb"]
        fast = _fingerprint(spec, "cc", _FLAG_VARIANTS[0])
        sanitized = _fingerprint(spec, "cc", _variant_ladder("asan")[0])
        assert fast != sanitized

    def test_fingerprints_differ_per_mode(self):
        spec = _KERNELS["rbb"]
        prints = {
            mode: _fingerprint(spec, "cc", _variant_ladder(mode)[0])
            for mode in SANITIZE_MODES
        }
        prints["fast"] = _fingerprint(spec, "cc", _FLAG_VARIANTS[0])
        assert len(set(prints.values())) == len(prints)

    def test_in_process_cache_is_keyed_by_mode(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        native._CACHE.clear()
        native.native_status("rbb")
        assert ("rbb", None) in native._CACHE
        monkeypatch.setenv("REPRO_SANITIZE", "msan")
        with pytest.raises(ConfigurationError):
            native.native_status("rbb")


@pytest.mark.skipif(native._compiler() is None, reason="no C compiler")
class TestSanitizedBuilds:
    def test_ubsan_kernel_compiles_and_loads(self, monkeypatch):
        if _sanitizer_runtime("libubsan.so") is None:
            pytest.skip("toolchain has no UBSan runtime")
        monkeypatch.setenv("REPRO_SANITIZE", "ubsan")
        native._CACHE.clear()
        status = native.native_status("rbb")
        assert native.native_available("rbb"), status
        assert "[sanitize=ubsan]" in status
        assert "rbb_kernel-ubsan-" in status

    def test_ubsan_results_match_fast_build(self, monkeypatch):
        if _sanitizer_runtime("libubsan.so") is None:
            pytest.skip("toolchain has no UBSan runtime")
        from repro.core.batched import BatchedRepeatedBallsIntoBins

        def run():
            native._CACHE.clear()
            engine = BatchedRepeatedBallsIntoBins(n_bins=16, n_replicas=4, seed=123)
            result = engine.run(rounds=64)
            return result.final_loads.copy()

        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        if not native.native_available("rbb"):
            pytest.skip(native.native_status("rbb"))
        fast = run()
        monkeypatch.setenv("REPRO_SANITIZE", "ubsan")
        sanitized = run()
        assert (fast == sanitized).all()

    def test_asan_kernel_loads_under_preload(self, monkeypatch):
        runtime = _sanitizer_runtime("libasan.so")
        if runtime is None:
            pytest.skip("toolchain has no ASan runtime")
        if not _python_survives_preload(runtime):
            pytest.skip("python does not survive ASan preload here")
        env = dict(os.environ)
        env.update(
            {
                "PYTHONPATH": str(REPO_ROOT / "src"),
                "REPRO_SANITIZE": "asan",
                "LD_PRELOAD": str(runtime),
                "ASAN_OPTIONS": "detect_leaks=0",
            }
        )
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.core.native import native_available, native_status\n"
                "status = native_status('rbb')\n"
                "assert native_available('rbb'), status\n"
                "assert '[sanitize=asan]' in status, status\n"
                "print(status)",
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr or proc.stdout

    def test_tsan_kernel_loads_under_preload(self, monkeypatch):
        runtime = _sanitizer_runtime("libtsan.so")
        if runtime is None:
            pytest.skip("toolchain has no TSan runtime")
        if not _python_survives_preload(runtime):
            pytest.skip("python does not survive TSan preload here (mmap layout)")
        env = dict(os.environ)
        env.update(
            {
                "PYTHONPATH": str(REPO_ROOT / "src"),
                "REPRO_SANITIZE": "tsan",
                "REPRO_NATIVE_THREADS": "2",
                "LD_PRELOAD": str(runtime),
            }
        )
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.core.native import native_available, native_status\n"
                "status = native_status('rbb')\n"
                "assert native_available('rbb'), status\n"
                "assert '[sanitize=tsan]' in status, status\n"
                "assert '-march=native' not in status, status\n"
                "print(status)",
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr or proc.stdout

    def test_sanitized_binaries_never_shadow_fast(self, monkeypatch):
        if _sanitizer_runtime("libubsan.so") is None:
            pytest.skip("toolchain has no UBSan runtime")
        monkeypatch.setenv("REPRO_SANITIZE", "ubsan")
        native._CACHE.clear()
        sanitized_status = native.native_status("rbb")
        monkeypatch.delenv("REPRO_SANITIZE")
        native._CACHE.clear()
        fast_status = native.native_status("rbb")
        if "compiled with" in fast_status:
            assert "sanitize" not in fast_status
            assert fast_status != sanitized_status
