"""Tests for repro.metrics — the unified streaming observation layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversary.batched import BatchedFaultyProcess
from repro.adversary.faulty_process import FaultSchedule, FaultyProcess
from repro.baselines.d_choices import BatchedDChoices, DChoicesProcess
from repro.core.batched import BatchedRepeatedBallsIntoBins, EnsembleResult
from repro.core.config import DEFAULT_BETA, legitimacy_threshold
from repro.core.metrics import (
    BinEmptyingTracker,
    EmptyBinsTracker,
    LegitimacyTracker,
    LoadHistogramTracker,
    MaxLoadTracker,
    TraceRecorder,
)
from repro.core.native import native_available
from repro.core.process import RepeatedBallsIntoBins
from repro.errors import ConfigurationError
from repro.metrics import (
    METRIC_NAMES,
    BatchedBinEmptyingTracker,
    BatchedEmptyBinsTracker,
    BatchedLegitimacyTracker,
    BatchedLoadHistogramTracker,
    BatchedMaxLoadTracker,
    BatchedObserverList,
    BatchedTraceRecorder,
    MetricPayload,
    StreamingMomentsObserver,
    as_batched,
    as_load_matrix,
    build_trackers,
    normalize_metric_names,
    run_replica_window,
    summarize_payloads,
)
from repro.parallel.aggregate import aggregate_ensemble
from repro.parallel.ensemble import EnsembleSpec, run_ensemble
from repro.store import ResultStore
from repro.sweeps import SweepSpec, run_sweep

needs_native = pytest.mark.skipif(
    not native_available(), reason="native kernel unavailable"
)


def _sequential_trackers():
    return {
        "max_load": MaxLoadTracker(),
        "empty_bins": EmptyBinsTracker(),
        "legitimacy": LegitimacyTracker(),
        "histogram": LoadHistogramTracker(),
        "trace": TraceRecorder(),
        "bin_emptying": BinEmptyingTracker(),
    }


def _batched_trackers():
    return {
        "max_load": BatchedMaxLoadTracker(),
        "empty_bins": BatchedEmptyBinsTracker(),
        "legitimacy": BatchedLegitimacyTracker(),
        "histogram": BatchedLoadHistogramTracker(),
        "trace": BatchedTraceRecorder(),
        "bin_emptying": BatchedBinEmptyingTracker(),
    }


def _assert_stream_equal(seq, bat):
    """Sequential trackers vs batched trackers at R == 1: identical output."""
    assert seq["max_load"].series == [int(v) for v in bat["max_load"].as_array()[:, 0]]
    assert seq["max_load"].window_max == int(bat["max_load"].window_max[0])
    assert seq["empty_bins"].series == [
        int(v) for v in bat["empty_bins"].as_array()[:, 0]
    ]
    assert seq["empty_bins"].window_min == int(bat["empty_bins"].window_min[0])
    leg_seq, leg_bat = seq["legitimacy"], bat["legitimacy"]
    expected_first = -1 if leg_seq.first_legitimate_round is None else leg_seq.first_legitimate_round
    assert expected_first == int(leg_bat.first_legitimate_round[0])
    assert leg_seq.violations == int(leg_bat.violations[0])
    assert leg_seq.converged == bool(leg_bat.converged[0])
    assert leg_seq.stable_after_convergence == bool(
        leg_bat.stable_after_convergence[0]
    )
    assert np.array_equal(seq["histogram"].counts, bat["histogram"].counts[0])
    assert seq["histogram"].overflow == int(bat["histogram"].overflow[0])
    assert seq["histogram"].mean_load() == pytest.approx(
        float(bat["histogram"].mean_load()[0])
    )
    assert np.array_equal(seq["trace"].as_matrix(), bat["trace"].as_matrix()[:, 0, :])
    assert seq["trace"].rounds == bat["trace"].snapshot_rounds
    assert np.array_equal(
        seq["bin_emptying"].first_empty_round,
        bat["bin_emptying"].first_empty_round[0],
    )


# ----------------------------------------------------------------------
# Base plumbing
# ----------------------------------------------------------------------
class TestBase:
    def test_as_load_matrix(self):
        assert as_load_matrix(np.arange(4)).shape == (1, 4)
        assert as_load_matrix(np.zeros((3, 4))).shape == (3, 4)
        with pytest.raises(ConfigurationError):
            as_load_matrix(np.zeros((2, 2, 2)))

    def test_observer_list_coerce(self):
        assert BatchedObserverList.coerce(None).is_empty
        tracker = BatchedMaxLoadTracker()
        single = BatchedObserverList.coerce(tracker)
        assert len(single) == 1
        seen = []
        mixed = BatchedObserverList.coerce([tracker, lambda t, loads: seen.append(t)])
        mixed.observe(3, np.array([[1, 0]]))
        assert seen == [3]
        with pytest.raises(ConfigurationError):
            BatchedObserverList.coerce(42)

    def test_as_batched_adapter(self):
        seq = MaxLoadTracker()
        adapter = as_batched(seq)
        adapter.observe(1, np.array([[3, 0]]))
        assert seq.series == [3]
        with pytest.raises(ConfigurationError):
            adapter.observe(2, np.zeros((2, 2), dtype=np.int64))

    def test_tracker_shape_rebind_rejected(self):
        tracker = BatchedMaxLoadTracker()
        tracker.observe(1, np.zeros((2, 4), dtype=np.int64))
        with pytest.raises(ConfigurationError):
            tracker.observe(2, np.zeros((3, 4), dtype=np.int64))


# ----------------------------------------------------------------------
# Stream equality at R == 1 (satellite: rbb, d_choices, faulty)
# ----------------------------------------------------------------------
class TestStreamEquality:
    ROUNDS = 120

    def test_rbb(self):
        seq_proc = RepeatedBallsIntoBins(32, seed=11)
        seq = _sequential_trackers()
        seq_proc.run(self.ROUNDS, observers=list(seq.values()))

        bat_proc = BatchedRepeatedBallsIntoBins(32, 1, seed=11, kernel="numpy")
        bat = _batched_trackers()
        bat_proc.run(self.ROUNDS, observers=list(bat.values()))
        _assert_stream_equal(seq, bat)

    def test_d_choices(self):
        seq_proc = DChoicesProcess(32, d=2, seed=12)
        seq = _sequential_trackers()
        seq_proc.run(self.ROUNDS, observers=list(seq.values()))

        bat_proc = BatchedDChoices(32, 1, d=2, seed=12)
        bat = _batched_trackers()
        bat_proc.run(self.ROUNDS, observers=list(bat.values()))
        _assert_stream_equal(seq, bat)

    def test_faulty(self):
        """With one shared generator and a single-draw adversary, the
        batched fault injector is stream-compatible with FaultyProcess."""
        schedule = FaultSchedule.every(25)
        seq_proc = FaultyProcess(
            32,
            adversary="concentrate",
            schedule=schedule,
            seed=np.random.default_rng(13),
        )
        seq = _sequential_trackers()
        seq_proc.run(self.ROUNDS, observers=list(seq.values()))

        gen = np.random.default_rng(13)
        inner = BatchedRepeatedBallsIntoBins(32, 1, seed=gen, kernel="numpy")
        bat_proc = BatchedFaultyProcess(
            32,
            1,
            adversary="concentrate",
            schedule=schedule,
            seed=gen,
            process=inner,
        )
        bat = _batched_trackers()
        bat_proc.run(self.ROUNDS, observers=list(bat.values()))
        _assert_stream_equal(seq, bat)

    def test_sequential_observer_rides_batched_run(self):
        """A legacy sequential tracker wrapped with as_batched sees the
        same stream as its batched counterpart on one R == 1 run."""
        seq = MaxLoadTracker()
        bat = BatchedMaxLoadTracker()
        process = BatchedRepeatedBallsIntoBins(16, 1, seed=14, kernel="numpy")
        process.run(50, observers=[as_batched(seq), bat])
        assert seq.series == [int(v) for v in bat.as_array()[:, 0]]


# ----------------------------------------------------------------------
# Engine-level metrics= collection
# ----------------------------------------------------------------------
class TestEnsembleMetrics:
    def test_both_engines_share_payload_schema(self):
        spec = EnsembleSpec(
            n_bins=32,
            n_replicas=5,
            rounds=30,
            metrics="max_load,empty_bins,legitimacy,histogram,bin_emptying",
        )
        for engine, kwargs in (
            ("batched", {"kernel": "numpy"}),
            ("sequential", {}),
        ):
            result = run_ensemble(spec, seed=0, engine=engine, **kwargs)
            assert set(result.metrics) == set(spec.metrics)
            payload = result.metrics["max_load"]
            assert payload.series["max_load"].shape == (30, 5)
            assert payload.rounds.tolist() == list(range(1, 31))
            # tracker window agrees with the engine's exact window at stride 1
            assert np.array_equal(
                payload.summaries["window_max"], result.max_load_seen
            )
            assert result.metrics["histogram"].arrays["counts"].shape == (5, 257)
            assert result.metrics["bin_emptying"].arrays[
                "first_empty_round"
            ].shape == (5, 32)

    def test_faulty_engines_share_observation_grid(self):
        spec = EnsembleSpec(
            n_bins=32,
            n_replicas=3,
            rounds=60,
            process="faulty",
            adversary="concentrate",
            fault_period=20,
            metrics="max_load",
            observe_every=4,
        )
        grids = []
        for engine, kwargs in (
            ("batched", {"kernel": "numpy"}),
            ("sequential", {}),
        ):
            result = run_ensemble(spec, seed=1, engine=engine, **kwargs)
            grids.append(result.metrics["max_load"].rounds.tolist())
        # the observation stride restarts at each fault in both engines
        assert grids[0] == grids[1]

    def test_sharded_batched_concatenates_payloads(self):
        spec = EnsembleSpec(n_bins=16, n_replicas=7, rounds=20, metrics="max_load")
        result = run_ensemble(
            spec, seed=2, engine="batched", kernel="numpy", n_workers=2
        )
        payload = result.metrics["max_load"]
        assert payload.series["max_load"].shape == (20, 7)
        assert payload.summaries["window_max"].shape == (7,)

    def test_aggregate_ensemble_metric_columns(self):
        spec = EnsembleSpec(
            n_bins=16, n_replicas=4, rounds=10, metrics=("max_load", "legitimacy")
        )
        result = run_ensemble(spec, seed=3, engine="batched", kernel="numpy")
        agg = aggregate_ensemble(result)
        assert agg.column("max_load_window_max").tolist() == [
            float(v) for v in result.max_load_seen
        ]
        assert "legitimacy_violations" in agg.columns
        assert "legitimacy_stable_after_convergence" in agg.columns

    def test_metrics_validation(self):
        with pytest.raises(ConfigurationError, match="unknown metric"):
            EnsembleSpec(n_bins=8, n_replicas=1, rounds=1, metrics="max_loda")
        with pytest.raises(ConfigurationError, match="twice"):
            EnsembleSpec(
                n_bins=8, n_replicas=1, rounds=1, metrics="max_load,max_load"
            )
        with pytest.raises(ConfigurationError, match="observe_every"):
            EnsembleSpec(n_bins=8, n_replicas=1, rounds=1, observe_every=0)
        spec = EnsembleSpec(
            n_bins=8, n_replicas=1, rounds=1, metrics=" max_load , trace "
        )
        assert spec.metrics == ("max_load", "trace")

    def test_normalize_and_registry(self):
        assert normalize_metric_names(None) == ()
        assert normalize_metric_names("") == ()
        assert normalize_metric_names(["empty_bins"]) == ("empty_bins",)
        assert set(METRIC_NAMES) >= {"max_load", "trace", "bin_emptying"}
        built = build_trackers("legitimacy", beta=3.0)
        assert built[0][0] == "legitimacy" and built[0][1].beta == 3.0

    @pytest.mark.parametrize("engine", ["sequential", "batched"])
    def test_zero_round_run_keeps_replica_shaped_payloads(self, engine):
        """Every replica passes the early-stop pre-check: trackers never
        observe, yet payload summaries must stay (R,)-shaped."""
        spec = EnsembleSpec(
            n_bins=64,
            n_replicas=4,
            rounds=10,
            stop_when_legitimate=True,  # balanced start is already legitimate
            metrics="max_load,legitimacy",
        )
        result = run_ensemble(spec, seed=12, engine=engine, kernel="numpy")
        assert (result.rounds == 0).all()
        agg = aggregate_ensemble(result)
        assert agg.column("max_load_window_max").shape == (4,)
        assert agg.column("legitimacy_first_legitimate_round").tolist() == [
            -1.0
        ] * 4
        assert result.metrics["max_load"].series["max_load"].shape == (0, 4)

    def test_summary_only_trackers_do_not_log_rounds(self):
        """Streaming (summary-only) trackers keep O(R) state: no per-round
        index log, unlike series-recording trackers."""
        legitimacy = BatchedLegitimacyTracker()
        series = BatchedMaxLoadTracker()
        no_series = BatchedMaxLoadTracker(record_series=False)
        process = BatchedRepeatedBallsIntoBins(16, 2, seed=13, kernel="numpy")
        process.run(50, observers=[legitimacy, series, no_series])
        assert legitimacy.rounds == [] and legitimacy.rounds_observed == 50
        assert no_series.rounds == [] and no_series.rounds_observed == 50
        assert len(series.rounds) == 50
        assert np.array_equal(no_series.window_max, series.window_max)

    def test_observe_every_thins_series(self):
        spec = EnsembleSpec(
            n_bins=16, n_replicas=2, rounds=20, metrics="max_load", observe_every=8
        )
        result = run_ensemble(spec, seed=4, engine="batched", kernel="numpy")
        # observations at rounds 8, 16 and the final round 20
        assert result.metrics["max_load"].rounds.tolist() == [8, 16, 20]


# ----------------------------------------------------------------------
# Native segmentation
# ----------------------------------------------------------------------
@needs_native
class TestNativeObservation:
    def test_segmented_run_matches_whole_window(self):
        plain = BatchedRepeatedBallsIntoBins(64, 10, seed=21, kernel="native").run(400)
        tracker = BatchedMaxLoadTracker()
        observed = BatchedRepeatedBallsIntoBins(64, 10, seed=21, kernel="native").run(
            400, observers=[tracker], observe_every=16
        )
        assert np.array_equal(plain.final_loads, observed.final_loads)
        assert np.array_equal(plain.max_load_seen, observed.max_load_seen)
        assert np.array_equal(
            plain.first_legitimate_round, observed.first_legitimate_round
        )
        assert tracker.rounds_observed == 25  # ceil(400 / 16)
        assert tracker.rounds[-1] == 400

    def test_run_ensemble_native_metrics(self):
        spec = EnsembleSpec(
            n_bins=64,
            n_replicas=8,
            rounds=100,
            metrics="max_load,empty_bins",
            observe_every=10,
        )
        result = run_ensemble(spec, seed=22, engine="batched", kernel="native")
        assert result.kernel == "native"
        assert result.metrics["max_load"].series["max_load"].shape == (10, 8)
        # stride-10 window over observed rounds is bounded by the exact window
        assert (
            result.metrics["max_load"].summaries["window_max"]
            <= result.max_load_seen
        ).all()


# ----------------------------------------------------------------------
# Pre-check window_max_load regression (satellite)
# ----------------------------------------------------------------------
class TestPreCheckReportsObservedValue:
    def _boundary_config(self, n_bins: int, max_load: int) -> np.ndarray:
        """A configuration whose maximum load is exactly ``max_load``."""
        loads = np.ones(n_bins, dtype=np.int64)
        loads[0] = max_load
        loads[1 : max_load] = 0
        assert loads.sum() == n_bins
        return loads

    @pytest.mark.parametrize("engine", ["sequential", "batched"])
    def test_already_legitimate_reports_observed_max(self, engine):
        n = 64
        threshold = legitimacy_threshold(n, DEFAULT_BETA)
        at_threshold = self._boundary_config(n, int(threshold))
        spec = EnsembleSpec(
            n_bins=n,
            n_replicas=3,
            rounds=50,
            start=np.tile(at_threshold, (3, 1)),
            stop_when_legitimate=True,
        )
        result = run_ensemble(spec, seed=5, engine=engine, kernel="numpy")
        assert (result.rounds == 0).all()
        assert (result.first_legitimate_round == 0).all()
        # the fixed behavior: the observed max load, not 0
        assert (result.max_load_seen == int(threshold)).all()
        assert (
            result.min_empty_bins_seen == (at_threshold == 0).sum()
        ).all()

    @pytest.mark.parametrize("engine", ["sequential", "batched"])
    def test_just_above_threshold_runs(self, engine):
        n = 64
        threshold = legitimacy_threshold(n, DEFAULT_BETA)
        above = self._boundary_config(n, int(threshold) + 1)
        spec = EnsembleSpec(
            n_bins=n,
            n_replicas=2,
            rounds=50,
            start=np.tile(above, (2, 1)),
            stop_when_legitimate=True,
        )
        result = run_ensemble(spec, seed=6, engine=engine, kernel="numpy")
        assert (result.rounds > 0).all()
        assert (result.max_load_seen > 0).all()

    def test_window_record_shim_removed(self):
        # the PR-4 deprecation shim was scheduled for exactly one release;
        # the shared loop in repro.metrics.window is the only spelling now
        import repro.parallel.ensemble as ensemble_module

        assert not hasattr(ensemble_module, "_window_record")

    def test_run_replica_window_matches_process_run(self):
        a = RepeatedBallsIntoBins(32, seed=8)
        b = RepeatedBallsIntoBins(32, seed=8)
        outcome = a.run(40)
        record = run_replica_window(b, 40)
        assert record["window_max_load"] == outcome.max_load_seen
        assert record["min_empty_bins"] == outcome.min_empty_bins_seen
        assert np.array_equal(record["final_loads"], np.asarray(a.loads))


# ----------------------------------------------------------------------
# Trace memory guard (satellite)
# ----------------------------------------------------------------------
class TestTraceMemoryGuard:
    def test_sequential_guard(self):
        recorder = TraceRecorder(max_elements=16)
        loads = np.ones(8, dtype=np.int64)
        recorder.observe(0, loads)
        recorder.observe(1, loads)
        with pytest.raises(ConfigurationError, match="element budget"):
            recorder.observe(2, loads)
        assert len(recorder.snapshots) == 2  # the refused snapshot is not stored

    def test_batched_guard(self):
        recorder = BatchedTraceRecorder(max_elements=40)
        loads = np.ones((2, 10), dtype=np.int64)
        recorder.observe(0, loads)
        recorder.observe(1, loads)
        with pytest.raises(ConfigurationError, match="element budget"):
            recorder.observe(2, loads)

    def test_stride_spaces_out_budget(self):
        recorder = BatchedTraceRecorder(stride=4, max_elements=40)
        loads = np.ones((2, 10), dtype=np.int64)
        for t in range(8):  # snapshots only at t = 0 and t = 4
            recorder.observe(t, loads)
        assert recorder.snapshot_rounds == [0, 4]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BatchedTraceRecorder(max_elements=0)
        with pytest.raises(ConfigurationError):
            TraceRecorder(max_elements=0)
        with pytest.raises(ConfigurationError):
            BatchedTraceRecorder(stride=0)


# ----------------------------------------------------------------------
# Payload mechanics
# ----------------------------------------------------------------------
class TestMetricPayload:
    def test_concatenate_pads_shorter_shards(self):
        a = MetricPayload(
            name="max_load",
            rounds=np.array([1, 2, 3]),
            series={"max_load": np.array([[4], [3], [2]])},
            summaries={"window_max": np.array([4])},
        )
        b = MetricPayload(
            name="max_load",
            rounds=np.array([1]),
            series={"max_load": np.array([[9]])},
            summaries={"window_max": np.array([9])},
        )
        merged = MetricPayload.concatenate([a, b])
        assert merged.rounds.tolist() == [1, 2, 3]
        # shard b froze after one observation: its last value is repeated
        assert merged.series["max_load"].tolist() == [[4, 9], [3, 9], [2, 9]]
        assert merged.summaries["window_max"].tolist() == [4, 9]

    def test_concatenate_rejects_mismatches(self):
        a = MetricPayload(name="max_load", summaries={"window_max": np.array([1])})
        b = MetricPayload(name="empty_bins", summaries={"window_min": np.array([1])})
        with pytest.raises(ConfigurationError):
            MetricPayload.concatenate([a, b])
        with pytest.raises(ConfigurationError):
            MetricPayload.concatenate([])

    def test_ensemble_concatenate_merges_metrics(self):
        spec = EnsembleSpec(n_bins=16, n_replicas=2, rounds=10, metrics="max_load")
        first = run_ensemble(spec, seed=9, engine="batched", kernel="numpy")
        second = run_ensemble(spec, seed=10, engine="batched", kernel="numpy")
        merged = EnsembleResult.concatenate([first, second])
        assert merged.metrics["max_load"].series["max_load"].shape == (10, 4)
        mismatched = run_ensemble(
            EnsembleSpec(n_bins=16, n_replicas=2, rounds=10, metrics="empty_bins"),
            seed=11,
            engine="batched",
            kernel="numpy",
        )
        with pytest.raises(ConfigurationError):
            EnsembleResult.concatenate([first, mismatched])


# ----------------------------------------------------------------------
# Streaming adapters
# ----------------------------------------------------------------------
class TestAdapters:
    def test_streaming_moments_observer(self):
        obs = StreamingMomentsObserver("max_load", tail=True)
        process = BatchedRepeatedBallsIntoBins(16, 4, seed=30, kernel="numpy")
        result = process.run(25, observers=[obs])
        assert obs.moments.count == 25 * 4
        assert obs.moments.maximum == float(result.max_load_seen.max())
        assert obs.tail.tail(int(result.max_load_seen.max())) >= 1
        with pytest.raises(ConfigurationError):
            StreamingMomentsObserver("nope")

    def test_summarize_payloads_matches_batch(self):
        spec = EnsembleSpec(n_bins=16, n_replicas=6, rounds=12, metrics="max_load")
        result = run_ensemble(spec, seed=31, engine="batched", kernel="numpy")
        summary = summarize_payloads(result.metrics)
        window = summary["max_load"]["window_max"]
        assert window["count"] == 6
        assert window["mean"] == pytest.approx(result.max_load_seen.mean())
        assert window["max"] == float(result.max_load_seen.max())


# ----------------------------------------------------------------------
# Store + sweep integration
# ----------------------------------------------------------------------
class TestStoreIntegration:
    def _sweep_spec(self) -> SweepSpec:
        return SweepSpec(
            name="observed-demo",
            base={
                "n_replicas": 4,
                "rounds": 12,
                "metrics": "max_load,legitimacy",
                "observe_every": 3,
            },
            grid={"n_bins": [16, 32]},
        )

    def test_observed_summaries_and_shards(self, tmp_path):
        store = ResultStore.create(tmp_path / "store")
        report = run_sweep(self._sweep_spec(), store, seed=0, kernel="numpy")
        assert report.finished
        record = store.records()[0]
        observed = record["summary"]["observed"]
        assert set(observed) == {"max_load", "legitimacy"}
        assert observed["max_load"]["window_max"]["count"] == 4
        row = store.select(n=16).rows[0]
        assert "max_load_window_max_mean" in row
        assert "legitimacy_violations_mean" in row
        shard = store.replicas(record["point_id"])
        assert shard["observed.max_load.series.max_load"].shape == (4, 4)
        assert shard["observed.max_load.rounds"].tolist() == [3, 6, 9, 12]
        merged = store.summarize_observed("max_load", "window_max")
        assert merged.count == 8  # both points
        with pytest.raises(ConfigurationError, match="no summary"):
            store.summarize_observed("max_load", "nope")
        with pytest.raises(ConfigurationError, match="unknown observed metric"):
            store.summarize_observed("max_loda", "window_max")

    def test_in_memory_store_round_trip(self):
        store = ResultStore.in_memory()
        run_sweep(self._sweep_spec(), store, seed=1, kernel="numpy")
        record = store.records()[0]
        shard = store.replicas(record["point_id"])
        assert "observed.legitimacy.summary.violations" in shard

    def test_points_without_metrics_stay_unchanged(self, tmp_path):
        spec = SweepSpec(
            name="plain-demo",
            base={"n_replicas": 2, "rounds": 4},
            grid={"n_bins": [8]},
        )
        store = ResultStore.create(tmp_path / "plain")
        run_sweep(spec, store, seed=2, kernel="numpy")
        record = store.records()[0]
        assert "observed" not in record["summary"]
        assert not any(
            key.startswith("observed.")
            for key in store.replicas(record["point_id"])
        )
