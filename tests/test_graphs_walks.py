"""Unit tests for repro.graphs.walks (constrained parallel random walks)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import LoadConfiguration
from repro.core.process import RepeatedBallsIntoBins
from repro.errors import ConfigurationError
from repro.graphs.generators import complete_graph, cycle_graph, star_graph
from repro.graphs.walks import ConstrainedParallelWalks


class TestConstruction:
    def test_default_one_token_per_node(self):
        walks = ConstrainedParallelWalks(cycle_graph(8), seed=0)
        assert walks.n_tokens == 8
        assert walks.loads.tolist() == [1] * 8

    def test_custom_token_count(self):
        walks = ConstrainedParallelWalks(cycle_graph(8), n_tokens=20, seed=0)
        assert walks.n_tokens == 20
        assert int(walks.loads.sum()) == 20

    def test_initial_configuration(self):
        initial = LoadConfiguration.all_in_one(8)
        walks = ConstrainedParallelWalks(cycle_graph(8), initial=initial, seed=0)
        assert walks.max_load == 8

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ConstrainedParallelWalks(cycle_graph(8), initial=LoadConfiguration.balanced(4))
        with pytest.raises(ConfigurationError):
            ConstrainedParallelWalks(cycle_graph(8), n_tokens=-1)
        with pytest.raises(ConfigurationError):
            ConstrainedParallelWalks(
                cycle_graph(8), n_tokens=5, initial=LoadConfiguration.balanced(8)
            )


class TestDynamics:
    def test_token_conservation_constrained(self):
        walks = ConstrainedParallelWalks(cycle_graph(16), seed=1)
        for _ in range(100):
            loads = walks.step()
            assert int(loads.sum()) == 16
            assert int(loads.min()) >= 0

    def test_token_conservation_unconstrained(self):
        walks = ConstrainedParallelWalks(cycle_graph(16), constrained=False, seed=1)
        for _ in range(100):
            assert int(walks.step().sum()) == 16

    def test_tokens_stay_on_neighbors_cycle(self):
        # on a cycle with a single token, the token must move to an adjacent node
        initial = LoadConfiguration.from_loads([1, 0, 0, 0, 0, 0])
        walks = ConstrainedParallelWalks(cycle_graph(6), initial=initial, seed=2)
        position = 0
        for _ in range(30):
            loads = walks.step()
            new_position = int(np.flatnonzero(loads)[0])
            assert new_position in ((position - 1) % 6, (position + 1) % 6)
            position = new_position

    def test_deterministic_given_seed(self):
        a = ConstrainedParallelWalks(cycle_graph(12), seed=5)
        b = ConstrainedParallelWalks(cycle_graph(12), seed=5)
        for _ in range(20):
            assert np.array_equal(a.step(), b.step())

    def test_complete_graph_matches_rbb_statistics(self):
        """On the clique with self-loops the constrained walks are exactly the
        repeated balls-into-bins process; check the empty-bin statistics agree."""
        n = 128
        rounds = 200
        walks = ConstrainedParallelWalks(complete_graph(n), seed=3)
        rbb = RepeatedBallsIntoBins(n, seed=4)
        walk_empty = []
        rbb_empty = []
        for _ in range(rounds):
            walk_empty.append(int(np.count_nonzero(walks.step() == 0)))
            rbb_empty.append(int(np.count_nonzero(rbb.step() == 0)))
        # same process, different seeds: means agree within a few percent of n
        assert abs(np.mean(walk_empty) - np.mean(rbb_empty)) < 0.05 * n

    def test_star_graph_congests_the_hub(self):
        walks = ConstrainedParallelWalks(star_graph(32), seed=6)
        result = walks.run(64)
        # every leaf forwards to the hub, so the hub accumulates far more than log n
        assert result.max_load_seen > 8


class TestRun:
    def test_result_fields(self):
        walks = ConstrainedParallelWalks(cycle_graph(16), seed=0)
        result = walks.run(30)
        assert result.rounds == 30
        assert result.final_configuration.n_bins == 16
        assert result.max_load_seen >= 1
        assert 0 <= result.min_empty_nodes_seen <= 16

    def test_negative_rounds_rejected(self):
        with pytest.raises(ConfigurationError):
            ConstrainedParallelWalks(cycle_graph(8), seed=0).run(-1)

    def test_observer_called(self):
        calls = []
        ConstrainedParallelWalks(cycle_graph(8), seed=0).run(
            5, observers=lambda t, loads: calls.append(t)
        )
        assert calls == [1, 2, 3, 4, 5]

    def test_observer_sees_load_matrix_at_stride(self):
        # walks.run drives the unified (R, n) observer pipeline: batched
        # trackers attach unchanged, and observe_every thins the stream
        # (the final round is always observed)
        shapes = []
        calls = []
        ConstrainedParallelWalks(cycle_graph(8), seed=0).run(
            10,
            observers=lambda t, loads: (calls.append(t), shapes.append(loads.shape)),
            observe_every=4,
        )
        assert calls == [4, 8, 10]
        assert shapes == [(1, 8)] * 3

    def test_zero_round_run_reports_observed_state(self):
        # regression (PR 4's window-stat bug class): max_load_seen used to
        # start at 0 and min_empty at n, so a zero-round call lied
        initial = LoadConfiguration.all_in_one(8)
        walks = ConstrainedParallelWalks(cycle_graph(8), initial=initial, seed=0)
        result = walks.run(0)
        assert result.rounds == 0
        assert result.max_load_seen == 8
        assert result.min_empty_nodes_seen == 7

    def test_preloaded_state_seeds_the_window(self):
        # a heavily loaded hub must show up in the window even if the first
        # simulated round already disperses it
        initial = LoadConfiguration.all_in_one(16)
        walks = ConstrainedParallelWalks(complete_graph(16), initial=initial, seed=1)
        result = walks.run(64)
        assert result.max_load_seen == 16  # the starting configuration
        # second call: the window restarts from the current (mixed) state
        start_max = walks.max_load
        start_empty = walks.num_empty_nodes
        again = walks.run(3)
        assert again.max_load_seen >= start_max
        assert again.min_empty_nodes_seen <= start_empty

    def test_ring_accumulates_more_than_clique(self):
        """The Section 5 phenomenon at small scale: over the same window the
        ring shows at least as much congestion as the clique (usually more)."""
        n = 64
        rounds = 8 * n
        ring = ConstrainedParallelWalks(cycle_graph(n), seed=7).run(rounds).max_load_seen
        clique = ConstrainedParallelWalks(complete_graph(n), seed=7).run(rounds).max_load_seen
        assert ring >= clique - 1
