"""Unit tests for repro.analysis.bounds and repro.analysis.concentration."""

from __future__ import annotations

import math

import pytest

from repro.analysis.bounds import (
    convergence_time_bound,
    coupon_collector_time,
    empty_bins_lower_bound,
    log_bound,
    loglog_bound,
    multi_token_cover_bound,
    sqrt_window_bound,
    tetris_emptying_bound,
)
from repro.analysis.concentration import (
    binomial_tail_exact,
    chernoff_lower_tail,
    chernoff_upper_tail,
    hoeffding_bound,
    lemma1_empty_bins_bound,
    lemma4_tetris_bound,
    lemma5_exponent,
)
from repro.errors import ConfigurationError


class TestBoundCurves:
    def test_log_bound(self):
        assert log_bound(math.e**2) == pytest.approx(2.0, rel=1e-6)
        assert log_bound(1024, constant=3.0) == pytest.approx(3 * math.log(1024))
        assert log_bound(1) == pytest.approx(1.0)  # clamped
        with pytest.raises(ConfigurationError):
            log_bound(0)

    def test_loglog_bound(self):
        n = 2**16
        assert loglog_bound(n) == pytest.approx(math.log(n) / math.log(math.log(n)))
        assert loglog_bound(2) == 1.0
        # the one-shot curve grows more slowly than the log curve
        assert loglog_bound(2**20) < log_bound(2**20)

    def test_sqrt_window_bound(self):
        assert sqrt_window_bound(25) == pytest.approx(5.0)
        assert sqrt_window_bound(25, constant=2.0) == pytest.approx(10.0)
        with pytest.raises(ConfigurationError):
            sqrt_window_bound(-1)

    def test_coupon_collector(self):
        assert coupon_collector_time(1) == pytest.approx(1.0)
        assert coupon_collector_time(2) == pytest.approx(3.0)
        # asymptotic branch is close to the exact sum around the crossover
        assert coupon_collector_time(20000) == pytest.approx(
            20000 * (math.log(20000) + 0.5772156649), rel=1e-3
        )

    def test_multi_token_cover_bound(self):
        n = 256
        assert multi_token_cover_bound(n) == pytest.approx(n * math.log(n) ** 2)
        assert multi_token_cover_bound(n, constant=2.0) == pytest.approx(2 * n * math.log(n) ** 2)

    def test_tetris_and_convergence_and_empty(self):
        assert tetris_emptying_bound(100) == 500
        assert convergence_time_bound(100, constant=2.0) == 200.0
        assert empty_bins_lower_bound(100) == 25.0
        with pytest.raises(ConfigurationError):
            tetris_emptying_bound(0)


class TestChernoffBounds:
    def test_lower_tail_formula(self):
        assert chernoff_lower_tail(100, 0.5) == pytest.approx(math.exp(-0.25 * 100 / 2))

    def test_upper_tail_formula(self):
        assert chernoff_upper_tail(100, 0.5) == pytest.approx(math.exp(-0.25 * 100 / 3))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            chernoff_lower_tail(-1, 0.5)
        with pytest.raises(ConfigurationError):
            chernoff_lower_tail(10, 0.0)
        with pytest.raises(ConfigurationError):
            chernoff_upper_tail(10, 1.0)

    def test_bounds_dominate_exact_binomial_tails(self):
        """Appendix A's inequalities really do bound the exact tails."""
        n, p = 400, 0.5
        mu = n * p
        for delta in (0.1, 0.2, 0.4):
            exact_low = binomial_tail_exact(n, p, (1 - delta) * mu, upper=False)
            exact_high = binomial_tail_exact(n, p, (1 + delta) * mu, upper=True)
            assert exact_low <= chernoff_lower_tail(mu, delta) + 1e-12
            assert exact_high <= chernoff_upper_tail(mu, delta) + 1e-12

    def test_hoeffding(self):
        assert hoeffding_bound(100, 0.1) == pytest.approx(math.exp(-2 * 100 * 0.01))
        with pytest.raises(ConfigurationError):
            hoeffding_bound(0, 0.1)
        with pytest.raises(ConfigurationError):
            hoeffding_bound(10, -0.1)

    def test_binomial_tail_exact_validation(self):
        assert binomial_tail_exact(10, 0.5, 0, upper=True) == pytest.approx(1.0)
        assert binomial_tail_exact(10, 0.5, 10, upper=False) == pytest.approx(1.0)
        with pytest.raises(ConfigurationError):
            binomial_tail_exact(-1, 0.5, 1)
        with pytest.raises(ConfigurationError):
            binomial_tail_exact(10, 1.5, 1)


class TestLemmaSpecificBounds:
    def test_lemma1_bound_decays_with_n(self):
        assert lemma1_empty_bins_bound(1000) < lemma1_empty_bins_bound(100) < 1.0
        with pytest.raises(ConfigurationError):
            lemma1_empty_bins_bound(0)
        with pytest.raises(ConfigurationError):
            lemma1_empty_bins_bound(10, epsilon=1.5)

    def test_lemma4_bound(self):
        assert lemma4_tetris_bound(180) == pytest.approx(math.exp(-1.0))
        with pytest.raises(ConfigurationError):
            lemma4_tetris_bound(0)

    def test_lemma5_exponent(self):
        assert lemma5_exponent(144) == pytest.approx(math.exp(-1.0))
        assert lemma5_exponent(0) == 1.0
        with pytest.raises(ConfigurationError):
            lemma5_exponent(-1)

    def test_lemma1_bound_is_conservative_vs_simulation(self):
        """The probability of seeing fewer than n/4 empty bins in one round of
        the real process is far below the (already tiny) analytic bound."""
        from repro.core.process import RepeatedBallsIntoBins

        n = 256
        process = RepeatedBallsIntoBins(n, seed=0)
        failures = 0
        rounds = 400
        process.step()
        for _ in range(rounds):
            loads = process.step()
            if (loads == 0).sum() < n / 4:
                failures += 1
        assert failures == 0
        assert lemma1_empty_bins_bound(n) < 0.6
