"""Unit tests for repro.core.metrics and repro.core.observers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.metrics import (
    BinEmptyingTracker,
    EmptyBinsTracker,
    LegitimacyTracker,
    LoadHistogramTracker,
    MaxLoadTracker,
    TraceRecorder,
)
from repro.core.observers import CallbackObserver, ObserverList


def feed(tracker, snapshots):
    """Feed a list of load vectors to a tracker as successive rounds."""
    for t, snapshot in enumerate(snapshots, start=1):
        tracker.observe(t, np.asarray(snapshot, dtype=np.int64))


class TestMaxLoadTracker:
    def test_series_and_window_max(self):
        tracker = MaxLoadTracker()
        feed(tracker, [[1, 2, 0], [0, 3, 0], [1, 1, 1]])
        assert tracker.series == [2, 3, 1]
        assert tracker.window_max == 3
        assert tracker.final == 1
        assert tracker.as_array().tolist() == [2, 3, 1]

    def test_without_series(self):
        tracker = MaxLoadTracker(record_series=False)
        feed(tracker, [[1, 2], [4, 0]])
        assert tracker.series == []
        assert tracker.window_max == 4
        assert tracker.final == 4

    def test_final_none_before_observation(self):
        assert MaxLoadTracker().final is None


class TestEmptyBinsTracker:
    def test_counts_and_minimum(self):
        tracker = EmptyBinsTracker()
        feed(tracker, [[0, 0, 2], [1, 1, 0], [1, 1, 1]])
        assert tracker.series == [2, 1, 0]
        assert tracker.window_min == 0
        assert tracker.min_fraction == 0.0

    def test_always_at_least(self):
        tracker = EmptyBinsTracker()
        feed(tracker, [[0, 0, 2, 2], [0, 2, 0, 2]])
        assert tracker.always_at_least(0.25)
        assert tracker.always_at_least(0.5)
        assert not tracker.always_at_least(0.75)

    def test_empty_tracker(self):
        tracker = EmptyBinsTracker()
        assert tracker.min_fraction is None
        assert not tracker.always_at_least()


class TestLegitimacyTracker:
    def test_converged_and_stable(self):
        tracker = LegitimacyTracker(beta=1.0)
        # n = 8 -> threshold = log(8) ~ 2.08
        feed(tracker, [[5, 0, 0, 0, 1, 1, 1, 0], [2, 1, 1, 1, 1, 1, 1, 0], [1] * 8])
        assert tracker.first_legitimate_round == 2
        assert tracker.converged
        assert tracker.stable_after_convergence
        assert tracker.violations == 1

    def test_violation_after_convergence(self):
        tracker = LegitimacyTracker(beta=1.0)
        feed(tracker, [[1] * 8, [9, 0, 0, 0, 0, 0, 0, 0], [1] * 8])
        assert tracker.first_legitimate_round == 1
        assert tracker.first_violation_after_hit == 2
        assert not tracker.stable_after_convergence

    def test_never_converged(self):
        tracker = LegitimacyTracker(beta=1.0)
        feed(tracker, [[8, 0, 0, 0, 0, 0, 0, 0]])
        assert not tracker.converged
        assert not tracker.stable_after_convergence


class TestLoadHistogramTracker:
    def test_distribution_sums_to_one(self):
        tracker = LoadHistogramTracker()
        feed(tracker, [[0, 1, 2], [1, 1, 1]])
        dist = tracker.distribution()
        assert dist.sum() == pytest.approx(1.0)
        # 6 observations total: loads 0,1,2,1,1,1 -> one zero, four ones, one two
        assert tracker.counts[0] == 1
        assert tracker.counts[1] == 4
        assert tracker.counts[2] == 1

    def test_mean_load(self):
        tracker = LoadHistogramTracker()
        feed(tracker, [[0, 2], [1, 1]])
        assert tracker.mean_load() == pytest.approx(1.0)

    def test_overflow_counted(self):
        tracker = LoadHistogramTracker(max_tracked_load=2)
        feed(tracker, [[5, 0]])
        assert tracker.overflow == 1
        assert tracker.counts[2] == 1  # clipped into the top bucket

    def test_empty_distribution(self):
        tracker = LoadHistogramTracker()
        assert tracker.distribution().sum() == 0.0


class TestTraceRecorder:
    def test_records_with_stride(self):
        recorder = TraceRecorder(stride=2)
        feed(recorder, [[1, 1], [2, 0], [0, 2], [1, 1]])
        assert recorder.rounds == [2, 4]
        assert recorder.as_matrix().shape == (2, 2)

    def test_snapshots_are_copies(self):
        recorder = TraceRecorder()
        loads = np.array([1, 1], dtype=np.int64)
        recorder.observe(1, loads)
        loads[0] = 9
        assert recorder.snapshots[0].tolist() == [1, 1]

    def test_invalid_stride(self):
        with pytest.raises(ValueError):
            TraceRecorder(stride=0)

    def test_empty_matrix(self):
        assert TraceRecorder().as_matrix().shape == (0, 0)


class TestBinEmptyingTracker:
    def test_first_empty_rounds(self):
        tracker = BinEmptyingTracker()
        feed(tracker, [[1, 0, 2], [0, 1, 1], [0, 0, 0]])
        assert tracker.all_emptied
        assert tracker.first_empty_round.tolist() == [2, 1, 3]
        assert tracker.last_first_empty == 3

    def test_not_all_emptied(self):
        tracker = BinEmptyingTracker()
        feed(tracker, [[1, 0], [2, 0]])
        assert not tracker.all_emptied
        assert tracker.last_first_empty is None


class TestObserverList:
    def test_fan_out(self):
        a = MaxLoadTracker()
        b = EmptyBinsTracker()
        group = ObserverList([a, b])
        group.observe(1, np.array([0, 3], dtype=np.int64))
        assert a.window_max == 3
        assert b.window_min == 1
        assert len(group) == 2

    def test_callable_wrapped(self):
        calls = []
        group = ObserverList([lambda t, loads: calls.append(t)])
        group.observe(5, np.zeros(2, dtype=np.int64))
        assert calls == [5]

    def test_invalid_observer_rejected(self):
        with pytest.raises(TypeError):
            ObserverList([42])

    def test_coerce_variants(self):
        assert ObserverList.coerce(None).is_empty
        single = ObserverList.coerce(MaxLoadTracker())
        assert len(single) == 1
        several = ObserverList.coerce([MaxLoadTracker(), MaxLoadTracker()])
        assert len(several) == 2
        passthrough = ObserverList.coerce(several)
        assert passthrough is several

    def test_callback_observer(self):
        seen = []
        obs = CallbackObserver(lambda t, loads: seen.append((t, int(loads.sum()))))
        obs.observe(3, np.array([1, 2], dtype=np.int64))
        assert seen == [(3, 3)]

    def test_iteration(self):
        trackers = [MaxLoadTracker(), EmptyBinsTracker()]
        group = ObserverList(trackers)
        assert list(group) == trackers
