"""Trace-invariant tests: conservation, observer consistency, bit-equality.

Each engine's recorded ``(T, R, n)`` trace is replayed through the
machine-checked invariants of :mod:`repro.verify.trace`; a deliberately
leaky kernel must be caught with a minimized, replayable counterexample.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batched import BatchedRepeatedBallsIntoBins
from repro.errors import ConfigurationError
from repro.verify import (
    check_trace_invariants,
    fused_vs_segmented,
    load_artifact,
    replay_artifact,
)
from repro.verify.cases import native_kernel_available

needs_native = pytest.mark.skipif(
    not native_kernel_available("rbb"), reason="native rbb kernel unavailable"
)

BASE_SPEC = {
    "n_bins": 4,
    "n_replicas": 8,
    "rounds": 12,
    "start": "all_in_one",
}


class TestInvariantsHold:
    def test_batched_numpy(self):
        result = check_trace_invariants(BASE_SPEC, seed=0)
        assert result.passed, [v.describe() for v in result.violations]

    def test_sequential(self):
        result = check_trace_invariants(BASE_SPEC, seed=1, engine="sequential")
        assert result.passed, [v.describe() for v in result.violations]

    @needs_native
    def test_batched_native_two_threads(self):
        result = check_trace_invariants(
            BASE_SPEC, seed=2, kernel="native", n_threads=2
        )
        assert result.passed, [v.describe() for v in result.violations]

    def test_faulty_process_conserves_across_injections(self):
        spec = {
            **BASE_SPEC,
            "process": "faulty",
            "adversary": "concentrate",
            "fault_period": 3,
            "start": "balanced",
        }
        result = check_trace_invariants(spec, seed=3)
        assert result.passed, [v.describe() for v in result.violations]

    def test_d_choices(self):
        spec = {**BASE_SPEC, "process": "d_choices", "d": 2}
        result = check_trace_invariants(spec, seed=4)
        assert result.passed, [v.describe() for v in result.violations]

    def test_graph_walks(self):
        spec = {
            **BASE_SPEC,
            "process": "graph_walks",
            "topology": "cycle:4",
            "constrained": True,
        }
        result = check_trace_invariants(spec, seed=5)
        assert result.passed, [v.describe() for v in result.violations]

    def test_observe_every_must_be_one(self):
        with pytest.raises(ConfigurationError):
            check_trace_invariants({**BASE_SPEC, "observe_every": 3}, seed=0)


def _leaky_advance(self):
    """Deliberate conservation bug: replica 0 loses one ball per round."""
    loads = self._loads
    nonempty = loads > 0
    counts = np.count_nonzero(nonempty, axis=1)
    if counts.any():
        loads -= nonempty
        total = int(counts.sum())
        destinations = self._rng.integers(0, self._n_bins, size=total)
        rows = np.repeat(np.arange(self._n_replicas), counts)
        flat = rows * self._n_bins + destinations
        loads += np.bincount(
            flat, minlength=self._n_replicas * self._n_bins
        ).reshape(self._n_replicas, self._n_bins)
        leak_bin = int(np.argmax(loads[0] > 0))
        if loads[0, leak_bin] > 0:
            loads[0, leak_bin] -= 1


def _inject_leak(monkeypatch):
    """Install the leaky kernel and silence the engine's own guard.

    A genuinely buggy kernel would not self-report, so the engine's
    internal ``_check_conservation`` is disabled too — the verifier must
    recompute conservation from the recorded trace on its own.
    """
    monkeypatch.setattr(BatchedRepeatedBallsIntoBins, "_advance", _leaky_advance)
    monkeypatch.setattr(
        BatchedRepeatedBallsIntoBins, "_check_conservation", lambda self: None
    )


class TestInjectedLeak:
    def test_leaky_kernel_violates_conservation_with_minimized_artifact(
        self, tmp_path, monkeypatch
    ):
        _inject_leak(monkeypatch)
        result = check_trace_invariants(BASE_SPEC, seed=6)
        assert not result.passed
        invariants = {v.invariant for v in result.violations}
        assert "ball_conservation" in invariants
        conservation = next(
            v for v in result.violations if v.invariant == "ball_conservation"
        )
        # the leak hits replica 0 at the very first observed round
        assert conservation.replica == 0

        paths = result.emit_artifacts(str(tmp_path))
        assert paths
        artifact = load_artifact(paths[0])
        assert artifact.kind == "invariant"
        history = artifact.violation["state_history"]
        # minimized: truncated at the first violating round, replica 0 only
        assert history
        assert history[-1]["round"] == conservation.round_index
        assert len(history[0]["loads"]) == BASE_SPEC["n_bins"]

        # replay against the fixed engine: the invariant holds again
        monkeypatch.undo()
        report = replay_artifact(paths[0])
        assert report.passed

    def test_leaky_kernel_replay_fails_while_bug_present(self, tmp_path, monkeypatch):
        _inject_leak(monkeypatch)
        result = check_trace_invariants(BASE_SPEC, seed=7)
        paths = result.emit_artifacts(str(tmp_path))
        report = replay_artifact(paths[0])
        assert not report.passed


@needs_native
class TestFusedVsSegmented:
    def test_bit_identical_at_stride_one(self):
        violations = fused_vs_segmented({**BASE_SPEC, "n_replicas": 16}, seed=0)
        assert violations == [], [v.describe() for v in violations]

    def test_bit_identical_at_observation_stride_three(self):
        spec = {**BASE_SPEC, "n_replicas": 16, "observe_every": 3}
        violations = fused_vs_segmented(spec, seed=1)
        assert violations == [], [v.describe() for v in violations]

    def test_bit_identical_with_two_threads(self):
        violations = fused_vs_segmented(
            {**BASE_SPEC, "n_replicas": 16}, seed=2, n_threads=2
        )
        assert violations == [], [v.describe() for v in violations]
