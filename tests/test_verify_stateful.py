"""Stateful property tests: interleaved injection, segments, and observation.

A hypothesis :class:`RuleBasedStateMachine` drives one batched ensemble
through arbitrary interleavings of ``run`` segments (varying length and
observation stride), ball-conserving ``inject_loads`` calls, and
observer attachment — the adversarial usage pattern of the Section 4.1
fault model — while machine-checking the engine's contract after every
step: conservation, non-negativity, monotone round counters, the
idle-replica window convention, and exact window statistics whenever the
observation stride is 1.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.core.batched import BatchedRepeatedBallsIntoBins

N_BINS = 4
N_REPLICAS = 3


class _Recorder:
    """Observer stub: records every ``(round_index, loads)`` observation."""

    def __init__(self):
        self.rounds = []
        self.snapshots = []

    def __call__(self, round_index, loads):
        self.rounds.append(int(round_index))
        self.snapshots.append(np.array(loads, copy=True))


class BatchedEngineMachine(RuleBasedStateMachine):
    @initialize(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        balls_per_bin=st.integers(min_value=1, max_value=3),
    )
    def setup(self, seed, balls_per_bin):
        initial = np.full((N_REPLICAS, N_BINS), balls_per_bin, dtype=np.int64)
        self.batch = BatchedRepeatedBallsIntoBins(
            N_BINS, N_REPLICAS, initial=initial, seed=seed, kernel="numpy"
        )
        self.totals = initial.sum(axis=1)
        self.rounds_done = np.zeros(N_REPLICAS, dtype=np.int64)

    @rule(
        rounds=st.integers(min_value=0, max_value=5),
        stride=st.integers(min_value=1, max_value=3),
    )
    def run_segment(self, rounds, stride):
        recorder = _Recorder()
        before = self.batch.loads
        result = self.batch.run(rounds, observers=recorder, observe_every=stride)

        assert np.array_equal(result.rounds, np.full(N_REPLICAS, rounds))
        assert np.all(result.final_loads >= 0)
        assert np.array_equal(result.final_loads.sum(axis=1), self.totals)
        self.rounds_done += rounds

        if rounds == 0:
            # idle branch: no observation fires, and the window statistics
            # report the *current* configuration, not zeros
            assert recorder.rounds == []
            assert np.array_equal(result.max_load_seen, before.max(axis=1))
            assert np.array_equal(
                result.min_empty_bins_seen, (before == 0).sum(axis=1)
            )
            return

        # the final executed round is always observed, stride notwithstanding
        assert recorder.rounds[-1] == int(self.rounds_done[0])
        assert np.array_equal(recorder.snapshots[-1], result.final_loads)
        expected_observations = -(-rounds // stride)  # ceil
        assert len(recorder.rounds) == expected_observations

        observed_max = np.max([s.max(axis=1) for s in recorder.snapshots], axis=0)
        observed_min_empty = np.min(
            [(s == 0).sum(axis=1) for s in recorder.snapshots], axis=0
        )
        if stride == 1:
            # every post-round configuration was observed: windows are exact
            assert np.array_equal(result.max_load_seen, observed_max)
            assert np.array_equal(result.min_empty_bins_seen, observed_min_empty)
        else:
            # sub-sampled observation can only under-estimate the window
            assert np.all(result.max_load_seen >= observed_max)
            assert np.all(result.min_empty_bins_seen <= observed_min_empty)

    @rule(shift=st.integers(min_value=1, max_value=N_BINS - 1))
    def inject_rolled_loads(self, shift):
        # a per-replica cyclic shift conserves every replica's total
        rolled = np.roll(self.batch.loads, shift, axis=1)
        self.batch.inject_loads(rolled)
        assert np.array_equal(self.batch.loads, rolled)

    @rule()
    def inject_concentrated_loads(self):
        # adversarial concentration: all of each replica's balls in bin 0
        concentrated = np.zeros((N_REPLICAS, N_BINS), dtype=np.int64)
        concentrated[:, 0] = self.totals
        self.batch.inject_loads(concentrated)
        assert np.array_equal(self.batch.loads, concentrated)

    @invariant()
    def conservation_and_counters(self):
        if not hasattr(self, "batch"):
            return
        loads = self.batch.loads
        assert np.all(loads >= 0)
        assert np.array_equal(loads.sum(axis=1), self.totals)
        assert np.array_equal(self.batch.rounds_completed, self.rounds_done)


BatchedEngineMachine.TestCase.settings = settings(
    max_examples=25,
    stateful_step_count=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

TestBatchedEngineStateful = BatchedEngineMachine.TestCase
