"""Smoke tests for the example scripts.

Every example must at least compile; the quickstart (the cheapest one) is
additionally executed end to end at a reduced size so that documentation rot
is caught by the test-suite.
"""

from __future__ import annotations

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
SCRIPTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "scripts"

ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


class TestExamplesExist:
    def test_at_least_three_examples(self):
        assert len(ALL_EXAMPLES) >= 3

    def test_quickstart_present(self):
        assert (EXAMPLES_DIR / "quickstart.py").exists()

    @pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
    def test_examples_compile(self, path):
        py_compile.compile(str(path), doraise=True)

    @pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
    def test_examples_have_module_docstring(self, path):
        source = path.read_text()
        assert source.lstrip().startswith(('"""', '#!/usr/bin/env python\n"""')), path.name

    def test_report_script_compiles(self):
        py_compile.compile(str(SCRIPTS_DIR / "generate_experiments_report.py"), doraise=True)


class TestQuickstartRuns:
    def test_quickstart_small_n(self):
        """Run the quickstart end to end with a small n; it must exit 0 and
        print both Theorem 1 sections."""
        completed = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "quickstart.py"), "128"],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert completed.returncode == 0, completed.stderr
        assert "stability" in completed.stdout
        assert "self-stabilization" in completed.stdout
        assert "Theorem 1" in completed.stdout
