"""Malformed-pragma bait: each pragma here is itself a finding."""


def no_reason(fn):
    try:
        return fn()
    except Exception:  # lint: allow-broad-except
        return None


def empty_reason(fn):
    try:
        return fn()
    except Exception:  # lint: allow-broad-except(   )
        return None


def unknown_slug(fn):
    try:
        return fn()
    except Exception:  # lint: allow-wishful-thinking(not a rule)
        return None
