"""R1 exemption bait: this path is the one place allowed to seed."""

import numpy as np


def make_root():
    return np.random.default_rng()  # exempt: parallel/seeding.py
