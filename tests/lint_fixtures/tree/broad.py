"""R5 bait: blanket exception handlers without pragmas."""


def swallow(fn):
    try:
        return fn()
    except Exception:  # line 7: R5
        return None


def swallow_everything(fn):
    try:
        return fn()
    except:  # noqa: E722 - line 14: R5 (bare)
        return None


def narrow_is_fine(fn):
    try:
        return fn()
    except (ValueError, KeyError):
        return None
