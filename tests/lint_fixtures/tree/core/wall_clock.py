"""R2 bait: wall-clock and OS nondeterminism in an engine-scope module."""

import os
import time
from datetime import datetime


def stamp():
    started = time.time()  # line 9: R2
    when = datetime.now()  # line 10: R2
    noise = os.urandom(8)  # line 11: R2
    return started, when, noise


def legitimate_duration():
    # perf_counter is monotonic, not wall clock: allowed.
    return time.perf_counter()
