"""R1 bait: unseeded / global-state randomness."""

import random

import numpy as np


def draw():
    rng = np.random.default_rng()  # line 9: R1 (unseeded)
    np.random.seed(1234)  # line 10: R1 (global state, even seeded)
    return rng.integers(0, 10), random.random()  # line 11: R1 (stdlib)


def seeded_is_fine(seed):
    return np.random.default_rng(seed).integers(0, 10)
