"""Pragma bait: violations carrying valid suppressions (zero findings)."""


def swallow(fn):
    try:
        return fn()
    except Exception:  # lint: allow-broad-except(fixture exercising same-line suppression)
        return None


def swallow_above(fn):
    try:
        return fn()
    # lint: allow-broad-except(fixture exercising line-above suppression)
    except Exception:
        return None
