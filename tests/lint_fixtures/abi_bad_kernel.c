/* ABI bait: REPRO_ABI-marked exports the tests cross-check against
 * deliberately wrong ctypes declarations. */
#include <stdint.h>

#define REPRO_ABI

/* matches a correct mirror: (int32_t*, int64_t, int64_t) -> void */
REPRO_ABI void good_fn(int32_t *loads, int64_t n, int64_t rounds) {
    (void)loads; (void)n; (void)rounds;
}

/* the tests declare this with 2 argtypes: arity drift */
REPRO_ABI void arity_fn(int32_t *loads, int64_t n, int64_t rounds) {
    (void)loads; (void)n; (void)rounds;
}

/* the tests declare the pointee as int64: width drift */
REPRO_ABI void width_fn(int32_t *loads, int64_t n) {
    (void)loads; (void)n;
}

/* the tests swap the argument order */
REPRO_ABI void order_fn(int64_t n, int32_t *loads) {
    (void)loads; (void)n;
}

/* the tests declare restype c_int64: return drift */
REPRO_ABI int32_t ret_fn(void) {
    return 0;
}

/* marked in C but never declared in the tests' symbol table */
REPRO_ABI void orphan_fn(void) {}

/* unmarked: invisible to the checker by design */
static int64_t helper(int64_t x) {
    return x + 1;
}
