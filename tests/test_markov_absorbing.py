"""Unit tests for repro.markov.absorbing (the Lemma 5 chain)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.markov.absorbing import BinLoadChain, absorption_tail_bound


class TestAbsorptionTailBound:
    def test_formula(self):
        assert absorption_tail_bound(144, 0) == pytest.approx(math.exp(-1.0))
        assert absorption_tail_bound(0, 0) == pytest.approx(1.0)

    def test_trivial_bound_below_8k(self):
        assert absorption_tail_bound(7, 1) == 1.0
        assert absorption_tail_bound(8, 1) == pytest.approx(math.exp(-8 / 144))

    def test_negative_k_rejected(self):
        with pytest.raises(ConfigurationError):
            absorption_tail_bound(10, -1)


class TestBinLoadChain:
    def test_default_arrivals(self):
        chain = BinLoadChain(100)
        assert chain.arrivals == 75
        assert chain.n_bins == 100

    def test_drift_is_negative(self):
        chain = BinLoadChain(1000)
        assert chain.drift == pytest.approx(0.75 * 1000 / 1000 - 1.0)
        assert chain.drift < 0

    def test_arrival_pmf_sums_to_one(self):
        pmf = BinLoadChain(64).arrival_pmf
        assert pmf.sum() == pytest.approx(1.0)
        assert np.all(pmf >= 0)

    def test_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            BinLoadChain(0)
        with pytest.raises(ConfigurationError):
            BinLoadChain(10, arrivals=-1)


class TestSurvivalProbabilities:
    def test_start_zero_is_immediately_absorbed(self):
        chain = BinLoadChain(64)
        survival = chain.survival_probabilities(0, horizon=5)
        assert survival.tolist() == [0.0] * 6

    def test_monotone_non_increasing(self):
        chain = BinLoadChain(256)
        survival = chain.survival_probabilities(4, horizon=80)
        assert np.all(np.diff(survival) <= 1e-12)

    def test_starts_at_one_for_positive_start(self):
        chain = BinLoadChain(256)
        survival = chain.survival_probabilities(3, horizon=10)
        assert survival[0] == pytest.approx(1.0)

    def test_cannot_be_absorbed_before_start_rounds(self):
        # the chain decreases by at most one per round, so absorption before
        # round k is impossible when starting from k
        chain = BinLoadChain(128)
        k = 6
        survival = chain.survival_probabilities(k, horizon=20)
        assert np.all(survival[:k] == pytest.approx(1.0))

    def test_respects_lemma5_bound(self):
        chain = BinLoadChain(512)
        for k in (1, 3, 8):
            horizon = 8 * k + 200
            survival = chain.survival_probabilities(k, horizon=horizon)
            for t in range(8 * k, horizon + 1):
                assert survival[t] <= absorption_tail_bound(t, k) + 1e-12

    def test_validation(self):
        chain = BinLoadChain(64)
        with pytest.raises(ConfigurationError):
            chain.survival_probabilities(-1, horizon=5)
        with pytest.raises(ConfigurationError):
            chain.survival_probabilities(1, horizon=-5)

    def test_expected_absorption_time_closed_form(self):
        chain = BinLoadChain(1000)  # arrivals 750, drift -0.25
        assert chain.expected_absorption_time(5) == pytest.approx(5 / 0.25)
        assert chain.expected_absorption_time(0) == 0.0

    def test_expected_absorption_time_infinite_without_drift(self):
        chain = BinLoadChain(100, arrivals=100)
        assert math.isinf(chain.expected_absorption_time(1))


class TestSimulation:
    def test_simulate_from_zero(self):
        chain = BinLoadChain(64)
        assert chain.simulate_absorption_time(0, max_rounds=10, seed=0) == 0

    def test_simulated_time_at_least_start(self):
        chain = BinLoadChain(64)
        for seed in range(10):
            tau = chain.simulate_absorption_time(5, max_rounds=10_000, seed=seed)
            assert tau is not None
            assert tau >= 5

    def test_censoring(self):
        # with arrivals == n the drift is zero and absorption from a high
        # start within very few rounds is impossible
        chain = BinLoadChain(16, arrivals=16)
        assert chain.simulate_absorption_time(10, max_rounds=3, seed=0) is None

    def test_simulate_many(self):
        chain = BinLoadChain(64)
        taus = chain.simulate_absorption_times(2, trials=50, max_rounds=5000, seed=1)
        assert taus.shape == (50,)
        assert np.all(taus >= 2)

    def test_empirical_survival_matches_exact_roughly(self):
        chain = BinLoadChain(128)
        k = 3
        horizon = 60
        exact = chain.survival_probabilities(k, horizon)
        empirical = chain.empirical_survival(k, trials=800, horizon=horizon, seed=2)
        assert empirical.shape == (horizon + 1,)
        # agreement within Monte-Carlo noise at a few probe points
        for t in (5, 10, 20):
            assert abs(empirical[t] - exact[t]) < 0.08

    def test_mean_absorption_time_matches_walds_identity(self):
        chain = BinLoadChain(400)  # drift -0.25
        k = 4
        taus = chain.simulate_absorption_times(k, trials=600, max_rounds=10_000, seed=3)
        assert np.all(taus > 0)
        assert abs(float(taus.mean()) - chain.expected_absorption_time(k)) < 3.0

    def test_validation(self):
        chain = BinLoadChain(64)
        with pytest.raises(ConfigurationError):
            chain.simulate_absorption_time(-1, max_rounds=10)
        with pytest.raises(ConfigurationError):
            chain.simulate_absorption_times(1, trials=-1, max_rounds=10)
