"""Unit tests for repro.core.tetris (Tetris process and leaky bins)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import LoadConfiguration
from repro.core.tetris import ProbabilisticTetris, TetrisProcess
from repro.errors import ConfigurationError


class TestTetrisConstruction:
    def test_default_arrivals_three_quarters(self):
        tetris = TetrisProcess(100, seed=0)
        assert tetris.arrivals_per_round == 75

    def test_default_arrivals_floor(self):
        tetris = TetrisProcess(10, seed=0)
        assert tetris.arrivals_per_round == 7  # floor(30/4)

    def test_explicit_arrivals(self):
        tetris = TetrisProcess(10, arrivals_per_round=3, seed=0)
        assert tetris.arrivals_per_round == 3

    def test_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            TetrisProcess(0)
        with pytest.raises(ConfigurationError):
            TetrisProcess(10, arrivals_per_round=-1)
        with pytest.raises(ConfigurationError):
            TetrisProcess(8, initial=LoadConfiguration.balanced(4))

    def test_initial_configuration(self):
        tetris = TetrisProcess(8, initial=LoadConfiguration.all_in_one(8), seed=0)
        assert tetris.max_load == 8


class TestTetrisDynamics:
    def test_total_balls_follow_departures_and_arrivals(self):
        tetris = TetrisProcess(40, seed=1)
        for _ in range(20):
            before = int(tetris.loads.sum())
            nonempty = int(np.count_nonzero(tetris.loads > 0))
            after = int(tetris.step().sum())
            assert after == before - nonempty + tetris.arrivals_per_round

    def test_loads_stay_non_negative(self):
        tetris = TetrisProcess(32, seed=2)
        for _ in range(100):
            assert int(tetris.step().min()) >= 0

    def test_deterministic_given_seed(self):
        a = TetrisProcess(32, seed=9)
        b = TetrisProcess(32, seed=9)
        for _ in range(30):
            assert np.array_equal(a.step(), b.step())

    def test_zero_arrivals_drains_the_system(self):
        tetris = TetrisProcess(8, arrivals_per_round=0, initial=LoadConfiguration.balanced(8), seed=0)
        tetris.step()
        assert int(tetris.loads.sum()) == 0

    def test_reset(self):
        tetris = TetrisProcess(8, seed=0)
        tetris.run(10)
        tetris.reset()
        assert tetris.round_index == 0
        assert tetris.loads.tolist() == [1] * 8
        tetris.reset(LoadConfiguration.all_in_one(8))
        assert tetris.max_load == 8
        with pytest.raises(ConfigurationError):
            tetris.reset(LoadConfiguration.balanced(3))


class TestTetrisRun:
    def test_result_fields(self):
        tetris = TetrisProcess(64, seed=0)
        result = tetris.run(50)
        assert result.rounds == 50
        assert result.max_load_seen >= 1
        assert result.final_configuration.n_bins == 64

    def test_negative_rounds_rejected(self):
        with pytest.raises(ConfigurationError):
            TetrisProcess(8, seed=0).run(-1)

    def test_all_bins_emptied_within_5n_from_all_in_one(self):
        # Lemma 4 at small scale: from the worst start every bin empties within 5n rounds
        n = 128
        tetris = TetrisProcess(n, initial=LoadConfiguration.all_in_one(n), seed=3)
        result = tetris.run(5 * n)
        assert result.all_bins_emptied_by is not None
        assert result.all_bins_emptied_by <= 5 * n

    def test_all_bins_emptied_none_when_budget_too_small(self):
        n = 64
        tetris = TetrisProcess(n, initial=LoadConfiguration.all_in_one(n), seed=3)
        result = tetris.run(2)
        assert result.all_bins_emptied_by is None

    def test_initially_empty_bins_count_as_emptied_at_round_zero(self):
        initial = LoadConfiguration.from_loads([4, 0, 0, 0])
        tetris = TetrisProcess(4, arrivals_per_round=0, initial=initial, seed=0)
        result = tetris.run(6)
        assert result.all_bins_emptied_by is not None
        # bin 0 needs 4 rounds to drain; the others were empty from the start
        assert result.all_bins_emptied_by == 4

    def test_max_load_stays_logarithmic(self):
        # Lemma 6 at small scale
        n = 512
        tetris = TetrisProcess(n, seed=4)
        result = tetris.run(4 * n)
        assert result.max_load_seen <= 6 * np.log(n)

    def test_observer_invoked(self):
        calls = []
        TetrisProcess(16, seed=0).run(5, observers=lambda t, loads: calls.append(t))
        assert calls == [1, 2, 3, 4, 5]


class TestProbabilisticTetris:
    def test_lambda_validation(self):
        with pytest.raises(ConfigurationError):
            ProbabilisticTetris(8, lam=1.5)
        with pytest.raises(ConfigurationError):
            ProbabilisticTetris(8, lam=-0.1)

    def test_lambda_zero_never_adds_balls(self):
        process = ProbabilisticTetris(8, lam=0.0, initial=LoadConfiguration.balanced(8), seed=0)
        process.step()
        assert int(process.loads.sum()) == 0

    def test_lambda_property(self):
        assert ProbabilisticTetris(8, lam=0.25, seed=0).lam == 0.25

    def test_arrivals_are_binomial_mean(self):
        n = 200
        lam = 0.5
        process = ProbabilisticTetris(n, lam=lam, initial=LoadConfiguration.balanced(n), seed=5)
        totals = []
        for _ in range(300):
            before = int(process.loads.sum())
            nonempty = int(np.count_nonzero(process.loads > 0))
            after = int(process.step().sum())
            totals.append(after - before + nonempty)  # this round's arrival count
        mean_arrivals = float(np.mean(totals))
        assert abs(mean_arrivals - lam * n) < 0.1 * n

    def test_subcritical_rate_keeps_load_bounded(self):
        n = 256
        process = ProbabilisticTetris(n, lam=0.5, seed=6)
        result = process.run(4 * n)
        assert result.max_load_seen <= 8 * np.log(n)
