"""Unit tests for repro.baselines (one-shot, d-choices, independent throws)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines.birth_death import IndependentThrowsProcess, sqrt_t_envelope
from repro.baselines.d_choices import (
    DChoicesProcess,
    one_shot_d_choices_max_load,
    theoretical_d_choices_max_load,
)
from repro.baselines.one_shot import (
    one_shot_empty_fraction,
    one_shot_max_load,
    one_shot_max_load_trials,
    theoretical_one_shot_max_load,
)
from repro.core.config import LoadConfiguration
from repro.errors import ConfigurationError


class TestOneShot:
    def test_max_load_at_least_ceiling_of_mean(self):
        assert one_shot_max_load(100, seed=0) >= 1
        assert one_shot_max_load(4, n_balls=100, seed=0) >= 25

    def test_zero_balls(self):
        assert one_shot_max_load(10, n_balls=0, seed=0) == 0

    def test_reproducible(self):
        assert one_shot_max_load(256, seed=5) == one_shot_max_load(256, seed=5)

    def test_trials_vector(self):
        trials = one_shot_max_load_trials(128, trials=20, seed=0)
        assert trials.shape == (20,)
        assert np.all(trials >= 1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            one_shot_max_load(0)
        with pytest.raises(ConfigurationError):
            one_shot_max_load(4, n_balls=-1)
        with pytest.raises(ConfigurationError):
            one_shot_max_load_trials(4, trials=-1)

    def test_empty_fraction_near_one_over_e(self):
        fractions = [one_shot_empty_fraction(1000, seed=s) for s in range(20)]
        assert abs(float(np.mean(fractions)) - math.exp(-1.0)) < 0.03

    def test_theoretical_prediction_monotone(self):
        small = theoretical_one_shot_max_load(64)
        large = theoretical_one_shot_max_load(2**20)
        assert large > small > 1.0
        assert theoretical_one_shot_max_load(2) == 1.0
        with pytest.raises(ConfigurationError):
            theoretical_one_shot_max_load(0)

    def test_measured_tracks_theory_direction(self):
        # the one-shot maximum at n = 4096 exceeds the one at n = 64 on average
        small = one_shot_max_load_trials(64, trials=30, seed=1).mean()
        large = one_shot_max_load_trials(4096, trials=30, seed=1).mean()
        assert large > small


class TestDChoices:
    def test_one_shot_two_choices_beats_one_choice(self):
        n = 2048
        one = np.mean([one_shot_max_load(n, seed=s) for s in range(10)])
        two = np.mean([one_shot_d_choices_max_load(n, d=2, seed=s) for s in range(10)])
        assert two < one

    def test_one_shot_d1_equivalent_to_plain(self):
        # d=1 is plain balls-into-bins (same distribution; just sanity-check range)
        value = one_shot_d_choices_max_load(256, d=1, seed=0)
        assert 1 <= value <= 20

    def test_zero_balls(self):
        assert one_shot_d_choices_max_load(8, d=2, n_balls=0, seed=0) == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            one_shot_d_choices_max_load(0)
        with pytest.raises(ConfigurationError):
            one_shot_d_choices_max_load(8, d=0)
        with pytest.raises(ConfigurationError):
            one_shot_d_choices_max_load(8, n_balls=-2)

    def test_theoretical_prediction(self):
        assert theoretical_d_choices_max_load(2**16, d=2) < theoretical_one_shot_max_load(2**16)
        with pytest.raises(ConfigurationError):
            theoretical_d_choices_max_load(8, d=1)

    def test_repeated_process_conserves_balls(self):
        process = DChoicesProcess(32, d=2, seed=0)
        for _ in range(50):
            assert int(process.step().sum()) == 32

    def test_repeated_process_run(self):
        process = DChoicesProcess(64, d=2, seed=1)
        result = process.run(100)
        assert result.rounds == 100
        assert result.max_load_seen <= 6 * np.log(64)
        assert process.is_legitimate()

    def test_repeated_d1_matches_original_statistics(self):
        from repro.core.process import RepeatedBallsIntoBins

        n = 64
        d1 = DChoicesProcess(n, d=1, seed=2).run(200).max_load_seen
        rbb = RepeatedBallsIntoBins(n, seed=3).run(200).max_load_seen
        assert abs(d1 - rbb) <= 4

    def test_repeated_two_choices_not_worse_than_one(self):
        n = 128
        rounds = 4 * n
        two = DChoicesProcess(n, d=2, seed=4).run(rounds).max_load_seen
        one = DChoicesProcess(n, d=1, seed=4).run(rounds).max_load_seen
        assert two <= one

    def test_construction_validation(self):
        with pytest.raises(ConfigurationError):
            DChoicesProcess(0)
        with pytest.raises(ConfigurationError):
            DChoicesProcess(8, d=0)
        with pytest.raises(ConfigurationError):
            DChoicesProcess(8, initial=LoadConfiguration.balanced(4))
        with pytest.raises(ConfigurationError):
            DChoicesProcess(8, n_balls=-1)
        with pytest.raises(ConfigurationError):
            DChoicesProcess(8, seed=0).run(-1)


class TestIndependentThrows:
    def test_sqrt_envelope(self):
        assert sqrt_t_envelope(0) == 0.0
        assert sqrt_t_envelope(16) == pytest.approx(4.0)
        assert sqrt_t_envelope(16, constant=2.0) == pytest.approx(8.0)
        with pytest.raises(ConfigurationError):
            sqrt_t_envelope(-1)

    def test_default_arrivals_equal_n(self):
        process = IndependentThrowsProcess(32, seed=0)
        assert process.loads.tolist() == [1] * 32

    def test_loads_non_negative(self):
        process = IndependentThrowsProcess(32, seed=1)
        for _ in range(100):
            assert int(process.step().min()) >= 0

    def test_run_result(self):
        process = IndependentThrowsProcess(64, seed=2)
        result = process.run(50)
        assert result.rounds == 50
        assert result.max_load_seen >= 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            IndependentThrowsProcess(0)
        with pytest.raises(ConfigurationError):
            IndependentThrowsProcess(8, arrivals_per_round=-1)
        with pytest.raises(ConfigurationError):
            IndependentThrowsProcess(8, initial=LoadConfiguration.balanced(4))
        with pytest.raises(ConfigurationError):
            IndependentThrowsProcess(8, seed=0).run(-1)

    def test_zero_drift_grows_faster_than_rbb_over_long_windows(self):
        """The E11 phenomenon at test scale: over a long window the zero-drift
        surrogate reaches visibly higher maxima than the real process."""
        from repro.core.process import RepeatedBallsIntoBins

        n = 128
        rounds = 40 * n
        surrogate = IndependentThrowsProcess(n, seed=3).run(rounds).max_load_seen
        rbb = RepeatedBallsIntoBins(n, seed=3).run(rounds).max_load_seen
        assert surrogate > rbb
