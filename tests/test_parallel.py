"""Unit tests for repro.parallel (seeding, runner, aggregation) and repro.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversary.batched import BatchedFaultyProcess
from repro.adversary.faulty_process import FaultSchedule
from repro.errors import ConfigurationError
from repro.parallel.aggregate import TrialAggregate, aggregate_ensemble, aggregate_records
from repro.parallel.ensemble import EnsembleSpec, run_ensemble
from repro.parallel.runner import TrialRunner, run_trials
from repro.parallel.seeding import trial_seed, trial_seeds
from repro.rng import as_generator, as_seed_sequence, derive_substream, spawn_generators, spawn_seeds


# ----------------------------------------------------------------------
# rng module
# ----------------------------------------------------------------------
class TestRngHelpers:
    def test_as_generator_from_int_is_deterministic(self):
        a = as_generator(42).integers(0, 1000, size=5)
        b = as_generator(42).integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_as_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_as_generator_from_seed_sequence(self):
        seq = np.random.SeedSequence(7)
        gen = as_generator(seq)
        assert isinstance(gen, np.random.Generator)

    def test_as_seed_sequence_rejects_generator(self):
        with pytest.raises(TypeError):
            as_seed_sequence(np.random.default_rng(0))

    def test_spawn_generators_are_independent(self):
        gens = spawn_generators(0, 3)
        assert len(gens) == 3
        draws = [g.integers(0, 2**31) for g in gens]
        assert len(set(draws)) == 3

    def test_spawn_seeds_count_validation(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)

    def test_derive_substream_deterministic_and_keyed(self):
        a = derive_substream(5, (1, 2)).integers(0, 2**31)
        b = derive_substream(5, (1, 2)).integers(0, 2**31)
        c = derive_substream(5, (1, 3)).integers(0, 2**31)
        assert a == b
        assert a != c


# ----------------------------------------------------------------------
# seeding
# ----------------------------------------------------------------------
class TestTrialSeeds:
    def test_seed_list_reproducible(self):
        first = [s.generate_state(2).tolist() for s in trial_seeds(0, 4)]
        second = [s.generate_state(2).tolist() for s in trial_seeds(0, 4)]
        assert first == second

    def test_individual_seed_matches_spawned_list(self):
        full = trial_seeds(123, 5)
        single = trial_seed(123, 3)
        assert single.generate_state(4).tolist() == full[3].generate_state(4).tolist()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            trial_seeds(0, -1)

    def test_spawned_children_yield_independent_trial_streams(self):
        """trial_seed folds the root's own spawn_key into the derivation,
        so distinct spawned children of one ancestor do not alias."""
        children = as_seed_sequence(7).spawn(2)
        a = trial_seed(children[0], 3)
        b = trial_seed(children[1], 3)
        assert a.spawn_key != b.spawn_key
        # and it still matches trial_seeds on the same (fresh) root
        assert a.spawn_key == trial_seeds(children[0], 4)[3].spawn_key
        with pytest.raises(ConfigurationError):
            trial_seed(0, -1)


# ----------------------------------------------------------------------
# runner
# ----------------------------------------------------------------------
def _picklable_trial(trial_index, seed, scale=1):
    """Module-level trial function so the process pool can pickle it."""
    rng = np.random.default_rng(seed)
    return {"index": trial_index, "value": float(rng.random()) * scale}


class TestTrialRunner:
    def test_sequential_execution(self):
        results = run_trials(_picklable_trial, 5, seed=0)
        assert len(results) == 5
        assert [r["index"] for r in results] == [0, 1, 2, 3, 4]

    def test_results_independent_of_worker_count(self):
        sequential = run_trials(_picklable_trial, 6, seed=1, n_workers=0)
        parallel = run_trials(_picklable_trial, 6, seed=1, n_workers=2)
        assert [r["value"] for r in sequential] == pytest.approx(
            [r["value"] for r in parallel]
        )

    def test_kwargs_forwarded(self):
        results = run_trials(_picklable_trial, 3, seed=0, scale=10)
        assert all(0 <= r["value"] <= 10 for r in results)

    def test_closure_falls_back_to_sequential_with_warning(self):
        captured = []

        def closure_trial(i, seed):
            captured.append(i)
            return i

        runner = TrialRunner(n_workers=4)
        with pytest.warns(RuntimeWarning, match="cannot be pickled"):
            results = runner.run(closure_trial, 4, seed=0)
        assert results == [0, 1, 2, 3]
        assert captured == [0, 1, 2, 3]

    def test_no_warning_when_sequential_requested(self, recwarn):
        def closure_trial(i, seed):
            return i

        results = TrialRunner(n_workers=0).run(closure_trial, 3, seed=0)
        assert results == [0, 1, 2]
        assert not [w for w in recwarn.list if issubclass(w.category, RuntimeWarning)]

    def test_zero_trials(self):
        assert run_trials(_picklable_trial, 0, seed=0) == []

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TrialRunner(n_workers=-1)
        with pytest.raises(ConfigurationError):
            TrialRunner(chunk_size=0)
        with pytest.raises(ConfigurationError):
            TrialRunner().run(_picklable_trial, -1)

    def test_effective_workers(self):
        assert TrialRunner(n_workers=None).effective_workers == 0
        assert TrialRunner(n_workers=0).effective_workers == 0
        assert TrialRunner(n_workers=1).effective_workers == 1


# ----------------------------------------------------------------------
# aggregation
# ----------------------------------------------------------------------
class TestAggregation:
    def test_aggregate_records_basic(self):
        records = [{"a": 1, "b": 2.0}, {"a": 3, "b": 4.0}]
        agg = aggregate_records(records)
        assert agg.n_trials == 2
        assert agg.column("a").tolist() == [1.0, 3.0]
        assert agg.mean("b") == pytest.approx(3.0)
        assert agg.max("a") == 3.0
        assert agg.min("a") == 1.0

    def test_summary_column(self):
        agg = aggregate_records([{"x": v} for v in range(10)])
        summary = agg.summary("x")
        assert summary.count == 10
        assert summary.mean == pytest.approx(4.5)

    def test_fraction_true(self):
        agg = aggregate_records([{"ok": True}, {"ok": False}, {"ok": True}])
        assert agg.fraction_true("ok") == pytest.approx(2 / 3)

    def test_none_becomes_nan(self):
        agg = aggregate_records([{"x": None}, {"x": 2.0}])
        assert np.isnan(agg.column("x")[0])

    def test_empty_records(self):
        agg = aggregate_records([])
        assert agg.n_trials == 0
        assert isinstance(agg, TrialAggregate)

    def test_unknown_column(self):
        agg = aggregate_records([{"a": 1}])
        with pytest.raises(ConfigurationError):
            agg.column("b")

    def test_heterogeneous_records_rejected(self):
        with pytest.raises(ConfigurationError):
            aggregate_records([{"a": 1}, {"b": 2}])

    def test_as_dict_of_lists(self):
        agg = aggregate_records([{"a": 1}, {"a": 2}])
        assert agg.as_dict_of_lists() == {"a": [1.0, 2.0]}

    def test_end_to_end_with_runner(self):
        records = run_trials(_picklable_trial, 8, seed=3)
        agg = aggregate_records(records)
        assert agg.n_trials == 8
        assert 0.0 <= agg.mean("value") <= 1.0


class TestAggregateEnsembleEdgeCases:
    def test_single_replica_ensemble(self):
        """R = 1: every column is length-1 and summaries degrade gracefully."""
        result = run_ensemble(
            EnsembleSpec(n_bins=8, n_replicas=1, rounds=4),
            seed=1,
            engine="batched",
            kernel="numpy",
        )
        agg = aggregate_ensemble(result)
        assert agg.n_trials == 1
        summary = agg.summary("window_max_load")
        assert summary.count == 1
        assert summary.std == 0.0
        assert summary.minimum == summary.maximum == summary.mean

    def test_faulty_run_with_empty_recovery_matrix(self):
        """A never-faulting schedule yields a (0, R) recovery matrix."""
        process = BatchedFaultyProcess(
            8, 3, adversary="concentrate", schedule=FaultSchedule.never(),
            seed=0, kernel="numpy",
        )
        outcome = process.run(4)
        assert outcome.recovery_times.shape == (0, 3)
        assert outcome.flat_recoveries().size == 0
        assert outcome.max_recovery_time is None
        assert not outcome.all_recovered
        assert outcome.fault_count == 0
        agg = aggregate_ensemble(outcome.to_ensemble_result())
        assert agg.n_trials == 3
        assert agg.column("rounds").tolist() == [4.0, 4.0, 4.0]

    def test_never_converged_minus_one_propagates(self):
        """first_legitimate_round == -1 survives aggregation and summaries."""
        result = run_ensemble(
            EnsembleSpec(n_bins=64, n_replicas=3, rounds=1, start="all_in_one"),
            seed=2,
            engine="batched",
            kernel="numpy",
        )
        assert (result.first_legitimate_round == -1).all()
        agg = aggregate_ensemble(result)
        column = agg.column("first_legitimate_round")
        assert column.tolist() == [-1.0, -1.0, -1.0]
        assert agg.fraction_true("converged") == 0.0
        summary = agg.summary("first_legitimate_round")
        assert summary.mean == -1.0 and summary.maximum == -1.0
