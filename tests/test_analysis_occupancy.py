"""Unit tests for repro.analysis.occupancy (load-distribution analysis)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.occupancy import (
    OccupancyDistribution,
    empirical_occupancy,
    geometric_tail_fit,
    poisson_occupancy,
)
from repro.errors import ConfigurationError


class TestOccupancyDistribution:
    def test_normalization(self):
        dist = OccupancyDistribution(np.array([2.0, 1.0, 1.0]))
        assert dist.pmf.sum() == pytest.approx(1.0)
        assert dist.pmf[0] == pytest.approx(0.5)

    def test_mean_and_empty_fraction(self):
        dist = OccupancyDistribution(np.array([0.5, 0.25, 0.25]))
        assert dist.mean == pytest.approx(0.75)
        assert dist.empty_fraction == pytest.approx(0.5)

    def test_tail_and_quantile(self):
        dist = OccupancyDistribution(np.array([0.5, 0.3, 0.2]))
        assert dist.tail(0) == pytest.approx(1.0)
        assert dist.tail(1) == pytest.approx(0.5)
        assert dist.tail(2) == pytest.approx(0.2)
        assert dist.tail(5) == 0.0
        assert dist.quantile(0.5) == 0
        assert dist.quantile(0.9) == 2
        with pytest.raises(ConfigurationError):
            dist.tail(-1)
        with pytest.raises(ConfigurationError):
            dist.quantile(1.5)

    def test_total_variation(self):
        a = OccupancyDistribution(np.array([1.0, 0.0]))
        b = OccupancyDistribution(np.array([0.0, 1.0, 0.0]))
        assert a.total_variation(b) == pytest.approx(1.0)
        assert a.total_variation(a) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OccupancyDistribution(np.array([]))
        with pytest.raises(ConfigurationError):
            OccupancyDistribution(np.array([-0.5, 1.5]))
        with pytest.raises(ConfigurationError):
            OccupancyDistribution(np.zeros(3))

    def test_pmf_read_only(self):
        dist = OccupancyDistribution(np.array([0.5, 0.5]))
        with pytest.raises(ValueError):
            dist.pmf[0] = 1.0


class TestPoissonReference:
    def test_poisson_one_values(self):
        dist = poisson_occupancy(1.0)
        assert dist.pmf[0] == pytest.approx(math.exp(-1.0), rel=1e-9)
        assert dist.pmf[1] == pytest.approx(math.exp(-1.0), rel=1e-9)
        assert dist.pmf[2] == pytest.approx(math.exp(-1.0) / 2, rel=1e-9)
        assert dist.mean == pytest.approx(1.0, abs=1e-6)

    def test_poisson_zero_mean(self):
        dist = poisson_occupancy(0.0)
        assert dist.pmf[0] == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            poisson_occupancy(-1.0)
        with pytest.raises(ConfigurationError):
            poisson_occupancy(1.0, support=0)


class TestEmpiricalOccupancy:
    def test_mean_load_is_m_over_n(self):
        dist = empirical_occupancy(128, rounds=200, seed=0)
        assert dist.mean == pytest.approx(1.0, abs=1e-9)

    def test_empty_fraction_exceeds_quarter(self):
        # Lemma 1/2 seen through the occupancy distribution
        dist = empirical_occupancy(256, rounds=200, seed=1)
        assert dist.empty_fraction >= 0.25

    def test_more_balls_shift_the_mean(self):
        dist = empirical_occupancy(64, rounds=200, n_balls=128, seed=2)
        assert dist.mean == pytest.approx(2.0, abs=1e-9)

    def test_heavier_tail_than_poisson_but_geometric(self):
        """The repeated process' occupancy is close to, but more spread than,
        the Poisson(1) one-shot limit; its tail decays geometrically."""
        dist = empirical_occupancy(256, rounds=400, seed=3)
        poisson = poisson_occupancy(1.0)
        assert dist.total_variation(poisson) < 0.25
        rate = geometric_tail_fit(dist, start=1)
        assert 0.0 < rate < 0.8

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            empirical_occupancy(16, rounds=0)
        with pytest.raises(ConfigurationError):
            empirical_occupancy(16, rounds=5, warmup=-1)


class TestGeometricTailFit:
    def test_exact_geometric_recovered(self):
        r = 0.5
        pmf = np.array([(1 - r) * r**k for k in range(30)])
        rate = geometric_tail_fit(OccupancyDistribution(pmf), start=1)
        assert rate == pytest.approx(r, abs=0.02)

    def test_needs_enough_tail(self):
        dist = OccupancyDistribution(np.array([1.0]))
        with pytest.raises(ConfigurationError):
            geometric_tail_fit(dist)

    def test_start_validation(self):
        dist = poisson_occupancy(1.0)
        with pytest.raises(ConfigurationError):
            geometric_tail_fit(dist, start=-1)
