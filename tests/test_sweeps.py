"""Unit tests for repro.sweeps (spec, planner, scheduler, catalog)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.parallel.seeding import trial_seed
from repro.rng import as_seed_sequence
from repro.store import ResultStore
from repro.sweeps import (
    SweepSpec,
    a2_sweep_spec,
    available_sweeps,
    e9_sweep_spec,
    expand_sweep,
    get_sweep,
    point_id_of,
    resume_sweep,
    run_sweep,
    smoke_sweep_spec,
    sweep_status,
)


def tiny_spec(**overrides) -> SweepSpec:
    fields = dict(
        name="tiny",
        base={"n_replicas": 3, "rounds": 4},
        grid={"n_bins": [8, 16], "d": [1, 2]},
    )
    fields.update(overrides)
    return SweepSpec(**fields)


class TestSweepSpec:
    def test_n_points_counts_grid_and_points(self):
        spec = tiny_spec(points=[{"n_bins": 32, "rounds": 2}])
        assert spec.n_points == 5

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            tiny_spec(name="")

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown EnsembleSpec field"):
            tiny_spec(base={"bogus": 1})
        with pytest.raises(ConfigurationError):
            tiny_spec(grid={"bogus": [1]})
        with pytest.raises(ConfigurationError):
            tiny_spec(points=[{"bogus": 1}])

    def test_empty_grid_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="no values"):
            tiny_spec(grid={"n_bins": []})

    def test_no_points_rejected(self):
        with pytest.raises(ConfigurationError, match="no points"):
            SweepSpec(name="empty")

    def test_non_scalar_value_rejected(self):
        with pytest.raises(ConfigurationError, match="JSON scalar"):
            tiny_spec(base={"start": np.zeros(4)})

    def test_dict_round_trip(self):
        spec = tiny_spec(points=[{"n_bins": 32}], description="d")
        clone = SweepSpec.from_dict(spec.to_dict())
        assert clone == spec

    def test_grid_axis_order_survives_key_sorting_encoders(self):
        """Axis order drives expansion order (and seeds); a sort_keys JSON
        round trip — as used by the store header — must not reorder it."""
        import json

        spec = tiny_spec()  # axes (n_bins, d): "d" sorts before "n_bins"
        canonical = json.loads(json.dumps(spec.to_dict(), sort_keys=True))
        clone = SweepSpec.from_dict(canonical)
        assert list(clone.grid) == ["n_bins", "d"]
        assert [p.config["n_bins"] for p in expand_sweep(clone).points] == [
            8,
            8,
            16,
            16,
        ]

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="unknown key"):
            SweepSpec.from_dict({"name": "x", "grid": {"n_bins": [8]}, "oops": 1})
        with pytest.raises(ConfigurationError, match="missing the 'name'"):
            SweepSpec.from_dict({"grid": {"n_bins": [8]}})


class TestPlanner:
    def test_expansion_order_row_major(self):
        plan = expand_sweep(tiny_spec())
        assert [(p.config["n_bins"], p.config["d"]) for p in plan.points] == [
            (8, 1),
            (8, 2),
            (16, 1),
            (16, 2),
        ]
        assert [p.index for p in plan.points] == [0, 1, 2, 3]

    def test_explicit_points_follow_grid(self):
        plan = expand_sweep(tiny_spec(points=[{"n_bins": 64, "d": 4}]))
        assert plan.n_points == 5
        assert plan.points[-1].config["n_bins"] == 64

    def test_configs_resolved_against_ensemble_defaults(self):
        plan = expand_sweep(tiny_spec())
        config = plan.points[0].config
        assert config["process"] == "rbb"  # filled-in EnsembleSpec default
        assert config["start"] == "balanced"
        assert config["fault_period"] is None

    def test_invalid_point_fails_at_planning_time(self):
        with pytest.raises(ConfigurationError, match="not a valid EnsembleSpec|must be >= 1"):
            expand_sweep(tiny_spec(grid={"n_bins": [0]}))

    def test_duplicate_points_rejected(self):
        with pytest.raises(ConfigurationError, match="same configuration"):
            expand_sweep(tiny_spec(points=[{"n_bins": 8, "d": 1}]))

    def test_point_id_is_content_hash(self):
        plan = expand_sweep(tiny_spec())
        assert plan.points[0].point_id == point_id_of(plan.points[0].config)
        # same resolved config, written differently, hashes identically
        explicit = expand_sweep(
            SweepSpec(
                name="other",
                points=[{"rounds": 4, "n_replicas": 3, "d": 1, "n_bins": 8}],
            )
        )
        assert explicit.points[0].point_id == plan.points[0].point_id

    def test_point_id_independent_of_grid_size(self):
        small = expand_sweep(tiny_spec(grid={"n_bins": [8], "d": [1]}))
        large = expand_sweep(tiny_spec())
        assert small.points[0].point_id == large.points[0].point_id

    def test_point_seed_independent_of_grid_size(self):
        small = expand_sweep(tiny_spec(grid={"n_bins": [8], "d": [1]}))
        large = expand_sweep(tiny_spec())
        seed_small = small.points[0].seed(7)
        seed_large = large.points[0].seed(7)
        assert seed_small.entropy == seed_large.entropy
        assert seed_small.spawn_key == seed_large.spawn_key
        # and it is exactly the parallel.seeding stream
        reference = trial_seed(7, 0)
        assert seed_small.spawn_key == reference.spawn_key

    def test_point_by_id(self):
        plan = expand_sweep(tiny_spec())
        point = plan.points[2]
        assert plan.point_by_id(point.point_id) is point
        with pytest.raises(ConfigurationError):
            plan.point_by_id("nope")


class TestScheduler:
    def test_run_and_report(self):
        store = ResultStore.in_memory()
        report = run_sweep(tiny_spec(), store, seed=1, kernel="numpy")
        assert report.finished
        assert report.n_run == 4 and report.n_skipped == 0
        assert len(store) == 4
        assert report.engine_seconds <= report.elapsed_seconds

    def test_rerun_skips_everything(self):
        store = ResultStore.in_memory()
        run_sweep(tiny_spec(), store, seed=1, kernel="numpy")
        report = run_sweep(tiny_spec(), store, seed=1, kernel="numpy")
        assert report.n_run == 0 and report.n_skipped == 4

    def test_max_points_budget(self):
        store = ResultStore.in_memory()
        report = run_sweep(tiny_spec(), store, seed=1, kernel="numpy", max_points=3)
        assert report.n_run == 3 and not report.finished
        assert report.n_remaining == 1

    def test_negative_max_points_rejected(self):
        with pytest.raises(ConfigurationError):
            run_sweep(tiny_spec(), ResultStore.in_memory(), max_points=-1)

    def test_header_pins_seed_and_engine(self):
        store = ResultStore.in_memory()
        run_sweep(tiny_spec(), store, seed=1, kernel="numpy", max_points=1)
        with pytest.raises(ConfigurationError, match="different sweep"):
            run_sweep(tiny_spec(), store, seed=2, kernel="numpy")
        with pytest.raises(ConfigurationError, match="different sweep"):
            run_sweep(tiny_spec(), store, seed=1, kernel="native")
        with pytest.raises(ConfigurationError, match="different sweep"):
            run_sweep(tiny_spec(name="renamed"), store, seed=1, kernel="numpy")

    def test_header_pins_resolved_kernel_not_auto(self):
        """kernel="auto" resolves per environment; the header must pin the
        resolved kernel so resume can never silently switch streams."""
        from repro.core.native import native_available

        store = ResultStore.in_memory()
        run_sweep(tiny_spec(), store, seed=1, kernel="auto", max_points=1)
        header = store.read_header()
        expected = "native" if native_available() else "numpy"
        assert header["kernel"] == expected
        # and "auto" keeps resolving to the same thing on resume
        report = run_sweep(tiny_spec(), store, seed=1, kernel="auto")
        assert report.finished

    def test_spawned_child_seeds_give_independent_sweeps(self):
        """Two sweeps seeded with distinct spawned children of one root
        must not produce identical per-point streams."""
        children = as_seed_sequence(42).spawn(2)
        a, b = ResultStore.in_memory(), ResultStore.in_memory()
        run_sweep(tiny_spec(), a, seed=children[0], kernel="numpy")
        run_sweep(tiny_spec(), b, seed=children[1], kernel="numpy")
        assert a.manifest_bytes() != b.manifest_bytes()
        # and each resumes byte-identically from its own header
        c = ResultStore.in_memory()
        run_sweep(tiny_spec(), c, seed=children[0], kernel="numpy", max_points=2)
        resume_sweep(c)
        assert c.manifest_bytes() == a.manifest_bytes()

    def test_results_are_deterministic_per_point(self):
        a = ResultStore.in_memory()
        b = ResultStore.in_memory()
        run_sweep(tiny_spec(), a, seed=5, kernel="numpy")
        run_sweep(tiny_spec(), b, seed=5, kernel="numpy")
        assert a.manifest_bytes() == b.manifest_bytes()

    def test_resume_from_disk_store(self, tmp_path):
        store_dir = tmp_path / "store"
        run_sweep(tiny_spec(), store_dir, seed=1, kernel="numpy", max_points=2)
        status = sweep_status(store_dir)
        assert status.n_completed == 2 and status.pending_indexes == [2, 3]
        report = resume_sweep(store_dir)
        assert report.finished and report.n_run == 2
        assert sweep_status(store_dir).finished

    def test_resume_requires_header(self, tmp_path):
        with pytest.raises(ConfigurationError):
            resume_sweep(tmp_path / "nowhere")

    def test_progress_callback(self):
        lines = []
        run_sweep(
            tiny_spec(),
            ResultStore.in_memory(),
            seed=1,
            kernel="numpy",
            progress=lines.append,
        )
        assert len(lines) == 4 and "point 0" in lines[0]


class TestCatalog:
    def test_available_and_get(self):
        names = available_sweeps()
        assert {"a2_d_choices", "e9_adversarial", "smoke"} <= set(names)
        for name in names:
            spec = get_sweep(name)
            assert expand_sweep(spec).n_points == spec.n_points

    def test_unknown_sweep(self):
        with pytest.raises(ConfigurationError, match="unknown sweep"):
            get_sweep("bogus")

    def test_smoke_is_four_points(self):
        assert smoke_sweep_spec().n_points == 4

    def test_a2_spec_matches_registry_family(self):
        spec = a2_sweep_spec(sizes=[16, 32], d_values=[1, 2], trials=3, rounds_factor=1.0)
        plan = expand_sweep(spec)
        assert [(p.config["n_bins"], p.config["d"]) for p in plan.points] == [
            (16, 1),
            (16, 2),
            (32, 1),
            (32, 2),
        ]
        assert all(p.config["process"] == "d_choices" for p in plan.points)
        assert all(p.config["rounds"] == p.config["n_bins"] for p in plan.points)

    def test_builders_dedupe_equivalent_points(self):
        """gamma=None and gamma=0 both mean "no faults"; duplicate sizes
        repeat a point — the builders collapse them so the planner's
        duplicate check (store-collision protection) never trips."""
        spec = e9_sweep_spec(n=32, gammas=[None, 0, 6.0], trials=2)
        assert spec.n_points == 2
        expand_sweep(spec)  # no duplicate-configuration error
        spec = a2_sweep_spec(sizes=[16, 16, 32], d_values=[1, 1], trials=2)
        assert spec.n_points == 2
        expand_sweep(spec)

    def test_e9_fault_period_matches_with_gamma(self):
        spec = e9_sweep_spec(n=32, gammas=[6.0, 2.5, None], trials=2)
        periods = [p["fault_period"] for p in spec.points]
        assert periods == [
            max(int(math.ceil(6.0 * 32)), 1),
            max(int(math.ceil(2.5 * 32)), 1),
            None,
        ]
        assert all(p.get("process", spec.base["process"]) == "faulty" for p in spec.points)
