"""Tests for the batched ensemble engine (core.batched, parallel.ensemble).

The load-bearing guarantee is *engine equivalence*: with ``R == 1`` and the
same seed, the numpy kernel of :class:`BatchedRepeatedBallsIntoBins` must
reproduce :class:`RepeatedBallsIntoBins` step for step (identical generator
consumption).  On top of that sit ball-conservation and distributional
sanity checks at ``R > 1``, the per-replica early stop, the native kernel
(when a C compiler is available), and the engine-selection surface.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batched import (
    BatchedRepeatedBallsIntoBins,
    EnsembleResult,
    make_ensemble_initial,
)
from repro.core.config import DEFAULT_BETA, LoadConfiguration, legitimacy_threshold
from repro.core.native import native_available
from repro.core.process import RepeatedBallsIntoBins
from repro.errors import ConfigurationError
from repro.parallel.aggregate import aggregate_ensemble
from repro.parallel.ensemble import EnsembleSpec, run_ensemble

needs_native = pytest.mark.skipif(
    not native_available(), reason="native kernel unavailable (no C compiler)"
)


# ----------------------------------------------------------------------
# R = 1 equivalence with the sequential simulator (numpy kernel)
# ----------------------------------------------------------------------
class TestSequentialEquivalence:
    @pytest.mark.parametrize(
        "n,m", [(2, 2), (8, 8), (64, 64), (32, 64), (16, 5), (7, 0)]
    )
    def test_step_for_step(self, n, m):
        sequential = RepeatedBallsIntoBins(n, n_balls=m, seed=1234)
        batched = BatchedRepeatedBallsIntoBins(
            n, 1, n_balls=m, seed=1234, kernel="numpy"
        )
        for _ in range(100):
            expected = sequential.step()
            actual = batched.step()
            assert np.array_equal(expected, actual[0])

    def test_step_for_step_from_all_in_one(self):
        initial = LoadConfiguration.all_in_one(32)
        sequential = RepeatedBallsIntoBins(32, initial=initial, seed=9)
        batched = BatchedRepeatedBallsIntoBins(
            32, 1, initial=initial, seed=9, kernel="numpy"
        )
        for _ in range(200):
            assert np.array_equal(sequential.step(), batched.step()[0])

    def test_run_metrics_match(self):
        sequential = RepeatedBallsIntoBins(64, seed=7)
        batched = BatchedRepeatedBallsIntoBins(64, 1, seed=7, kernel="numpy")
        seq_result = sequential.run(250)
        bat_result = batched.run(250)
        assert seq_result.max_load_seen == bat_result.max_load_seen[0]
        assert seq_result.min_empty_bins_seen == bat_result.min_empty_bins_seen[0]
        expected_first = (
            -1
            if seq_result.first_legitimate_round is None
            else seq_result.first_legitimate_round
        )
        assert expected_first == bat_result.first_legitimate_round[0]
        assert np.array_equal(
            seq_result.final_configuration.loads, bat_result.final_loads[0]
        )

    def test_run_until_legitimate_matches(self):
        initial = LoadConfiguration.all_in_one(64)
        sequential = RepeatedBallsIntoBins(64, initial=initial, seed=11)
        batched = BatchedRepeatedBallsIntoBins(
            64, 1, initial=initial, seed=11, kernel="numpy"
        )
        hit = sequential.run_until_legitimate(20 * 64)
        vec = batched.run_until_legitimate(20 * 64)
        assert (hit if hit is not None else -1) == vec[0]

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=48),
        m=st.integers(min_value=0, max_value=96),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_property_trajectory_equality(self, n, m, seed):
        sequential = RepeatedBallsIntoBins(n, n_balls=m, seed=seed)
        batched = BatchedRepeatedBallsIntoBins(
            n, 1, n_balls=m, seed=seed, kernel="numpy"
        )
        for _ in range(20):
            assert np.array_equal(sequential.step(), batched.step()[0])


# ----------------------------------------------------------------------
# Ensemble semantics at R > 1 (numpy kernel)
# ----------------------------------------------------------------------
class TestBatchedEnsemble:
    def test_ball_conservation_per_replica(self):
        initial = make_ensemble_initial("random_uniform", 32, 20, seed=0)
        batched = BatchedRepeatedBallsIntoBins(
            32, 20, initial=initial, seed=1, kernel="numpy"
        )
        expected = initial.sum(axis=1)
        batched.run(100)
        assert np.array_equal(batched.loads.sum(axis=1), expected)

    def test_heterogeneous_ball_counts(self):
        rows = np.vstack(
            [
                LoadConfiguration.balanced(16, 8).as_array(),
                LoadConfiguration.balanced(16, 16).as_array(),
                LoadConfiguration.balanced(16, 40).as_array(),
            ]
        )
        batched = BatchedRepeatedBallsIntoBins(
            16, 3, initial=rows, seed=2, kernel="numpy"
        )
        batched.run(50)
        assert batched.loads.sum(axis=1).tolist() == [8, 16, 40]

    def test_metric_reducers_are_vectors(self):
        batched = BatchedRepeatedBallsIntoBins(16, 5, seed=3, kernel="numpy")
        batched.step()
        assert batched.max_load.shape == (5,)
        assert batched.num_empty_bins.shape == (5,)
        assert batched.is_legitimate().shape == (5,)
        assert batched.loads.shape == (5, 16)
        with pytest.raises(ValueError):
            batched.loads[0, 0] = 99  # read-only view

    def test_early_stop_freezes_replicas(self):
        initial = make_ensemble_initial("all_in_one", 64, 10)
        batched = BatchedRepeatedBallsIntoBins(
            64, 10, initial=initial, seed=4, kernel="numpy"
        )
        result = batched.run(20 * 64, stop_when_legitimate=True)
        assert result.converged_fraction == 1.0
        assert not batched.active.any()
        frozen = batched.loads.copy()
        rounds_before = batched.rounds_completed
        batched.run(25)  # all frozen: nothing may change
        assert np.array_equal(batched.loads, frozen)
        assert np.array_equal(batched.rounds_completed, rounds_before)

    def test_early_stop_rounds_match_first_legitimate(self):
        initial = make_ensemble_initial("all_in_one", 64, 8)
        batched = BatchedRepeatedBallsIntoBins(
            64, 8, initial=initial, seed=5, kernel="numpy"
        )
        result = batched.run(20 * 64, stop_when_legitimate=True)
        assert np.array_equal(result.rounds, result.first_legitimate_round)

    def test_already_legitimate_replica_stops_immediately(self):
        batched = BatchedRepeatedBallsIntoBins(64, 4, seed=6, kernel="numpy")
        result = batched.run(10, stop_when_legitimate=True)
        # the balanced start is legitimate, so no replica simulates a round
        assert np.array_equal(result.first_legitimate_round, np.zeros(4))
        assert np.array_equal(result.rounds, np.zeros(4))

    def test_distributional_sanity_vs_sequential(self):
        n, trials, rounds = 64, 120, 128
        batched = BatchedRepeatedBallsIntoBins(n, trials, seed=7, kernel="numpy")
        ensemble = batched.run(rounds)
        rng = np.random.default_rng(7)
        sequential_max = []
        for _ in range(40):
            process = RepeatedBallsIntoBins(n, seed=rng)
            sequential_max.append(process.run(rounds).max_load_seen)
        batched_mean = ensemble.max_load_seen.mean()
        sequential_mean = float(np.mean(sequential_max))
        # same distribution: window-max means agree within a loose tolerance
        assert abs(batched_mean - sequential_mean) < 0.2 * sequential_mean + 1.0
        # Lemma 2: the empty-bin fraction stays above ~1/4 after round one
        assert ensemble.min_empty_bins_seen.min() >= n // 8

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BatchedRepeatedBallsIntoBins(0, 1)
        with pytest.raises(ConfigurationError):
            BatchedRepeatedBallsIntoBins(4, 0)
        with pytest.raises(ConfigurationError):
            BatchedRepeatedBallsIntoBins(4, 1, kernel="fortran")
        with pytest.raises(ConfigurationError):
            BatchedRepeatedBallsIntoBins(4, 2, initial=np.zeros((3, 4), dtype=int))
        with pytest.raises(ConfigurationError):
            BatchedRepeatedBallsIntoBins(4, 1, initial=-np.ones((1, 4), dtype=int))
        with pytest.raises(ConfigurationError):
            BatchedRepeatedBallsIntoBins(4, 1).run(-1)

    def test_reset(self):
        batched = BatchedRepeatedBallsIntoBins(16, 3, seed=8, kernel="numpy")
        batched.run(20, stop_when_legitimate=True)
        batched.reset()
        assert batched.active.all()
        assert (batched.rounds_completed == 0).all()
        assert (batched.loads == 1).all()


# ----------------------------------------------------------------------
# make_ensemble_initial
# ----------------------------------------------------------------------
class TestEnsembleInitial:
    @pytest.mark.parametrize(
        "kind", ["balanced", "all_in_one", "pyramid", "legitimate_extreme"]
    )
    def test_deterministic_kinds(self, kind):
        block = make_ensemble_initial(kind, 16, 4, n_balls=20)
        assert block.shape == (4, 16)
        assert (block.sum(axis=1) == 20).all()
        assert (block == block[0]).all()  # replicated rows

    def test_random_uniform(self):
        block = make_ensemble_initial("random_uniform", 16, 50, n_balls=32, seed=0)
        assert block.shape == (50, 16)
        assert (block.sum(axis=1) == 32).all()
        assert not (block == block[0]).all()  # independent throws per replica

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            make_ensemble_initial("spiral", 8, 2)


# ----------------------------------------------------------------------
# EnsembleResult aggregate
# ----------------------------------------------------------------------
class TestEnsembleResult:
    @pytest.fixture
    def result(self) -> EnsembleResult:
        batched = BatchedRepeatedBallsIntoBins(32, 6, seed=9, kernel="numpy")
        return batched.run(64)

    def test_vectors_and_aggregates(self, result):
        assert result.n_replicas == 6
        assert result.max_load_seen.shape == (6,)
        assert (result.n_balls == 32).all()
        assert 0.0 <= result.converged_fraction <= 1.0
        assert result.ended_legitimate().shape == (6,)
        assert result.configuration(0).n_bins == 32

    def test_to_records_and_aggregate(self, result):
        records = result.to_records()
        assert len(records) == 6
        assert set(records[0]) == {
            "window_max_load",
            "min_empty_bins",
            "first_legitimate_round",
            "rounds",
            "final_max_load",
        }
        aggregate = aggregate_ensemble(result)
        assert aggregate.n_trials == 6
        assert aggregate.mean("window_max_load") == pytest.approx(
            result.max_load_seen.mean()
        )

    def test_describe(self, result):
        info = result.describe()
        assert info["n_replicas"] == 6.0
        assert info["mean_window_max_load"] > 0

    def test_concatenate(self, result):
        merged = EnsembleResult.concatenate([result, result])
        assert merged.n_replicas == 12
        assert merged.n_bins == result.n_bins
        with pytest.raises(ConfigurationError):
            EnsembleResult.concatenate([])


# ----------------------------------------------------------------------
# Native kernel
# ----------------------------------------------------------------------
@needs_native
class TestNativeKernel:
    def test_conservation_and_sanity(self):
        batched = BatchedRepeatedBallsIntoBins(64, 40, seed=10, kernel="native")
        result = batched.run(256)
        assert result.kernel == "native"
        assert (result.n_balls == 64).all()
        threshold = legitimacy_threshold(64, DEFAULT_BETA)
        assert (result.max_load_seen <= 3 * threshold).all()
        assert (result.min_empty_bins_seen >= 64 // 8).all()

    def test_deterministic_for_fixed_seed(self):
        first = BatchedRepeatedBallsIntoBins(32, 8, seed=11, kernel="native").run(100)
        second = BatchedRepeatedBallsIntoBins(32, 8, seed=11, kernel="native").run(100)
        assert np.array_equal(first.final_loads, second.final_loads)
        assert np.array_equal(first.max_load_seen, second.max_load_seen)

    def test_distribution_matches_numpy_kernel(self):
        n, trials, rounds = 64, 150, 128
        native = BatchedRepeatedBallsIntoBins(
            n, trials, seed=12, kernel="native"
        ).run(rounds)
        reference = BatchedRepeatedBallsIntoBins(
            n, trials, seed=12, kernel="numpy"
        ).run(rounds)
        native_mean = native.max_load_seen.mean()
        reference_mean = reference.max_load_seen.mean()
        assert abs(native_mean - reference_mean) < 0.15 * reference_mean + 1.0
        assert abs(
            native.min_empty_bins_seen.mean() - reference.min_empty_bins_seen.mean()
        ) < 0.15 * reference.min_empty_bins_seen.mean() + 2.0

    def test_early_stop(self):
        initial = make_ensemble_initial("all_in_one", 64, 10)
        batched = BatchedRepeatedBallsIntoBins(
            64, 10, initial=initial, seed=13, kernel="native"
        )
        result = batched.run(20 * 64, stop_when_legitimate=True)
        assert result.converged_fraction == 1.0
        assert (result.first_legitimate_round > 0).all()
        assert (result.first_legitimate_round < 20 * 64).all()

    def test_oversized_state_rejected_not_downgraded(self):
        initial = np.zeros((1, 4), dtype=np.int64)
        initial[0, 0] = 2**31  # does not fit the kernel's int32 loads
        batched = BatchedRepeatedBallsIntoBins(
            4, 1, initial=initial, seed=14, kernel="native"
        )
        with pytest.raises(ConfigurationError, match="int32"):
            batched.run(1)


# ----------------------------------------------------------------------
# Engine selection surface
# ----------------------------------------------------------------------
class TestRunEnsemble:
    def test_engines_share_schema(self):
        spec = EnsembleSpec(n_bins=32, n_replicas=12, rounds=64, start="random_uniform")
        batched = run_ensemble(spec, seed=0, engine="batched", kernel="numpy")
        sequential = run_ensemble(spec, seed=0, engine="sequential")
        for result in (batched, sequential):
            assert result.n_replicas == 12
            assert result.max_load_seen.shape == (12,)
            assert (result.n_balls == 32).all()
        assert batched.kernel == "numpy"
        assert sequential.kernel == "sequential"

    def test_engines_agree_distributionally(self):
        spec = EnsembleSpec(
            n_bins=64,
            n_replicas=60,
            rounds=20 * 64,
            start="all_in_one",
            stop_when_legitimate=True,
        )
        batched = run_ensemble(spec, seed=1, engine="batched", kernel="numpy")
        sequential = run_ensemble(spec, seed=1, engine="sequential")
        assert batched.converged_fraction == 1.0
        assert sequential.converged_fraction == 1.0
        mean_b = batched.first_legitimate_round.mean()
        mean_s = sequential.first_legitimate_round.mean()
        assert abs(mean_b - mean_s) < 0.35 * max(mean_b, mean_s)

    def test_warmup_rounds(self):
        spec = EnsembleSpec(
            n_bins=32, n_replicas=8, rounds=40, start="all_in_one", warmup_rounds=1
        )
        result = run_ensemble(spec, seed=2, engine="batched", kernel="numpy")
        # after the warm-up round the all-in-one spike has dispersed, so the
        # tracked window max is far below n
        assert (result.max_load_seen < 32).all()
        assert (result.rounds == 40).all()

    def test_deterministic_per_engine(self):
        spec = EnsembleSpec(n_bins=16, n_replicas=6, rounds=30)
        a = run_ensemble(spec, seed=3, engine="batched", kernel="numpy")
        b = run_ensemble(spec, seed=3, engine="batched", kernel="numpy")
        assert np.array_equal(a.final_loads, b.final_loads)

    def test_explicit_matrix_start(self):
        start = make_ensemble_initial("random_uniform", 16, 5, seed=4)
        spec = EnsembleSpec(n_bins=16, n_replicas=5, rounds=10, start=start)
        batched = run_ensemble(spec, seed=5, engine="batched", kernel="numpy")
        sequential = run_ensemble(spec, seed=5, engine="sequential")
        assert np.array_equal(batched.n_balls, start.sum(axis=1))
        assert np.array_equal(sequential.n_balls, start.sum(axis=1))

    def test_sharded_pool_runs(self):
        spec = EnsembleSpec(n_bins=16, n_replicas=9, rounds=20)
        result = run_ensemble(spec, seed=6, engine="batched", n_workers=2)
        assert result.n_replicas == 9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EnsembleSpec(n_bins=0, n_replicas=1, rounds=1)
        with pytest.raises(ConfigurationError):
            EnsembleSpec(n_bins=4, n_replicas=1, rounds=1, start="spiral")
        spec = EnsembleSpec(n_bins=4, n_replicas=1, rounds=1)
        with pytest.raises(ConfigurationError):
            run_ensemble(spec, engine="quantum")
