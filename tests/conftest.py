"""Shared pytest fixtures."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for tests that need raw randomness."""
    return np.random.default_rng(12345)


@pytest.fixture(params=[8, 32, 64])
def small_n(request) -> int:
    """A selection of small system sizes exercised by parametrized tests."""
    return request.param
