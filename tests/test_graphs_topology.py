"""Unit tests for repro.graphs.topology and repro.graphs.generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    from_networkx,
    hypercube_graph,
    random_regular_graph,
    star_graph,
    torus_grid_graph,
)
from repro.graphs.topology import Topology


class TestTopology:
    def test_basic_properties(self):
        topo = Topology([[1], [0, 2], [1]], name="path")
        assert topo.num_nodes == 3
        assert topo.name == "path"
        assert topo.degrees.tolist() == [1, 2, 1]
        assert not topo.is_regular
        assert topo.degree is None

    def test_regular_detection(self):
        topo = Topology([[1, 2], [0, 2], [0, 1]])
        assert topo.is_regular
        assert topo.degree == 2

    def test_neighbors_of(self):
        topo = Topology([[1, 2], [0], [0]])
        assert topo.neighbors_of(0).tolist() == [1, 2]
        with pytest.raises(GraphError):
            topo.neighbors_of(5)

    def test_edge_list(self):
        topo = Topology([[1], [0]])
        assert set(topo.edge_list()) == {(0, 1), (1, 0)}

    def test_validation(self):
        with pytest.raises(GraphError):
            Topology([])
        with pytest.raises(GraphError):
            Topology([[1], []])  # node 1 has no neighbors
        with pytest.raises(GraphError):
            Topology([[5], [0]])  # out-of-range neighbor

    def test_sample_neighbors_respects_adjacency(self, rng):
        topo = Topology([[1, 2], [0], [0]])
        nodes = np.array([0] * 100 + [1] * 50 + [2] * 50)
        samples = topo.sample_neighbors(nodes, rng)
        assert samples.shape == nodes.shape
        assert set(samples[:100].tolist()) <= {1, 2}
        assert set(samples[100:].tolist()) == {0}

    def test_sample_neighbors_uniform(self, rng):
        topo = Topology([[1, 2, 3], [0], [0], [0]])
        samples = topo.sample_neighbors(np.zeros(6000, dtype=np.int64), rng)
        counts = np.bincount(samples, minlength=4)
        # roughly uniform over the three neighbors of node 0
        assert counts[0] == 0
        assert np.all(np.abs(counts[1:] - 2000) < 300)

    def test_is_connected(self):
        assert Topology([[1], [0]]).is_connected()
        disconnected = Topology([[1], [0], [3], [2]])
        assert not disconnected.is_connected()


class TestGenerators:
    def test_complete_graph_with_self_loops(self):
        topo = complete_graph(5)
        assert topo.num_nodes == 5
        assert topo.is_regular
        assert topo.degree == 5  # includes the self-loop
        assert 0 in topo.neighbors_of(0).tolist()

    def test_complete_graph_without_self_loops(self):
        topo = complete_graph(5, include_self_loops=False)
        assert topo.degree == 4
        assert 0 not in topo.neighbors_of(0).tolist()

    def test_complete_graph_single_node(self):
        topo = complete_graph(1)
        assert topo.num_nodes == 1
        assert topo.neighbors_of(0).tolist() == [0]

    def test_cycle_graph(self):
        topo = cycle_graph(6)
        assert topo.is_regular
        assert topo.degree == 2
        assert topo.is_connected()
        assert sorted(topo.neighbors_of(0).tolist()) == [1, 5]
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_torus_grid(self):
        topo = torus_grid_graph(4, 5)
        assert topo.num_nodes == 20
        assert topo.is_regular
        assert topo.degree == 4
        assert topo.is_connected()
        with pytest.raises(GraphError):
            torus_grid_graph(2, 5)

    def test_torus_square_default(self):
        assert torus_grid_graph(4).num_nodes == 16

    def test_hypercube(self):
        topo = hypercube_graph(4)
        assert topo.num_nodes == 16
        assert topo.is_regular
        assert topo.degree == 4
        assert topo.is_connected()
        # neighbors differ in exactly one bit
        for v in topo.neighbors_of(0):
            assert bin(int(v)).count("1") == 1
        with pytest.raises(GraphError):
            hypercube_graph(0)

    def test_random_regular(self):
        topo = random_regular_graph(20, degree=4, seed=0)
        assert topo.num_nodes == 20
        assert topo.is_regular
        assert topo.degree == 4
        assert topo.is_connected()

    def test_random_regular_validation(self):
        with pytest.raises(GraphError):
            random_regular_graph(2, degree=4)
        with pytest.raises(GraphError):
            random_regular_graph(9, degree=3)  # odd n * degree
        with pytest.raises(GraphError):
            random_regular_graph(10, degree=1)

    def test_star_graph(self):
        topo = star_graph(6)
        assert topo.num_nodes == 6
        assert not topo.is_regular
        assert topo.degrees.tolist() == [5, 1, 1, 1, 1, 1]
        with pytest.raises(GraphError):
            star_graph(1)

    def test_from_networkx(self):
        import networkx as nx

        topo = from_networkx(nx.path_graph(4), name="path")
        assert topo.num_nodes == 4
        assert topo.name == "path"
        assert topo.degrees.tolist() == [1, 2, 2, 1]
        with pytest.raises(GraphError):
            from_networkx(nx.Graph())
