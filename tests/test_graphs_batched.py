"""Tests for the batched graph-walk stack: BatchedConstrainedWalks, the
topology spec language, engine routing, sweeps/store round trip, and the
native walk kernel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import LoadConfiguration
from repro.core.native import native_available
from repro.errors import ConfigurationError, GraphError
from repro.graphs import (
    BatchedConstrainedWalks,
    ConstrainedParallelWalks,
    parse_topology_spec,
    resolve_topology,
    star_graph,
)
from repro.parallel.ensemble import EnsembleSpec, PROCESSES, run_ensemble
from repro.store import ResultStore
from repro.sweeps import expand_sweep, graph_topologies_sweep_spec, run_sweep

#: One spec per named generator, kept small so the whole matrix stays fast.
TOPOLOGY_SPECS = (
    "complete:16",
    "cycle:16",
    "torus:4x4",
    "hypercube:4",
    "random_regular:16:4",
    "star:16",
)

needs_walk_kernel = pytest.mark.skipif(
    not native_available("walks"), reason="native walk kernel unavailable"
)


# ----------------------------------------------------------------------
# Topology spec language
# ----------------------------------------------------------------------
class TestTopologySpecs:
    @pytest.mark.parametrize("spec", TOPOLOGY_SPECS)
    def test_parse_matches_resolve(self, spec):
        parsed = parse_topology_spec(spec)
        topology = resolve_topology(spec)
        assert parsed.num_nodes == topology.num_nodes

    def test_torus_square_shorthand(self):
        assert parse_topology_spec("torus:4").num_nodes == 16
        assert parse_topology_spec("torus:3x5").num_nodes == 15

    def test_resolution_is_cached_and_deterministic(self):
        a = resolve_topology("random_regular:24:3")
        b = resolve_topology("random_regular:24:3")
        assert a is b  # lru_cache: one shared CSR per process
        # deterministic across specs: the seed derives from the spec string
        edges_a = resolve_topology("random_regular:24:3").edge_list()
        assert edges_a == b.edge_list()

    def test_equivalent_spellings_name_the_same_graph(self):
        # the parser is case-insensitive and normalizes arguments, and the
        # random_regular seed derives from the *canonical* spelling — so
        # every spelling the parser treats as equal builds the same graph
        assert (
            parse_topology_spec("Random_Regular:24:3").spec
            == parse_topology_spec(" random_regular:24:3 ").spec
        )
        assert (
            resolve_topology("Random_Regular:24:3").edge_list()
            == resolve_topology("random_regular:24:3").edge_list()
        )
        assert parse_topology_spec("torus:4x4").spec == (
            parse_topology_spec("torus:4").spec
        )

    @pytest.mark.parametrize(
        "bad",
        [
            "moebius:16",  # unknown family
            "cycle",  # missing argument
            "cycle:2",  # below the generator's bound
            "torus:2x8",  # dimension below 3
            "random_regular:16",  # missing degree
            "random_regular:16:1",  # degree below 2
            "random_regular:15:3",  # odd n * degree
            "hypercube:zero",  # non-integer
            "",
        ],
    )
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(GraphError):
            parse_topology_spec(bad)


# ----------------------------------------------------------------------
# R = 1 stream equality vs the sequential simulator (numpy kernel)
# ----------------------------------------------------------------------
class TestStreamEquality:
    @pytest.mark.parametrize("spec", TOPOLOGY_SPECS)
    @pytest.mark.parametrize("constrained", [True, False])
    def test_single_replica_matches_sequential(self, spec, constrained):
        topology = resolve_topology(spec)
        sequential = ConstrainedParallelWalks(
            topology, constrained=constrained, seed=42
        )
        batched = BatchedConstrainedWalks(
            topology, 1, constrained=constrained, seed=42, kernel="numpy"
        )
        for t in range(60):
            expected = sequential.step()
            actual = batched.step()
            assert np.array_equal(actual[0], expected), (spec, constrained, t)

    def test_single_replica_run_windows_match(self):
        topology = resolve_topology("torus:4x4")
        initial = LoadConfiguration.all_in_one(16)
        sequential = ConstrainedParallelWalks(topology, initial=initial, seed=7)
        batched = BatchedConstrainedWalks(
            topology, 1, initial=initial, seed=7, kernel="numpy"
        )
        outcome = sequential.run(50)
        result = batched.run(50)
        assert np.array_equal(
            result.final_loads[0], outcome.final_configuration.as_array()
        )
        # the sequential window includes the starting configuration; the
        # engine window covers executed rounds only, so it can only differ
        # by that initial observation
        assert result.max_load_seen[0] <= outcome.max_load_seen
        assert result.min_empty_bins_seen[0] >= outcome.min_empty_nodes_seen


# ----------------------------------------------------------------------
# Batched ensemble semantics
# ----------------------------------------------------------------------
class TestBatchedWalks:
    @pytest.mark.parametrize("constrained", [True, False])
    def test_token_conservation_on_star(self, constrained):
        # the irregular stress case: hub degree n-1, leaves degree 1
        topology = star_graph(24)
        batched = BatchedConstrainedWalks(
            topology, 6, constrained=constrained, seed=3, kernel="numpy"
        )
        for _ in range(40):
            loads = batched.step()
            assert (loads.sum(axis=1) == 24).all()
            assert (loads >= 0).all()

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_property_conservation_heterogeneous_tokens(self, seed):
        # per-replica starts with different token counts stay conserved
        rng = np.random.default_rng(seed)
        initial = rng.integers(0, 4, size=(5, 24))
        batched = BatchedConstrainedWalks(
            star_graph(24), 5, initial=initial, seed=seed, kernel="numpy"
        )
        totals = initial.sum(axis=1)
        result = batched.run(30)
        assert np.array_equal(result.final_loads.sum(axis=1), totals)

    def test_frozen_replicas_do_not_move(self):
        batched = BatchedConstrainedWalks(
            resolve_topology("cycle:16"), 3, seed=0, kernel="numpy"
        )
        batched.deactivate(np.asarray([True, False, False]))
        frozen = batched.loads[0].copy()
        batched.step()
        assert np.array_equal(batched.loads[0], frozen)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BatchedConstrainedWalks(resolve_topology("cycle:16"), 0)
        with pytest.raises(ConfigurationError):
            BatchedConstrainedWalks(
                resolve_topology("cycle:16"), 2, kernel="vulkan"
            )


# ----------------------------------------------------------------------
# Engine routing (EnsembleSpec process="graph_walks")
# ----------------------------------------------------------------------
class TestEnsembleRouting:
    def test_graph_walks_registered(self):
        assert "graph_walks" in PROCESSES

    @pytest.mark.parametrize("spec_str", TOPOLOGY_SPECS)
    @pytest.mark.parametrize("constrained", [True, False])
    def test_engines_stream_equal_at_single_replica(self, spec_str, constrained):
        # acceptance: run_ensemble at R = 1 is stream-equal across engines
        # for every catalogued topology (same spawned seed, numpy kernel)
        n = parse_topology_spec(spec_str).num_nodes
        spec = EnsembleSpec(
            n_bins=n,
            n_replicas=1,
            rounds=40,
            process="graph_walks",
            topology=spec_str,
            constrained=constrained,
        )
        sequential = run_ensemble(spec, seed=11, engine="sequential")
        batched = run_ensemble(spec, seed=11, engine="batched", kernel="numpy")
        assert np.array_equal(sequential.final_loads, batched.final_loads)
        assert np.array_equal(sequential.max_load_seen, batched.max_load_seen)
        assert np.array_equal(
            sequential.min_empty_bins_seen, batched.min_empty_bins_seen
        )

    def test_sequential_engine_matches_hand_driven_walks(self):
        # the sequential engine's trial really is ConstrainedParallelWalks:
        # rebuild trial 0's seeding (trial_seed -> spawn(2)) and compare
        from repro.parallel.seeding import trial_seed

        spec = EnsembleSpec(
            n_bins=16,
            n_replicas=1,
            rounds=30,
            process="graph_walks",
            topology="cycle:16",
        )
        result = run_ensemble(spec, seed=5, engine="sequential")
        _, sim_seq = trial_seed(5, 0).spawn(2)
        walks = ConstrainedParallelWalks(
            resolve_topology("cycle:16"), seed=np.random.default_rng(sim_seq)
        )
        walks.run(30)
        assert np.array_equal(result.final_loads[0], walks.loads)

    def test_metrics_pipeline_observes_walks(self):
        spec = EnsembleSpec(
            n_bins=16,
            n_replicas=3,
            rounds=20,
            process="graph_walks",
            topology="star:16",
            metrics="max_load,empty_bins",
            observe_every=4,
        )
        for engine in ("batched", "sequential"):
            result = run_ensemble(spec, seed=2, engine=engine, kernel="numpy")
            payload = result.metrics["max_load"]
            assert payload.summaries["window_max"].shape == (3,)
            series = payload.series["max_load"]
            assert series.shape[1] == 3
            # the star hub shows up in the observed series too
            assert payload.summaries["window_max"].max() > 4

    def test_start_families_apply_to_walks(self):
        spec = EnsembleSpec(
            n_bins=16,
            n_replicas=2,
            rounds=0,
            process="graph_walks",
            topology="cycle:16",
            start="all_in_one",
        )
        result = run_ensemble(spec, seed=0, engine="batched", kernel="numpy")
        assert (result.final_loads[:, 0] == 16).all()
        # idle (zero-round) replicas report the observed state, not zeros
        assert (result.max_load_seen == 16).all()
        assert (result.min_empty_bins_seen == 15).all()

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            EnsembleSpec(
                n_bins=16, n_replicas=1, rounds=1, process="graph_walks"
            )
        with pytest.raises(ConfigurationError):
            EnsembleSpec(
                n_bins=8,
                n_replicas=1,
                rounds=1,
                process="graph_walks",
                topology="cycle:16",
            )
        with pytest.raises(ConfigurationError):
            EnsembleSpec(
                n_bins=16, n_replicas=1, rounds=1, topology="cycle:16"
            )


# ----------------------------------------------------------------------
# Sweep + store round trip
# ----------------------------------------------------------------------
class TestGraphSweep:
    def test_catalogued_sweep_runs_and_round_trips(self, tmp_path):
        sweep = graph_topologies_sweep_spec(
            topologies=("cycle:16", "star:16"),
            trials=3,
            rounds_factor=1.0,
            observe_every=4,
        )
        plan = expand_sweep(sweep)
        assert plan.n_points == 2
        store_dir = tmp_path / "walks-sweep"
        report = run_sweep(sweep, store_dir, seed=4, kernel="numpy")
        assert report.finished

        store = ResultStore.open(store_dir)
        table = store.select(topology="star:16")
        assert len(table.rows) == 1
        row = table.rows[0]
        assert row["process"] == "graph_walks"
        assert row["window_max_load_mean"] > 0
        # observed streaming summaries made it into the manifest
        assert "max_load_window_max_mean" in row
        assert "empty_bins_window_min_mean" in row
        # the full per-replica series round-trips through the shard
        arrays = store.replicas(row["point_id"])
        assert arrays["observed.max_load.series.max_load"].shape[1] == 3

    def test_auto_kernel_resolution_consults_the_walk_kernel(self):
        # a graph-walks sweep must pin "native" only when the *walk* kernel
        # is available — not merely the rbb kernel
        from repro.core.native import native_available
        from repro.sweeps.scheduler import _resolve_kernel

        plan = expand_sweep(
            graph_topologies_sweep_spec(topologies=("cycle:16",), trials=1)
        )
        expected = "native" if native_available("walks") else "numpy"
        assert _resolve_kernel("auto", plan) == expected
        # explicit kernels pass through untouched
        assert _resolve_kernel("numpy", plan) == "numpy"

    def test_sweep_spec_json_round_trip(self):
        from repro.sweeps import SweepSpec

        sweep = graph_topologies_sweep_spec(topologies=("torus:4x4",), trials=2)
        clone = SweepSpec.from_dict(sweep.to_dict())
        assert expand_sweep(clone).points[0].point_id == (
            expand_sweep(sweep).points[0].point_id
        )


# ----------------------------------------------------------------------
# Native walk kernel
# ----------------------------------------------------------------------
@needs_walk_kernel
class TestNativeWalkKernel:
    @pytest.mark.parametrize("spec_str", TOPOLOGY_SPECS)
    @pytest.mark.parametrize("constrained", [True, False])
    def test_conservation_every_topology(self, spec_str, constrained):
        topology = resolve_topology(spec_str)
        batched = BatchedConstrainedWalks(
            topology, 8, constrained=constrained, seed=1, kernel="native"
        )
        result = batched.run(50)
        assert result.kernel == "native"
        assert (result.final_loads.sum(axis=1) == topology.num_nodes).all()
        assert (result.final_loads >= 0).all()

    def test_deterministic_for_fixed_seed(self):
        topology = resolve_topology("torus:4x4")
        a = BatchedConstrainedWalks(topology, 4, seed=9, kernel="native").run(40)
        b = BatchedConstrainedWalks(topology, 4, seed=9, kernel="native").run(40)
        assert np.array_equal(a.final_loads, b.final_loads)
        assert np.array_equal(a.max_load_seen, b.max_load_seen)

    def test_segmented_observation_matches_whole_window(self):
        # the xoshiro lane buffer resets per round, so observe_every
        # segmentation must not change the trajectory
        topology = resolve_topology("cycle:16")
        whole = BatchedConstrainedWalks(topology, 4, seed=6, kernel="native")
        seen = []
        segmented = BatchedConstrainedWalks(topology, 4, seed=6, kernel="native")
        r_whole = whole.run(60)
        r_seg = segmented.run(
            60, observers=lambda t, loads: seen.append(t), observe_every=7
        )
        assert np.array_equal(r_whole.final_loads, r_seg.final_loads)
        assert np.array_equal(r_whole.max_load_seen, r_seg.max_load_seen)
        assert seen[-1] == 60

    def test_distribution_matches_numpy_kernel(self):
        # different generators, same process: window maxima agree in mean
        topology = resolve_topology("hypercube:4")
        R, rounds = 96, 80
        native = BatchedConstrainedWalks(
            topology, R, seed=12, kernel="native"
        ).run(rounds)
        numpy_ = BatchedConstrainedWalks(
            topology, R, seed=13, kernel="numpy"
        ).run(rounds)
        assert abs(
            native.max_load_seen.mean() - numpy_.max_load_seen.mean()
        ) < 1.0

    def test_early_stop_freezes_replicas(self):
        topology = resolve_topology("complete:16")
        initial = LoadConfiguration.all_in_one(16)
        batched = BatchedConstrainedWalks(
            topology, 6, initial=initial, seed=2, kernel="native"
        )
        result = batched.run(400, stop_when_legitimate=True)
        assert result.converged.all()
        assert (result.rounds <= 400).all()
        assert (result.first_legitimate_round > 0).all()

    def test_engine_selects_native_by_default(self):
        spec = EnsembleSpec(
            n_bins=16,
            n_replicas=4,
            rounds=10,
            process="graph_walks",
            topology="cycle:16",
        )
        result = run_ensemble(spec, seed=0, engine="batched", kernel="auto")
        assert result.kernel == "native"
