"""Threaded native kernels and fused in-kernel observation.

The contract under test: the thread count is a pure execution knob — for
any ``n_threads`` the native kernels produce **bit-identical**
trajectories and observation series (replicas own disjoint state and RNG
streams, so the parallelization axis cannot reorder any arithmetic) — and
the fused in-kernel observation path is indistinguishable from the
segmented Python-side observer loop on every registered metric.

Also covered here: the flag-aware binary cache key, thread-count
resolution precedence, the exact-moments tracker, and the sweep
scheduler's oversubscription guard.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core.batched import BatchedRepeatedBallsIntoBins
from repro.core.native import (
    available_cpu_count,
    native_available,
    resolve_n_threads,
)
from repro.errors import ConfigurationError
from repro.graphs.batched import BatchedConstrainedWalks
from repro.graphs.generators import resolve_topology
from repro.metrics import (
    METRIC_NAMES,
    BatchedLoadMomentsTracker,
    FusedSegmentStats,
    build_trackers,
    supports_fused,
)
from repro.parallel.ensemble import EnsembleSpec, run_ensemble
from repro.sweeps import SweepSpec, resume_sweep, run_sweep

needs_native = pytest.mark.skipif(
    not native_available(), reason="native kernel unavailable (no C compiler)"
)
needs_native_walks = pytest.mark.skipif(
    not native_available("walks"),
    reason="native walk kernel unavailable (no C compiler)",
)

THREAD_COUNTS = (1, 2, max(2, available_cpu_count()))

#: Metrics whose trackers ingest in-kernel segment statistics; the rest
#: (trace, histogram, bin_emptying) need full load matrices, so their
#: presence in an observer list sends the whole run down the segmented
#: fallback path.
FUSED_METRICS = "max_load,empty_bins,legitimacy,moments"


def _rbb(n_threads, **kwargs):
    defaults = dict(seed=42, kernel="native", n_threads=n_threads)
    defaults.update(kwargs)
    return BatchedRepeatedBallsIntoBins(96, 33, **defaults)


def _walks(n_threads, **kwargs):
    defaults = dict(seed=42, kernel="native", n_threads=n_threads)
    defaults.update(kwargs)
    return BatchedConstrainedWalks(resolve_topology("cycle:64"), 33, **defaults)


def _payloads(spec_metrics, process, run_kwargs):
    """(final loads, metric payload map) for one run."""
    trackers = build_trackers(spec_metrics)
    observers = [tracker for _, tracker in trackers]
    result = process.run(observers=observers, **run_kwargs)
    return result.final_loads, {
        name: tracker.payload() for name, tracker in trackers
    }


def _assert_payloads_equal(a, b, context=""):
    assert set(a) == set(b)
    for name in a:
        pa, pb = a[name], b[name]
        assert set(pa.summaries) == set(pb.summaries), (context, name)
        for key in pa.summaries:
            assert np.array_equal(pa.summaries[key], pb.summaries[key]), (
                context,
                name,
                key,
            )
        assert set(pa.series) == set(pb.series), (context, name)
        for key in pa.series:
            assert np.array_equal(
                np.asarray(pa.series[key]), np.asarray(pb.series[key])
            ), (context, name, key)


# ---------------------------------------------------------------------
# Bit-identical trajectories for every thread count
# ---------------------------------------------------------------------
@needs_native
class TestThreadInvarianceRbb:
    @pytest.mark.parametrize("n_threads", THREAD_COUNTS)
    def test_unobserved_trajectories_identical(self, n_threads):
        base = _rbb(1).run(300)
        run = _rbb(n_threads).run(300)
        assert run.kernel == "native"
        assert np.array_equal(run.final_loads, base.final_loads)
        assert np.array_equal(run.max_load_seen, base.max_load_seen)
        assert np.array_equal(
            run.min_empty_bins_seen, base.min_empty_bins_seen
        )
        assert np.array_equal(
            run.first_legitimate_round, base.first_legitimate_round
        )

    @pytest.mark.parametrize("n_threads", THREAD_COUNTS[1:])
    def test_observed_series_identical(self, n_threads):
        metrics = ",".join(METRIC_NAMES)
        kwargs = dict(rounds=200, observe_every=16)
        base_loads, base_payloads = _payloads(metrics, _rbb(1), kwargs)
        loads, payloads = _payloads(metrics, _rbb(n_threads), kwargs)
        assert np.array_equal(loads, base_loads)
        _assert_payloads_equal(base_payloads, payloads, f"threads={n_threads}")

    @pytest.mark.parametrize("n_threads", THREAD_COUNTS[1:])
    def test_stop_when_legitimate_identical(self, n_threads):
        base = _rbb(1).run(3000, stop_when_legitimate=True)
        run = _rbb(n_threads).run(3000, stop_when_legitimate=True)
        assert np.array_equal(run.rounds, base.rounds)
        assert np.array_equal(run.final_loads, base.final_loads)
        assert np.array_equal(
            run.first_legitimate_round, base.first_legitimate_round
        )

    def test_more_threads_than_replicas(self):
        base = _rbb(1).run(100)
        run = _rbb(1000).run(100)  # clamped to R inside the launch
        assert np.array_equal(run.final_loads, base.final_loads)


@needs_native_walks
class TestThreadInvarianceWalks:
    @pytest.mark.parametrize("n_threads", THREAD_COUNTS[1:])
    def test_unobserved_trajectories_identical(self, n_threads):
        base = _walks(1).run(200)
        run = _walks(n_threads).run(200)
        assert run.kernel == "native"
        assert np.array_equal(run.final_loads, base.final_loads)
        assert np.array_equal(run.max_load_seen, base.max_load_seen)

    @pytest.mark.parametrize("n_threads", THREAD_COUNTS[1:])
    def test_observed_series_identical(self, n_threads):
        metrics = ",".join(METRIC_NAMES)
        kwargs = dict(rounds=150, observe_every=7)
        base_loads, base_payloads = _payloads(metrics, _walks(1), kwargs)
        loads, payloads = _payloads(metrics, _walks(n_threads), kwargs)
        assert np.array_equal(loads, base_loads)
        _assert_payloads_equal(base_payloads, payloads, f"threads={n_threads}")

    @pytest.mark.parametrize("n_threads", THREAD_COUNTS[1:])
    def test_stop_when_legitimate_identical(self, n_threads):
        base = _walks(1).run(2000, stop_when_legitimate=True)
        run = _walks(n_threads).run(2000, stop_when_legitimate=True)
        assert np.array_equal(run.rounds, base.rounds)
        assert np.array_equal(run.final_loads, base.final_loads)


# ---------------------------------------------------------------------
# Fused in-kernel observation == segmented Python observation
# ---------------------------------------------------------------------
@needs_native
class TestFusedObservation:
    @pytest.mark.parametrize("observe_every", [1, 7, 16, 1000])
    def test_rbb_fused_matches_segmented(self, observe_every, monkeypatch):
        kwargs = dict(rounds=120, observe_every=observe_every)
        fused_loads, fused = _payloads(FUSED_METRICS, _rbb(2), kwargs)
        monkeypatch.setenv("REPRO_NATIVE_FUSED", "0")
        seg_loads, segmented = _payloads(FUSED_METRICS, _rbb(2), kwargs)
        assert np.array_equal(fused_loads, seg_loads)
        _assert_payloads_equal(fused, segmented, f"stride={observe_every}")

    @needs_native_walks
    def test_walks_fused_matches_segmented(self, monkeypatch):
        kwargs = dict(rounds=90, observe_every=5)
        fused_loads, fused = _payloads(FUSED_METRICS, _walks(2), kwargs)
        monkeypatch.setenv("REPRO_NATIVE_FUSED", "0")
        seg_loads, segmented = _payloads(FUSED_METRICS, _walks(2), kwargs)
        assert np.array_equal(fused_loads, seg_loads)
        _assert_payloads_equal(fused, segmented, "walks")

    def test_mixed_observer_list_falls_back_identically(self, monkeypatch):
        """A non-fusable tracker in the list disables fusion, not accuracy."""
        metrics = ",".join(METRIC_NAMES)  # includes trace/histogram
        kwargs = dict(rounds=80, observe_every=8)
        mixed_loads, mixed = _payloads(metrics, _rbb(2), kwargs)
        monkeypatch.setenv("REPRO_NATIVE_FUSED", "0")
        seg_loads, segmented = _payloads(metrics, _rbb(2), kwargs)
        assert np.array_equal(mixed_loads, seg_loads)
        _assert_payloads_equal(mixed, segmented, "mixed")

    def test_fused_matches_numpy_kernel(self):
        """The whole fused pipeline agrees with the numpy reference engine."""
        metrics = "max_load,empty_bins,legitimacy,moments"
        kwargs = dict(rounds=80, observe_every=4)

        def run_with(kernel):
            trackers = build_trackers(metrics)
            proc = BatchedRepeatedBallsIntoBins(64, 9, seed=5, kernel=kernel)
            proc.run(observers=[t for _, t in trackers], **kwargs)
            return {name: t.payload() for name, t in trackers}

        # numpy and native draw different streams, so compare *shapes and
        # schema* across kernels and exact values within the native kernel
        native = run_with("native")
        reference = run_with("numpy")
        assert set(native) == set(reference)
        for name in native:
            assert set(native[name].summaries) == set(
                reference[name].summaries
            )
            for key in native[name].summaries:
                assert (
                    np.asarray(native[name].summaries[key]).shape
                    == np.asarray(reference[name].summaries[key]).shape
                )

    def test_fusable_tracker_set(self):
        """Which registered trackers ride the fused fast path.

        The scalar-statistics trackers must stay fusable (losing one
        silently forfeits the fused speedup for every run that requests
        it); the matrix-shaped trackers cannot be reconstructed from
        segment statistics, so they must *not* claim fusion support.
        """
        fusable = set(FUSED_METRICS.split(","))
        for name, tracker in build_trackers(",".join(METRIC_NAMES)):
            assert supports_fused(tracker) == (name in fusable), name


# ---------------------------------------------------------------------
# Exact integer moments tracker
# ---------------------------------------------------------------------
class TestMomentsTracker:
    def test_matches_numpy_reference(self):
        rng = np.random.default_rng(0)
        tracker = BatchedLoadMomentsTracker()
        observed = []
        for t in range(1, 6):
            loads = rng.integers(0, 10, size=(4, 32))
            tracker.observe(t, loads)
            observed.append(loads)
        stack = np.stack(observed)  # (T, R, n)
        assert np.array_equal(tracker.mean, stack.mean(axis=(0, 2)))
        assert np.allclose(tracker.variance, stack.var(axis=(0, 2)))
        payload = tracker.payload()
        assert np.array_equal(payload.summaries["mean_load"], tracker.mean)
        assert (payload.summaries["observations"] == 5 * 32).all()

    def test_fused_ingest_requires_moment_blocks(self):
        tracker = BatchedLoadMomentsTracker()
        stats = FusedSegmentStats(
            rounds=np.array([1], dtype=np.int64),
            max_load=np.ones((1, 2), dtype=np.int64),
            empty_bins=np.zeros((1, 2), dtype=np.int64),
            n_bins=8,
        )
        with pytest.raises(ConfigurationError):
            tracker.ingest_fused(stats)


# ---------------------------------------------------------------------
# Thread-count resolution and the flag-aware cache key
# ---------------------------------------------------------------------
class TestResolveNThreads:
    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_THREADS", "7")
        assert resolve_n_threads(3, n_replicas=100) in (1, 3)

    @needs_native
    def test_env_wins_over_cpu_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_THREADS", "5")
        resolved = resolve_n_threads(n_replicas=100)
        from repro.core.native import native_threading

        expected = 5 if native_threading() != "serial" else 1
        assert resolved == expected

    def test_default_is_cpu_count_clamped_by_replicas(self, monkeypatch):
        monkeypatch.delenv("REPRO_NATIVE_THREADS", raising=False)
        assert resolve_n_threads(n_replicas=1) == 1

    def test_rejects_bad_values(self, monkeypatch):
        with pytest.raises(ConfigurationError):
            resolve_n_threads(0)
        monkeypatch.setenv("REPRO_NATIVE_THREADS", "two")
        with pytest.raises(ConfigurationError):
            resolve_n_threads()

    def test_cpu_count_positive(self):
        assert available_cpu_count() >= 1


class TestBinaryCacheKey:
    def test_flags_are_part_of_the_key(self):
        from repro.core.native import _KERNELS, _fingerprint

        spec = _KERNELS["rbb"]
        base = _fingerprint(spec, "cc", ())
        with_omp = _fingerprint(spec, "cc", ("-fopenmp",))
        assert base != with_omp
        assert _fingerprint(spec, "cc", ("-fopenmp",)) == with_omp
        assert _fingerprint(spec, "gcc", ("-fopenmp",)) != with_omp

    def test_header_is_part_of_the_key(self):
        """The shared header is compiled in, so it must be hashed too."""
        import dataclasses

        from repro.core.native import _KERNELS, _fingerprint

        spec = _KERNELS["rbb"]
        without_header = dataclasses.replace(spec, headers=())
        assert _fingerprint(spec, "cc", ()) != _fingerprint(
            without_header, "cc", ()
        )


# ---------------------------------------------------------------------
# n_threads through the ensemble and sweep layers
# ---------------------------------------------------------------------
@needs_native
class TestEnsemblePlumbing:
    SPEC = dict(n_bins=64, n_replicas=24, rounds=150)

    @pytest.mark.parametrize("process_kwargs", [
        {},
        {"metrics": "max_load,legitimacy,moments", "observe_every": 8},
        {
            "process": "faulty",
            "adversary": "concentrate",
            "fault_period": 60,
            "metrics": "max_load",
        },
    ])
    def test_run_ensemble_thread_invariant(self, process_kwargs):
        spec = EnsembleSpec(**self.SPEC, **process_kwargs)
        base = run_ensemble(spec, seed=9, kernel="native", n_threads=1)
        for n_threads in THREAD_COUNTS[1:]:
            run = run_ensemble(
                spec, seed=9, kernel="native", n_threads=n_threads
            )
            assert np.array_equal(run.final_loads, base.final_loads)
            assert set(run.metrics) == set(base.metrics)
            for name in run.metrics:
                for key, value in run.metrics[name].summaries.items():
                    assert np.array_equal(
                        value, base.metrics[name].summaries[key]
                    ), (name, key)


class TestSweepOversubscriptionGuard:
    SWEEP = SweepSpec(
        name="threads-guard",
        base={"n_bins": 32, "rounds": 40, "n_replicas": 8},
        grid={"n_bins": [32, 48]},
    )

    def test_explicit_threads_warn_and_cap(self, tmp_path):
        requested = available_cpu_count() * 8
        with pytest.warns(RuntimeWarning, match="oversubscription"):
            report = run_sweep(
                self.SWEEP, tmp_path, seed=1, n_threads=requested
            )
        assert report.finished
        # the header pins the *request*, so resuming on a bigger machine
        # runs unreduced
        header = report.store.read_header()
        assert header["n_threads"] == requested

    def test_within_budget_does_not_warn(self, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            report = run_sweep(self.SWEEP, tmp_path, seed=1, n_threads=1)
        assert report.finished
        assert report.store.read_header()["n_threads"] == 1

    def test_default_header_omits_threads_and_resumes(self, tmp_path):
        report = run_sweep(self.SWEEP, tmp_path, seed=1, max_points=1)
        assert "n_threads" not in report.store.read_header()
        resumed = resume_sweep(tmp_path)
        assert resumed.finished and resumed.n_run == 1

    def test_pinned_threads_resume(self, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            run_sweep(
                self.SWEEP, tmp_path, seed=1, n_threads=64, max_points=1
            )
            resumed = resume_sweep(tmp_path)
        assert resumed.finished and resumed.n_run == 1
        assert resumed.store.read_header()["n_threads"] == 64
