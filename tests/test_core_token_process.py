"""Unit tests for repro.core.token_process (identity-tracking process)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import LoadConfiguration
from repro.core.token_process import TokenRepeatedBallsIntoBins
from repro.errors import ConfigurationError


class TestConstruction:
    def test_default_placement_one_per_bin(self):
        process = TokenRepeatedBallsIntoBins(8, seed=0)
        assert process.n_balls == 8
        assert process.loads.tolist() == [1] * 8
        assert process.ball_bins.tolist() == list(range(8))

    def test_more_balls_than_bins_wraps_around(self):
        process = TokenRepeatedBallsIntoBins(4, n_balls=10, seed=0)
        assert process.n_balls == 10
        assert int(process.loads.sum()) == 10

    def test_initial_load_configuration(self):
        initial = LoadConfiguration.from_loads([3, 0, 1, 0])
        process = TokenRepeatedBallsIntoBins(4, initial=initial, seed=0)
        assert process.loads.tolist() == [3, 0, 1, 0]
        assert process.max_load == 3

    def test_inconsistent_ball_count_rejected(self):
        with pytest.raises(ConfigurationError):
            TokenRepeatedBallsIntoBins(
                4, n_balls=7, initial=LoadConfiguration.balanced(4), seed=0
            )

    def test_wrong_bin_count_rejected(self):
        with pytest.raises(ConfigurationError):
            TokenRepeatedBallsIntoBins(8, initial=LoadConfiguration.balanced(4), seed=0)

    def test_bad_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            TokenRepeatedBallsIntoBins(0)
        with pytest.raises(ConfigurationError):
            TokenRepeatedBallsIntoBins(4, n_balls=-1)

    def test_visit_tracking_off_by_default(self):
        process = TokenRepeatedBallsIntoBins(8, seed=0)
        assert process.visited_counts is None
        with pytest.raises(ConfigurationError):
            _ = process.cover_time


class TestDynamics:
    def test_conservation_and_consistency(self):
        process = TokenRepeatedBallsIntoBins(16, seed=1)
        for _ in range(100):
            loads = process.step()
            assert int(loads.sum()) == 16
            # loads always consistent with per-ball positions
            recomputed = np.bincount(process.ball_bins, minlength=16)
            assert np.array_equal(recomputed, loads)

    def test_deterministic_given_seed(self):
        a = TokenRepeatedBallsIntoBins(16, seed=5)
        b = TokenRepeatedBallsIntoBins(16, seed=5)
        for _ in range(30):
            a.step()
            b.step()
            assert np.array_equal(a.ball_bins, b.ball_bins)

    def test_moves_and_waiting_account_for_every_round(self):
        process = TokenRepeatedBallsIntoBins(8, n_balls=16, seed=2)
        rounds = 40
        process.run(rounds)
        # every ball is, in each round, either selected (a move) or waiting
        totals = process.moves + process.waiting_rounds
        assert np.all(totals == rounds)

    def test_moves_match_load_process_departures(self):
        process = TokenRepeatedBallsIntoBins(8, seed=3)
        total_departures = 0
        for _ in range(20):
            nonempty = int(np.count_nonzero(process.loads > 0))
            process.step()
            total_departures += nonempty
        assert int(process.moves.sum()) == total_departures

    def test_empty_system(self):
        process = TokenRepeatedBallsIntoBins(4, n_balls=0, seed=0)
        process.step()
        assert process.loads.tolist() == [0, 0, 0, 0]


class TestDisciplines:
    def test_fifo_order_respected_in_deterministic_scenario(self):
        # two balls in bin 0, nothing else; FIFO must move ball 0 first.
        initial = LoadConfiguration.from_loads([2, 0])
        process = TokenRepeatedBallsIntoBins(2, discipline="fifo", initial=initial, seed=0)
        process.step()
        assert process.moves[0] == 1
        assert process.moves[1] == 0

    def test_lifo_order_respected_in_deterministic_scenario(self):
        initial = LoadConfiguration.from_loads([2, 0])
        process = TokenRepeatedBallsIntoBins(2, discipline="lifo", initial=initial, seed=0)
        process.step()
        assert process.moves[1] == 1
        assert process.moves[0] == 0

    def test_smallest_id_starves_large_ids(self):
        initial = LoadConfiguration.from_loads([4, 0, 0, 0])
        process = TokenRepeatedBallsIntoBins(4, discipline="smallest_id", initial=initial, seed=0)
        process.step()
        assert process.moves[0] == 1
        assert process.moves[3] == 0

    @pytest.mark.parametrize("discipline", ["fifo", "lifo", "random", "smallest_id"])
    def test_all_disciplines_conserve_balls(self, discipline):
        process = TokenRepeatedBallsIntoBins(16, discipline=discipline, seed=7)
        result = process.run(50)
        assert int(process.loads.sum()) == 16
        assert result.rounds == 50

    def test_load_statistics_match_anonymous_process_in_distribution(self):
        """The token-level process must agree with the anonymous simulator on
        load statistics (same dynamics, different bookkeeping)."""
        from repro.core.process import RepeatedBallsIntoBins

        n = 64
        rounds = 200
        token_max = TokenRepeatedBallsIntoBins(n, seed=123).run(rounds).max_load_seen
        anon_max = RepeatedBallsIntoBins(n, seed=123).run(rounds).max_load_seen
        # not identical trajectories (different RNG consumption), but the same
        # order of magnitude: both should be well below 6 log n
        assert token_max <= 6 * np.log(n)
        assert anon_max <= 6 * np.log(n)


class TestCoverTracking:
    def test_cover_time_reached_for_tiny_system(self):
        process = TokenRepeatedBallsIntoBins(4, track_visits=True, seed=0)
        cover = process.run_until_covered(max_rounds=4000)
        assert cover is not None
        assert process.all_covered
        assert process.cover_time == cover
        assert np.all(process.visited_counts == 4)

    def test_visit_counts_monotone(self):
        process = TokenRepeatedBallsIntoBins(8, track_visits=True, seed=1)
        previous = process.visited_counts.copy()
        for _ in range(50):
            process.step()
            current = process.visited_counts
            assert np.all(current >= previous)
            previous = current.copy()

    def test_single_bin_system_trivially_covered(self):
        process = TokenRepeatedBallsIntoBins(1, track_visits=True, seed=0)
        assert process.all_covered
        assert process.cover_time == 0

    def test_stop_when_covered_requires_tracking(self):
        process = TokenRepeatedBallsIntoBins(4, seed=0)
        with pytest.raises(ConfigurationError):
            process.run(10, stop_when_covered=True)

    def test_ball_cover_times_in_result(self):
        process = TokenRepeatedBallsIntoBins(4, track_visits=True, seed=2)
        result = process.run(4000, stop_when_covered=True)
        assert result.cover_time is not None
        assert result.ball_cover_times is not None
        assert int(result.ball_cover_times.max()) == result.cover_time
        assert np.all(result.ball_cover_times >= 0)


class TestRun:
    def test_negative_rounds_rejected(self):
        with pytest.raises(ConfigurationError):
            TokenRepeatedBallsIntoBins(4, seed=0).run(-1)

    def test_observer_sees_every_round(self):
        rounds_seen = []
        TokenRepeatedBallsIntoBins(8, seed=0).run(
            7, observers=lambda t, loads: rounds_seen.append(t)
        )
        assert rounds_seen == list(range(1, 8))

    def test_result_min_moves(self):
        process = TokenRepeatedBallsIntoBins(8, seed=0)
        result = process.run(30)
        assert result.min_moves == int(process.moves.min())
        assert result.max_load_seen >= 1

    def test_min_empty_seen_tracks_window_minimum(self):
        # start from all_in_one (15 empty bins) so the per-round tracking is
        # actually exercised: mixing *reduces* the empty count round by round
        initial = LoadConfiguration.all_in_one(16)
        process = TokenRepeatedBallsIntoBins(16, initial=initial, seed=3)
        seen = []
        result = process.run(
            40, observers=lambda t, loads: seen.append(int((loads == 0).sum()))
        )
        assert result.min_empty_seen == min([15] + seen)
        assert result.min_empty_seen < 15  # the seed alone is not the answer

    def test_min_empty_seen_seeded_from_current_state_zero_rounds(self):
        # the window-stat bug class fixed in PR 4/5: a zero-round call must
        # report the observed configuration, not the n_bins sentinel
        initial = LoadConfiguration.all_in_one(8)
        process = TokenRepeatedBallsIntoBins(8, initial=initial, seed=0)
        result = process.run(0)
        assert result.rounds == 0
        assert result.max_load_seen == 8
        assert result.min_empty_seen == 7

    def test_min_empty_seen_seeded_from_preloaded_state(self):
        # a second run() call starts its window from the mixed state the
        # first call left behind, never from the pristine constructor state
        process = TokenRepeatedBallsIntoBins(16, seed=9)
        process.run(30)
        start_empty = process.num_empty_bins
        start_max = process.max_load
        result = process.run(5)
        assert result.min_empty_seen <= start_empty
        assert result.max_load_seen >= start_max
