"""Unit tests for the experiment harness (spec, tables, io, registry, harness)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    available_experiments,
    format_table,
    get_experiment,
    load_result_json,
    rows_to_csv,
    run_experiment,
    save_result_csv,
    save_result_json,
)
from repro.experiments import registry
from repro.experiments.spec import ExperimentResult, ExperimentSpec


@pytest.fixture
def spec() -> ExperimentSpec:
    return ExperimentSpec(
        experiment_id="T1",
        title="test experiment",
        claim="unit test",
        default_params={"n": 4, "trials": 2},
        expected_shape="flat",
    )


class TestSpec:
    def test_merged_params_defaults(self, spec):
        assert spec.merged_params() == {"n": 4, "trials": 2}

    def test_merged_params_override(self, spec):
        assert spec.merged_params({"n": 8}) == {"n": 8, "trials": 2}

    def test_merged_params_rejects_unknown_keys(self, spec):
        with pytest.raises(ExperimentError):
            spec.merged_params({"bogus": 1})

    def test_result_rows_and_notes(self, spec):
        result = ExperimentResult(spec=spec, params=spec.merged_params())
        result.add_row(n=4, value=1.5)
        result.add_row(n=8, value=2.5)
        result.add_note("looks fine")
        assert result.experiment_id == "T1"
        assert result.column("value") == [1.5, 2.5]
        assert result.notes == ["looks fine"]
        payload = result.to_dict()
        assert payload["experiment_id"] == "T1"
        assert len(payload["rows"]) == 2

    def test_result_missing_column(self, spec):
        result = ExperimentResult(spec=spec, params={})
        result.add_row(a=1)
        with pytest.raises(ExperimentError):
            result.column("b")


class TestTables:
    def test_text_table(self):
        rows = [{"n": 64, "value": 1.23456}, {"n": 128, "value": 7.0}]
        text = format_table(rows, title="demo")
        assert "demo" in text
        assert "n" in text and "value" in text
        assert "64" in text and "128" in text
        assert "1.235" in text  # 4 significant digits

    def test_markdown_table(self):
        rows = [{"a": 1, "b": True}, {"a": 2, "b": None}]
        text = format_table(rows, style="markdown")
        assert text.startswith("| a | b |")
        assert "| 1 | yes |" in text
        assert "| 2 | - |" in text

    def test_empty_rows(self):
        assert "(empty table)" in format_table([])

    def test_explicit_columns_and_missing(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b", "a"])
        header = text.splitlines()[0]
        assert header.startswith("b")
        with pytest.raises(ExperimentError):
            format_table(rows, columns=["c"])

    def test_unknown_style(self):
        with pytest.raises(ExperimentError):
            format_table([{"a": 1}], style="latex")

    def test_extra_columns_in_later_rows(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        text = format_table(rows)
        assert "b" in text

    def test_csv(self):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        csv_text = rows_to_csv(rows)
        lines = csv_text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,x"


class TestIO:
    def test_json_round_trip(self, spec, tmp_path):
        result = ExperimentResult(spec=spec, params=spec.merged_params())
        result.add_row(n=4, value=1.5, flag=True)
        result.add_note("note")
        path = save_result_json(result, tmp_path / "out" / "result.json")
        assert path.exists()
        loaded = load_result_json(path)
        assert loaded.experiment_id == "T1"
        assert loaded.rows == [{"n": 4, "value": 1.5, "flag": True}]
        assert loaded.notes == ["note"]

    def test_json_handles_numpy_types(self, spec, tmp_path):
        import numpy as np

        result = ExperimentResult(spec=spec, params={})
        result.add_row(n=np.int64(4), value=np.float64(2.5), arr=np.array([1, 2]))
        path = save_result_json(result, tmp_path / "np.json")
        payload = json.loads(path.read_text())
        assert payload["rows"][0]["n"] == 4
        assert payload["rows"][0]["arr"] == [1, 2]

    def test_json_non_finite_floats_become_null(self, spec, tmp_path):
        """Regression: NaN/Infinity metrics must not leak non-standard JSON."""
        import numpy as np

        result = ExperimentResult(spec=spec, params={})
        result.add_row(
            plain_nan=float("nan"),
            np_nan=np.float64("nan"),
            pos_inf=float("inf"),
            neg_inf=np.float64("-inf"),
            arr=np.array([1.0, float("nan"), float("inf")]),
            nested={"inner": float("nan")},
            finite=1.5,
        )
        path = save_result_json(result, tmp_path / "nan.json")
        text = path.read_text()
        assert "NaN" not in text and "Infinity" not in text
        payload = json.loads(text)  # strict parse succeeds
        row = payload["rows"][0]
        assert row["plain_nan"] is None
        assert row["np_nan"] is None
        assert row["pos_inf"] is None
        assert row["neg_inf"] is None
        assert row["arr"] == [1.0, None, None]
        assert row["nested"] == {"inner": None}
        assert row["finite"] == 1.5

    def test_csv_output(self, spec, tmp_path):
        result = ExperimentResult(spec=spec, params={})
        result.add_row(a=1, b=2)
        path = save_result_csv(result, tmp_path / "rows.csv")
        assert path.read_text().startswith("a,b")

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ExperimentError):
            load_result_json(tmp_path / "missing.json")


class TestRegistry:
    def test_all_experiments_registered(self):
        ids = registry.all_ids()
        for expected in [f"E{i}" for i in range(1, 16)] + ["A1", "A3"]:
            assert expected in ids

    def test_lookup_case_insensitive(self):
        assert registry.get("e1").spec.experiment_id == "E1"

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            registry.get("E99")

    def test_duplicate_registration_rejected(self):
        entry = registry.get("E1")
        with pytest.raises(ExperimentError):
            registry.register(entry.spec, entry.runner)

    def test_available_experiments_and_get(self):
        specs = available_experiments()
        assert len(specs) >= 17
        assert get_experiment("E14").claim == "Appendix B"

    def test_every_spec_has_claim_and_defaults(self):
        for spec_ in available_experiments():
            assert spec_.claim
            assert spec_.title
            assert isinstance(spec_.default_params, dict)


class TestRunExperimentSmallScale:
    """Run each experiment at a deliberately tiny scale to check the harness
    wiring (rows produced, key columns present).  Shape assertions live in
    the benchmarks and integration tests."""

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ExperimentError):
            run_experiment("E1", params={"nope": 3})

    def test_e1_small(self):
        result = run_experiment(
            "E1", params={"sizes": [16, 32, 64], "trials": 2, "rounds_factor": 1.0}, seed=0
        )
        assert len(result.rows) == 3
        assert all("mean_window_max" in row for row in result.rows)
        assert result.notes  # fit note emitted for >= 3 sizes

    def test_e2_small(self):
        result = run_experiment(
            "E2", params={"sizes": [16, 32], "trials": 2, "budget_factor": 30.0}, seed=0
        )
        assert len(result.rows) == 2
        assert all(row["converged_fraction"] == 1.0 for row in result.rows)

    def test_e3_small(self):
        result = run_experiment(
            "E3", params={"sizes": [32], "trials": 2, "rounds_factor": 2.0}, seed=0
        )
        assert len(result.rows) == 2  # two start configurations
        assert {row["start"] for row in result.rows} == {"balanced", "all_in_one"}

    def test_e4_small(self):
        result = run_experiment(
            "E4", params={"sizes": [32], "trials": 3, "rounds_factor": 1.0}, seed=0
        )
        assert result.rows[0]["maxload_domination_fraction"] >= 2 / 3

    def test_e5_small(self):
        # At n = 32 the 5n bound of Lemma 4 is not yet comfortably w.h.p.
        # (the drain takes ~4n rounds in expectation), so only check the
        # harness wiring here; the Lemma 4 shape check lives in the Tetris
        # unit tests and the E5 benchmark at larger n.
        result = run_experiment("E5", params={"sizes": [32], "trials": 2}, seed=0)
        row = result.rows[0]
        assert row["bound_5n"] == 5 * 32
        assert 0.0 <= row["within_bound_fraction"] <= 1.0

    def test_e6_small(self):
        result = run_experiment(
            "E6", params={"n": 64, "starts": [1, 2], "horizon_factor": 2.0, "mc_trials": 50}, seed=0
        )
        assert len(result.rows) == 2
        assert all(row["bound_violations"] == 0 for row in result.rows)

    def test_e7_small(self):
        result = run_experiment(
            "E7", params={"sizes": [16, 32], "trials": 2, "rounds_factor": 1.0}, seed=0
        )
        assert len(result.rows) == 2

    def test_e8_small(self):
        result = run_experiment(
            "E8", params={"sizes": [8, 16], "trials": 2, "budget_factor": 60.0}, seed=0
        )
        assert len(result.rows) == 2
        assert all(row["completed_fraction"] == 1.0 for row in result.rows)

    def test_e9_small(self):
        result = run_experiment(
            "E9",
            params={"n": 32, "gammas": [6.0, None], "trials": 2, "rounds_factor": 15.0},
            seed=0,
        )
        assert len(result.rows) == 2

    def test_e9_duplicate_gammas_still_produce_rows(self):
        """gammas that resolve to the same fault period (None and 0 both
        mean fault-free) share one sweep point but keep their table rows."""
        result = run_experiment(
            "E9",
            params={"n": 16, "gammas": [None, 0], "trials": 2, "rounds_factor": 2.0},
            seed=0,
        )
        assert len(result.rows) == 2
        assert result.rows[0]["fault_period"] is None
        assert result.rows[0]["mean_window_max_load"] == (
            result.rows[1]["mean_window_max_load"]
        )

    def test_a2_small_and_duplicate_sizes(self):
        result = run_experiment(
            "A2",
            params={"sizes": [16, 16], "d_values": [1, 2], "trials": 2, "rounds_factor": 1.0},
            seed=0,
        )
        assert len(result.rows) == 4
        # duplicate sizes share one sweep point per d
        assert (
            result.rows[0]["repeated_mean_window_max"]
            == result.rows[2]["repeated_mean_window_max"]
        )

    def test_e10_small(self):
        result = run_experiment(
            "E10", params={"sizes": [32, 64], "trials": 3, "window_factor": 1.0}, seed=0
        )
        assert len(result.rows) == 2
        for row in result.rows:
            assert row["repeated_window_mean_max"] >= row["one_shot_mean_max"]

    def test_e11_small(self):
        result = run_experiment(
            "E11", params={"n": 32, "window_factors": [1, 4], "trials": 2}, seed=0
        )
        assert len(result.rows) == 2

    def test_e12_small(self):
        result = run_experiment(
            "E12",
            params={"n": 32, "ratios": [0.5, 1.0, 2.0], "trials": 2, "rounds_factor": 1.0},
            seed=0,
        )
        assert [row["m_over_n"] for row in result.rows] == [0.5, 1.0, 2.0]

    def test_e13_small(self):
        result = run_experiment(
            "E13",
            params={"n": 16, "topologies": ["complete", "cycle"], "trials": 1, "rounds_factor": 1.0},
            seed=0,
        )
        assert {row["topology"] for row in result.rows} == {"complete", "cycle"}

    def test_e14_small(self):
        result = run_experiment("E14", params={"mc_sizes": [2], "mc_trials": 500}, seed=0)
        exact_row = result.rows[0]
        assert exact_row["method"] == "exact"
        assert exact_row["p_joint_zero"] == pytest.approx(0.125)
        assert exact_row["violates_negative_association"] is True

    def test_e15_small(self):
        result = run_experiment(
            "E15", params={"n": 32, "lams": [0.5, 0.9], "trials": 2, "rounds_factor": 2.0}, seed=0
        )
        assert len(result.rows) == 2

    def test_a1_small(self):
        result = run_experiment(
            "A1",
            params={"n": 16, "disciplines": ["fifo", "lifo"], "trials": 2, "rounds_factor": 1.0},
            seed=0,
        )
        assert {row["discipline"] for row in result.rows} == {"fifo", "lifo"}

    def test_a3_small(self):
        result = run_experiment(
            "A3", params={"n": 32, "rhos": [0.5, 1.0], "trials": 2, "rounds_factor": 2.0}, seed=0
        )
        assert len(result.rows) == 2
