"""Acceptance tests: sweep resume determinism + streaming-aggregate accuracy.

These encode the PR's acceptance criteria on a seeded 64-point grid:

* running a sweep to completion vs. killing it midway and resuming yields
  **byte-identical** store manifests and identical per-point summaries;
* the streaming (Welford) aggregates stored in the manifest match a full
  batch recompute from the replica shards to 1e-9.

The grid is 64 tiny points (4 sizes x 2 ensemble sizes x 4 budgets x 2
process families) so the whole file runs in a few seconds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.store import ResultStore, StreamingMoments
from repro.store.store import METRICS
from repro.sweeps import SweepSpec, resume_sweep, run_sweep

SEED = 20150613  # SPAA'15


def grid64() -> SweepSpec:
    return SweepSpec(
        name="acceptance64",
        base={"start": "random_uniform"},
        grid={
            "n_bins": [8, 16, 32, 64],
            "n_replicas": [4, 6],
            "rounds": [4, 8, 12, 16],
            "process": ["rbb", "d_choices"],
        },
    )


@pytest.fixture(scope="module")
def full_store(tmp_path_factory):
    """The uninterrupted reference run (shared across tests)."""
    store_dir = tmp_path_factory.mktemp("sweep") / "full"
    report = run_sweep(grid64(), store_dir, seed=SEED, kernel="numpy")
    assert report.finished and report.n_run == 64
    return ResultStore.open(store_dir)


class TestResumeDeterminism:
    @pytest.mark.parametrize("kill_after", [1, 23, 63])
    def test_killed_and_resumed_matches_uninterrupted(
        self, full_store, tmp_path, kill_after
    ):
        killed_dir = tmp_path / f"killed_{kill_after}"
        partial = run_sweep(
            grid64(), killed_dir, seed=SEED, kernel="numpy", max_points=kill_after
        )
        assert partial.n_run == kill_after and not partial.finished
        resumed = resume_sweep(killed_dir)
        assert resumed.finished
        assert resumed.n_skipped == kill_after
        assert resumed.n_run == 64 - kill_after

        killed_store = ResultStore.open(killed_dir)
        # byte-identical manifests: same points, same order, same numbers
        assert killed_store.manifest_bytes() == full_store.manifest_bytes()
        # identical headers and per-point summaries
        assert killed_store.read_header() == full_store.read_header()
        assert killed_store.records() == full_store.records()

    def test_resume_after_finish_is_a_no_op(self, full_store):
        before = full_store.manifest_bytes()
        report = resume_sweep(full_store.directory)
        assert report.n_run == 0 and report.n_skipped == 64
        assert ResultStore.open(full_store.directory).manifest_bytes() == before


class TestStreamingAccuracy:
    def test_welford_matches_batch_recompute_to_1e9(self, full_store):
        """Manifest moments vs. a full recompute from the shards (1e-9)."""
        records = full_store.records()
        assert len(records) == 64
        for record in records:
            vectors = full_store.replicas(record["point_id"])
            for name in METRICS:
                stored = StreamingMoments.from_dict(
                    record["summary"]["metrics"][name]
                )
                data = vectors[name].astype(float)
                assert stored.count == data.size
                assert stored.mean == pytest.approx(data.mean(), abs=1e-9)
                assert stored.variance() == pytest.approx(data.var(), abs=1e-9)
                assert stored.variance(ddof=1) == pytest.approx(
                    data.var(ddof=1), abs=1e-9
                )
                assert stored.minimum == data.min()
                assert stored.maximum == data.max()

    def test_merged_moments_match_concatenated_recompute(self, full_store):
        """Cross-point merging (manifest only) vs. concatenating all shards."""
        merged = full_store.summarize("window_max_load", process="rbb")
        combined = np.concatenate(
            [
                full_store.replicas(r["point_id"])["window_max_load"]
                for r in full_store.select(process="rbb").records
            ]
        ).astype(float)
        assert merged.count == combined.size
        assert merged.mean == pytest.approx(combined.mean(), abs=1e-9)
        assert merged.variance() == pytest.approx(combined.var(), abs=1e-9)

    def test_tail_histogram_is_exact(self, full_store):
        tail = full_store.max_load_tail()
        combined = np.concatenate(
            [
                full_store.replicas(r["point_id"])["window_max_load"]
                for r in full_store.records()
            ]
        )
        assert tail.total == combined.size
        for k in range(int(combined.max()) + 2):
            assert tail.tail(k) == int((combined >= k).sum())

    def test_per_point_converged_fraction(self, full_store):
        for record in full_store.records():
            first = full_store.replicas(record["point_id"])[
                "first_legitimate_round"
            ]
            expected = float((first >= 0).mean())
            assert record["summary"]["converged_fraction"] == pytest.approx(
                expected, abs=1e-12
            )
