"""Unit tests for repro.experiments.report and the `repro report` CLI command."""

from __future__ import annotations


from repro.cli import main
from repro.experiments import registry
from repro.experiments.report import (
    generate_full_report,
    generate_report,
    report_scale_params,
    run_report_experiments,
)
from repro.experiments.harness import run_experiment


class TestReportScaleParams:
    def test_known_experiment_has_overrides(self):
        params = report_scale_params("E1")
        assert "sizes" in params and "trials" in params

    def test_case_insensitive(self):
        assert report_scale_params("e14") == report_scale_params("E14")

    def test_unknown_experiment_gets_empty_overrides(self):
        assert report_scale_params("E99") == {}

    def test_overrides_are_copies(self):
        a = report_scale_params("E1")
        a["sizes"] = [1]
        assert report_scale_params("E1")["sizes"] != [1]

    def test_every_override_key_is_a_valid_parameter(self):
        """Report-scale overrides must be accepted by the corresponding spec."""
        for experiment_id in registry.all_ids():
            spec = registry.get(experiment_id).spec
            overrides = report_scale_params(experiment_id)
            merged = spec.merged_params(overrides or None)
            assert set(merged) == set(spec.default_params)


class TestGenerateReport:
    def test_report_structure(self):
        result = run_experiment("E14", params={"mc_sizes": [2], "mc_trials": 300}, seed=0)
        text = generate_report([result], title="test report", preamble="preamble text")
        assert text.startswith("# test report")
        assert "preamble text" in text
        assert "## E14" in text
        assert "*Claim:* Appendix B." in text
        assert "|" in text  # markdown table present
        assert "> Appendix B's exact values" in text

    def test_report_with_timing(self):
        result = run_experiment("E14", params={"mc_sizes": [2], "mc_trials": 200}, seed=0)
        text = generate_report(
            [result],
            include_timing=True,
            elapsed_seconds={"E14": 1.25},
        )
        assert "*Wall-clock:* 1.2 s" in text or "*Wall-clock:* 1.3 s" in text

    def test_run_report_experiments_subset(self):
        results = run_report_experiments(["E14"], seed=0)
        assert len(results) == 1
        assert results[0].experiment_id == "E14"

    def test_generate_full_report_subset(self):
        text = generate_full_report(experiment_ids=["E14"], seed=0)
        assert "## E14" in text
        assert "Wall-clock" in text


class TestReportCLI:
    def test_report_command_writes_file(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        code = main(["report", "--out", str(out), "--only", "E14"])
        assert code == 0
        assert out.exists()
        assert "## E14" in out.read_text()
        assert "wrote" in capsys.readouterr().out
