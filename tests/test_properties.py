"""Property-based tests (hypothesis) on the core data structures and invariants.

These check the invariants the paper's analysis leans on — ball conservation,
non-negativity, the departure/arrival accounting, domination monotonicity of
the coupling, exactness of the small-n enumeration — for *arbitrary* valid
inputs rather than hand-picked ones.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import LoadConfiguration
from repro.core.coupling import CoupledRun
from repro.core.process import RepeatedBallsIntoBins
from repro.core.tetris import TetrisProcess
from repro.core.token_process import TokenRepeatedBallsIntoBins
from repro.markov.small_n import enumerate_configurations, exact_rbb_transition_matrix
from repro.analysis.statistics import empirical_whp_probability, summarize_trials

# keep the per-example work small so the whole property suite stays fast
FAST = settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
load_vectors = st.lists(st.integers(min_value=0, max_value=12), min_size=1, max_size=24).map(
    lambda xs: np.asarray(xs, dtype=np.int64)
)
nonempty_load_vectors = load_vectors.filter(lambda arr: arr.sum() > 0)


# ----------------------------------------------------------------------
# LoadConfiguration
# ----------------------------------------------------------------------
class TestConfigurationProperties:
    @FAST
    @given(loads=load_vectors)
    def test_counts_are_consistent(self, loads):
        config = LoadConfiguration(loads)
        assert config.n_balls == int(loads.sum())
        assert config.num_empty_bins + config.num_nonempty_bins == config.n_bins
        assert 0 <= config.min_load <= config.max_load
        hist = config.load_histogram()
        assert int(hist.sum()) == config.n_bins
        assert int(np.dot(np.arange(hist.size), hist)) == config.n_balls

    @FAST
    @given(n=st.integers(2, 64), m=st.integers(0, 128))
    def test_balanced_is_as_flat_as_possible(self, n, m):
        config = LoadConfiguration.balanced(n, m)
        assert config.n_balls == m
        assert config.max_load - config.min_load <= 1

    @FAST
    @given(n=st.integers(1, 64), m=st.integers(1, 128))
    def test_canonical_constructors_conserve_balls(self, n, m):
        assert LoadConfiguration.all_in_one(n, m).n_balls == m
        assert LoadConfiguration.pyramid(n, m).n_balls == m
        assert LoadConfiguration.random_uniform(n, m, seed=0).n_balls == m

    @FAST
    @given(loads=load_vectors)
    def test_equality_is_value_based(self, loads):
        assert LoadConfiguration(loads) == LoadConfiguration(loads.copy())
        assert hash(LoadConfiguration(loads)) == hash(LoadConfiguration(loads.copy()))


# ----------------------------------------------------------------------
# Repeated balls-into-bins process
# ----------------------------------------------------------------------
class TestProcessProperties:
    @FAST
    @given(loads=load_vectors, seed=st.integers(0, 2**16), rounds=st.integers(1, 30))
    def test_conservation_and_nonnegativity(self, loads, seed, rounds):
        process = RepeatedBallsIntoBins(loads.size, initial=loads, seed=seed)
        total = int(loads.sum())
        for _ in range(rounds):
            after = process.step()
            assert int(after.sum()) == total
            assert int(after.min()) >= 0

    @FAST
    @given(loads=nonempty_load_vectors, seed=st.integers(0, 2**16))
    def test_max_load_drops_by_at_most_one(self, loads, seed):
        """M(t+1) >= M(t) - 1: a bin loses at most one ball per round."""
        process = RepeatedBallsIntoBins(loads.size, initial=loads, seed=seed)
        before = process.max_load
        after_loads = process.step()
        assert int(after_loads.max()) >= before - 1

    @FAST
    @given(loads=load_vectors, seed=st.integers(0, 2**16))
    def test_single_round_departure_accounting(self, loads, seed):
        """Every bin's load changes by (arrivals - 1{nonempty}), with total
        arrivals equal to the number of non-empty bins."""
        process = RepeatedBallsIntoBins(loads.size, initial=loads, seed=seed)
        nonempty = loads > 0
        after = process.step()
        deltas = after - loads
        arrivals = deltas + nonempty
        assert np.all(arrivals >= 0)
        assert int(arrivals.sum()) == int(nonempty.sum())


# ----------------------------------------------------------------------
# Tetris process
# ----------------------------------------------------------------------
class TestTetrisProperties:
    @FAST
    @given(
        loads=load_vectors,
        seed=st.integers(0, 2**16),
        arrivals=st.integers(0, 32),
        rounds=st.integers(1, 20),
    )
    def test_total_balls_evolve_by_balance(self, loads, seed, arrivals, rounds):
        tetris = TetrisProcess(loads.size, arrivals_per_round=arrivals, initial=loads, seed=seed)
        for _ in range(rounds):
            before_total = int(tetris.loads.sum())
            nonempty = int(np.count_nonzero(tetris.loads > 0))
            after = tetris.step()
            assert int(after.sum()) == before_total - nonempty + arrivals
            assert int(after.min()) >= 0


# ----------------------------------------------------------------------
# Coupling (Lemma 3)
# ----------------------------------------------------------------------
class TestCouplingProperties:
    @FAST
    @given(seed=st.integers(0, 2**16), n=st.integers(8, 64), rounds=st.integers(1, 40))
    def test_domination_invariant_while_case_i_holds(self, seed, n, rounds):
        """As long as only case (i) rounds occur, Tetris dominates bin-wise —
        this is the inductive invariant behind Lemma 3."""
        loads = np.zeros(n, dtype=np.int64)
        loads[: n // 2] = 2
        loads[0] += n - int(loads.sum())
        run = CoupledRun(n, initial=LoadConfiguration(loads), seed=seed)
        only_case_i = True
        for _ in range(rounds):
            coupled = run.step()
            only_case_i = only_case_i and coupled
            if only_case_i:
                assert np.all(run.tetris_loads >= run.original_loads)


# ----------------------------------------------------------------------
# Token-level process
# ----------------------------------------------------------------------
class TestTokenProcessProperties:
    @FAST
    @given(
        n=st.integers(2, 16),
        m=st.integers(1, 32),
        seed=st.integers(0, 2**16),
        rounds=st.integers(1, 25),
        discipline=st.sampled_from(["fifo", "lifo", "random", "smallest_id"]),
    )
    def test_queue_and_load_consistency(self, n, m, seed, rounds, discipline):
        process = TokenRepeatedBallsIntoBins(n, n_balls=m, discipline=discipline, seed=seed)
        process.run(rounds)
        assert int(process.loads.sum()) == m
        assert np.array_equal(np.bincount(process.ball_bins, minlength=n), process.loads)
        assert np.all(process.moves + process.waiting_rounds == rounds)


# ----------------------------------------------------------------------
# Exact small-n machinery
# ----------------------------------------------------------------------
class TestSmallNProperties:
    @FAST
    @given(n=st.integers(1, 4), m=st.integers(0, 5))
    def test_enumeration_is_exhaustive_and_unique(self, n, m):
        configs = enumerate_configurations(m, n)
        assert len(configs) == len(set(configs))
        assert all(len(c) == n and sum(c) == m for c in configs)
        # stars and bars count
        from math import comb

        assert len(configs) == comb(m + n - 1, n - 1)

    @FAST
    @given(n=st.integers(2, 3), m=st.integers(1, 4))
    def test_transition_matrix_is_stochastic(self, n, m):
        P, states = exact_rbb_transition_matrix(n, n_balls=m)
        assert np.allclose(P.sum(axis=1), 1.0)
        assert np.all(P >= 0)
        assert len(states) == P.shape[0]


# ----------------------------------------------------------------------
# Statistics helpers
# ----------------------------------------------------------------------
class TestStatisticsProperties:
    @FAST
    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=50,
        )
    )
    def test_summary_orderings(self, values):
        summary = summarize_trials(values)
        # np.mean of identical values can differ from them by one ulp, so the
        # orderings involving the mean are checked up to a tiny relative slack
        slack = 1e-9 * max(1.0, abs(summary.maximum), abs(summary.minimum))
        assert summary.minimum <= summary.median <= summary.maximum
        assert summary.minimum - slack <= summary.mean <= summary.maximum + slack
        assert summary.q10 <= summary.q90
        assert summary.ci_low <= summary.ci_high + slack

    @FAST
    @given(trials=st.integers(1, 500), data=st.data())
    def test_wilson_interval_brackets_point_estimate(self, trials, data):
        successes = data.draw(st.integers(0, trials))
        p, low, high = empirical_whp_probability(successes, trials)
        assert 0.0 <= low <= high <= 1.0
        assert low - 1e-9 <= p <= high + 1e-9
