"""Unit tests for repro.markov.spectral."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.markov.small_n import exact_rbb_transition_matrix
from repro.markov.spectral import (
    empirical_mixing_time,
    mixing_time_bound,
    spectral_gap,
    total_variation_distance,
)


class TestTotalVariation:
    def test_identical_distributions(self):
        p = np.array([0.5, 0.5])
        assert total_variation_distance(p, p) == 0.0

    def test_disjoint_distributions(self):
        assert total_variation_distance(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 1.0

    def test_known_value(self):
        assert total_variation_distance(
            np.array([0.6, 0.4]), np.array([0.4, 0.6])
        ) == pytest.approx(0.2)

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            total_variation_distance(np.array([1.0]), np.array([0.5, 0.5]))


class TestSpectralGap:
    def test_identity_has_zero_gap(self):
        assert spectral_gap(np.eye(3)) == pytest.approx(0.0)

    def test_uniform_jump_has_gap_one(self):
        P = np.full((4, 4), 0.25)
        assert spectral_gap(P) == pytest.approx(1.0, abs=1e-10)

    def test_two_state_chain(self):
        P = np.array([[0.9, 0.1], [0.3, 0.7]])
        # eigenvalues are 1 and 0.6
        assert spectral_gap(P) == pytest.approx(0.4, abs=1e-10)

    def test_non_square_rejected(self):
        with pytest.raises(ConfigurationError):
            spectral_gap(np.ones((2, 3)))

    def test_rbb_chain_has_positive_gap(self):
        P, _ = exact_rbb_transition_matrix(3)
        assert spectral_gap(P) > 0.05


class TestMixingTime:
    def test_bound_positive_and_finite_for_ergodic_chain(self):
        P = np.array([[0.9, 0.1], [0.3, 0.7]])
        bound = mixing_time_bound(P)
        assert 0 < bound < math.inf

    def test_bound_infinite_for_identity(self):
        assert math.isinf(mixing_time_bound(np.eye(2)))

    def test_bad_epsilon(self):
        with pytest.raises(ConfigurationError):
            mixing_time_bound(np.eye(2), epsilon=0.0)

    def test_empirical_mixing_time_two_state(self):
        P = np.array([[0.9, 0.1], [0.3, 0.7]])
        t = empirical_mixing_time(P, np.array([1.0, 0.0]), epsilon=0.01)
        assert t is not None
        assert t >= 1
        # starting at stationarity mixes instantly
        pi = np.array([0.75, 0.25])
        assert empirical_mixing_time(P, pi, epsilon=0.01) == 0

    def test_empirical_mixing_time_timeout(self):
        t = empirical_mixing_time(np.eye(2), np.array([1.0, 0.0]), epsilon=0.1, max_steps=5)
        assert t is None

    def test_empirical_mixing_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            empirical_mixing_time(np.eye(2), np.array([1.0, 0.0, 0.0]))

    def test_rbb_chain_forgets_initial_configuration(self):
        """The exact n=3 chain mixes from the most concentrated start in a
        handful of rounds — the small-scale shadow of self-stabilization."""
        P, states = exact_rbb_transition_matrix(3)
        index = {s: i for i, s in enumerate(states)}
        start = np.zeros(len(states))
        start[index[(3, 0, 0)]] = 1.0
        t = empirical_mixing_time(P, start, epsilon=0.05, max_steps=500)
        assert t is not None
        assert t <= 50
