"""Single-token random walk baseline.

A single token performing a uniform random walk on the clique (with
self-loops, i.e. jumping to a uniformly random node each round) covers all
``n`` nodes in expected time ``n * H_n ~ n ln n`` — the coupon-collector
bound the paper cites as the single-walk cover time ``O(n log n)``.  The
multi-token protocol of Corollary 1 pays at most one extra logarithmic
factor over this baseline.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..rng import as_generator
from ..types import SeedLike

__all__ = ["SingleTokenWalk", "expected_single_cover_time", "harmonic_number"]


def harmonic_number(n: int) -> float:
    """The ``n``-th harmonic number ``H_n``."""
    if n < 0:
        raise ConfigurationError(f"n must be >= 0, got {n}")
    if n < 100:
        return float(sum(1.0 / k for k in range(1, n + 1)))
    # Euler–Maclaurin approximation, accurate to ~1e-10 for n >= 100.
    gamma = 0.5772156649015329
    return math.log(n) + gamma + 1.0 / (2 * n) - 1.0 / (12 * n * n)


def expected_single_cover_time(n: int) -> float:
    """Expected coupon-collector cover time ``n * H_{n-1}`` of a single token
    on the clique (uniform jumps, counting the starting node as visited).

    With ``i`` nodes still unvisited, a uniform jump discovers a new node
    with probability ``i / n``, so the expected remaining time is ``n / i``;
    summing over ``i = 1 .. n-1`` gives ``n * H_{n-1} ~ n ln n``.
    """
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    return float(n * harmonic_number(n - 1)) if n > 1 else 0.0


class SingleTokenWalk:
    """Simulate the single-token uniform walk on the clique and its cover time."""

    def __init__(self, n_nodes: int, start: int = 0, seed: SeedLike = None) -> None:
        if n_nodes < 1:
            raise ConfigurationError(f"n_nodes must be >= 1, got {n_nodes}")
        if not 0 <= start < n_nodes:
            raise ConfigurationError(f"start node {start} out of range [0, {n_nodes})")
        self._n = n_nodes
        self._position = start
        self._visited = np.zeros(n_nodes, dtype=bool)
        self._visited[start] = True
        self._visited_count = 1
        self._round = 0
        self._rng = as_generator(seed)

    @property
    def n_nodes(self) -> int:
        return self._n

    @property
    def position(self) -> int:
        return self._position

    @property
    def round_index(self) -> int:
        return self._round

    @property
    def visited_count(self) -> int:
        return self._visited_count

    @property
    def covered(self) -> bool:
        return self._visited_count == self._n

    def step(self) -> int:
        """Jump to a uniformly random node; return the new position."""
        self._position = int(self._rng.integers(0, self._n))
        self._round += 1
        if not self._visited[self._position]:
            self._visited[self._position] = True
            self._visited_count += 1
        return self._position

    def cover_time(self, max_rounds: Optional[int] = None) -> Optional[int]:
        """Walk until every node has been visited; return the cover time.

        ``max_rounds`` (default ``64 * n * ln n + 64``) caps the simulation;
        ``None`` is returned on timeout.
        """
        if max_rounds is None:
            max_rounds = int(64 * self._n * max(math.log(self._n), 1.0)) + 64
        while not self.covered and self._round < max_rounds:
            self.step()
        return self._round if self.covered else None
