"""Multi-token traversal on the clique (Corollary 1).

``n`` tokens (one per resource/task) start from an arbitrary assignment to
the ``n`` nodes and perform parallel random walks, with every node releasing
at most one token per round (FIFO by default).  The protocol completes when
every token has visited every node; Corollary 1 states the cover time is
``O(n log^2 n)`` w.h.p., a single logarithmic factor above the single-token
baseline.

The implementation delegates the process dynamics to
:class:`~repro.core.token_process.TokenRepeatedBallsIntoBins` with visit
tracking enabled, and layers the traversal-specific bookkeeping (time-outs,
per-token cover times, normalized cover statistics) on top.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..core.config import LoadConfiguration
from ..core.queueing import QueueDiscipline
from ..core.token_process import TokenRepeatedBallsIntoBins
from ..errors import ConfigurationError
from ..types import SeedLike

__all__ = ["MultiTokenTraversal", "TraversalResult"]


@dataclass
class TraversalResult:
    """Outcome of one multi-token traversal run.

    Attributes
    ----------
    n_nodes, n_tokens:
        Problem size.
    cover_time:
        Round at which the *last* token completed its traversal, or ``None``
        if the round budget was exhausted first.
    token_cover_times:
        Per-token completion rounds (-1 for tokens that did not finish).
    max_load_seen:
        Maximum node congestion observed during the run.
    rounds_simulated:
        Number of rounds actually simulated.
    completed:
        Whether every token covered every node within the budget.
    """

    n_nodes: int
    n_tokens: int
    cover_time: Optional[int]
    token_cover_times: np.ndarray
    max_load_seen: int
    rounds_simulated: int

    @property
    def completed(self) -> bool:
        return self.cover_time is not None

    @property
    def mean_token_cover_time(self) -> Optional[float]:
        """Mean per-token completion round (``None`` if any token timed out)."""
        if not self.completed:
            return None
        return float(self.token_cover_times.mean())

    def normalized_cover_time(self) -> Optional[float]:
        """Cover time divided by ``n log n`` — Corollary 1 predicts this grows
        like ``log n`` (up to constants), while a single token gives ~1."""
        if not self.completed:
            return None
        n = self.n_nodes
        return self.cover_time / (n * max(math.log(n), 1.0))


class MultiTokenTraversal:
    """Run the random-walk protocol for multi-token traversal on the clique.

    Parameters
    ----------
    n_nodes:
        Number of nodes (and, by default, tokens).
    n_tokens:
        Number of tokens; the paper's setting is ``n_tokens = n_nodes``.
    discipline:
        Queueing strategy at each node (default FIFO, as in Corollary 1).
    initial:
        Optional initial token placement as a load configuration.
    seed:
        Seed-like value.
    """

    def __init__(
        self,
        n_nodes: int,
        n_tokens: Optional[int] = None,
        discipline: Union[str, QueueDiscipline] = "fifo",
        initial: Union[LoadConfiguration, np.ndarray, None] = None,
        seed: SeedLike = None,
    ) -> None:
        if n_nodes < 1:
            raise ConfigurationError(f"n_nodes must be >= 1, got {n_nodes}")
        self._process = TokenRepeatedBallsIntoBins(
            n_bins=n_nodes,
            n_balls=n_tokens,
            discipline=discipline,
            initial=initial,
            track_visits=True,
            seed=seed,
        )

    # ------------------------------------------------------------------
    @property
    def process(self) -> TokenRepeatedBallsIntoBins:
        """The underlying token-level process (exposed for advanced metrics)."""
        return self._process

    @property
    def n_nodes(self) -> int:
        return self._process.n_bins

    @property
    def n_tokens(self) -> int:
        return self._process.n_balls

    def default_round_budget(self, safety_factor: float = 40.0) -> int:
        """A round budget of ``safety_factor * n log^2 n`` — comfortably above
        the Corollary 1 bound so that time-outs indicate a real anomaly."""
        n = self.n_nodes
        log_n = max(math.log(n), 1.0)
        return int(safety_factor * n * log_n * log_n) + 16

    def run(self, max_rounds: Optional[int] = None) -> TraversalResult:
        """Run until every token covered every node (or the budget runs out)."""
        budget = self.default_round_budget() if max_rounds is None else int(max_rounds)
        if budget < 0:
            raise ConfigurationError(f"max_rounds must be >= 0, got {budget}")
        result = self._process.run(budget, stop_when_covered=True)
        return TraversalResult(
            n_nodes=self.n_nodes,
            n_tokens=self.n_tokens,
            cover_time=result.cover_time,
            token_cover_times=(
                result.ball_cover_times
                if result.ball_cover_times is not None
                else np.full(self.n_tokens, -1, dtype=np.int64)
            ),
            max_load_seen=result.max_load_seen,
            rounds_simulated=result.rounds,
        )
