"""Multi-token traversal (Section 4).

The repeated balls-into-bins process, read as ``n`` tokens performing
parallel random walks on the clique with at-most-one-token-forwarded-per-
node-per-round, is a randomized protocol for the multi-token traversal
problem: every token must visit every node.  This package provides

* :class:`MultiTokenTraversal` — cover-time measurement for the parallel
  protocol (Corollary 1: ``O(n log^2 n)`` w.h.p.),
* :class:`SingleTokenWalk` — the classical single random walk baseline
  (cover time ``Theta(n log n)`` on the clique), and
* progress/delay statistics for individual tokens (the
  ``Omega(t / log n)`` progress guarantee under FIFO).
"""

from .multi_token import MultiTokenTraversal, TraversalResult
from .progress import ProgressStats, progress_statistics
from .single_token import SingleTokenWalk, expected_single_cover_time

__all__ = [
    "MultiTokenTraversal",
    "TraversalResult",
    "SingleTokenWalk",
    "expected_single_cover_time",
    "ProgressStats",
    "progress_statistics",
]
