"""Per-token progress and delay statistics.

Theorem 1 implies that, under FIFO, every ball performs ``Omega(t / log n)``
steps of its own random walk over any window of ``t = poly(n)`` rounds
(because no ball ever waits more than the maximum load, which is
``O(log n)``).  These helpers turn the raw per-ball counters exposed by
:class:`~repro.core.token_process.TokenRepeatedBallsIntoBins` into the
summary quantities the experiments report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.token_process import TokenRepeatedBallsIntoBins
from ..errors import ConfigurationError

__all__ = ["ProgressStats", "progress_statistics"]


@dataclass
class ProgressStats:
    """Progress/delay summary after ``rounds`` rounds of a token process.

    Attributes
    ----------
    rounds:
        Number of rounds over which the statistics were accumulated.
    min_moves, mean_moves, max_moves:
        Per-ball random-walk step counts (progress).
    min_progress_rate:
        ``min_moves / rounds`` — the paper's guarantee is that this stays
        above ``c / log n`` for some constant ``c`` under FIFO.
    max_waiting_rounds:
        Largest total waiting time of any ball.
    progress_rate_times_log_n:
        ``min_progress_rate * log n``; Theorem 1 predicts this is bounded
        below by a constant as ``n`` grows.
    """

    rounds: int
    min_moves: int
    mean_moves: float
    max_moves: int
    min_progress_rate: float
    max_waiting_rounds: int
    progress_rate_times_log_n: float


def progress_statistics(process: TokenRepeatedBallsIntoBins) -> ProgressStats:
    """Compute :class:`ProgressStats` from a token-level process' counters."""
    rounds = process.round_index
    if rounds <= 0:
        raise ConfigurationError("progress statistics require at least one simulated round")
    moves = np.asarray(process.moves)
    waiting = np.asarray(process.waiting_rounds)
    if moves.size == 0:
        raise ConfigurationError("process has no balls")
    min_moves = int(moves.min())
    rate = min_moves / rounds
    log_n = max(math.log(process.n_bins), 1.0)
    return ProgressStats(
        rounds=rounds,
        min_moves=min_moves,
        mean_moves=float(moves.mean()),
        max_moves=int(moves.max()),
        min_progress_rate=rate,
        max_waiting_rounds=int(waiting.max()),
        progress_rate_times_log_n=rate * log_n,
    )
