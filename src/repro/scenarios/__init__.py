"""``repro.scenarios``: a round-clock DSL for composite, time-varying workloads.

The subsystem is three layers:

spec (:mod:`repro.scenarios.spec`)
    :class:`ScenarioSpec` / :class:`ScenarioEvent` — a JSON-serializable,
    validated schedule of events on the round clock (arrival bursts and
    drains, bin churn, staged adversaries, topology rewiring, observation
    stride changes).
compiler + interpreters (:mod:`repro.scenarios.engine`)
    :func:`compile_scenario` flattens a scenario into engine segments and
    state edits; :func:`run_scenario_batched` /
    :func:`run_scenario_sequential` drive the existing engines between
    event boundaries (native kernels run whole segments).
catalog (:mod:`repro.scenarios.catalog`)
    Named composite workloads (``burst_recovery``, ``bin_churn``,
    ``staged_adversary``) and :func:`resolve_scenario`, the entry point
    behind ``EnsembleSpec.scenario=``.

Most users never import this package directly — pass ``scenario=`` to
:class:`~repro.parallel.ensemble.EnsembleSpec` (any spelling
:func:`resolve_scenario` accepts) or use the ``repro scenario`` CLI.
"""

from .catalog import (
    available_scenarios,
    bin_churn,
    burst_recovery,
    get_scenario,
    resolve_scenario,
    staged_adversary,
)
from .engine import (
    Apply,
    Run,
    ScenarioProgram,
    compile_scenario,
    run_scenario_batched,
    run_scenario_sequential,
)
from .events import apply_event
from .spec import CONSERVING_KINDS, EVENT_KINDS, ScenarioEvent, ScenarioSpec

__all__ = [
    "EVENT_KINDS",
    "CONSERVING_KINDS",
    "ScenarioEvent",
    "ScenarioSpec",
    "Run",
    "Apply",
    "ScenarioProgram",
    "compile_scenario",
    "run_scenario_batched",
    "run_scenario_sequential",
    "apply_event",
    "burst_recovery",
    "bin_churn",
    "staged_adversary",
    "available_scenarios",
    "get_scenario",
    "resolve_scenario",
]
