"""Vectorized event application: each event edits an ``(R, n)`` load matrix.

The interpreter calls :func:`apply_event` between engine segments with the
process' current load matrix and the scenario's random generator.  Every
edit is vectorized over the replica axis where the draw allows it; the
per-replica draws (hypergeometric drain, churned-bin choice) loop over
``R`` but stay O(R) python-level work per *event*, not per round.

Ball conservation is structural: kinds in
:data:`~repro.scenarios.spec.CONSERVING_KINDS` return a matrix with the
same per-replica totals (asserted here, and enforced again by
``inject_loads`` in the driver); ``burst``/``drain`` intentionally change
the totals and the driver routes them through ``replace_loads``.

>>> import numpy as np
>>> from repro.scenarios.spec import ScenarioEvent
>>> rng = np.random.default_rng(0)
>>> loads = np.full((2, 4), 3, dtype=np.int64)
>>> out = apply_event(ScenarioEvent(kind="burst", round=1, count=5), loads, rng)
>>> out.sum(axis=1)
array([17, 17])
>>> out = apply_event(ScenarioEvent(kind="drain", round=1, count=2), out, rng)
>>> out.sum(axis=1)
array([15, 15])
"""

from __future__ import annotations

import numpy as np

from .spec import ScenarioEvent
from ..adversary.adversaries import get_adversary
from ..core.batched import one_choice_arrivals
from ..errors import ScenarioError, SimulationError

__all__ = [
    "apply_event",
    "apply_burst",
    "apply_drain",
    "apply_bin_churn",
]


def apply_burst(
    loads: np.ndarray, count: int, rng: np.random.Generator
) -> np.ndarray:
    """``count`` new balls per replica, each thrown into a uniform bin."""
    R, n = loads.shape
    row_base = np.arange(R, dtype=np.int64) * n
    counts = np.full(R, count, dtype=np.int64)
    return loads + one_choice_arrivals(rng, row_base, counts, R, n)


def apply_drain(
    loads: np.ndarray, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Remove ``count`` balls per replica, uniformly without replacement.

    Sampling the departing balls from the multiset of balls in the system
    is exactly a multivariate hypergeometric draw over the bins.
    """
    out = loads.copy()
    for r in range(loads.shape[0]):
        total = int(loads[r].sum())
        if count > total:
            raise ScenarioError(
                f"drain: removing {count} balls from replica {r} holding "
                f"{total}"
            )
        out[r] -= rng.multivariate_hypergeometric(loads[r], count)
    return out


def apply_bin_churn(
    loads: np.ndarray, count: int, rng: np.random.Generator
) -> np.ndarray:
    """``count`` distinct bins crash per replica; their balls are rethrown.

    Each crashed bin's balls land uniformly on the surviving bins, so the
    per-replica total is conserved while the crashed bins end the event
    empty (they stay addressable — subsequent rounds may refill them,
    modeling a bin that rejoined empty).
    """
    R, n = loads.shape
    if count > n - 1:
        raise ScenarioError(
            f"bin_churn: count {count} leaves no surviving bin (n_bins={n})"
        )
    out = loads.copy()
    for r in range(R):
        churned = rng.choice(n, size=count, replace=False)
        moved = int(out[r, churned].sum())
        keep = np.setdiff1d(np.arange(n), churned)
        out[r, churned] = 0
        if moved:
            destinations = keep[rng.integers(0, keep.size, size=moved)]
            out[r] += np.bincount(destinations, minlength=n)
    return out


def apply_event(
    event: ScenarioEvent, loads: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Apply one state-edit event to an ``(R, n)`` matrix; returns the result.

    ``rewire`` and ``observe_every`` events are not state edits (the
    driver and the compiler consume them respectively) and are rejected
    here.
    """
    loads = np.asarray(loads, dtype=np.int64)
    if loads.ndim != 2:
        raise ScenarioError(
            f"event application needs an (R, n) matrix, got shape {loads.shape}"
        )
    before = loads.sum(axis=1)
    if event.kind == "burst":
        result = apply_burst(loads, event.count, rng)
    elif event.kind == "drain":
        result = apply_drain(loads, event.count, rng)
    elif event.kind == "adversary":
        result = get_adversary(event.adversary).apply_batch(loads, rng)
    elif event.kind == "bin_churn":
        result = apply_bin_churn(loads, event.count, rng)
    else:
        raise ScenarioError(f"{event.kind} events are not state edits")
    if event.kind in ("adversary", "bin_churn"):
        if not np.array_equal(result.sum(axis=1), before):
            raise SimulationError(
                f"{event.kind} event did not conserve balls"
            )
    return result
