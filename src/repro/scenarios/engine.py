"""Scenario compiler + segment interpreters for both ensemble engines.

:func:`compile_scenario` turns a :class:`~repro.scenarios.spec.ScenarioSpec`
plus a window (``rounds``, ``observe_every``) into a flat
:class:`ScenarioProgram`: an alternating sequence of :class:`Run` segments
(handed to the engine as whole calls — one FFI call each with the native
kernels) and :class:`Apply` state edits.  The compiler's one non-obvious
job is keeping the *observation clock* identical to the static run's: the
engines observe every ``observe_every`` executed rounds of a single
``run()`` call **and** at the end of every observed call, so a segment
boundary landing between stride points would fire a spurious observation.
The compiler therefore decomposes every inter-event stretch into

* a *head* run ending exactly at the next stride point (observed once, at
  its end),
* a *middle* run covering the remaining whole strides (observed every
  ``observe_every`` rounds), and
* an unobserved *tail* for leftover rounds before a non-final event
  boundary (the window statistics still accumulate; only observers skip).

A scenario with **no events compiles to the single static engine call** —
bit-equality with the plain run is by construction, not by special-casing
(the ``repro verify`` scenario gate enforces it).

``observe_every`` events re-anchor the stride clock: after a stride change
at round ``c`` the grid continues at ``c - 1 + k * value``.

>>> from repro.scenarios.spec import ScenarioSpec, ScenarioEvent
>>> compile_scenario(ScenarioSpec(), rounds=10, observe_every=4).actions
(Run(rounds=10, observe_every=4, observed=True),)
>>> burst = ScenarioSpec(events=(ScenarioEvent(kind="burst", round=7, count=3),))
>>> program = compile_scenario(burst, rounds=10, observe_every=4)
>>> [type(a).__name__ for a in program.actions]
['Run', 'Run', 'Apply', 'Run', 'Run']
>>> program.observation_rounds   # the static 4, 8, 10 grid, unshifted
(4, 8, 10)
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import groupby
from typing import Callable, List, Optional, Tuple, Union

import numpy as np

from .events import apply_event
from .spec import CONSERVING_KINDS, ScenarioEvent, ScenarioSpec
from ..core.batched import EnsembleResult
from ..core.config import DEFAULT_BETA, legitimacy_threshold
from ..errors import ScenarioError
from ..metrics.base import BatchedObserverList
from ..metrics.window import SingleReplicaView, run_window

__all__ = [
    "Run",
    "Apply",
    "ScenarioProgram",
    "compile_scenario",
    "run_scenario_batched",
    "run_scenario_sequential",
]


@dataclass(frozen=True)
class Run:
    """One engine segment: ``rounds`` rounds as a single ``run()`` call."""

    rounds: int
    observe_every: int
    observed: bool


@dataclass(frozen=True)
class Apply:
    """One state edit, firing before global round ``round`` executes."""

    event: ScenarioEvent
    round: int


@dataclass(frozen=True)
class ScenarioProgram:
    """A compiled scenario: the action list one window interprets."""

    rounds: int
    actions: Tuple[Union[Run, Apply], ...]
    #: Global rounds at which attached observers fire — identical to the
    #: equivalent static run's schedule (plus the effect of any
    #: ``observe_every`` events).
    observation_rounds: Tuple[int, ...]

    @property
    def n_segments(self) -> int:
        return sum(1 for a in self.actions if isinstance(a, Run))

    @property
    def n_events(self) -> int:
        return sum(1 for a in self.actions if isinstance(a, Apply))


def compile_scenario(
    scenario: ScenarioSpec, rounds: int, observe_every: int = 1
) -> ScenarioProgram:
    """Compile a scenario into the segment/edit program for one window."""
    if rounds < 0:
        raise ScenarioError(f"rounds must be >= 0, got {rounds}")
    if observe_every < 1:
        raise ScenarioError(
            f"observe_every must be >= 1, got {observe_every}"
        )
    if rounds == 0:
        # the static engines accept a zero-round run (reporting the
        # current configuration); mirror it as one empty observed segment
        return ScenarioProgram(
            rounds=0,
            actions=(Run(rounds=0, observe_every=observe_every, observed=True),),
            observation_rounds=(),
        )

    actions: List[Union[Run, Apply]] = []
    observation_rounds: List[int] = []
    stride = observe_every
    origin = 0  # the stride grid is {origin + k * stride}
    cur = 0  # global rounds executed so far

    def emit_stretch(hi: int, final: bool) -> None:
        """Emit Run actions covering global rounds ``cur + 1 .. hi``."""
        nonlocal cur
        if hi <= cur:
            return
        if (cur - origin) % stride != 0:
            # head: land back on the stride grid (or finish the stretch)
            first_grid = cur + stride - (cur - origin) % stride
            if first_grid <= hi:
                length = first_grid - cur
                actions.append(Run(length, length, True))
                observation_rounds.append(first_grid)
                cur = first_grid
            elif final:
                length = hi - cur
                actions.append(Run(length, length, True))
                observation_rounds.append(hi)
                cur = hi
            else:
                actions.append(Run(hi - cur, stride, False))
                cur = hi
            if cur >= hi:
                return
        # cur now sits on the stride grid
        if final:
            length = hi - cur
            actions.append(Run(length, stride, True))
            whole = length // stride
            observation_rounds.extend(
                cur + (k + 1) * stride for k in range(whole)
            )
            if length % stride:
                observation_rounds.append(hi)  # end-of-window observation
            cur = hi
            return
        whole = (hi - cur) // stride
        if whole:
            actions.append(Run(whole * stride, stride, True))
            observation_rounds.extend(
                cur + (k + 1) * stride for k in range(whole)
            )
            cur += whole * stride
        if hi > cur:
            # leftover rounds before the event boundary: simulate them
            # without observers so the stride clock does not shift
            actions.append(Run(hi - cur, stride, False))
            cur = hi

    expanded = scenario.expand_events(rounds)
    for when, group in groupby(expanded, key=lambda pair: pair[0]):
        emit_stretch(when - 1, final=False)
        for _, event in group:
            if event.kind == "observe_every":
                stride = event.value
                origin = cur  # == when - 1: the new grid starts here
            else:
                actions.append(Apply(event=event, round=when))
    emit_stretch(rounds, final=True)
    return ScenarioProgram(
        rounds=rounds,
        actions=tuple(actions),
        observation_rounds=tuple(observation_rounds),
    )


# ----------------------------------------------------------------------
# Batched interpreter
# ----------------------------------------------------------------------
def run_scenario_batched(
    process,
    program: ScenarioProgram,
    beta: float = DEFAULT_BETA,
    observers=None,
    rewire: Optional[Callable] = None,
) -> EnsembleResult:
    """Interpret a compiled program on a batched ``(R, n)`` process.

    Each :class:`Run` is one engine call (the native kernels run it as one
    FFI call, fused observation included); each :class:`Apply` edits the
    ``(R, n)`` state between calls, drawing from the process' own stream.
    Ball-conserving edits go through ``inject_loads`` (conservation
    enforced), ``burst``/``drain`` through ``replace_loads``.  ``rewire``
    events call the ``rewire(process, event)`` hook, which must return the
    replacement process carrying the same loads, stream, and global clock.

    Post-edit configurations fold into ``max_load_seen`` only (the
    injected spike is the quantity of interest), mirroring
    :class:`~repro.adversary.batched.BatchedFaultyProcess`.  The
    per-replica round clock stays global across segments, so
    ``first_legitimate_round`` needs no translation.
    """
    obs = BatchedObserverList.coerce(observers)
    R = process.n_replicas
    first_legit = np.full(R, -1, dtype=np.int64)
    max_seen = np.zeros(R, dtype=np.int64)
    min_empty = np.full(R, process.n_bins, dtype=np.int64)
    executed = np.zeros(R, dtype=np.int64)
    kernels = set()
    for action in program.actions:
        if isinstance(action, Run):
            result = process.run(
                action.rounds,
                beta=beta,
                observers=obs if action.observed else None,
                observe_every=action.observe_every,
            )
            kernels.add(result.kernel)
            executed += result.rounds
            np.maximum(max_seen, result.max_load_seen, out=max_seen)
            np.minimum(min_empty, result.min_empty_bins_seen, out=min_empty)
            hit = result.first_legitimate_round >= 0
            np.copyto(
                first_legit,
                result.first_legitimate_round,
                where=hit & (first_legit < 0),
            )
        else:
            event = action.event
            if event.kind == "rewire":
                if rewire is None:
                    raise ScenarioError(
                        "rewire event but no rewire hook was provided"
                    )
                process = rewire(process, event)
                continue
            edited = apply_event(event, process.loads, process.rng)
            if event.kind in CONSERVING_KINDS:
                process.inject_loads(edited)
            else:
                process.replace_loads(edited)
            np.maximum(max_seen, edited.max(axis=1), out=max_seen)
    if len(kernels) == 1:
        kernel = kernels.pop()
    elif kernels:
        kernel = "mixed"
    else:  # pragma: no cover - a program always holds at least one Run
        kernel = getattr(process, "kernel_name", "numpy")
    return EnsembleResult(
        n_bins=process.n_bins,
        rounds=executed,
        final_loads=process.loads.copy(),
        max_load_seen=max_seen,
        min_empty_bins_seen=min_empty,
        first_legitimate_round=first_legit,
        beta=beta,
        kernel=kernel,
    )


# ----------------------------------------------------------------------
# Sequential interpreter
# ----------------------------------------------------------------------
class _ShiftedObservers:
    """Forward observations with the round index shifted onto the global clock.

    The sequential engine rebuilds its process after a state edit (the
    simulators own their loads), which resets the process-local round
    counter; this adapter adds the rounds executed before the rebuild so
    observers keep seeing the scenario's global clock.
    """

    def __init__(self, inner: BatchedObserverList, delta: int) -> None:
        self._inner = inner
        self._delta = delta

    def observe(self, round_index: int, loads: np.ndarray) -> None:
        self._inner.observe(round_index + self._delta, loads)


def run_scenario_sequential(
    process,
    program: ScenarioProgram,
    rng: np.random.Generator,
    beta: float = DEFAULT_BETA,
    observers=None,
    rebuild: Optional[Callable] = None,
) -> dict:
    """Interpret a compiled program on one sequential replica.

    ``rng`` is the stream the events draw from — pass the generator the
    process itself steps with, which keeps an ``R == 1`` scenario run
    stream-equal to the batched numpy engine (events there draw from the
    process stream too).  ``rebuild(process, loads, event)`` must return a
    fresh simulator carrying ``loads`` and the same generator (``event``
    is the rewire event, or ``None`` for plain state edits).

    Returns the per-trial record dict of the sequential ensemble engine
    (``rounds`` / ``window_max_load`` / ``min_empty_bins`` /
    ``first_legitimate_round`` / ``final_loads``).
    """
    obs = BatchedObserverList.coerce(observers)
    threshold = legitimacy_threshold(process.n_bins, beta)
    max_seen = 0
    min_empty = int(process.n_bins)
    first_legit = -1
    executed = 0
    for action in program.actions:
        if isinstance(action, Run):
            if action.rounds <= 0:
                continue
            delta = executed - int(process.round_index)
            seg_obs = None
            if action.observed and not obs.is_empty:
                seg_obs = obs if delta == 0 else _ShiftedObservers(obs, delta)
            seg_max, seg_min, seg_fl, seg_exec = run_window(
                SingleReplicaView(process),
                action.rounds,
                threshold,
                observers=seg_obs,
                observe_every=action.observe_every,
            )
            executed += seg_exec
            max_seen = max(max_seen, int(seg_max[0]))
            min_empty = min(min_empty, int(seg_min[0]))
            if first_legit < 0 and seg_fl[0] >= 0:
                first_legit = int(seg_fl[0]) + delta
        else:
            event = action.event
            if rebuild is None:
                raise ScenarioError(
                    "scenario event but no rebuild hook was provided"
                )
            if event.kind == "rewire":
                process = rebuild(
                    process, np.array(process.loads, copy=True), event
                )
                continue
            loads = np.asarray(process.loads).reshape(1, -1)
            edited = apply_event(event, loads, rng)
            max_seen = max(max_seen, int(edited.max()))
            process = rebuild(process, edited[0], None)
    if executed == 0:
        loads = np.asarray(process.loads)
        return {
            "rounds": 0,
            "window_max_load": int(loads.max()),
            "min_empty_bins": int(np.count_nonzero(loads == 0)),
            "first_legitimate_round": -1,
            "final_loads": np.array(loads, copy=True),
        }
    return {
        "rounds": executed,
        "window_max_load": max_seen,
        "min_empty_bins": min_empty,
        "first_legitimate_round": first_legit,
        "final_loads": np.array(process.loads, copy=True),
    }
