"""The scenario spec: a JSON-serializable schedule of events on the round clock.

A :class:`ScenarioSpec` is a validated, ordered list of
:class:`ScenarioEvent` entries.  Each event names a *kind* (what happens)
and a position on the round clock (*when*), optionally repeating:

``burst``
    ``count`` extra balls arrive in every replica, each thrown into a
    uniform bin (the one-choice arrival law).  Not ball-conserving.
``drain``
    ``count`` balls leave every replica, sampled uniformly without
    replacement from the balls currently in the system (a multivariate
    hypergeometric draw over the bins).  Not ball-conserving.
``adversary``
    A named :mod:`repro.adversary` adversary reassigns every replica's
    configuration (ball-conserving, the Section 4.1 fault model).
``bin_churn``
    ``count`` distinct bins crash in every replica; their balls are
    rethrown uniformly into the surviving bins (ball-conserving).
``rewire``
    The walk topology is replaced mid-run (``graph_walks`` only; the new
    topology must keep the node count).
``observe_every``
    The observation stride changes to ``value`` from this round on — a
    compile-time event consumed by the scenario compiler, not a state
    edit.

An event at round ``t`` fires *before* round ``t`` executes, matching the
:class:`~repro.adversary.faulty_process.FaultSchedule` convention, so
``t`` ranges over ``[1, rounds]``.  Events listed for the same round apply
in listing order.  Periodic events spell ``round`` (first firing),
``every`` (period) and ``until`` (inclusive last round considered, clipped
to the window).

>>> spec = ScenarioSpec.from_dict({
...     "name": "demo",
...     "events": [
...         {"kind": "burst", "round": 4, "count": 8},
...         {"kind": "adversary", "round": 2, "every": 6, "adversary": "concentrate"},
...     ],
... })
>>> [(t, e.kind) for t, e in spec.expand_events(rounds=12)]
[(2, 'adversary'), (4, 'burst'), (8, 'adversary')]
>>> ScenarioSpec.from_json(spec.to_json()) == spec
True
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Protocol, Tuple

from ..errors import ScenarioError

__all__ = ["EVENT_KINDS", "CONSERVING_KINDS", "ScenarioEvent", "ScenarioSpec"]

#: Every event kind the parser accepts, in documentation order.
EVENT_KINDS = (
    "burst",
    "drain",
    "adversary",
    "bin_churn",
    "rewire",
    "observe_every",
)

#: State-edit kinds that must conserve the per-replica ball total.  The
#: interpreter routes these through ``inject_loads`` (which enforces
#: conservation) and the rest through ``replace_loads``.
CONSERVING_KINDS = frozenset({"adversary", "bin_churn"})

#: kind -> (required fields, optional fields) beyond the clock fields.
_FIELD_RULES = {
    "burst": (("count",), ()),
    "drain": (("count",), ()),
    "adversary": (("adversary",), ()),
    "bin_churn": (("count",), ()),
    "rewire": (("topology",), ()),
    "observe_every": (("value",), ()),
}

_PAYLOAD_FIELDS = ("count", "adversary", "topology", "value")


class EnsembleLike(Protocol):
    """The duck-typed surface :meth:`ScenarioSpec.validate_for` reads.

    :class:`~repro.parallel.ensemble.EnsembleSpec` qualifies; ``process``
    and ``n_balls`` are probed via ``getattr`` with defaults, so they are
    not part of the protocol.
    """

    n_bins: int
    rounds: int


@dataclass(frozen=True)
class ScenarioEvent:
    """One scheduled event: a kind, a clock position, and its payload.

    >>> ScenarioEvent(kind="burst", round=3, count=5).firings(rounds=10)
    (3,)
    >>> ScenarioEvent(kind="drain", round=2, every=3, count=1).firings(10)
    (2, 5, 8)
    """

    kind: str
    round: int
    every: Optional[int] = None
    until: Optional[int] = None
    count: Optional[int] = None
    adversary: Optional[str] = None
    topology: Optional[str] = None
    value: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in _FIELD_RULES:
            raise ScenarioError(
                f"unknown event kind {self.kind!r}; expected one of "
                f"{', '.join(EVENT_KINDS)}"
            )
        if not isinstance(self.round, int) or isinstance(self.round, bool):
            raise ScenarioError(
                f"{self.kind}: round must be an integer, got {self.round!r}"
            )
        if self.round < 1:
            raise ScenarioError(
                f"{self.kind}: round must be >= 1 (events fire before the "
                f"named round executes), got {self.round}"
            )
        if self.every is not None and self.every < 1:
            raise ScenarioError(
                f"{self.kind}: every must be >= 1, got {self.every}"
            )
        if self.until is not None:
            if self.every is None:
                raise ScenarioError(
                    f"{self.kind}: until requires every (a one-shot event "
                    "has no period to bound)"
                )
            if self.until < self.round:
                raise ScenarioError(
                    f"{self.kind}: until ({self.until}) is before the first "
                    f"firing ({self.round})"
                )
        required, _ = _FIELD_RULES[self.kind]
        for name in required:
            if getattr(self, name) is None:
                raise ScenarioError(f"{self.kind}: missing field {name!r}")
        allowed = set(required)
        for name in _PAYLOAD_FIELDS:
            if name not in allowed and getattr(self, name) is not None:
                raise ScenarioError(
                    f"{self.kind}: field {name!r} does not apply"
                )
        if self.count is not None and self.count < 1:
            raise ScenarioError(
                f"{self.kind}: count must be >= 1, got {self.count}"
            )
        if self.value is not None and self.value < 1:
            raise ScenarioError(
                f"{self.kind}: value must be >= 1, got {self.value}"
            )

    def firings(self, rounds: int) -> Tuple[int, ...]:
        """Every round in ``[1, rounds]`` at which this event fires.

        A first firing past the window is an error (the event would
        silently never apply); an ``until`` past the window is clipped.
        """
        if self.round > rounds:
            raise ScenarioError(
                f"{self.kind}: first firing at round {self.round} is past "
                f"the window (rounds={rounds})"
            )
        if self.every is None:
            return (self.round,)
        last = rounds if self.until is None else min(self.until, rounds)
        return tuple(range(self.round, last + 1, self.every))

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-shaped dict (only the fields that are set)."""
        out: Dict[str, Any] = {"kind": self.kind, "round": self.round}
        for name in ("every", "until", *_PAYLOAD_FIELDS):
            if getattr(self, name) is not None:
                out[name] = getattr(self, name)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioEvent":
        if not isinstance(data, Mapping):
            raise ScenarioError(
                f"an event must be a mapping, got {type(data).__name__}"
            )
        known = {"kind", "round", "every", "until", *_PAYLOAD_FIELDS}
        unknown = set(data) - known
        if unknown:
            raise ScenarioError(
                f"unknown event field(s): {', '.join(sorted(unknown))}"
            )
        if "kind" not in data:
            raise ScenarioError("an event must name its kind")
        if "round" not in data:
            raise ScenarioError(f"{data['kind']}: an event must name its round")
        return cls(**dict(data))


@dataclass(frozen=True)
class ScenarioSpec:
    """A named, ordered schedule of events — the unit the engines consume.

    >>> spec = ScenarioSpec(events=(ScenarioEvent(kind="burst", round=1, count=2),))
    >>> spec.expand_events(4)
    [(1, ScenarioEvent(kind='burst', round=1, every=None, until=None, count=2, adversary=None, topology=None, value=None))]
    """

    events: Tuple[ScenarioEvent, ...] = ()
    name: Optional[str] = None
    description: str = field(default="")

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, ScenarioEvent):
                raise ScenarioError(
                    f"events must be ScenarioEvent instances, got "
                    f"{type(event).__name__}"
                )

    @property
    def is_noop(self) -> bool:
        """Whether this scenario schedules no events at all."""
        return not self.events

    def expand_events(self, rounds: int) -> List[Tuple[int, "ScenarioEvent"]]:
        """All ``(round, event)`` firings in the window, in application order.

        Sorted by round; events firing in the same round keep their
        listing order (the sort is stable).
        """
        if rounds < 0:
            raise ScenarioError(f"rounds must be >= 0, got {rounds}")
        firings: List[Tuple[int, ScenarioEvent]] = []
        for event in self.events:
            firings.extend((t, event) for t in event.firings(rounds))
        firings.sort(key=lambda pair: pair[0])
        return firings

    def validate_for(self, spec: EnsembleLike) -> None:
        """Check this scenario against an ensemble-like spec (duck-typed).

        ``spec`` needs ``n_bins``, ``rounds``, ``process`` and (for
        walks) ``topology``; :class:`~repro.parallel.ensemble.EnsembleSpec`
        qualifies.  Raises :class:`~repro.errors.ScenarioError` when an
        event cannot apply: a rewire outside ``graph_walks`` or changing
        the node count, a churn count that leaves no surviving bin, or a
        drain that would go below zero balls (checked by walking the
        scheduled ball count, which is deterministic per replica).
        """
        n_bins = int(spec.n_bins)
        process = getattr(spec, "process", "rbb")
        expanded = self.expand_events(int(spec.rounds))
        balls = int(spec.n_balls) if getattr(spec, "n_balls", None) else n_bins
        for when, event in expanded:
            if event.kind == "rewire":
                if process != "graph_walks":
                    raise ScenarioError(
                        "rewire events only apply to process='graph_walks', "
                        f"not {process!r}"
                    )
                from ..graphs.generators import resolve_topology

                assert event.topology is not None  # required for rewire
                topology = resolve_topology(event.topology)
                if topology.num_nodes != n_bins:
                    raise ScenarioError(
                        f"rewire at round {when}: topology "
                        f"{event.topology!r} has {topology.num_nodes} nodes, "
                        f"the run has {n_bins}"
                    )
            elif event.kind == "bin_churn":
                assert event.count is not None  # required for bin_churn
                if event.count > n_bins - 1:
                    raise ScenarioError(
                        f"bin_churn at round {when}: count {event.count} "
                        f"leaves no surviving bin (n_bins={n_bins})"
                    )
            elif event.kind == "burst":
                assert event.count is not None  # required for burst
                balls += event.count
            elif event.kind == "drain":
                assert event.count is not None  # required for drain
                if event.count > balls:
                    raise ScenarioError(
                        f"drain at round {when}: removing {event.count} "
                        f"balls from a system holding {balls}"
                    )
                balls -= event.count

    # ------------------------------------------------------------------
    # (De)serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"events": [event.to_dict() for event in self.events]}
        if self.name is not None:
            out["name"] = self.name
        if self.description:
            out["description"] = self.description
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        if not isinstance(data, Mapping):
            raise ScenarioError(
                f"a scenario must be a mapping, got {type(data).__name__}"
            )
        unknown = set(data) - {"events", "name", "description"}
        if unknown:
            raise ScenarioError(
                f"unknown scenario field(s): {', '.join(sorted(unknown))}"
            )
        events = data.get("events", ())
        if isinstance(events, (str, bytes)) or not hasattr(events, "__iter__"):
            raise ScenarioError("'events' must be a list of event mappings")
        return cls(
            events=tuple(ScenarioEvent.from_dict(e) for e in events),
            name=data.get("name"),
            description=data.get("description", ""),
        )

    def to_json(self) -> str:
        """Canonical single-line JSON (the ``EnsembleSpec.scenario=`` spelling)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"scenario is not valid JSON: {exc}") from exc
        return cls.from_dict(data)
