"""Named scenario catalog + the ``scenario=`` resolution entry point.

Three canonical composite workloads ship with the library (the shapes the
paper's self-stabilization claims are about):

``burst_recovery``
    A one-shot arrival burst — ``count`` extra balls at round ``at`` —
    optionally drained again later; measures recovery from a mass spike.
``bin_churn``
    Periodic bin crashes with load reassignment: ``count`` bins every
    ``every`` rounds from ``start``.
``staged_adversary``
    A periodic adversary that switches identity mid-run: ``first``
    strikes every ``every`` rounds before ``switch``, ``second`` from
    ``switch`` on.

Catalog names accept inline parameter overrides with the same JSON-scalar
spelling the topology specs use::

    burst_recovery:count=32,at=4

and :func:`resolve_scenario` is the single front door the
``EnsembleSpec.scenario=`` field goes through: it accepts a
:class:`ScenarioSpec`, a dict, a JSON object string, or a catalog name.

>>> get_scenario("burst_recovery:count=32,at=4").events[0].count
32
>>> resolve_scenario('{"events": []}').is_noop
True
>>> sorted(available_scenarios())
['bin_churn', 'burst_recovery', 'staged_adversary']
"""

from __future__ import annotations

import json
from typing import Dict, Mapping, Optional, Union

from .spec import ScenarioEvent, ScenarioSpec
from ..errors import ScenarioError

__all__ = [
    "burst_recovery",
    "bin_churn",
    "staged_adversary",
    "available_scenarios",
    "get_scenario",
    "resolve_scenario",
]


def burst_recovery(
    at: int = 8, count: int = 64, drain_at: Optional[int] = None
) -> ScenarioSpec:
    """A one-shot arrival burst (optionally drained again at ``drain_at``)."""
    events = [ScenarioEvent(kind="burst", round=at, count=count)]
    if drain_at is not None:
        if drain_at <= at:
            raise ScenarioError(
                f"burst_recovery: drain_at ({drain_at}) must be after the "
                f"burst ({at})"
            )
        events.append(ScenarioEvent(kind="drain", round=drain_at, count=count))
    return ScenarioSpec(
        events=tuple(events),
        name="burst_recovery",
        description=f"{count} extra balls at round {at}"
        + (f", drained at round {drain_at}" if drain_at is not None else ""),
    )


def bin_churn(
    start: int = 8,
    every: int = 16,
    count: int = 4,
    until: Optional[int] = None,
) -> ScenarioSpec:
    """Periodic bin crashes: ``count`` bins every ``every`` rounds."""
    return ScenarioSpec(
        events=(
            ScenarioEvent(
                kind="bin_churn",
                round=start,
                every=every,
                until=until,
                count=count,
            ),
        ),
        name="bin_churn",
        description=f"{count} bins crash every {every} rounds from {start}",
    )


def staged_adversary(
    first: str = "concentrate",
    second: str = "pyramid",
    switch: int = 33,
    every: int = 8,
    until: Optional[int] = None,
) -> ScenarioSpec:
    """A periodic adversary switching identity at round ``switch``.

    ``until`` ends the second stage (default: it strikes to the horizon);
    leaving quiet rounds after it is how recovery gets measured.
    """
    if switch <= every:
        raise ScenarioError(
            f"staged_adversary: switch ({switch}) must come after the first "
            f"stage's first strike ({every})"
        )
    if until is not None and until < switch:
        raise ScenarioError(
            f"staged_adversary: until ({until}) must not precede the "
            f"switch ({switch})"
        )
    return ScenarioSpec(
        events=(
            ScenarioEvent(
                kind="adversary",
                round=every,
                every=every,
                until=switch - 1,
                adversary=first,
            ),
            ScenarioEvent(
                kind="adversary",
                round=switch,
                every=every,
                until=until,
                adversary=second,
            ),
        ),
        name="staged_adversary",
        description=f"{first} every {every} rounds, then {second} from "
        f"round {switch}"
        + (f" until round {until}" if until is not None else ""),
    )


_CATALOG = {
    "burst_recovery": burst_recovery,
    "bin_churn": bin_churn,
    "staged_adversary": staged_adversary,
}


def available_scenarios() -> Dict[str, str]:
    """Catalog name -> one-line description (at default parameters)."""
    return {name: builder().description for name, builder in _CATALOG.items()}


def _parse_params(text: str, name: str) -> dict:
    params = {}
    for part in text.split(","):
        if not part:
            continue
        key, sep, raw = part.partition("=")
        if not sep or not key:
            raise ScenarioError(
                f"scenario {name!r}: malformed parameter {part!r} "
                "(expected key=value)"
            )
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw
    return params


def get_scenario(spec: str) -> ScenarioSpec:
    """Build a catalog scenario from ``name`` or ``name:key=value,...``."""
    name, sep, params_text = spec.partition(":")
    if name not in _CATALOG:
        raise ScenarioError(
            f"unknown scenario {name!r}; available: "
            f"{', '.join(sorted(_CATALOG))} (or inline JSON)"
        )
    params = _parse_params(params_text, name) if sep else {}
    try:
        return _CATALOG[name](**params)
    except TypeError as exc:
        raise ScenarioError(f"scenario {name!r}: {exc}") from exc


def resolve_scenario(
    value: Union[ScenarioSpec, Mapping, str, None]
) -> Optional[ScenarioSpec]:
    """Normalize every accepted ``scenario=`` spelling to a :class:`ScenarioSpec`."""
    if value is None:
        return None
    if isinstance(value, ScenarioSpec):
        return value
    if isinstance(value, Mapping):
        return ScenarioSpec.from_dict(value)
    if isinstance(value, str):
        if value.lstrip().startswith("{"):
            return ScenarioSpec.from_json(value)
        return get_scenario(value)
    raise ScenarioError(
        f"cannot interpret {value!r} as a scenario (expected a ScenarioSpec, "
        "a dict, a JSON object string, or a catalog name)"
    )
