"""Random-number-generator plumbing.

Every stochastic object in the library accepts a *seed-like* argument — an
``int``, ``None``, a :class:`numpy.random.SeedSequence`, or an existing
:class:`numpy.random.Generator` — and normalizes it through
:func:`as_generator`.  Parallel Monte-Carlo trials obtain statistically
independent streams via :func:`spawn_generators` / :func:`spawn_seeds`,
which use ``SeedSequence.spawn`` so results are reproducible regardless of
how many worker processes participate.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .types import SeedLike

__all__ = [
    "as_generator",
    "as_seed_sequence",
    "spawn_generators",
    "spawn_seeds",
    "derive_substream",
]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Parameters
    ----------
    seed:
        ``None`` (fresh OS entropy), an integer seed, a ``SeedSequence``, or
        an existing ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def as_seed_sequence(seed: SeedLike = None) -> np.random.SeedSequence:
    """Return a ``SeedSequence`` for *seed*.

    Generators cannot be converted back into seed sequences; passing one
    raises ``TypeError`` to avoid silently breaking reproducibility.
    """
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if isinstance(seed, np.random.Generator):
        raise TypeError(
            "cannot derive a SeedSequence from an existing Generator; "
            "pass an int seed or a SeedSequence instead"
        )
    return np.random.SeedSequence(seed)


def spawn_seeds(seed: SeedLike, count: int) -> List[np.random.SeedSequence]:
    """Spawn *count* independent child seed sequences from *seed*."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return list(as_seed_sequence(seed).spawn(count))


def spawn_generators(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Spawn *count* independent generators from *seed*."""
    return [np.random.default_rng(s) for s in spawn_seeds(seed, count)]


def derive_substream(seed: SeedLike, key: Sequence[int]) -> np.random.Generator:
    """Derive a generator keyed by a tuple of integers.

    This gives deterministic per-(trial, parameter) streams without having to
    pre-spawn a whole list: ``derive_substream(seed, (trial, n))`` always
    yields the same stream for the same ``seed``/key pair.
    """
    base = as_seed_sequence(seed)
    child = np.random.SeedSequence(entropy=base.entropy, spawn_key=tuple(int(k) for k in key))
    return np.random.default_rng(child)
