"""Shared type aliases and protocols used across the library.

The simulator works on plain NumPy arrays for speed; these aliases give the
public API self-documenting signatures without introducing wrapper types in
the hot path.
"""

from __future__ import annotations

from typing import Any, Protocol, Union, runtime_checkable

import numpy as np
import numpy.typing as npt

__all__ = [
    "LoadVector",
    "SeedLike",
    "Observer",
    "RoundCallback",
]

#: A length-``n`` integer vector; entry ``u`` is the number of balls in bin ``u``.
#: The engines use ``int32``/``int64`` interchangeably, so the alias is
#: parameterized over any signed-integer dtype.
LoadVector = npt.NDArray[np.signedinteger[Any]]

#: Anything accepted by :func:`repro.rng.as_generator`.
SeedLike = Union[int, None, np.random.Generator, np.random.SeedSequence]


@runtime_checkable
class Observer(Protocol):
    """Protocol for per-round metric collectors.

    Observers are called once per simulated round *after* the round has been
    applied.  They must not mutate the load vector they receive (the
    simulators pass their internal buffer for efficiency).
    """

    def observe(self, round_index: int, loads: LoadVector) -> None:
        """Record whatever the observer cares about for this round."""
        ...


@runtime_checkable
class RoundCallback(Protocol):
    """A bare callable alternative to :class:`Observer`."""

    def __call__(self, round_index: int, loads: LoadVector) -> None: ...
