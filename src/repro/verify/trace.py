"""Stateful trace verification: machine-checked invariants over recorded runs.

Where :mod:`repro.verify.conformance` is statistical (an engine can only
be *probably* right), this module is exact: it records a full ``(T, R, n)``
trace of an engine run and replays it through invariants that must hold
round for round —

``ball_conservation``
    Every snapshot of every replica sums to that replica's initial ball
    count.  (The batched engines also enforce this internally; the trace
    check closes the loop *after* all observer plumbing.)
``non_negative``
    No snapshot contains a negative load.
``series_max`` / ``series_empty``
    The max-load and empty-bins tracker *series* equal the same
    statistics recomputed from the raw trace at every observation round
    — the observer pipeline may not drift from the state it observes.
``window_max`` / ``window_min_empty``
    The engine's reported window statistics equal the fold of the
    recomputed series.
``first_legitimate``
    The engine's ``first_legitimate_round`` equals the first observation
    round whose recomputed max load clears the legitimacy threshold
    (exact at ``observe_every=1`` without early stopping).
``legitimacy_monotone``
    The legitimacy tracker's ``first_legitimate_round`` never exceeds
    its ``first_violation_after_hit`` — window stats may only tighten.

A violation produces a TLC-style minimized counterexample: the trace is
truncated at the first violating observation, restricted to the first
violating replica, and written as a replayable ``.verify/`` artifact
(seed, resolved spec, engine coordinates, round-by-round state diff).

:func:`fused_vs_segmented` separately pins the PR 6 contract: with the
native kernel, fused in-kernel observation and the segmented reference
loop must be **bit-identical** — same final loads, same windows, same
tracker summaries — because both consume the per-replica xoshiro streams
identically.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from .artifact import CounterexampleArtifact, write_artifact
from .conformance import CheckOutcome, ConformanceReport, _fusion_env
from .stats import GofResult
from ..core.config import LoadConfiguration, legitimacy_threshold
from ..errors import ConfigurationError
from ..parallel.ensemble import EnsembleSpec, run_ensemble
from ..rng import as_seed_sequence
from ..types import SeedLike

__all__ = [
    "InvariantViolation",
    "TraceCheckResult",
    "check_trace_invariants",
    "fused_vs_segmented",
    "replay_invariant_artifact",
]

#: Metrics the trace checker needs on the wire.
TRACE_METRICS = ("trace", "max_load", "empty_bins", "legitimacy")


@dataclass(frozen=True)
class InvariantViolation:
    """One exact invariant broken at one (round, replica)."""

    invariant: str
    round_index: int
    replica: int
    observed: Any
    expected: Any
    detail: str = ""

    def describe(self) -> str:
        text = (
            f"{self.invariant} violated at round {self.round_index}, "
            f"replica {self.replica}: observed {self.observed!r}, "
            f"expected {self.expected!r}"
        )
        return f"{text} ({self.detail})" if self.detail else text


@dataclass
class TraceCheckResult:
    """All violations of one traced run, plus the material to minimize."""

    spec: EnsembleSpec
    engine: Dict[str, Any]
    seed_entropy: int
    seed_spawn_key: Tuple[int, ...]
    violations: List[InvariantViolation] = field(default_factory=list)
    trace: Optional[np.ndarray] = None
    trace_rounds: Optional[np.ndarray] = None
    artifact_paths: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations

    def emit_artifacts(self, directory: str) -> List[str]:
        """Write one minimized counterexample per distinct invariant."""
        seen = set()
        paths = []
        for violation in self.violations:
            if violation.invariant in seen:
                continue
            seen.add(violation.invariant)
            paths.append(self._emit_one(violation, directory))
        self.artifact_paths.extend(paths)
        return paths

    def _emit_one(self, violation: InvariantViolation, directory: str) -> str:
        replica = violation.replica
        # minimization: keep only the offending replica's history, cut at
        # the first violating observation — the shortest prefix that
        # still reproduces the failure
        diff: List[Dict[str, Any]] = []
        if self.trace is not None and self.trace_rounds is not None:
            for k, round_index in enumerate(self.trace_rounds.tolist()):
                if round_index > violation.round_index:
                    break
                diff.append(
                    {
                        "round": int(round_index),
                        "loads": self.trace[k, replica].tolist(),
                    }
                )
        spec_fields = {
            f.name: getattr(self.spec, f.name)
            for f in dataclasses.fields(self.spec)
        }
        spec_fields["metrics"] = list(spec_fields["metrics"])
        artifact = CounterexampleArtifact(
            kind="invariant",
            case=f"trace-{self.spec.process}",
            check=violation.invariant,
            seed_entropy=self.seed_entropy,
            seed_spawn_key=list(self.seed_spawn_key),
            spec=spec_fields,
            engine=dict(self.engine),
            violation={
                "invariant": violation.invariant,
                "round": violation.round_index,
                "replica": violation.replica,
                "observed": violation.observed,
                "expected": violation.expected,
                "detail": violation.detail,
                "state_history": diff,
            },
        )
        return write_artifact(artifact, directory)


def _expected_totals(spec: EnsembleSpec) -> Optional[np.ndarray]:
    """Per-replica ball totals the spec promises (None when start is random)."""
    start = spec.start
    if isinstance(start, str):
        if start == "random_uniform":
            m = spec.n_bins if spec.n_balls is None else spec.n_balls
            return np.full(spec.n_replicas, m, dtype=np.int64)
        maker = getattr(LoadConfiguration, start)
        total = int(maker(spec.n_bins, n_balls=spec.n_balls).as_array().sum())
        return np.full(spec.n_replicas, total, dtype=np.int64)
    if isinstance(start, LoadConfiguration):
        return np.full(
            spec.n_replicas, int(start.as_array().sum()), dtype=np.int64
        )
    arr = np.asarray(start)
    if arr.ndim == 1:
        return np.full(spec.n_replicas, int(arr.sum()), dtype=np.int64)
    return arr.sum(axis=1).astype(np.int64)


def _first_bad(mask: np.ndarray) -> Tuple[int, int]:
    """(observation index, replica) of the first True entry of a 2-D mask."""
    flat = int(np.flatnonzero(mask)[0])
    return flat // mask.shape[1], flat % mask.shape[1]


def check_trace_invariants(
    spec_config: Dict[str, Any],
    seed: SeedLike = 0,
    engine: str = "batched",
    kernel: str = "numpy",
    n_threads: Optional[int] = None,
    fused: bool = True,
    artifacts_dir: Optional[str] = None,
) -> TraceCheckResult:
    """Record one run's full trace and machine-check every invariant.

    ``spec_config`` is an :class:`EnsembleSpec` field assignment; the
    trace/max-load/empty-bins/legitimacy metrics are attached on top of
    whatever it requests.  The faulty process is supported (conservation
    holds across injections) but its window statistics fold injected
    configurations, so the window invariants are only enforced for the
    fault-free families.
    """
    config = dict(spec_config)
    requested = config.get("metrics", ())
    if isinstance(requested, str):
        requested = tuple(part.strip() for part in requested.split(",") if part.strip())
    config["metrics"] = tuple(dict.fromkeys(tuple(requested) + TRACE_METRICS))
    spec = EnsembleSpec(**config)
    if spec.observe_every != 1:
        raise ConfigurationError(
            "trace invariants require observe_every=1 (the window and "
            "first-legitimate reconstructions are exact only at stride 1)"
        )
    root = as_seed_sequence(seed)
    engine_coords = {
        "engine": engine,
        "kernel": kernel,
        "n_threads": n_threads,
        "fused": fused,
        "n_workers": 1,
        "runner": "trace",
    }
    with _fusion_env(fused):
        result = run_ensemble(
            spec, seed=root, engine=engine, kernel=kernel, n_threads=n_threads
        )
    check = TraceCheckResult(
        spec=spec,
        engine=engine_coords,
        seed_entropy=int(root.entropy),
        seed_spawn_key=tuple(int(k) for k in root.spawn_key),
    )
    trace_payload = result.metrics["trace"]
    trace = np.asarray(trace_payload.series["trace"])
    rounds = np.asarray(trace_payload.rounds)
    check.trace = trace
    check.trace_rounds = rounds
    violations = check.violations

    if trace.shape[0] == 0:
        return check

    # --- exact state invariants ---------------------------------------
    totals = _expected_totals(spec)
    sums = trace.sum(axis=2)  # (T, R)
    bad = sums != totals[None, :]
    if bad.any():
        k, r = _first_bad(bad)
        violations.append(
            InvariantViolation(
                "ball_conservation",
                int(rounds[k]),
                r,
                observed=int(sums[k, r]),
                expected=int(totals[r]),
                detail="per-replica ball total changed mid-run",
            )
        )
    negative = (trace < 0).any(axis=2)
    if negative.any():
        k, r = _first_bad(negative)
        violations.append(
            InvariantViolation(
                "non_negative",
                int(rounds[k]),
                r,
                observed=trace[k, r].tolist(),
                expected="loads >= 0",
            )
        )

    # --- observer-series consistency ----------------------------------
    recomputed_max = trace.max(axis=2)  # (T, R)
    recomputed_empty = (trace == 0).sum(axis=2)
    for name, payload_key, recomputed in (
        ("series_max", "max_load", recomputed_max),
        ("series_empty", "empty_bins", recomputed_empty),
    ):
        payload = result.metrics[payload_key]
        series = np.asarray(payload.series[payload_key])
        if series.shape != recomputed.shape or not np.array_equal(
            np.asarray(payload.rounds), rounds
        ):
            violations.append(
                InvariantViolation(
                    name,
                    int(rounds[0]),
                    0,
                    observed=list(series.shape),
                    expected=list(recomputed.shape),
                    detail="observer series misaligned with the trace",
                )
            )
            continue
        bad = series != recomputed
        if bad.any():
            k, r = _first_bad(bad)
            violations.append(
                InvariantViolation(
                    name,
                    int(rounds[k]),
                    r,
                    observed=int(series[k, r]),
                    expected=int(recomputed[k, r]),
                    detail="tracker series disagrees with the recorded state",
                )
            )

    # --- window and legitimacy reconstruction -------------------------
    if spec.process != "faulty" and not spec.stop_when_legitimate:
        window_max = recomputed_max.max(axis=0)
        bad_max = np.asarray(result.max_load_seen) != window_max
        if bad_max.any():
            r = int(np.flatnonzero(bad_max)[0])
            violations.append(
                InvariantViolation(
                    "window_max",
                    int(rounds[-1]),
                    r,
                    observed=int(result.max_load_seen[r]),
                    expected=int(window_max[r]),
                    detail="engine window max != fold of the trace",
                )
            )
        window_min = recomputed_empty.min(axis=0)
        bad_min = np.asarray(result.min_empty_bins_seen) != window_min
        if bad_min.any():
            r = int(np.flatnonzero(bad_min)[0])
            violations.append(
                InvariantViolation(
                    "window_min_empty",
                    int(rounds[-1]),
                    r,
                    observed=int(result.min_empty_bins_seen[r]),
                    expected=int(window_min[r]),
                    detail="engine window min-empty != fold of the trace",
                )
            )
        threshold = legitimacy_threshold(spec.n_bins, spec.beta)
        legit = recomputed_max <= threshold  # (T, R)
        first_legit = np.full(spec.n_replicas, -1, dtype=np.int64)
        for k in range(legit.shape[0] - 1, -1, -1):
            first_legit = np.where(legit[k], rounds[k], first_legit)
        bad_fl = np.asarray(result.first_legitimate_round) != first_legit
        if bad_fl.any():
            r = int(np.flatnonzero(bad_fl)[0])
            violations.append(
                InvariantViolation(
                    "first_legitimate",
                    int(rounds[-1]),
                    r,
                    observed=int(result.first_legitimate_round[r]),
                    expected=int(first_legit[r]),
                    detail="engine hitting round != trace reconstruction",
                )
            )

    # --- legitimacy tracker monotonicity ------------------------------
    legit_payload = result.metrics.get("legitimacy")
    if legit_payload is not None:
        first = np.asarray(legit_payload.summaries["first_legitimate_round"])
        relapse = np.asarray(
            legit_payload.summaries["first_violation_after_hit"]
        )
        both = (first >= 0) & (relapse >= 0)
        bad = both & (relapse <= first)
        if bad.any():
            r = int(np.flatnonzero(bad)[0])
            violations.append(
                InvariantViolation(
                    "legitimacy_monotone",
                    int(relapse[r]),
                    r,
                    observed=int(relapse[r]),
                    expected=f"> {int(first[r])}",
                    detail="relapse recorded before the first hit",
                )
            )

    if violations and artifacts_dir is not None:
        check.emit_artifacts(artifacts_dir)
    return check


def fused_vs_segmented(
    spec_config: Dict[str, Any],
    seed: SeedLike = 0,
    n_threads: Optional[int] = None,
) -> List[InvariantViolation]:
    """Bit-equality of the fused and segmented native observation paths.

    Runs the same spec twice with the native kernel — once with in-kernel
    observation, once with ``REPRO_NATIVE_FUSED=0`` forcing the segmented
    reference loop — and demands identical final loads, windows, hitting
    rounds, and tracker summaries.
    """
    config = dict(spec_config)
    requested = config.get("metrics", ())
    if isinstance(requested, str):
        requested = tuple(part.strip() for part in requested.split(",") if part.strip())
    config["metrics"] = tuple(
        dict.fromkeys(tuple(requested) + ("max_load", "empty_bins", "legitimacy"))
    )
    spec = EnsembleSpec(**config)
    root = as_seed_sequence(seed)
    results = {}
    for fused in (True, False):
        # a fresh SeedSequence per run: spawn() mutates its parent
        # (n_children_spawned), so reusing one object would give the
        # second run different engine streams
        run_seed = np.random.SeedSequence(
            entropy=root.entropy, spawn_key=tuple(root.spawn_key)
        )
        with _fusion_env(fused):
            results[fused] = run_ensemble(
                spec, seed=run_seed, engine="batched", kernel="native", n_threads=n_threads
            )
    violations: List[InvariantViolation] = []

    def compare(name: str, a: np.ndarray, b: np.ndarray) -> None:
        a = np.asarray(a)
        b = np.asarray(b)
        if a.shape != b.shape or not np.array_equal(a, b):
            where = (
                np.flatnonzero((a != b).reshape(-1))[:1].tolist()
                if a.shape == b.shape
                else []
            )
            replica = int(where[0]) if where else -1
            violations.append(
                InvariantViolation(
                    f"fused_equal:{name}",
                    -1,
                    replica,
                    observed="fused != segmented",
                    expected="bit-identical",
                    detail=f"first differing flat index {where}",
                )
            )

    fused_result, seg_result = results[True], results[False]
    compare("final_loads", fused_result.final_loads, seg_result.final_loads)
    compare("max_load_seen", fused_result.max_load_seen, seg_result.max_load_seen)
    compare(
        "min_empty_bins_seen",
        fused_result.min_empty_bins_seen,
        seg_result.min_empty_bins_seen,
    )
    compare(
        "first_legitimate_round",
        fused_result.first_legitimate_round,
        seg_result.first_legitimate_round,
    )
    for metric_name, payload in fused_result.metrics.items():
        other = seg_result.metrics[metric_name]
        for key, vector in payload.summaries.items():
            compare(f"{metric_name}.{key}", vector, other.summaries[key])
    return violations


def replay_invariant_artifact(artifact: CounterexampleArtifact) -> ConformanceReport:
    """Re-run the traced check an invariant artifact records."""
    spec = dict(artifact.spec)
    spec["metrics"] = tuple(spec.get("metrics", ()))
    if isinstance(spec.get("start"), list):
        spec["start"] = np.asarray(spec["start"])
    engine = artifact.engine
    check = check_trace_invariants(
        spec,
        seed=artifact.seed_sequence(),
        engine=engine.get("engine", "batched"),
        kernel=engine.get("kernel", "numpy"),
        n_threads=engine.get("n_threads"),
        fused=engine.get("fused", True),
    )
    outcomes = [
        CheckOutcome(
            case=artifact.case,
            engine_label=engine.get("engine", "batched"),
            check=violation.invariant,
            horizon=violation.round_index,
            gof=GofResult(float("inf"), 0, 0.0, 1, 1, 1.0, 1.0),
            alpha=0.0,
            passed=False,
        )
        for violation in check.violations
    ]
    if not outcomes:
        outcomes = [
            CheckOutcome(
                case=artifact.case,
                engine_label=engine.get("engine", "batched"),
                check=artifact.check,
                horizon=-1,
                gof=GofResult(0.0, 0, 1.0, 1, 1, 0.0, 0.0),
                alpha=0.0,
                passed=True,
            )
        ]
    return ConformanceReport(
        level="replay",
        seed_entropy=artifact.seed_entropy,
        alpha_total=0.0,
        alpha_per_test=0.0,
        outcomes=outcomes,
    )
