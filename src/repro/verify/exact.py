"""Exact ground-truth distributions the conformance gates compare against.

Everything here is computed from the enumerated small-``n`` chains of
:mod:`repro.markov.small_n` — no sampling.  The helpers mirror the
*engine conventions* precisely, because that is what conformance means:

* state distributions are over **post-step** configurations after ``t``
  rounds (``mu_0 P^t``);
* window maxima fold post-step configurations only and start from an
  accumulator of ``0`` (the ``run_window`` convention for ``rounds >= 1``
  runs), except under fault injection where the engines seed the maximum
  from the *initial* configuration and fold every adversarially injected
  configuration as well;
* window empty-bin minima start at ``n`` and fold post-step
  configurations only — injected fault configurations are *not* folded,
  matching both ``BatchedFaultyProcess`` and the sequential faulty trial
  runner.

Faults follow the engine clock: at a faulty round ``s`` the adversary
matrix ``F`` applies *before* that round's transition, so the
distribution after ``t`` rounds is ``mu_0 · prod_{s=1..t} F^{[s faulty]} P``.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

from ..core.config import LoadConfiguration
from ..errors import ConfigurationError
from ..markov.small_n import Configuration

__all__ = [
    "state_index",
    "one_hot_distribution",
    "distribution_after",
    "pmf_over_statistic",
    "max_load_pmf",
    "empty_bins_pmf",
    "window_max_pmf",
    "window_min_empty_pmf",
    "adversary_matrix",
]


def state_index(states: Sequence[Configuration]) -> Dict[Configuration, int]:
    """Configuration -> row index lookup for an enumerated state list."""
    return {s: i for i, s in enumerate(states)}


def one_hot_distribution(
    states: Sequence[Configuration], config: Iterable[int]
) -> np.ndarray:
    """The point distribution concentrated on ``config``."""
    key = tuple(int(x) for x in config)
    index = state_index(states)
    if key not in index:
        raise ConfigurationError(
            f"configuration {key} is not a state of the enumerated chain"
        )
    mu = np.zeros(len(states))
    mu[index[key]] = 1.0
    return mu


def distribution_after(
    P: np.ndarray,
    mu0: np.ndarray,
    rounds: int,
    fault_rounds: Sequence[int] = (),
    F: np.ndarray | None = None,
) -> np.ndarray:
    """Exact state distribution after ``rounds`` engine rounds.

    ``fault_rounds`` lists the (1-based) rounds at which the adversary
    matrix ``F`` applies *before* the round's transition — the
    :meth:`BatchedFaultyProcess.run` clock.
    """
    if rounds < 0:
        raise ConfigurationError(f"rounds must be >= 0, got {rounds}")
    faulty = set(int(t) for t in fault_rounds)
    if faulty and F is None:
        raise ConfigurationError("fault_rounds given without an adversary matrix")
    mu = np.asarray(mu0, dtype=float).copy()
    for t in range(1, rounds + 1):
        if t in faulty:
            mu = mu @ F
        mu = mu @ P
    return mu


def pmf_over_statistic(
    states: Sequence[Configuration], mu: np.ndarray, stat
) -> Tuple[np.ndarray, np.ndarray]:
    """Push a state distribution through a configuration statistic.

    Returns ``(values, probs)`` with ``values`` sorted ascending.
    """
    acc: Dict[int, float] = {}
    for config, p in zip(states, np.asarray(mu, dtype=float)):
        if p <= 0.0:
            continue
        v = int(stat(config))
        acc[v] = acc.get(v, 0.0) + float(p)
    values = np.array(sorted(acc), dtype=np.int64)
    probs = np.array([acc[v] for v in values], dtype=float)
    return values, probs


def max_load_pmf(
    states: Sequence[Configuration], mu: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Distribution of the maximum load under state distribution ``mu``."""
    return pmf_over_statistic(states, mu, max)


def empty_bins_pmf(
    states: Sequence[Configuration], mu: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Distribution of the empty-bin count under state distribution ``mu``."""
    return pmf_over_statistic(states, mu, lambda c: sum(1 for x in c if x == 0))


def _window_pmf(
    P: np.ndarray,
    states: Sequence[Configuration],
    initial: Iterable[int],
    rounds: int,
    stat,
    fold,
    init_value: int,
    fault_rounds: Sequence[int],
    F: np.ndarray | None,
    fold_fault_configs: bool,
) -> Tuple[np.ndarray, np.ndarray]:
    """DP over ``(state, running statistic)`` pairs — shared window engine."""
    if rounds < 1:
        raise ConfigurationError(f"window statistics need rounds >= 1, got {rounds}")
    faulty = set(int(t) for t in fault_rounds)
    if faulty and F is None:
        raise ConfigurationError("fault_rounds given without an adversary matrix")
    index = state_index(states)
    key = tuple(int(x) for x in initial)
    if key not in index:
        raise ConfigurationError(
            f"initial configuration {key} is not a state of the chain"
        )
    stat_of = [int(stat(s)) for s in states]
    dist: Dict[Tuple[int, int], float] = {(index[key], init_value): 1.0}
    for t in range(1, rounds + 1):
        if t in faulty:
            injected: Dict[Tuple[int, int], float] = {}
            for (i, acc), p in dist.items():
                for j in np.flatnonzero(F[i] > 0):
                    j = int(j)
                    nxt = fold(acc, stat_of[j]) if fold_fault_configs else acc
                    k = (j, nxt)
                    injected[k] = injected.get(k, 0.0) + p * float(F[i, j])
            dist = injected
        stepped: Dict[Tuple[int, int], float] = {}
        for (i, acc), p in dist.items():
            for j in np.flatnonzero(P[i] > 0):
                j = int(j)
                k = (j, fold(acc, stat_of[j]))
                stepped[k] = stepped.get(k, 0.0) + p * float(P[i, j])
        dist = stepped
    acc_pmf: Dict[int, float] = {}
    for (_i, acc), p in dist.items():
        acc_pmf[acc] = acc_pmf.get(acc, 0.0) + p
    values = np.array(sorted(acc_pmf), dtype=np.int64)
    probs = np.array([acc_pmf[v] for v in values], dtype=float)
    return values, probs


def window_max_pmf(
    P: np.ndarray,
    states: Sequence[Configuration],
    initial: Iterable[int],
    rounds: int,
    fault_rounds: Sequence[int] = (),
    F: np.ndarray | None = None,
    seed_from_initial: bool | None = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact distribution of the engine's ``max_load_seen`` window statistic.

    Fault-free runs fold post-step configurations starting from ``0``
    (the ``run_window`` convention).  Faulty runs seed the accumulator
    from the initial configuration and additionally fold each injected
    configuration, matching the faulty engines on both counts.
    ``seed_from_initial`` overrides the seeding convention for runners
    that fold the configuration at call time (the sequential token
    process).
    """
    initial = tuple(int(x) for x in initial)
    faulty = bool(list(fault_rounds))
    if seed_from_initial is None:
        seed_from_initial = faulty
    init_value = max(initial) if seed_from_initial else 0
    return _window_pmf(
        P,
        states,
        initial,
        rounds,
        stat=max,
        fold=max,
        init_value=init_value,
        fault_rounds=fault_rounds,
        F=F,
        fold_fault_configs=faulty,
    )


def window_min_empty_pmf(
    P: np.ndarray,
    states: Sequence[Configuration],
    initial: Iterable[int],
    rounds: int,
    fault_rounds: Sequence[int] = (),
    F: np.ndarray | None = None,
    seed_from_initial: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact distribution of ``min_empty_bins_seen``.

    Starts at ``n`` and folds post-step configurations only — injected
    fault configurations are deliberately *not* folded, matching both
    faulty engines.  ``seed_from_initial`` starts the accumulator at the
    initial configuration's empty-bin count instead (the sequential
    token-process convention).
    """
    initial = tuple(int(x) for x in initial)
    n_bins = len(next(iter(states)))
    empties = sum(1 for x in initial if x == 0)
    init_value = empties if seed_from_initial else n_bins
    return _window_pmf(
        P,
        states,
        initial,
        rounds,
        stat=lambda c: sum(1 for x in c if x == 0),
        fold=min,
        init_value=init_value,
        fault_rounds=fault_rounds,
        F=F,
        fold_fault_configs=False,
    )


def adversary_matrix(
    name: str, states: Sequence[Configuration]
) -> np.ndarray:
    """Exact reassignment kernel of a named adversary over the state space.

    Supported: ``concentrate`` (all balls to a uniformly random bin),
    ``pyramid`` (deterministic geometric pile), ``shuffle`` (uniformly
    random permutation of bin labels).  ``target_heaviest`` is excluded:
    its batch implementation resolves argmax/argsort ties in
    implementation-defined order, so it has no clean exact kernel.
    """
    index = state_index(states)
    n = len(next(iter(states)))
    F = np.zeros((len(states), len(states)))
    for i, config in enumerate(states):
        total = sum(config)
        if name == "concentrate":
            for target in range(n):
                out = [0] * n
                out[target] = total
                F[i, index[tuple(out)]] += 1.0 / n
        elif name == "pyramid":
            out = tuple(
                int(x) for x in LoadConfiguration.pyramid(n, total).as_array()
            )
            F[i, index[out]] += 1.0
        elif name == "shuffle":
            # new[k] = old[perm[k]] over all n! uniform permutations
            weight = 1.0 / math.factorial(n)
            for perm in itertools.permutations(range(n)):
                out = tuple(config[p] for p in perm)
                F[i, index[out]] += weight
        else:
            raise ConfigurationError(
                f"no exact kernel for adversary {name!r}; "
                "supported: concentrate, pyramid, shuffle"
            )
    return F
