"""The conformance-case catalog: which engine coordinates face which chain.

A :class:`ConformanceCase` names one *engine coordinate* (engine, kernel,
thread count, observation fusion, worker count) driving one *process
specification* at small ``n``, together with the exact ground truth it is
checked against.  :func:`build_cases` enumerates the catalog at two
levels:

``smoke``
    The CI gate: every engine/kernel/fusion branch appears at least once,
    with ensemble sizes tuned so the whole tier finishes in well under a
    minute on one core.
``full``
    The pre-merge sweep: the full cross product — both engines, both
    kernels, ``n_threads in {1, 2}``, fused and segmented observation,
    every adversary with an exact kernel, Greedy[d], the token process,
    constrained and unconstrained walks on three topologies, and the
    Lemma 5 absorbing chain — at larger ``R`` and more horizons.

Native-kernel cases are declared unconditionally; the runner skips them
(reported, never silently) when no C kernel is loaded, which is exactly
what the ``REPRO_NATIVE=0`` CI leg exercises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Mapping, Optional, Tuple

from ..core.native import native_available
from ..errors import ConfigurationError

__all__ = [
    "ConformanceCase",
    "VERIFY_LEVELS",
    "build_cases",
    "case_by_name",
    "native_kernel_available",
]

VERIFY_LEVELS = ("smoke", "full")

#: Checks every ensemble-runner case runs per horizon.
DEFAULT_CHECKS = ("state", "max_load", "empty_bins", "window_max", "window_min_empty")


@dataclass(frozen=True)
class ConformanceCase:
    """One engine coordinate checked against one exact chain."""

    name: str
    spec_config: Mapping[str, Any]
    engine: str = "batched"
    kernel: str = "numpy"
    n_threads: Optional[int] = None
    fused: bool = True
    n_workers: int = 1
    runner: str = "ensemble"  # "ensemble" | "token" | "absorbing" | "scenario_noop"
    horizons: Tuple[int, ...] = (1, 2, 4)
    checks: Tuple[str, ...] = DEFAULT_CHECKS
    ground_truth: str = "exact_rbb_transition_matrix"
    notes: str = ""

    @property
    def needs_native(self) -> bool:
        return self.kernel == "native"

    @property
    def engine_label(self) -> str:
        if self.runner not in ("ensemble", "scenario_noop"):
            return self.runner
        bits = [self.engine]
        if self.engine == "batched":
            bits.append(self.kernel)
            if self.kernel == "native":
                bits.append(f"t{self.n_threads or 1}")
                bits.append("fused" if self.fused else "segmented")
        if self.n_workers > 1:
            bits.append(f"w{self.n_workers}")
        return "/".join(bits)


def native_kernel_available(kernel: str = "rbb") -> bool:
    """Whether the named C kernel actually loaded in this environment."""
    return native_available(kernel)


def _rbb_engine_matrix(R: int, smoke: bool) -> List[ConformanceCase]:
    """The plain-process engine cross product — the heart of the catalog."""
    # max_load/empty_bins observers ride along so the fused in-kernel
    # observation path (and its segmented fallback) is what actually runs
    spec = {
        "n_bins": 3,
        "n_replicas": R,
        "rounds": 4,
        "start": "all_in_one",
        "metrics": ("max_load", "empty_bins"),
    }
    horizons = (1, 4) if smoke else (1, 2, 4, 8)
    cases = [
        ConformanceCase(
            name="rbb-sequential",
            spec_config=spec,
            engine="sequential",
            horizons=(1, 4) if smoke else (1, 4),
        ),
        ConformanceCase(
            name="rbb-batched-numpy",
            spec_config=spec,
            engine="batched",
            kernel="numpy",
            horizons=horizons,
        ),
        ConformanceCase(
            name="rbb-batched-numpy-sharded",
            spec_config=spec,
            engine="batched",
            kernel="numpy",
            n_workers=2,
            horizons=(4,) if smoke else (1, 4),
            notes="distribution-tests the per-shard seed spawning",
        ),
    ]
    thread_counts = (1, 2)
    fusion_modes = (True, False)
    for n_threads in thread_counts:
        for fused in fusion_modes:
            if smoke and (n_threads, fused) not in ((1, True), (2, False)):
                continue
            cases.append(
                ConformanceCase(
                    name=f"rbb-batched-native-t{n_threads}-"
                    + ("fused" if fused else "segmented"),
                    spec_config=spec,
                    engine="batched",
                    kernel="native",
                    n_threads=n_threads,
                    fused=fused,
                    horizons=horizons,
                )
            )
    if not smoke:
        # a second system size so the gate sees more than one state space
        cases.append(
            ConformanceCase(
                name="rbb-n4-batched-native-t2-fused",
                spec_config={
                    "n_bins": 4,
                    "n_replicas": R,
                    "rounds": 6,
                    "start": "all_in_one",
                    "metrics": ("max_load", "empty_bins"),
                },
                engine="batched",
                kernel="native",
                n_threads=2,
                fused=True,
                horizons=(2, 6),
            )
        )
        cases.append(
            ConformanceCase(
                name="rbb-n4-sequential",
                spec_config={
                    "n_bins": 4,
                    "n_replicas": max(R // 4, 200),
                    "rounds": 4,
                    "start": "balanced",
                },
                engine="sequential",
                horizons=(2, 4),
            )
        )
    return cases


def _process_cases(R: int, smoke: bool) -> List[ConformanceCase]:
    """Greedy[d], adversaries, token process, walks, absorbing chain."""
    horizons = (3,) if smoke else (1, 3, 6)
    cases: List[ConformanceCase] = [
        ConformanceCase(
            name="greedy-d2-batched-numpy",
            spec_config={
                "n_bins": 3,
                "n_replicas": R,
                "rounds": 3,
                "start": "all_in_one",
                "process": "d_choices",
                "d": 2,
            },
            engine="batched",
            kernel="numpy",
            horizons=(1, 3) if smoke else (1, 2, 3),
            ground_truth="exact_greedy_d_transition_matrix",
        ),
        ConformanceCase(
            name="greedy-d2-sequential",
            spec_config={
                "n_bins": 3,
                "n_replicas": max(R // 2, 150),
                "rounds": 3,
                "start": "all_in_one",
                "process": "d_choices",
                "d": 2,
            },
            engine="sequential",
            horizons=(3,),
            ground_truth="exact_greedy_d_transition_matrix",
        ),
        ConformanceCase(
            name="token-fifo",
            spec_config={"n_bins": 3, "n_replicas": max(R // 2, 150), "rounds": 3},
            runner="token",
            horizons=(1, 3),
            ground_truth="exact_token_transition_matrix",
            notes="window stats seeded from the call-time configuration",
        ),
        ConformanceCase(
            name="absorbing-bin-load",
            spec_config={
                "n_bins": 4,
                "start_level": 3,
                "horizon": 24,
                "trials": max(R, 600),
            },
            runner="absorbing",
            horizons=(24,),
            checks=("absorption_time",),
            ground_truth="BinLoadChain.survival_probabilities",
        ),
    ]
    adversaries = ("concentrate",) if smoke else ("concentrate", "pyramid", "shuffle")
    for adversary in adversaries:
        cases.append(
            ConformanceCase(
                name=f"faulty-{adversary}-batched-numpy",
                spec_config={
                    "n_bins": 3,
                    "n_replicas": R,
                    "rounds": 4,
                    "start": "balanced",
                    "process": "faulty",
                    "adversary": adversary,
                    "fault_period": 2,
                },
                engine="batched",
                kernel="numpy",
                horizons=(4,) if smoke else (2, 4),
                ground_truth="exact_rbb + adversary_matrix",
            )
        )
    if not smoke:
        cases.append(
            ConformanceCase(
                name="faulty-concentrate-batched-native-t2",
                spec_config={
                    "n_bins": 3,
                    "n_replicas": R,
                    "rounds": 4,
                    "start": "balanced",
                    "process": "faulty",
                    "adversary": "concentrate",
                    "fault_period": 2,
                },
                engine="batched",
                kernel="native",
                n_threads=2,
                horizons=(2, 4),
                ground_truth="exact_rbb + adversary_matrix",
            )
        )
        cases.append(
            ConformanceCase(
                name="faulty-concentrate-sequential",
                spec_config={
                    "n_bins": 3,
                    "n_replicas": max(R // 4, 150),
                    "rounds": 4,
                    "start": "balanced",
                    "process": "faulty",
                    "adversary": "concentrate",
                    "fault_period": 2,
                },
                engine="sequential",
                horizons=(4,),
                ground_truth="exact_rbb + adversary_matrix",
            )
        )
    topologies = ("cycle:3",) if smoke else ("cycle:3", "complete:3", "star:3")
    for topology in topologies:
        for constrained in ((True,) if smoke else (True, False)):
            cases.append(
                ConformanceCase(
                    name=f"walks-{topology.replace(':', '')}-"
                    + ("constrained" if constrained else "free")
                    + "-batched",
                    spec_config={
                        "n_bins": 3,
                        "n_replicas": R,
                        "rounds": 3,
                        "start": "all_in_one",
                        "process": "graph_walks",
                        "topology": topology,
                        "constrained": constrained,
                    },
                    engine="batched",
                    kernel="numpy",
                    horizons=horizons,
                    ground_truth="exact_walk_transition_matrix",
                )
            )
    if not smoke:
        cases.append(
            ConformanceCase(
                name="walks-cycle3-constrained-native-t2",
                spec_config={
                    "n_bins": 3,
                    "n_replicas": R,
                    "rounds": 3,
                    "start": "all_in_one",
                    "process": "graph_walks",
                    "topology": "cycle:3",
                    "constrained": True,
                },
                engine="batched",
                kernel="native",
                n_threads=2,
                horizons=(1, 3),
                ground_truth="exact_walk_transition_matrix",
            )
        )
        cases.append(
            ConformanceCase(
                name="walks-cycle3-constrained-sequential",
                spec_config={
                    "n_bins": 3,
                    "n_replicas": max(R // 4, 150),
                    "rounds": 3,
                    "start": "all_in_one",
                    "process": "graph_walks",
                    "topology": "cycle:3",
                    "constrained": True,
                },
                engine="sequential",
                horizons=(3,),
                ground_truth="exact_walk_transition_matrix",
            )
        )
    return cases


def _scenario_cases(R: int, smoke: bool) -> List[ConformanceCase]:
    """Scenario-interpreter gates: exact no-op equality + a statistical case.

    The no-op cases are deterministic bit-equality checks, so they need
    far fewer replicas than the chi-square gates; the adversary case runs
    a real event schedule through the interpreter and faces the same
    ``exact_rbb + adversary_matrix`` ground truth as the faulty engine
    (scenario events share its fires-before-the-round clock).
    """
    noop_spec = {
        "n_bins": 3,
        "n_replicas": 64 if smoke else 256,
        "rounds": 4,
        "observe_every": 2,
        "start": "all_in_one",
        "metrics": ("max_load", "empty_bins", "trace"),
    }
    noop_kwargs = dict(
        spec_config=noop_spec,
        runner="scenario_noop",
        horizons=(4,) if smoke else (1, 4),
        checks=("noop_bit_equality",),
        ground_truth="bit-equal static run",
    )
    cases = [
        ConformanceCase(
            name="scenario-noop-sequential", engine="sequential", **noop_kwargs
        ),
        ConformanceCase(
            name="scenario-noop-batched-numpy",
            engine="batched",
            kernel="numpy",
            **noop_kwargs,
        ),
        ConformanceCase(
            name="scenario-noop-batched-native-t1-fused",
            engine="batched",
            kernel="native",
            n_threads=1,
            fused=True,
            **noop_kwargs,
        ),
        ConformanceCase(
            name="scenario-noop-batched-native-t2-segmented",
            engine="batched",
            kernel="native",
            n_threads=2,
            fused=False,
            **noop_kwargs,
        ),
    ]
    if not smoke:
        cases.append(
            ConformanceCase(
                name="scenario-noop-batched-numpy-sharded",
                engine="batched",
                kernel="numpy",
                n_workers=2,
                **noop_kwargs,
            )
        )
        cases.append(
            ConformanceCase(
                name="scenario-noop-walks-cycle3-batched",
                spec_config={
                    "n_bins": 3,
                    "n_replicas": 256,
                    "rounds": 3,
                    "start": "all_in_one",
                    "process": "graph_walks",
                    "topology": "cycle:3",
                    "constrained": True,
                    "metrics": ("max_load", "empty_bins"),
                },
                engine="batched",
                kernel="numpy",
                runner="scenario_noop",
                horizons=(3,),
                checks=("noop_bit_equality",),
                ground_truth="bit-equal static run",
            )
        )
    # same fault schedule as the faulty-concentrate cases (strikes at
    # rounds 2, 4, ...), but spelled as scenario events and executed by
    # the scenario interpreter instead of BatchedFaultyProcess
    scenario_json = (
        '{"events": [{"kind": "adversary", "round": 2, "every": 2, '
        '"adversary": "concentrate"}]}'
    )
    cases.append(
        ConformanceCase(
            name="scenario-adversary-batched-numpy",
            spec_config={
                "n_bins": 3,
                "n_replicas": R,
                "rounds": 4,
                "start": "balanced",
                "scenario": scenario_json,
                "metrics": ("max_load", "empty_bins"),
            },
            engine="batched",
            kernel="numpy",
            horizons=(4,) if smoke else (2, 4),
            ground_truth="exact_rbb + adversary_matrix",
        )
    )
    if not smoke:
        cases.append(
            ConformanceCase(
                name="scenario-adversary-sequential",
                spec_config={
                    "n_bins": 3,
                    "n_replicas": max(R // 4, 150),
                    "rounds": 4,
                    "start": "balanced",
                    "scenario": scenario_json,
                },
                engine="sequential",
                horizons=(4,),
                ground_truth="exact_rbb + adversary_matrix",
            )
        )
    return cases


def build_cases(level: str = "smoke") -> List[ConformanceCase]:
    """The catalog at one verification level."""
    if level not in VERIFY_LEVELS:
        raise ConfigurationError(
            f"unknown verify level {level!r}; expected one of {VERIFY_LEVELS}"
        )
    smoke = level == "smoke"
    R = 600 if smoke else 2000
    cases = (
        _rbb_engine_matrix(R, smoke)
        + _process_cases(R, smoke)
        + _scenario_cases(R, smoke)
    )
    names = [case.name for case in cases]
    if len(set(names)) != len(names):  # pragma: no cover - catalog bug guard
        raise ConfigurationError(f"duplicate case names in catalog: {names}")
    return cases


def case_by_name(name: str, level: str = "full") -> ConformanceCase:
    """Look one case up by name (replay path)."""
    for case in build_cases(level):
        if case.name == name:
            return case
    raise ConfigurationError(f"no conformance case named {name!r} at level {level!r}")
