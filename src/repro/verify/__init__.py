"""Exact-chain conformance and trace verification of every engine.

The safety net of ROADMAP item 5: at small ``n`` the full configuration
chain is exactly enumerable (:mod:`repro.markov.small_n`), so every
engine — sequential, batched numpy, both threaded C kernels, fused and
segmented observation, every adversary/baseline/walk with an exact
kernel — can be *confronted* with ground truth instead of merely
cross-checked against another simulator.

Three layers:

:mod:`repro.verify.conformance`
    Statistical gates: empirical distributions over ``R`` replicas vs
    exact chain powers, pooled chi-square at Bonferroni-safe thresholds
    (:mod:`repro.verify.stats`, :mod:`repro.verify.exact`,
    :mod:`repro.verify.cases`).
:mod:`repro.verify.trace`
    Exact gates: recorded ``(T, R, n)`` traces replayed through
    machine-checked invariants, plus fused-vs-segmented bit-equality.
:mod:`repro.verify.artifact`
    Replayable TLC-style counterexamples in ``.verify/`` — every
    failure is one ``repro verify --replay`` away from a local repro.
:mod:`repro.verify.scenario`
    Scenario-interpreter gates: exact bit-equality of no-op scenarios
    against static runs on every engine coordinate, event-trace ball
    accounting, and observation-schedule conformance.

CLI: ``repro verify [--level smoke|full]`` (the smoke tier is a CI
gate); pytest smoke coverage lives in ``tests/test_verify_*.py``.
"""

from .artifact import (
    CounterexampleArtifact,
    DEFAULT_ARTIFACT_DIR,
    list_artifacts,
    load_artifact,
    write_artifact,
)
from .cases import ConformanceCase, VERIFY_LEVELS, build_cases, case_by_name
from .conformance import (
    CheckOutcome,
    ConformanceReport,
    replay_artifact,
    run_case,
    run_conformance,
)
from .exact import (
    adversary_matrix,
    distribution_after,
    empty_bins_pmf,
    max_load_pmf,
    window_max_pmf,
    window_min_empty_pmf,
)
from .report import ground_truth_rows, render_verification_doc
from .scenario import (
    NOOP_SCENARIO,
    check_observation_schedule,
    check_scenario_event_invariants,
    noop_differences,
    run_noop_equality,
)
from .stats import GofResult, bonferroni_alpha, pooled_chi_square, total_variation
from .trace import (
    InvariantViolation,
    TraceCheckResult,
    check_trace_invariants,
    fused_vs_segmented,
)

__all__ = [
    "CounterexampleArtifact",
    "DEFAULT_ARTIFACT_DIR",
    "list_artifacts",
    "load_artifact",
    "write_artifact",
    "ConformanceCase",
    "VERIFY_LEVELS",
    "build_cases",
    "case_by_name",
    "CheckOutcome",
    "ConformanceReport",
    "replay_artifact",
    "run_case",
    "run_conformance",
    "adversary_matrix",
    "distribution_after",
    "empty_bins_pmf",
    "max_load_pmf",
    "window_max_pmf",
    "window_min_empty_pmf",
    "ground_truth_rows",
    "render_verification_doc",
    "NOOP_SCENARIO",
    "check_observation_schedule",
    "check_scenario_event_invariants",
    "noop_differences",
    "run_noop_equality",
    "GofResult",
    "bonferroni_alpha",
    "pooled_chi_square",
    "total_variation",
    "InvariantViolation",
    "TraceCheckResult",
    "check_trace_invariants",
    "fused_vs_segmented",
]
