"""Replayable counterexample artifacts — the harness's TLC error traces.

When a conformance gate or a trace invariant fails, the harness does not
just raise: it writes a self-contained JSON artifact to ``.verify/`` that
pins down *everything* needed to reproduce the failure —

* the fully resolved :class:`~repro.parallel.ensemble.EnsembleSpec`
  field assignment (the same canonical encoding the sweep store hashes),
* the engine coordinates (engine, kernel, thread count, fusion, workers),
* the root seed entropy, so the exact random streams regenerate,
* the violation itself: for statistical failures the observed-vs-exact
  table; for invariant failures a minimized round-by-round state diff of
  the offending replica, truncated at the first violating round.

``repro verify --replay <artifact.json>`` re-runs exactly that check —
one command from a CI log to a local reproduction.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "CounterexampleArtifact",
    "DEFAULT_ARTIFACT_DIR",
    "write_artifact",
    "load_artifact",
    "list_artifacts",
]

#: Default directory conformance/trace failures are written to.
DEFAULT_ARTIFACT_DIR = ".verify"

_FORMAT_VERSION = 1


def _jsonable(value: Any) -> Any:
    """Recursively coerce numpy scalars/arrays into JSON-encodable values."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


@dataclass
class CounterexampleArtifact:
    """One reproducible failure of a conformance gate or trace invariant.

    Attributes
    ----------
    kind:
        ``"conformance"`` (a statistical gate fired) or ``"invariant"``
        (a machine-checked trace invariant was violated).
    case:
        The case name from the catalog (or a free-form description).
    check:
        Which gate/invariant failed (e.g. ``"state@t=4"``,
        ``"ball_conservation"``).
    seed_entropy, seed_spawn_key:
        Root seed entropy and spawn key of the failing run's
        :class:`~numpy.random.SeedSequence`; replay reconstructs the
        sequence from both, so derived case seeds round-trip exactly.
    spec:
        Fully resolved engine-spec field assignment (JSON scalars only).
    engine:
        Engine coordinates: engine/kernel/n_threads/fused/n_workers plus
        any runner-specific knobs.
    violation:
        Check-specific evidence: observed vs expected tables for
        statistical gates; ``{round, replica, trace}`` state diffs for
        invariants.
    """

    kind: str
    case: str
    check: str
    seed_entropy: int
    spec: Dict[str, Any]
    engine: Dict[str, Any]
    violation: Dict[str, Any] = field(default_factory=dict)
    seed_spawn_key: List[int] = field(default_factory=list)
    format_version: int = _FORMAT_VERSION

    def seed_sequence(self) -> np.random.SeedSequence:
        """The exact seed sequence of the failing run."""
        return np.random.SeedSequence(
            entropy=self.seed_entropy, spawn_key=tuple(self.seed_spawn_key)
        )

    def to_json(self) -> str:
        payload = _jsonable(asdict(self))
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CounterexampleArtifact":
        version = data.get("format_version", 0)
        if version != _FORMAT_VERSION:
            raise ConfigurationError(
                f"unsupported artifact format_version {version!r} "
                f"(this build reads {_FORMAT_VERSION})"
            )
        return cls(
            kind=data["kind"],
            case=data["case"],
            check=data["check"],
            seed_entropy=int(data["seed_entropy"]),
            spec=dict(data["spec"]),
            engine=dict(data["engine"]),
            violation=dict(data.get("violation", {})),
            seed_spawn_key=[int(k) for k in data.get("seed_spawn_key", [])],
        )

    def replay_command(self, path: str) -> str:
        """The one command that reproduces this failure."""
        return f"repro verify --replay {path}"


def _slug(text: str) -> str:
    return "".join(c if c.isalnum() or c in "-_" else "-" for c in text)[:80]


def write_artifact(
    artifact: CounterexampleArtifact,
    directory: Optional[str] = None,
) -> str:
    """Write one artifact; returns its path.

    File names are deterministic in (case, check) and disambiguated with
    a counter, so repeated runs never clobber earlier evidence.
    """
    directory = directory or DEFAULT_ARTIFACT_DIR
    os.makedirs(directory, exist_ok=True)
    base = f"{_slug(artifact.case)}__{_slug(artifact.check)}"
    path = os.path.join(directory, f"{base}.json")
    counter = 1
    while os.path.exists(path):
        path = os.path.join(directory, f"{base}.{counter}.json")
        counter += 1
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(artifact.to_json())
        handle.write("\n")
    return path


def load_artifact(path: str) -> CounterexampleArtifact:
    """Read an artifact back for replay."""
    if not os.path.exists(path):
        raise ConfigurationError(f"artifact not found: {path}")
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    return CounterexampleArtifact.from_dict(data)


def list_artifacts(directory: Optional[str] = None) -> List[str]:
    """All artifact paths under ``directory``, sorted."""
    directory = directory or DEFAULT_ARTIFACT_DIR
    if not os.path.isdir(directory):
        return []
    return sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if name.endswith(".json")
    )
