"""Drive the case catalog and gate every engine against the exact chains.

One :func:`run_conformance` call expands a level's catalog, runs each
case at each horizon under a deterministic seed tree, and pushes five
empirical distributions per run through the pooled chi-square gate:

* the full final-configuration distribution against ``mu_0 P^t``,
* its max-load and empty-bin functionals,
* the ``max_load_seen`` / ``min_empty_bins_seen`` window statistics
  against the exact ``(state, running statistic)`` DP.

Per-test thresholds are Bonferroni-corrected from one family-wise
``alpha_total``, counted over the *whole* invocation before anything
runs, so adding cases never silently weakens the gate.  Failures write
replayable counterexample artifacts (see :mod:`repro.verify.artifact`).

Seeding discipline (the contract the seeding tests pin down): the root
seed fans out through :func:`repro.parallel.seeding.trial_seed` —
``case_seed = trial_seed(root, case_index)``, then
``run_seed = trial_seed(case_seed, horizon_index)`` — and the engines
spawn their per-replica/per-shard streams from ``run_seed`` exactly as
documented in :mod:`repro.parallel.ensemble`.  For the sequential engine
those per-trial streams depend only on the trial index, never on the
worker count, so ``n_workers in {1, 2}`` is bit-identical; batched
sharded runs re-spawn per shard and are therefore checked
distributionally (the ``*-sharded`` cases).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .artifact import CounterexampleArtifact, write_artifact
from .cases import ConformanceCase, build_cases, native_kernel_available
from .exact import (
    adversary_matrix,
    distribution_after,
    empty_bins_pmf,
    max_load_pmf,
    one_hot_distribution,
    state_index,
    window_max_pmf,
    window_min_empty_pmf,
)
from .stats import GofResult, bonferroni_alpha, pooled_chi_square
from ..core.config import LoadConfiguration
from ..core.token_process import TokenRepeatedBallsIntoBins
from ..errors import ConfigurationError, ReproError
from ..graphs.generators import resolve_topology
from ..markov.absorbing import BinLoadChain
from ..markov.small_n import (
    exact_greedy_d_transition_matrix,
    exact_rbb_transition_matrix,
    exact_walk_transition_matrix,
)
from ..parallel.ensemble import EnsembleSpec, run_ensemble
from ..parallel.seeding import trial_seed
from ..rng import as_seed_sequence
from ..types import SeedLike

__all__ = [
    "CheckOutcome",
    "ConformanceReport",
    "run_conformance",
    "run_case",
    "replay_artifact",
]

#: Family-wise false-alarm budget of one full invocation.
DEFAULT_ALPHA_TOTAL = 1e-3


@dataclass(frozen=True)
class CheckOutcome:
    """One statistical gate decision."""

    case: str
    engine_label: str
    check: str
    horizon: int
    gof: GofResult
    alpha: float
    passed: bool
    artifact_path: Optional[str] = None


@dataclass
class ConformanceReport:
    """Everything one :func:`run_conformance` invocation decided."""

    level: str
    seed_entropy: int
    alpha_total: float
    alpha_per_test: float
    outcomes: List[CheckOutcome] = field(default_factory=list)
    skipped: List[Tuple[str, str]] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def n_checks(self) -> int:
        return len(self.outcomes)

    @property
    def failures(self) -> List[CheckOutcome]:
        return [o for o in self.outcomes if not o.passed]

    @property
    def passed(self) -> bool:
        return not self.failures

    def render(self) -> str:
        """Human-readable summary table."""
        lines = [
            f"verify level={self.level} seed={self.seed_entropy} "
            f"checks={self.n_checks} alpha_total={self.alpha_total:g} "
            f"(per-test {self.alpha_per_test:.2e}) "
            f"elapsed={self.elapsed_seconds:.1f}s",
            "",
            f"{'case':<38} {'engine':<28} {'check':<18} {'t':>3} "
            f"{'p-value':>10} {'TV':>7}  result",
        ]
        for o in self.outcomes:
            verdict = "ok" if o.passed else "FAIL"
            if o.artifact_path:
                verdict += f"  -> {o.artifact_path}"
            lines.append(
                f"{o.case:<38} {o.engine_label:<28} {o.check:<18} "
                f"{o.horizon:>3} {o.gof.p_value:>10.2e} "
                f"{o.gof.tv_distance:>7.4f}  {verdict}"
            )
        for name, reason in self.skipped:
            lines.append(f"{name:<38} skipped: {reason}")
        lines.append("")
        status = "PASS" if self.passed else f"FAIL ({len(self.failures)} checks)"
        lines.append(f"verify {self.level}: {status}")
        return "\n".join(lines)


@contextmanager
def _fusion_env(fused: bool):
    """Force the segmented native loop for ``fused=False`` cases."""
    if fused:
        yield
        return
    previous = os.environ.get("REPRO_NATIVE_FUSED")
    os.environ["REPRO_NATIVE_FUSED"] = "0"
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_NATIVE_FUSED", None)
        else:
            os.environ["REPRO_NATIVE_FUSED"] = previous


def _initial_config(spec: EnsembleSpec) -> Tuple[int, ...]:
    """The (shared) starting configuration a conformance spec describes."""
    start = spec.start
    if isinstance(start, str):
        if start == "random_uniform":
            raise ConfigurationError(
                "random starts have no single exact initial distribution; "
                "use a deterministic start family for conformance cases"
            )
        maker = getattr(LoadConfiguration, start)
        return tuple(
            int(x) for x in maker(spec.n_bins, n_balls=spec.n_balls).as_array()
        )
    if isinstance(start, LoadConfiguration):
        return tuple(int(x) for x in start.as_array())
    arr = np.asarray(start)
    if arr.ndim != 1:
        raise ConfigurationError(
            "per-replica start matrices are not supported by the verifier"
        )
    return tuple(int(x) for x in arr)


@dataclass(frozen=True)
class _GroundTruth:
    P: np.ndarray
    states: list
    initial: Tuple[int, ...]
    fault_rounds: Tuple[int, ...] = ()
    F: Optional[np.ndarray] = None


def _ground_truth(spec: EnsembleSpec, horizon: int) -> _GroundTruth:
    """Build the exact chain a spec's process family is checked against."""
    initial = _initial_config(spec)
    m = sum(initial)
    if spec.process == "d_choices":
        P, states = exact_greedy_d_transition_matrix(spec.n_bins, spec.d, m)
    elif spec.process == "graph_walks":
        P, states = exact_walk_transition_matrix(
            resolve_topology(spec.topology), m, constrained=spec.constrained
        )
    else:
        P, states = exact_rbb_transition_matrix(spec.n_bins, m)
    if spec.process == "faulty":
        schedule = spec.fault_schedule()
        fault_rounds = tuple(
            t for t in range(1, horizon + 1) if schedule.is_faulty(t)
        )
        F = adversary_matrix(spec.adversary, states)
        return _GroundTruth(P, states, initial, fault_rounds, F)
    if spec.scenario is not None:
        # scenario events fire *before* their round executes — the same
        # clock as the faulty engine, so the fault-round machinery of the
        # exact layer carries over verbatim for adversary-only scenarios
        expanded = spec.resolved_scenario().expand_events(horizon)
        names = {event.adversary for _, event in expanded}
        if any(event.kind != "adversary" for _, event in expanded) or len(names) != 1:
            raise ConfigurationError(
                "conformance ground truth covers scenarios made of a single "
                "adversary's events only; gate other event kinds through "
                "repro.verify.scenario invariants instead"
            )
        fault_rounds = tuple(when for when, _ in expanded)
        F = adversary_matrix(names.pop(), states)
        return _GroundTruth(P, states, initial, fault_rounds, F)
    return _GroundTruth(P, states, initial)


def _config_counts(
    final_loads: np.ndarray, states: list
) -> Tuple[np.ndarray, float]:
    """Count final configurations; returns ``(counts, off_support_count)``."""
    index = state_index(states)
    counts = np.zeros(len(states))
    off_support = 0
    for row in np.asarray(final_loads, dtype=np.int64):
        key = tuple(int(x) for x in row)
        i = index.get(key)
        if i is None:
            off_support += 1
        else:
            counts[i] += 1
    return counts, float(off_support)


def _value_counts(
    observed: np.ndarray, values: np.ndarray, probs: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Align observed integer samples with an exact pmf's support.

    Observed values outside the exact support get zero-probability cells,
    which :func:`pooled_chi_square` treats as impossible events.
    """
    observed = np.asarray(observed, dtype=np.int64)
    support = [int(v) for v in values]
    extra = sorted(set(observed.tolist()) - set(support))
    all_values = support + extra
    prob_of = {int(v): float(p) for v, p in zip(values, probs)}
    counts = np.array(
        [float(np.count_nonzero(observed == v)) for v in all_values]
    )
    exact = np.array([prob_of.get(v, 0.0) for v in all_values])
    return counts, exact


# ----------------------------------------------------------------------
# Runners: empirical samples per (case, horizon)
# ----------------------------------------------------------------------
@dataclass
class _RunSamples:
    """Empirical material one runner hands to the gates."""

    final_loads: np.ndarray
    window_max: np.ndarray
    window_min_empty: np.ndarray
    #: Tri-state window-seeding convention: ``True`` folds the call-time
    #: configuration (token runner), ``False`` never does (the scenario
    #: interpreter, which starts its folds from scratch even when events
    #: fire), ``None`` defers to the exact layer's default (seed from the
    #: initial configuration exactly when fault rounds exist).
    seed_window_from_initial: Optional[bool] = None
    extra: Dict[str, np.ndarray] = field(default_factory=dict)


def _run_ensemble_case(
    case: ConformanceCase, spec: EnsembleSpec, seed
) -> _RunSamples:
    with _fusion_env(case.fused):
        result = run_ensemble(
            spec,
            seed=seed,
            engine=case.engine,
            n_workers=case.n_workers,
            kernel=case.kernel,
            n_threads=case.n_threads,
        )
    samples = _RunSamples(
        final_loads=result.final_loads,
        window_max=result.max_load_seen,
        window_min_empty=result.min_empty_bins_seen,
        seed_window_from_initial=False if spec.scenario is not None else None,
    )
    # free cross-check: the max_load/empty_bins tracker summaries must
    # agree with the engine's own window vectors (post-step folds only,
    # so the faulty process and scenario runs — which also fold injected
    # states — are exempt by design)
    if spec.process != "faulty" and spec.scenario is None:
        payload = result.metrics.get("max_load")
        if payload is not None:
            samples.extra["tracker_window_max"] = payload.summaries["window_max"]
        payload = result.metrics.get("empty_bins")
        if payload is not None:
            samples.extra["tracker_window_min"] = payload.summaries["window_min"]
    return samples


def _run_token_case(
    case: ConformanceCase, spec_config: dict, horizon: int, seed
) -> _RunSamples:
    R = int(spec_config["n_replicas"])
    n = int(spec_config["n_bins"])
    finals = np.zeros((R, n), dtype=np.int64)
    wmax = np.zeros(R, dtype=np.int64)
    wmin = np.zeros(R, dtype=np.int64)
    for i in range(R):
        process = TokenRepeatedBallsIntoBins(
            n, n_balls=spec_config.get("n_balls"), seed=trial_seed(seed, i)
        )
        result = process.run(horizon)
        finals[i] = process.loads
        wmax[i] = result.max_load_seen
        wmin[i] = result.min_empty_seen
    return _RunSamples(
        final_loads=finals,
        window_max=wmax,
        window_min_empty=wmin,
        seed_window_from_initial=True,
    )


def _check_absorbing_case(
    case: ConformanceCase, seed, alpha: float
) -> CheckOutcome:
    """Gate the Lemma 5 absorbing-chain sampler against its exact DP."""
    config = dict(case.spec_config)
    chain = BinLoadChain(int(config["n_bins"]))
    start = int(config["start_level"])
    horizon = int(config["horizon"])
    trials = int(config["trials"])
    taus = chain.simulate_absorption_times(
        start, trials, max_rounds=horizon, seed=np.random.default_rng(seed)
    )
    survival = chain.survival_probabilities(start, horizon)
    # pmf over absorption at t = 1..horizon, plus one censored cell
    pmf = survival[:-1] - survival[1:]
    censored_prob = float(survival[-1])
    observed = np.array(
        [float(np.count_nonzero(taus == t)) for t in range(1, horizon + 1)]
        + [float(np.count_nonzero(taus < 0))]
    )
    exact = np.concatenate([pmf, [censored_prob]])
    gof = pooled_chi_square(observed, exact)
    return CheckOutcome(
        case=case.name,
        engine_label=case.engine_label,
        check="absorption_time",
        horizon=horizon,
        gof=gof,
        alpha=alpha,
        passed=gof.passed(alpha),
    )


def _check_scenario_noop_case(
    case: ConformanceCase, horizon: int, seed, alpha: float
) -> CheckOutcome:
    """Gate the no-op-scenario bit-equality contract at one coordinate.

    The check is exact, not statistical: a pristine pass is reported as
    ``p = 1`` and any difference as pure impossible mass, so it composes
    with the Bonferroni accounting without consuming real alpha.
    """
    from . import scenario as scenario_mod

    diffs = scenario_mod.run_noop_equality(
        dict(case.spec_config),
        horizon,
        seed,
        engine=case.engine,
        kernel=case.kernel,
        n_threads=case.n_threads,
        fused=case.fused,
        n_workers=case.n_workers,
    )
    n = int(dict(case.spec_config).get("n_replicas", 0))
    gof = (
        GofResult(0.0, 0, 1.0, n, 1, 0.0, 0.0)
        if not diffs
        else GofResult(float("inf"), 0, 0.0, n, 1, 1.0, 1.0)
    )
    return CheckOutcome(
        case=case.name,
        engine_label=case.engine_label,
        check="noop_bit_equality",
        horizon=horizon,
        gof=gof,
        alpha=alpha,
        passed=not diffs,
    )


# ----------------------------------------------------------------------
def _gates_for_run(
    case: ConformanceCase,
    truth: _GroundTruth,
    samples: _RunSamples,
    horizon: int,
    alpha: float,
) -> List[CheckOutcome]:
    mu0 = one_hot_distribution(truth.states, truth.initial)
    mu_t = distribution_after(
        truth.P, mu0, horizon, fault_rounds=truth.fault_rounds, F=truth.F
    )
    outcomes: List[CheckOutcome] = []

    def gate(check: str, gof: GofResult) -> None:
        outcomes.append(
            CheckOutcome(
                case=case.name,
                engine_label=case.engine_label,
                check=check,
                horizon=horizon,
                gof=gof,
                alpha=alpha,
                passed=gof.passed(alpha),
            )
        )

    if "state" in case.checks:
        counts, off_support = _config_counts(samples.final_loads, truth.states)
        n_total = counts.sum() + off_support
        if off_support:
            # a configuration outside the chain's state space means ball
            # conservation itself broke — report as pure impossible mass
            gate(
                "state",
                GofResult(
                    statistic=float("inf"),
                    df=0,
                    p_value=0.0,
                    n_samples=int(n_total),
                    n_cells=len(truth.states),
                    tv_distance=1.0,
                    impossible_mass=off_support / n_total,
                ),
            )
        else:
            gate("state", pooled_chi_square(counts, mu_t / mu_t.sum()))
    if "max_load" in case.checks:
        values, probs = max_load_pmf(truth.states, mu_t)
        finals_max = np.asarray(samples.final_loads).max(axis=1)
        gate("max_load", pooled_chi_square(*_value_counts(finals_max, values, probs)))
    if "empty_bins" in case.checks:
        values, probs = empty_bins_pmf(truth.states, mu_t)
        finals_empty = (np.asarray(samples.final_loads) == 0).sum(axis=1)
        gate(
            "empty_bins",
            pooled_chi_square(*_value_counts(finals_empty, values, probs)),
        )
    if "window_max" in case.checks:
        values, probs = window_max_pmf(
            truth.P,
            truth.states,
            truth.initial,
            horizon,
            fault_rounds=truth.fault_rounds,
            F=truth.F,
            seed_from_initial=samples.seed_window_from_initial,
        )
        gate(
            "window_max",
            pooled_chi_square(*_value_counts(samples.window_max, values, probs)),
        )
        tracker = samples.extra.get("tracker_window_max")
        if tracker is not None and not np.array_equal(
            np.asarray(tracker), np.asarray(samples.window_max)
        ):
            gate(
                "tracker_window_max",
                GofResult(float("inf"), 0, 0.0, len(tracker), 1, 1.0, 1.0),
            )
    if "window_min_empty" in case.checks:
        values, probs = window_min_empty_pmf(
            truth.P,
            truth.states,
            truth.initial,
            horizon,
            fault_rounds=truth.fault_rounds,
            F=truth.F,
            seed_from_initial=bool(samples.seed_window_from_initial),
        )
        gate(
            "window_min_empty",
            pooled_chi_square(
                *_value_counts(samples.window_min_empty, values, probs)
            ),
        )
        tracker = samples.extra.get("tracker_window_min")
        if tracker is not None and not np.array_equal(
            np.asarray(tracker), np.asarray(samples.window_min_empty)
        ):
            gate(
                "tracker_window_min",
                GofResult(float("inf"), 0, 0.0, len(tracker), 1, 1.0, 1.0),
            )
    return outcomes


def _count_checks(case: ConformanceCase) -> int:
    if case.runner == "absorbing":
        return len(case.horizons)
    return len(case.horizons) * len(case.checks)


def run_case(
    case: ConformanceCase,
    seed,
    alpha: float,
    artifacts_dir: Optional[str] = None,
) -> List[CheckOutcome]:
    """Run one case at every horizon; returns its gate outcomes.

    ``seed`` is the case-level :class:`~numpy.random.SeedSequence`; each
    horizon derives its run seed via ``trial_seed(seed, horizon_index)``.
    """
    case_seed = as_seed_sequence(seed)
    outcomes: List[CheckOutcome] = []
    for h_index, horizon in enumerate(case.horizons):
        run_seed = trial_seed(case_seed, h_index)
        if case.runner == "absorbing":
            outcomes.append(_check_absorbing_case(case, run_seed, alpha))
            continue
        if case.runner == "scenario_noop":
            outcomes.append(
                _check_scenario_noop_case(case, horizon, run_seed, alpha)
            )
            continue
        if case.runner == "token":
            spec_config = dict(case.spec_config)
            spec = EnsembleSpec(**{**spec_config, "rounds": horizon})
            samples = _run_token_case(case, spec_config, horizon, run_seed)
        else:
            spec = EnsembleSpec(**{**dict(case.spec_config), "rounds": horizon})
            samples = _run_ensemble_case(case, spec, run_seed)
        truth = _ground_truth(spec, horizon)
        outcomes.extend(_gates_for_run(case, truth, samples, horizon, alpha))
    if artifacts_dir is not None:
        outcomes = [
            _attach_artifact(case, outcome, case_seed, artifacts_dir)
            if not outcome.passed
            else outcome
            for outcome in outcomes
        ]
    return outcomes


def _attach_artifact(
    case: ConformanceCase,
    outcome: CheckOutcome,
    case_seed,
    artifacts_dir: str,
) -> CheckOutcome:
    seed_seq = as_seed_sequence(case_seed)
    artifact = CounterexampleArtifact(
        kind="conformance",
        case=case.name,
        check=f"{outcome.check}@t={outcome.horizon}",
        seed_entropy=int(seed_seq.entropy),
        seed_spawn_key=[int(k) for k in seed_seq.spawn_key],
        spec=dict(case.spec_config),
        engine={
            "engine": case.engine,
            "kernel": case.kernel,
            "n_threads": case.n_threads,
            "fused": case.fused,
            "n_workers": case.n_workers,
            "runner": case.runner,
        },
        violation={
            "statistic": outcome.gof.statistic,
            "df": outcome.gof.df,
            "p_value": outcome.gof.p_value,
            "tv_distance": outcome.gof.tv_distance,
            "impossible_mass": outcome.gof.impossible_mass,
            "alpha": outcome.alpha,
            "n_samples": outcome.gof.n_samples,
        },
    )
    path = write_artifact(artifact, artifacts_dir)
    return CheckOutcome(
        case=outcome.case,
        engine_label=outcome.engine_label,
        check=outcome.check,
        horizon=outcome.horizon,
        gof=outcome.gof,
        alpha=outcome.alpha,
        passed=outcome.passed,
        artifact_path=path,
    )


def run_conformance(
    level: str = "smoke",
    seed: SeedLike = 0,
    only: Optional[str] = None,
    artifacts_dir: Optional[str] = None,
    alpha_total: float = DEFAULT_ALPHA_TOTAL,
    cases: Optional[Sequence[ConformanceCase]] = None,
) -> ConformanceReport:
    """Run the conformance catalog at one level.

    ``only`` filters cases by substring (after counting checks for the
    Bonferroni correction, so a filtered run keeps the full-run
    thresholds).  ``cases`` overrides the catalog entirely (tests use
    this to gate a deliberately broken engine).
    """
    start_time = time.monotonic()
    root = as_seed_sequence(seed)
    catalog = list(cases) if cases is not None else build_cases(level)
    n_checks = sum(_count_checks(case) for case in catalog)
    alpha = bonferroni_alpha(alpha_total, max(n_checks, 1))
    report = ConformanceReport(
        level=level,
        seed_entropy=int(root.entropy),
        alpha_total=alpha_total,
        alpha_per_test=alpha,
    )
    native_ok = {
        "rbb": native_kernel_available("rbb"),
        "walks": native_kernel_available("walks"),
    }
    for case_index, case in enumerate(catalog):
        if only is not None and only not in case.name:
            continue
        if case.needs_native:
            which = (
                "walks"
                if dict(case.spec_config).get("process") == "graph_walks"
                else "rbb"
            )
            if not native_ok[which]:
                report.skipped.append(
                    (case.name, f"native {which} kernel unavailable")
                )
                continue
        case_seed = trial_seed(root, case_index)
        report.outcomes.extend(
            run_case(case, case_seed, alpha, artifacts_dir=artifacts_dir)
        )
    report.elapsed_seconds = time.monotonic() - start_time
    return report


def replay_artifact(path: str) -> ConformanceReport:
    """Re-run exactly the failing check recorded in an artifact."""
    from .artifact import load_artifact
    from .cases import case_by_name
    from . import trace as trace_mod

    artifact = load_artifact(path)
    if artifact.kind == "invariant":
        return trace_mod.replay_invariant_artifact(artifact)
    try:
        case = case_by_name(artifact.case, level="full")
    except ReproError:
        case = case_by_name(artifact.case, level="smoke")
    outcomes = run_case(
        case,
        artifact.seed_sequence(),
        alpha=float(artifact.violation.get("alpha", 1e-6)),
    )
    report = ConformanceReport(
        level="replay",
        seed_entropy=artifact.seed_entropy,
        alpha_total=float(artifact.violation.get("alpha", 1e-6)),
        alpha_per_test=float(artifact.violation.get("alpha", 1e-6)),
        outcomes=outcomes,
    )
    return report
