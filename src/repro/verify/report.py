"""Render the verification catalog: the ground-truth matrix for the docs.

The generated ``docs/VERIFICATION.md`` (see
``scripts/generate_verification_matrix.py``) is produced from the same
case catalog the harness runs, so the documented coverage can never
drift from the enforced coverage — the CI staleness check fails the
build if this module's output and the committed file disagree.
"""

from __future__ import annotations

from typing import Dict, List

from .cases import VERIFY_LEVELS, build_cases

__all__ = ["ground_truth_rows", "render_verification_doc"]


def ground_truth_rows(level: str) -> List[Dict[str, str]]:
    """One row per catalog case: which coordinate faces which exact chain."""
    rows = []
    for case in build_cases(level):
        config = dict(case.spec_config)
        process = config.get("process", "rbb")
        if case.runner == "token":
            process = "token"
        elif case.runner == "absorbing":
            process = "bin_load_chain"
        elif case.runner == "scenario_noop":
            process = f"{process}+noop-scenario"
        elif config.get("scenario") is not None:
            process = f"{process}+scenario"
        size = (
            f"n={config.get('n_bins')}"
            if case.runner != "absorbing"
            else f"n={config.get('n_bins')}, k0={config.get('start_level')}"
        )
        replicas = config.get("n_replicas", config.get("trials", "-"))
        rows.append(
            {
                "case": case.name,
                "process": process,
                "engine": case.engine_label,
                "size": size,
                "replicas": str(replicas),
                "horizons": ", ".join(str(h) for h in case.horizons),
                "ground_truth": case.ground_truth,
                "checks": ", ".join(case.checks),
            }
        )
    return rows


def _markdown_table(rows: List[Dict[str, str]]) -> str:
    headers = [
        ("case", "Case"),
        ("process", "Process"),
        ("engine", "Engine coordinate"),
        ("size", "Size"),
        ("replicas", "R"),
        ("horizons", "Horizons"),
        ("ground_truth", "Exact ground truth"),
        ("checks", "Gated statistics"),
    ]
    lines = [
        "| " + " | ".join(title for _, title in headers) + " |",
        "|" + "|".join(" --- " for _ in headers) + "|",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(f"`{row[key]}`" for key, _ in headers) + " |"
        )
    return "\n".join(lines)


def render_verification_doc() -> str:
    """The full contents of ``docs/VERIFICATION.md``."""
    parts = [
        "# Verification matrix",
        "",
        "<!-- GENERATED FILE - DO NOT EDIT.",
        "     Regenerate with: python scripts/generate_verification_matrix.py",
        "     CI fails if this file is stale. -->",
        "",
        "`repro verify` cross-validates every engine coordinate (engine x",
        "kernel x thread count x observation fusion x worker count) against",
        "the exactly enumerated small-`n` Markov chains of",
        "`repro.markov.small_n` and the Lemma 5 absorbing chain of",
        "`repro.markov.absorbing`.  Empirical distributions over `R`",
        "independent replicas — the full final-configuration distribution,",
        "its max-load / empty-bin functionals, and the",
        "`max_load_seen` / `min_empty_bins_seen` window statistics — are",
        "gated by a pooled chi-square test at a Bonferroni-corrected",
        "family-wise alpha of 1e-3 per invocation.  Failures write",
        "replayable counterexample artifacts to `.verify/`",
        "(`repro verify --replay <artifact>`).",
        "",
        "Trace-level invariants (ball conservation, observer-series",
        "consistency, window reconstruction, legitimacy monotonicity, and",
        "fused-vs-segmented bit-equality) run in the pytest tier; see",
        "`tests/test_verify_trace.py` and `ARCHITECTURE.md`.",
        "",
    ]
    for level in VERIFY_LEVELS:
        rows = ground_truth_rows(level)
        parts.append(f"## Level `{level}` ({len(rows)} cases)")
        parts.append("")
        parts.append(_markdown_table(rows))
        parts.append("")
    parts.append(
        "Native-kernel cases are skipped (and reported) when no C compiler"
    )
    parts.append(
        "is available or `REPRO_NATIVE=0` is set; the numpy fallback legs in"
    )
    parts.append("CI run the same catalog with those cases skipped.")
    parts.append("")
    return "\n".join(parts)
