"""Statistical gates for the conformance harness.

The harness compares *empirical* distributions (tuples of final loads,
window maxima, empty-bin counts over ``R`` independent replicas) against
*exact* probability vectors computed from the small-``n`` Markov layer.
This module owns the decision rule:

* :func:`pooled_chi_square` — Pearson goodness-of-fit with the classic
  small-cell remedy: cells whose expected count falls below
  ``min_expected`` are pooled (smallest expected first) so the chi-square
  approximation is valid even far out in the configuration space's tail.
  A sample landing in a zero-probability cell is an *impossible event*
  and fails outright (``p_value = 0``) — that is the strongest signal the
  harness can emit, and exactly what an off-by-one destination bug
  produces at small ``n``.
* :func:`total_variation` — the distance the paper's convergence
  statements are phrased in; reported alongside every gate for
  diagnostics (it is not itself a pass/fail criterion).
* :func:`bonferroni_alpha` — the harness runs hundreds of tests per
  invocation, so per-test thresholds are Bonferroni-corrected from one
  family-wise ``alpha_total``.  With the defaults the false-alarm rate of
  a full run is below one in a thousand, while a systematically biased
  kernel fails with astronomical confidence (the statistic grows linearly
  in ``R``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

from ..errors import ConfigurationError

__all__ = [
    "GofResult",
    "pooled_chi_square",
    "total_variation",
    "bonferroni_alpha",
]


@dataclass(frozen=True)
class GofResult:
    """Outcome of one pooled chi-square goodness-of-fit test."""

    statistic: float
    df: int
    p_value: float
    n_samples: int
    n_cells: int
    tv_distance: float
    impossible_mass: float

    def passed(self, alpha: float) -> bool:
        """Gate decision at per-test significance ``alpha``."""
        if self.impossible_mass > 0:
            return False
        return self.p_value >= alpha


def total_variation(p: np.ndarray, q: np.ndarray) -> float:
    """Total-variation distance between two probability vectors."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ConfigurationError(
            f"distributions have mismatched shapes {p.shape} vs {q.shape}"
        )
    return float(0.5 * np.abs(p - q).sum())


def bonferroni_alpha(alpha_total: float, n_tests: int) -> float:
    """Per-test significance level controlling the family-wise error rate."""
    if not 0.0 < alpha_total < 1.0:
        raise ConfigurationError(
            f"alpha_total must be in (0, 1), got {alpha_total}"
        )
    if n_tests < 1:
        raise ConfigurationError(f"n_tests must be >= 1, got {n_tests}")
    return alpha_total / n_tests


def pooled_chi_square(
    observed_counts: np.ndarray,
    expected_probs: np.ndarray,
    min_expected: float = 5.0,
) -> GofResult:
    """Pearson chi-square test of ``observed_counts`` against exact probs.

    Cells are pooled smallest-expected-first until every pooled cell's
    expected count reaches ``min_expected`` (or only one cell remains).
    Observed mass on cells with *zero* exact probability is returned as
    ``impossible_mass`` and fails the gate unconditionally — no amount of
    sampling noise can place a sample outside the chain's support.
    """
    observed = np.asarray(observed_counts, dtype=float)
    probs = np.asarray(expected_probs, dtype=float)
    if observed.shape != probs.shape:
        raise ConfigurationError(
            f"observed/expected shapes differ: {observed.shape} vs {probs.shape}"
        )
    if observed.ndim != 1:
        raise ConfigurationError("observed_counts must be one-dimensional")
    if np.any(observed < 0):
        raise ConfigurationError("observed_counts must be non-negative")
    if np.any(probs < -1e-12):
        raise ConfigurationError("expected_probs must be non-negative")
    probs = np.clip(probs, 0.0, None)
    total_prob = probs.sum()
    if not np.isclose(total_prob, 1.0, atol=1e-8):
        raise ConfigurationError(
            f"expected_probs must sum to 1, got {total_prob!r}"
        )
    n = float(observed.sum())
    if n <= 0:
        raise ConfigurationError("need at least one observation")

    # mass observed outside the exact support is an unconditional failure
    zero = probs <= 0.0
    impossible = float(observed[zero].sum())
    observed = observed[~zero]
    probs = probs[~zero]
    probs = probs / probs.sum()

    empirical = observed / n
    tv = total_variation(empirical, probs * 1.0)

    # pool smallest-expected cells until the chi-square approximation holds
    order = np.argsort(probs)
    observed = observed[order]
    expected = probs[order] * n
    cells_obs: list = []
    cells_exp: list = []
    acc_obs = 0.0
    acc_exp = 0.0
    for o, e in zip(observed, expected):
        acc_obs += o
        acc_exp += e
        if acc_exp >= min_expected:
            cells_obs.append(acc_obs)
            cells_exp.append(acc_exp)
            acc_obs = 0.0
            acc_exp = 0.0
    if acc_exp > 0:
        if cells_exp:
            cells_obs[-1] += acc_obs
            cells_exp[-1] += acc_exp
        else:
            cells_obs.append(acc_obs)
            cells_exp.append(acc_exp)
    obs_arr = np.asarray(cells_obs)
    exp_arr = np.asarray(cells_exp)
    df = len(cells_exp) - 1
    if df <= 0:
        # the support collapsed to one cell: nothing left to test
        statistic = 0.0
        p_value = 1.0
        df = 0
    else:
        statistic = float(((obs_arr - exp_arr) ** 2 / exp_arr).sum())
        p_value = float(scipy_stats.chi2.sf(statistic, df))
    return GofResult(
        statistic=statistic,
        df=df,
        p_value=p_value,
        n_samples=int(n),
        n_cells=max(len(cells_exp), 1),
        tv_distance=tv,
        impossible_mass=impossible / n,
    )
