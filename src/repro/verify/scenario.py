"""Scenario conformance: exact no-op equality and event-trace invariants.

Two machine-checked contracts gate the scenario interpreter
(:mod:`repro.scenarios.engine`) on top of the statistical chain gates:

no-op equality
    A scenario with zero events must be *bit-equal* to the plain static
    run on every engine coordinate — same final configurations, window
    statistics, legitimacy rounds, and metric payloads.  The compiler
    guarantees this by construction (an event-free scenario compiles to
    the single static engine call); :func:`run_noop_equality` is the
    harness that enforces it stays true.
equality-breaking events leave invariants intact
    :func:`check_scenario_event_invariants` replays a scenario run's
    full trace at ``observe_every=1`` and walks the per-replica ball
    totals against the schedule: bursts add exactly ``count`` balls,
    drains remove exactly ``count``, and every other round (including
    adversary and churn events, which must conserve) leaves the total
    unchanged.  :func:`check_observation_schedule` pins the observation
    clock: the rounds every metric payload reports must equal the
    compiler's precomputed grid, so events never shift observations.

All three helpers return a list of human-readable violation strings —
empty means the contract holds — so the conformance runner and the
pytest tier can share them.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from ..errors import ConfigurationError
from ..parallel.ensemble import EnsembleSpec, run_ensemble
from ..rng import as_seed_sequence
from ..scenarios.engine import compile_scenario

__all__ = [
    "NOOP_SCENARIO",
    "fresh_seed",
    "noop_differences",
    "run_noop_equality",
    "check_scenario_event_invariants",
    "check_observation_schedule",
]

#: The canonical event-free scenario (JSON spelling, as a sweep would pass it).
NOOP_SCENARIO = '{"events": []}'


def fresh_seed(seed) -> np.random.SeedSequence:
    """An independent clone of ``seed`` with identical entropy.

    A :class:`~numpy.random.SeedSequence` mutates internal spawn state as
    engines draw children from it, so running two ensembles off the *same*
    object would not replay the same streams.  Rebuilding from the entropy
    and spawn key yields a pristine sequence that spawns identically.
    """
    root = as_seed_sequence(seed)
    return np.random.SeedSequence(
        entropy=root.entropy, spawn_key=tuple(root.spawn_key)
    )


def _compare_arrays(label: str, a, b, diffs: List[str]) -> None:
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        diffs.append(f"{label}: shape {a.shape} vs {b.shape}")
    elif not np.array_equal(a, b):
        diffs.append(f"{label}: values differ")


def noop_differences(static, scenario) -> List[str]:
    """Bit-compare two :class:`EnsembleResult` objects; empty list = equal."""
    diffs: List[str] = []
    _compare_arrays("final_loads", static.final_loads, scenario.final_loads, diffs)
    _compare_arrays("rounds", static.rounds, scenario.rounds, diffs)
    _compare_arrays(
        "max_load_seen", static.max_load_seen, scenario.max_load_seen, diffs
    )
    _compare_arrays(
        "min_empty_bins_seen",
        static.min_empty_bins_seen,
        scenario.min_empty_bins_seen,
        diffs,
    )
    _compare_arrays(
        "first_legitimate_round",
        static.first_legitimate_round,
        scenario.first_legitimate_round,
        diffs,
    )
    if set(static.metrics) != set(scenario.metrics):
        diffs.append(
            f"metrics keys: {sorted(static.metrics)} vs {sorted(scenario.metrics)}"
        )
        return diffs
    for name, payload in static.metrics.items():
        other = scenario.metrics[name]
        _compare_arrays(f"metrics[{name}].rounds", payload.rounds, other.rounds, diffs)
        for slot in ("series", "summaries", "arrays"):
            mine: Dict[str, np.ndarray] = getattr(payload, slot)
            theirs: Dict[str, np.ndarray] = getattr(other, slot)
            if set(mine) != set(theirs):
                diffs.append(
                    f"metrics[{name}].{slot} keys: "
                    f"{sorted(mine)} vs {sorted(theirs)}"
                )
                continue
            for key, value in mine.items():
                _compare_arrays(
                    f"metrics[{name}].{slot}[{key}]", value, theirs[key], diffs
                )
    return diffs


def run_noop_equality(
    spec_config: Mapping[str, Any],
    horizon: int,
    seed,
    *,
    engine: str = "batched",
    kernel: str = "numpy",
    n_threads: Optional[int] = None,
    fused: bool = True,
    n_workers: int = 1,
) -> List[str]:
    """Run static vs no-op-scenario at one coordinate; list the differences.

    Both runs start from byte-identical seed trees (:func:`fresh_seed`),
    so any nonempty return value is an interpreter bug, not noise.
    """
    from .conformance import _fusion_env

    config = {**dict(spec_config), "rounds": horizon}
    config.pop("scenario", None)
    static_spec = EnsembleSpec(**config)
    noop_spec = EnsembleSpec(**{**config, "scenario": NOOP_SCENARIO})
    results = []
    for spec in (static_spec, noop_spec):
        with _fusion_env(fused):
            results.append(
                run_ensemble(
                    spec,
                    seed=fresh_seed(seed),
                    engine=engine,
                    n_workers=n_workers,
                    kernel=kernel,
                    n_threads=n_threads,
                )
            )
    return noop_differences(results[0], results[1])


def _event_ball_delta(event) -> int:
    if event.kind == "burst":
        return int(event.count)
    if event.kind == "drain":
        return -int(event.count)
    return 0


def check_scenario_event_invariants(
    spec_config: Mapping[str, Any],
    seed,
    *,
    engine: str = "batched",
    kernel: str = "numpy",
    n_threads: Optional[int] = None,
) -> List[str]:
    """Replay a scenario run's full trace against its event schedule.

    Forces ``observe_every=1`` and the ``trace`` metric, then checks, per
    replica and per observed round ``t``: loads are non-negative, and the
    ball total equals the initial total plus the net burst/drain delta of
    every event fired at rounds ``<= t`` (so conserving events — adversary
    strikes, bin churn — must leave totals untouched round by round).
    """
    config = {**dict(spec_config), "observe_every": 1, "metrics": "trace"}
    spec = EnsembleSpec(**config)
    scenario = spec.resolved_scenario()
    if scenario is None:
        raise ConfigurationError(
            "check_scenario_event_invariants needs a spec with a scenario"
        )
    result = run_ensemble(
        spec, seed=fresh_seed(seed), engine=engine, kernel=kernel, n_threads=n_threads
    )
    payload = result.metrics["trace"]
    trace = np.asarray(payload.series["trace"])  # (T, R, n)
    rounds = [int(r) for r in payload.rounds]
    base = int(spec.n_balls) if spec.n_balls is not None else int(spec.n_bins)
    expanded = scenario.expand_events(spec.rounds)
    violations: List[str] = []
    if trace.size and trace.min() < 0:
        violations.append("negative load in recorded trace")
    for t_index, round_index in enumerate(rounds):
        expected = base + sum(
            _event_ball_delta(event)
            for when, event in expanded
            if when <= round_index
        )
        totals = trace[t_index].sum(axis=1)
        bad = np.nonzero(totals != expected)[0]
        if bad.size:
            violations.append(
                f"round {round_index}: replica {int(bad[0])} has "
                f"{int(totals[bad[0]])} balls, expected {expected} "
                f"({bad.size} replicas total)"
            )
    expected_final = base + sum(_event_ball_delta(event) for _, event in expanded)
    final_totals = result.final_loads.sum(axis=1)
    if not np.all(final_totals == expected_final):
        violations.append(
            f"final ball totals {sorted(set(int(x) for x in final_totals))} "
            f"!= expected {expected_final}"
        )
    return violations


def check_observation_schedule(
    spec_config: Mapping[str, Any],
    seed,
    *,
    engine: str = "batched",
    kernel: str = "numpy",
    n_threads: Optional[int] = None,
) -> List[str]:
    """Every metric payload's observation grid must match the compiler's.

    :func:`~repro.scenarios.engine.compile_scenario` precomputes the
    observation rounds a scenario run will fire; events between grid
    points must not shift the clock.  Compares that grid against the
    ``rounds`` vector of every payload the run actually produced.
    """
    config = dict(spec_config)
    spec = EnsembleSpec(**config)
    scenario = spec.resolved_scenario()
    if scenario is None:
        raise ConfigurationError(
            "check_observation_schedule needs a spec with a scenario"
        )
    program = compile_scenario(scenario, spec.rounds, spec.observe_every)
    result = run_ensemble(
        spec, seed=fresh_seed(seed), engine=engine, kernel=kernel, n_threads=n_threads
    )
    expected = [int(r) for r in program.observation_rounds]
    violations: List[str] = []
    for name, payload in result.metrics.items():
        got = [int(r) for r in payload.rounds]
        if got != expected:
            violations.append(
                f"metrics[{name}].rounds {got} != compiled schedule {expected}"
            )
    if not result.metrics:
        violations.append("spec produced no metric payloads to check")
    return violations
