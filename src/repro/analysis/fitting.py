"""Growth-law fitting.

The experiments need to decide *which* asymptotic shape a measured quantity
follows: is the maximum load growing like ``log n``, like
``log n / log log n``, like ``sqrt(t)``, or like a power of ``n``?  These
helpers fit the candidate laws by least squares and report goodness of fit,
so EXPERIMENTS.md can state "measured exponent 1.02 (paper predicts 1)"
instead of eyeballing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Sequence

import numpy as np

from ..errors import ConfigurationError

__all__ = ["FitResult", "fit_power_law", "fit_log_growth", "fit_linear", "compare_growth_models"]


@dataclass(frozen=True)
class FitResult:
    """Outcome of a least-squares fit of a growth law.

    Attributes
    ----------
    model:
        Name of the fitted law (``"power"``, ``"log"``, ``"linear"``...).
    params:
        Fitted parameters (meaning depends on the model).
    r_squared:
        Coefficient of determination on the (possibly transformed) data.
    residual_norm:
        Root-mean-square residual in the original scale.
    """

    model: str
    params: Dict[str, float]
    r_squared: float
    residual_norm: float

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the fitted law at ``x``."""
        x = np.asarray(x, dtype=float)
        if self.model == "power":
            return self.params["coefficient"] * np.power(x, self.params["exponent"])
        if self.model == "log":
            return self.params["coefficient"] * np.log(x) + self.params["intercept"]
        if self.model == "linear":
            return self.params["slope"] * x + self.params["intercept"]
        if self.model == "loglog":
            logs = np.log(x)
            return self.params["coefficient"] * logs / np.maximum(np.log(logs), 1e-9) + self.params[
                "intercept"
            ]
        raise ConfigurationError(f"unknown model {self.model!r}")


def _validate_xy(x: Sequence[float], y: Sequence[float], positive_x: bool, positive_y: bool):
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.shape != ya.shape or xa.ndim != 1:
        raise ConfigurationError("x and y must be one-dimensional arrays of equal length")
    if xa.size < 2:
        raise ConfigurationError("need at least two points to fit")
    if positive_x and np.any(xa <= 0):
        raise ConfigurationError("x values must be positive for this model")
    if positive_y and np.any(ya <= 0):
        raise ConfigurationError("y values must be positive for this model")
    return xa, ya


def _r_squared(y: np.ndarray, predicted: np.ndarray) -> float:
    ss_res = float(np.sum((y - predicted) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    if ss_tot == 0:
        return 1.0 if ss_res == 0 else 0.0
    return 1.0 - ss_res / ss_tot


def fit_power_law(x: Sequence[float], y: Sequence[float]) -> FitResult:
    """Fit ``y = c * x^a`` by linear regression in log-log space.

    Used e.g. for the convergence-time experiment, where the paper predicts
    exponent ``a ~ 1`` (linear in ``n``).
    """
    xa, ya = _validate_xy(x, y, positive_x=True, positive_y=True)
    log_x = np.log(xa)
    log_y = np.log(ya)
    slope, intercept = np.polyfit(log_x, log_y, 1)
    params = {"exponent": float(slope), "coefficient": float(math.exp(intercept))}
    predicted = params["coefficient"] * np.power(xa, params["exponent"])
    return FitResult(
        model="power",
        params=params,
        r_squared=_r_squared(ya, predicted),
        residual_norm=float(np.sqrt(np.mean((ya - predicted) ** 2))),
    )


def fit_log_growth(x: Sequence[float], y: Sequence[float]) -> FitResult:
    """Fit ``y = c * log(x) + b`` — the paper's max-load growth law."""
    xa, ya = _validate_xy(x, y, positive_x=True, positive_y=False)
    log_x = np.log(xa)
    slope, intercept = np.polyfit(log_x, ya, 1)
    params = {"coefficient": float(slope), "intercept": float(intercept)}
    predicted = slope * log_x + intercept
    return FitResult(
        model="log",
        params=params,
        r_squared=_r_squared(ya, predicted),
        residual_norm=float(np.sqrt(np.mean((ya - predicted) ** 2))),
    )


def fit_linear(x: Sequence[float], y: Sequence[float]) -> FitResult:
    """Fit ``y = a * x + b``."""
    xa, ya = _validate_xy(x, y, positive_x=False, positive_y=False)
    slope, intercept = np.polyfit(xa, ya, 1)
    params = {"slope": float(slope), "intercept": float(intercept)}
    predicted = slope * xa + intercept
    return FitResult(
        model="linear",
        params=params,
        r_squared=_r_squared(ya, predicted),
        residual_norm=float(np.sqrt(np.mean((ya - predicted) ** 2))),
    )


def _fit_loglog(x: Sequence[float], y: Sequence[float]) -> FitResult:
    """Fit ``y = c * log(x)/log(log(x)) + b`` (the one-shot growth law)."""
    xa, ya = _validate_xy(x, y, positive_x=True, positive_y=False)
    if np.any(xa <= math.e):
        raise ConfigurationError("x values must exceed e for the log/loglog model")
    feature = np.log(xa) / np.log(np.log(xa))
    slope, intercept = np.polyfit(feature, ya, 1)
    params = {"coefficient": float(slope), "intercept": float(intercept)}
    predicted = slope * feature + intercept
    return FitResult(
        model="loglog",
        params=params,
        r_squared=_r_squared(ya, predicted),
        residual_norm=float(np.sqrt(np.mean((ya - predicted) ** 2))),
    )


def compare_growth_models(x: Sequence[float], y: Sequence[float]) -> Dict[str, FitResult]:
    """Fit every applicable candidate law and return them keyed by model name.

    The caller typically reports the model with the smallest residual norm;
    candidates whose preconditions fail (e.g. non-positive values for the
    power law) are silently skipped.
    """
    candidates: Dict[str, Callable] = {
        "power": fit_power_law,
        "log": fit_log_growth,
        "linear": fit_linear,
        "loglog": _fit_loglog,
    }
    results: Dict[str, FitResult] = {}
    for name, fitter in candidates.items():
        try:
            results[name] = fitter(x, y)
        except ConfigurationError:
            continue
    if not results:
        raise ConfigurationError("no growth model could be fitted to the data")
    return results
