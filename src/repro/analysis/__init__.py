"""Analytical toolkit.

Theoretical bound curves (the paper's predictions and its competitors'),
the Chernoff bounds of Appendix A, the negative-association machinery of
Appendix B, descriptive statistics for Monte-Carlo trials, and growth-law
fitting used to decide *which* asymptotic shape the measured data follows.
"""

from .bounds import (
    coupon_collector_time,
    log_bound,
    loglog_bound,
    multi_token_cover_bound,
    sqrt_window_bound,
    tetris_emptying_bound,
)
from .concentration import (
    binomial_tail_exact,
    chernoff_lower_tail,
    chernoff_upper_tail,
    hoeffding_bound,
)
from .fitting import FitResult, compare_growth_models, fit_log_growth, fit_power_law
from .negative_association import (
    empirical_arrival_correlation,
    is_negatively_associated_pair,
    negative_association_gap,
)
from .occupancy import (
    OccupancyDistribution,
    empirical_occupancy,
    geometric_tail_fit,
    poisson_occupancy,
)
from .statistics import (
    TrialSummary,
    bootstrap_confidence_interval,
    empirical_whp_probability,
    mean_confidence_interval,
    summarize_trials,
)

__all__ = [
    "log_bound",
    "loglog_bound",
    "sqrt_window_bound",
    "coupon_collector_time",
    "multi_token_cover_bound",
    "tetris_emptying_bound",
    "chernoff_upper_tail",
    "chernoff_lower_tail",
    "hoeffding_bound",
    "binomial_tail_exact",
    "FitResult",
    "fit_log_growth",
    "fit_power_law",
    "compare_growth_models",
    "is_negatively_associated_pair",
    "negative_association_gap",
    "empirical_arrival_correlation",
    "OccupancyDistribution",
    "empirical_occupancy",
    "poisson_occupancy",
    "geometric_tail_fit",
    "TrialSummary",
    "summarize_trials",
    "mean_confidence_interval",
    "bootstrap_confidence_interval",
    "empirical_whp_probability",
]
