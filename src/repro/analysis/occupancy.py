"""Occupancy (load-distribution) analysis.

Beyond the maximum load, the *distribution* of bin loads is informative: in
the classical one-shot experiment the load of a bin is asymptotically
Poisson(1), while in the repeated process the paper's drift argument
suggests a geometrically decaying tail (each extra unit of load requires
another "unlucky" round).  These helpers compute empirical occupancy
distributions from simulations, the Poisson reference, geometric tail fits,
and summary divergences, and they back the occupancy columns of the m-balls
and leaky-bins experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..core.config import LoadConfiguration
from ..core.metrics import LoadHistogramTracker
from ..core.process import RepeatedBallsIntoBins
from ..errors import ConfigurationError
from ..types import SeedLike

__all__ = [
    "OccupancyDistribution",
    "empirical_occupancy",
    "poisson_occupancy",
    "geometric_tail_fit",
]


@dataclass(frozen=True)
class OccupancyDistribution:
    """A probability distribution over per-bin loads 0, 1, 2, ...

    Attributes
    ----------
    pmf:
        ``pmf[k]`` is the probability that a uniformly chosen (bin, round)
        pair holds exactly ``k`` balls.
    """

    pmf: np.ndarray

    def __post_init__(self) -> None:
        arr = np.asarray(self.pmf, dtype=float)
        if arr.ndim != 1 or arr.size == 0:
            raise ConfigurationError("pmf must be a non-empty one-dimensional array")
        if np.any(arr < -1e-12):
            raise ConfigurationError("pmf entries must be non-negative")
        total = float(arr.sum())
        if total <= 0:
            raise ConfigurationError("pmf must have positive total mass")
        arr = np.clip(arr, 0.0, None) / total
        arr.setflags(write=False)
        object.__setattr__(self, "pmf", arr)

    @property
    def support_size(self) -> int:
        return int(self.pmf.size)

    @property
    def mean(self) -> float:
        """Mean load (equals m/n for a ball-conserving process)."""
        return float(np.dot(np.arange(self.pmf.size), self.pmf))

    @property
    def empty_fraction(self) -> float:
        """Probability of load zero (the empty-bin fraction)."""
        return float(self.pmf[0])

    def tail(self, k: int) -> float:
        """``P(load >= k)``."""
        if k < 0:
            raise ConfigurationError(f"k must be >= 0, got {k}")
        if k >= self.pmf.size:
            return 0.0
        return float(self.pmf[k:].sum())

    def quantile(self, q: float) -> int:
        """Smallest ``k`` with ``P(load <= k) >= q``."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"q must be in [0, 1], got {q}")
        cdf = np.cumsum(self.pmf)
        return int(np.searchsorted(cdf, q))

    def total_variation(self, other: "OccupancyDistribution") -> float:
        """Total variation distance to another occupancy distribution."""
        size = max(self.pmf.size, other.pmf.size)
        a = np.zeros(size)
        b = np.zeros(size)
        a[: self.pmf.size] = self.pmf
        b[: other.pmf.size] = other.pmf
        return 0.5 * float(np.abs(a - b).sum())


def empirical_occupancy(
    n_bins: int,
    rounds: int,
    n_balls: Optional[int] = None,
    warmup: Optional[int] = None,
    initial: Union[LoadConfiguration, np.ndarray, None] = None,
    seed: SeedLike = None,
    max_tracked_load: int = 256,
) -> OccupancyDistribution:
    """Empirical occupancy distribution of the repeated balls-into-bins process.

    Runs the process for ``warmup`` rounds (default ``4 n``, enough to forget
    the start by Theorem 1), then aggregates the load histogram over
    ``rounds`` further rounds.
    """
    if rounds < 1:
        raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
    process = RepeatedBallsIntoBins(n_bins, n_balls=n_balls, initial=initial, seed=seed)
    warmup_rounds = 4 * n_bins if warmup is None else int(warmup)
    if warmup_rounds < 0:
        raise ConfigurationError(f"warmup must be >= 0, got {warmup_rounds}")
    if warmup_rounds:
        process.run(warmup_rounds)
    tracker = LoadHistogramTracker(max_tracked_load=max_tracked_load)
    process.run(rounds, observers=[tracker])
    return OccupancyDistribution(tracker.counts)


def poisson_occupancy(mean: float = 1.0, support: int = 64) -> OccupancyDistribution:
    """The Poisson(mean) occupancy — the one-shot (independent throws) limit."""
    if mean < 0:
        raise ConfigurationError(f"mean must be >= 0, got {mean}")
    if support < 1:
        raise ConfigurationError(f"support must be >= 1, got {support}")
    ks = np.arange(support)
    log_pmf = ks * math.log(mean) - mean - np.asarray(
        [math.lgamma(k + 1) for k in ks]
    ) if mean > 0 else None
    if mean == 0:
        pmf = np.zeros(support)
        pmf[0] = 1.0
    else:
        pmf = np.exp(log_pmf)
    return OccupancyDistribution(pmf)


def geometric_tail_fit(
    distribution: OccupancyDistribution, start: int = 1, stop: Optional[int] = None
) -> float:
    """Fit the decay rate ``r`` of a geometric tail ``P(load >= k) ~ r^k``.

    Returns the fitted ratio ``r`` in (0, 1); smaller is faster decay.  The
    fit is a least-squares line through ``log P(load >= k)`` over the range
    ``k = start .. stop`` (``stop`` defaults to the last k with tail mass
    above 1e-9).
    """
    if start < 0:
        raise ConfigurationError(f"start must be >= 0, got {start}")
    tails = []
    ks = []
    k = start
    limit = distribution.support_size if stop is None else min(stop + 1, distribution.support_size)
    while k < limit:
        tail = distribution.tail(k)
        if tail <= 1e-9 and stop is None:
            break
        if tail > 0:
            ks.append(k)
            tails.append(tail)
        k += 1
    if len(ks) < 2:
        raise ConfigurationError("not enough tail mass to fit a geometric decay rate")
    slope, _intercept = np.polyfit(np.asarray(ks, dtype=float), np.log(np.asarray(tails)), 1)
    return float(np.exp(slope))
