"""Negative-association diagnostics (Appendix B).

Appendix B shows that the per-round arrival counts ``X_t`` at a fixed bin of
the repeated balls-into-bins process are *not* negatively associated, by an
exact ``n = 2`` counterexample: with both balls starting in separate bins,

``P(X_1 = 0, X_2 = 0) = 1/8  >  P(X_1 = 0) * P(X_2 = 0) = 1/4 * 3/8``.

The exact enumeration lives in :func:`repro.markov.small_n.appendix_b_counterexample`;
this module adds the generic pairwise test used on joint distributions and a
Monte-Carlo estimator of the same correlation for larger ``n`` (where exact
enumeration is infeasible), which experiment E14 reports alongside the exact
``n = 2`` numbers.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..core.process import RepeatedBallsIntoBins
from ..core.config import LoadConfiguration
from ..errors import ConfigurationError
from ..rng import as_generator
from ..types import SeedLike

__all__ = [
    "is_negatively_associated_pair",
    "negative_association_gap",
    "empirical_arrival_correlation",
    "empirical_zero_zero_probability",
]


def negative_association_gap(joint: Dict[Tuple[int, int], float]) -> float:
    """Return ``P(X=0, Y=0) - P(X=0) P(Y=0)`` for a joint pmf of two counts.

    Negative association (applied with the indicator of ``{0}``, which is a
    non-increasing function) requires this gap to be ``<= 0``; a positive gap
    certifies that the pair is *not* negatively associated.
    """
    if not joint:
        raise ConfigurationError("joint distribution must be non-empty")
    total = sum(joint.values())
    if not np.isclose(total, 1.0, atol=1e-8):
        raise ConfigurationError(f"joint distribution must sum to 1, got {total}")
    p_x0 = sum(p for (x, _y), p in joint.items() if x == 0)
    p_y0 = sum(p for (_x, y), p in joint.items() if y == 0)
    p_00 = joint.get((0, 0), 0.0)
    return p_00 - p_x0 * p_y0


def is_negatively_associated_pair(joint: Dict[Tuple[int, int], float], atol: float = 1e-12) -> bool:
    """Whether the zero-zero test of negative association passes (gap <= 0)."""
    return negative_association_gap(joint) <= atol


def empirical_zero_zero_probability(
    n_bins: int,
    trials: int,
    observed_bin: int = 0,
    rounds: Tuple[int, int] = (1, 2),
    seed: SeedLike = None,
) -> Dict[str, float]:
    """Monte-Carlo estimate of the Appendix B quantities for general ``n``.

    Runs ``trials`` independent copies of the process from the balanced
    configuration and estimates ``P(X_a = 0)``, ``P(X_b = 0)`` and the joint
    ``P(X_a = 0, X_b = 0)`` where ``X_t`` counts arrivals at ``observed_bin``
    in round ``t`` and ``(a, b) = rounds``.
    """
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    if n_bins < 2:
        raise ConfigurationError(f"n_bins must be >= 2, got {n_bins}")
    if not 0 <= observed_bin < n_bins:
        raise ConfigurationError(f"observed_bin out of range [0, {n_bins})")
    a, b = rounds
    if not 1 <= a < b:
        raise ConfigurationError(f"rounds must satisfy 1 <= a < b, got {rounds}")

    rng = as_generator(seed)
    count_a0 = 0
    count_b0 = 0
    count_joint = 0
    for _ in range(trials):
        process = RepeatedBallsIntoBins(
            n_bins, initial=LoadConfiguration.balanced(n_bins), seed=rng
        )
        arrivals_a = arrivals_b = None
        previous = process.loads.copy()
        for t in range(1, b + 1):
            nonempty_before = previous > 0
            loads = process.step()
            # arrivals at u = new load - (old load - 1 if old load > 0 else 0)
            departed = 1 if nonempty_before[observed_bin] else 0
            arrived = int(loads[observed_bin]) - (int(previous[observed_bin]) - departed)
            if t == a:
                arrivals_a = arrived
            if t == b:
                arrivals_b = arrived
            previous = loads.copy()
        if arrivals_a == 0:
            count_a0 += 1
        if arrivals_b == 0:
            count_b0 += 1
        if arrivals_a == 0 and arrivals_b == 0:
            count_joint += 1

    p_a0 = count_a0 / trials
    p_b0 = count_b0 / trials
    p_joint = count_joint / trials
    return {
        "p_first_zero": p_a0,
        "p_second_zero": p_b0,
        "p_joint_zero": p_joint,
        "product": p_a0 * p_b0,
        "gap": p_joint - p_a0 * p_b0,
    }


def empirical_arrival_correlation(
    n_bins: int,
    window: int,
    trials: int,
    observed_bin: int = 0,
    seed: SeedLike = None,
) -> float:
    """Empirical lag-1 autocorrelation of the arrival counts at one bin.

    A strictly positive value is the large-``n`` analogue of the Appendix B
    counterexample (arrivals in consecutive rounds are positively, not
    negatively, correlated).
    """
    if window < 3:
        raise ConfigurationError(f"window must be >= 3, got {window}")
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    rng = as_generator(seed)
    correlations = []
    for _ in range(trials):
        process = RepeatedBallsIntoBins(
            n_bins, initial=LoadConfiguration.balanced(n_bins), seed=rng
        )
        arrivals = np.empty(window, dtype=np.int64)
        previous = process.loads.copy()
        for t in range(window):
            nonempty_before = previous[observed_bin] > 0
            loads = process.step()
            departed = 1 if nonempty_before else 0
            arrivals[t] = int(loads[observed_bin]) - (int(previous[observed_bin]) - departed)
            previous = loads.copy()
        x = arrivals[:-1].astype(float)
        y = arrivals[1:].astype(float)
        if x.std() > 0 and y.std() > 0:
            correlations.append(float(np.corrcoef(x, y)[0, 1]))
    if not correlations:
        return 0.0
    return float(np.mean(correlations))
