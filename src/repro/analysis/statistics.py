"""Descriptive statistics for Monte-Carlo trials.

Experiments run many independent trials of a stochastic quantity (maximum
load over a window, convergence time, cover time, ...).  These helpers turn
the raw trial vectors into the summaries reported in EXPERIMENTS.md:
means with confidence intervals, quantiles, and the empirical "w.h.p."
probability of an event holding across trials.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

import numpy as np
from scipy import stats

from ..errors import ConfigurationError
from ..rng import as_generator
from ..types import SeedLike

__all__ = [
    "TrialSummary",
    "summarize_trials",
    "mean_confidence_interval",
    "bootstrap_confidence_interval",
    "empirical_whp_probability",
]


@dataclass(frozen=True)
class TrialSummary:
    """Summary statistics of one scalar quantity across independent trials."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float
    q10: float
    q90: float
    ci_low: float
    ci_high: float

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "median": self.median,
            "q10": self.q10,
            "q90": self.q90,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
        }


def _as_clean_array(values: Sequence[float]) -> np.ndarray:
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ConfigurationError(f"values must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ConfigurationError("values must be non-empty")
    if np.any(~np.isfinite(arr)):
        raise ConfigurationError("values must be finite")
    return arr


def mean_confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> Tuple[float, float, float]:
    """Return ``(mean, low, high)`` of a Student-t confidence interval."""
    if not 0 < confidence < 1:
        raise ConfigurationError(f"confidence must be in (0, 1), got {confidence}")
    arr = _as_clean_array(values)
    mean = float(arr.mean())
    if arr.size == 1:
        return mean, mean, mean
    sem = float(arr.std(ddof=1) / math.sqrt(arr.size))
    if sem == 0.0:
        return mean, mean, mean
    half = float(stats.t.ppf(0.5 + confidence / 2.0, df=arr.size - 1) * sem)
    return mean, mean - half, mean + half


def summarize_trials(values: Sequence[float], confidence: float = 0.95) -> TrialSummary:
    """Full descriptive summary of a trial vector."""
    arr = _as_clean_array(values)
    mean, low, high = mean_confidence_interval(arr, confidence)
    return TrialSummary(
        count=int(arr.size),
        mean=mean,
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        median=float(np.median(arr)),
        q10=float(np.quantile(arr, 0.10)),
        q90=float(np.quantile(arr, 0.90)),
        ci_low=low,
        ci_high=high,
    )


def bootstrap_confidence_interval(
    values: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: SeedLike = None,
) -> Tuple[float, float, float]:
    """Percentile-bootstrap interval ``(point, low, high)`` for an arbitrary statistic."""
    if not 0 < confidence < 1:
        raise ConfigurationError(f"confidence must be in (0, 1), got {confidence}")
    if n_resamples < 10:
        raise ConfigurationError(f"n_resamples must be >= 10, got {n_resamples}")
    arr = _as_clean_array(values)
    rng = as_generator(seed)
    point = float(statistic(arr))
    resampled = np.empty(n_resamples)
    for i in range(n_resamples):
        sample = arr[rng.integers(0, arr.size, size=arr.size)]
        resampled[i] = statistic(sample)
    alpha = (1.0 - confidence) / 2.0
    return point, float(np.quantile(resampled, alpha)), float(np.quantile(resampled, 1.0 - alpha))


def empirical_whp_probability(
    successes: int, trials: int, confidence: float = 0.95
) -> Tuple[float, float, float]:
    """Estimate of an event probability with a Wilson-score interval.

    Used to report statements like "the domination held in 100/100 trials"
    together with a defensible lower confidence bound.
    """
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    if not 0 <= successes <= trials:
        raise ConfigurationError(f"successes must be in [0, {trials}], got {successes}")
    if not 0 < confidence < 1:
        raise ConfigurationError(f"confidence must be in (0, 1), got {confidence}")
    p_hat = successes / trials
    z = float(stats.norm.ppf(0.5 + confidence / 2.0))
    denom = 1.0 + z * z / trials
    center = (p_hat + z * z / (2 * trials)) / denom
    half = z * math.sqrt(p_hat * (1 - p_hat) / trials + z * z / (4 * trials * trials)) / denom
    return p_hat, max(0.0, center - half), min(1.0, center + half)
