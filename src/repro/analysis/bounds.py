"""Theoretical bound curves used as comparison lines in the experiments.

These are the asymptotic predictions made by the paper (and by the prior
work it improves upon), evaluated as concrete functions of ``n`` and ``t``
so that experiment tables can show "measured vs predicted shape" side by
side.  Constants are exposed as parameters because the paper only pins down
growth rates.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError

__all__ = [
    "log_bound",
    "loglog_bound",
    "sqrt_window_bound",
    "coupon_collector_time",
    "multi_token_cover_bound",
    "tetris_emptying_bound",
    "convergence_time_bound",
    "empty_bins_lower_bound",
]


def _check_n(n: int) -> None:
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")


def log_bound(n: int, constant: float = 1.0) -> float:
    """``constant * log n`` — the paper's maximum-load bound (Theorem 1)."""
    _check_n(n)
    return constant * max(math.log(n), 1.0)


def loglog_bound(n: int, constant: float = 1.0) -> float:
    """``constant * log n / log log n`` — the one-shot maximum load and the
    classical lower bound that also applies to the repeated process."""
    _check_n(n)
    if n < 4:
        return constant
    log_n = math.log(n)
    return constant * log_n / max(math.log(log_n), 1e-9)


def sqrt_window_bound(t: float, constant: float = 1.0) -> float:
    """``constant * sqrt(t)`` — the earlier bound of [12] on the maximum load
    after ``t`` rounds (regular graphs / complete graph)."""
    if t < 0:
        raise ConfigurationError(f"t must be >= 0, got {t}")
    return constant * math.sqrt(t)


def coupon_collector_time(n: int) -> float:
    """``n * H_n`` — the expected cover time of a single uniform-jump token."""
    _check_n(n)
    return n * sum(1.0 / k for k in range(1, n + 1)) if n <= 10_000 else n * (
        math.log(n) + 0.5772156649015329
    )


def multi_token_cover_bound(n: int, constant: float = 1.0) -> float:
    """``constant * n * log^2 n`` — Corollary 1's parallel cover-time bound."""
    _check_n(n)
    log_n = max(math.log(n), 1.0)
    return constant * n * log_n * log_n


def tetris_emptying_bound(n: int) -> int:
    """``5 n`` — Lemma 4's bound on the first emptying time of every bin."""
    _check_n(n)
    return 5 * n


def convergence_time_bound(n: int, constant: float = 1.0) -> float:
    """``constant * n`` — Theorem 1's bound on the time to reach a legitimate
    configuration from an arbitrary one."""
    _check_n(n)
    return constant * n


def empty_bins_lower_bound(n: int) -> float:
    """``n / 4`` — Lemma 1/2's lower bound on the number of empty bins that
    holds in every round after the first, w.h.p."""
    _check_n(n)
    return n / 4.0
