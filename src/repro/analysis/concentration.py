"""Concentration inequalities (Appendix A) and exact binomial tails.

The paper's Appendix A states the multiplicative Chernoff bounds used
throughout the analysis (inequalities (6) and (7)).  These functions
evaluate the bounds and, for validation, the exact binomial tails they
dominate, so the test-suite can check both that the implementation is
correct and that the bounds really do upper-bound the exact probabilities.
"""

from __future__ import annotations

import math

from scipy import stats

from ..errors import ConfigurationError

__all__ = [
    "chernoff_lower_tail",
    "chernoff_upper_tail",
    "hoeffding_bound",
    "binomial_tail_exact",
    "lemma1_empty_bins_bound",
    "lemma4_tetris_bound",
    "lemma5_exponent",
]


def chernoff_lower_tail(mu: float, delta: float) -> float:
    """Appendix A, inequality (6): ``P(X <= (1 - delta) mu) <= exp(-delta^2 mu / 2)``.

    ``mu`` is a lower bound on ``E[X]`` and ``delta`` must lie in ``(0, 1)``.
    """
    if mu < 0:
        raise ConfigurationError(f"mu must be >= 0, got {mu}")
    if not 0 < delta < 1:
        raise ConfigurationError(f"delta must be in (0, 1), got {delta}")
    return math.exp(-(delta**2) * mu / 2.0)


def chernoff_upper_tail(mu: float, delta: float) -> float:
    """Appendix A, inequality (7): ``P(X >= (1 + delta) mu) <= exp(-delta^2 mu / 3)``.

    ``mu`` is an upper bound on ``E[X]`` and ``delta`` must lie in ``(0, 1)``.
    """
    if mu < 0:
        raise ConfigurationError(f"mu must be >= 0, got {mu}")
    if not 0 < delta < 1:
        raise ConfigurationError(f"delta must be in (0, 1), got {delta}")
    return math.exp(-(delta**2) * mu / 3.0)


def hoeffding_bound(n: int, deviation: float) -> float:
    """Hoeffding's inequality for ``n`` independent [0, 1] variables:
    ``P(X - E[X] >= n * deviation) <= exp(-2 n deviation^2)``."""
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    if deviation < 0:
        raise ConfigurationError(f"deviation must be >= 0, got {deviation}")
    return math.exp(-2.0 * n * deviation * deviation)


def binomial_tail_exact(n: int, p: float, threshold: float, upper: bool = True) -> float:
    """Exact binomial tail: ``P(X >= threshold)`` (``upper=True``) or
    ``P(X <= threshold)`` for ``X ~ Binomial(n, p)``."""
    if n < 0:
        raise ConfigurationError(f"n must be >= 0, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"p must be in [0, 1], got {p}")
    dist = stats.binom(n, p)
    if upper:
        return float(dist.sf(math.ceil(threshold) - 1))
    return float(dist.cdf(math.floor(threshold)))


# ----------------------------------------------------------------------
# The specific exponential bounds instantiated in the paper's lemmas.
# ----------------------------------------------------------------------
def lemma1_empty_bins_bound(n: int, epsilon: float = 0.1) -> float:
    """Lemma 1's bound ``P(X <= n/4) <= exp(-eps^2 n / (4 (1 + eps)))``.

    ``epsilon`` is the slack constant from the proof (any fixed value in
    (0, 1) works for large ``n``); the default matches a conservative choice.
    """
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    if not 0 < epsilon < 1:
        raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
    return math.exp(-(epsilon**2) * n / (4.0 * (1.0 + epsilon)))


def lemma4_tetris_bound(n: int) -> float:
    """Lemma 4's per-bin failure bound ``exp(-n / 180)`` for the event that a
    bin stays non-empty for all of the first ``5 n`` Tetris rounds."""
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    return math.exp(-n / 180.0)


def lemma5_exponent(t: float) -> float:
    """Lemma 5's tail exponent: ``exp(-t / 144)``."""
    if t < 0:
        raise ConfigurationError(f"t must be >= 0, got {t}")
    return math.exp(-t / 144.0)
