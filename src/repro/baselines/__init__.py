"""Baseline processes and bounds the paper compares against.

* :mod:`repro.baselines.one_shot` — the classical (single-round)
  balls-into-bins experiment whose maximum load is
  ``Theta(log n / log log n)`` w.h.p.; its lower bound applies to the
  repeated process as well (Section 5).
* :mod:`repro.baselines.d_choices` — greedy[d] ("power of two choices")
  allocation, one-shot and repeated, following the generalization discussed
  among the related works ([36] in the paper).
* :mod:`repro.baselines.birth_death` — the independent-arrivals
  birth-death style approximation underlying the earlier ``O(sqrt(t))``
  bound of [12], used to contrast with the paper's ``O(log n)`` result.
"""

from .birth_death import IndependentThrowsProcess, sqrt_t_envelope
from .d_choices import (
    BatchedDChoices,
    DChoicesProcess,
    batched_one_shot_d_choices_max_load,
    one_shot_d_choices_max_load,
    theoretical_d_choices_max_load,
)
from .one_shot import (
    one_shot_max_load,
    one_shot_max_load_trials,
    theoretical_one_shot_max_load,
)

__all__ = [
    "one_shot_max_load",
    "one_shot_max_load_trials",
    "theoretical_one_shot_max_load",
    "DChoicesProcess",
    "BatchedDChoices",
    "one_shot_d_choices_max_load",
    "batched_one_shot_d_choices_max_load",
    "theoretical_d_choices_max_load",
    "IndependentThrowsProcess",
    "sqrt_t_envelope",
]
