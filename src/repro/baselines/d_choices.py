"""Greedy[d] ("power of d choices") allocation, one-shot and repeated.

In the one-shot setting, placing each ball into the least loaded of ``d``
uniformly random bins reduces the maximum load from
``Theta(log n / log log n)`` to ``log log n / log d + O(1)``
(Azar–Broder–Karlin–Upfal).  The repeated variant, in which every re-thrown
ball uses ``d`` choices, is the generalization mentioned among the related
works ([36]); it serves as a "stronger allocator" baseline in the ablation
benchmarks — the paper's point being that even the plain 1-choice repeated
process already achieves ``O(log n)``.

Two implementations cover the two workload shapes: :class:`DChoicesProcess`
simulates one replica with per-ball sequential placements, and
:class:`BatchedDChoices` simulates ``R`` replicas as one ``(R, n)`` load
matrix — placements stay sequential *within* each replica (that is the
Greedy[d] semantics) but the ``k``-th placement of every replica happens in
one vectorized operation, so the Python-level loop count drops from
``sum_r h_r`` to ``max_r h_r`` per round.  With ``R == 1`` and the same
seed the batched process is stream-compatible with the sequential one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..core.batched import BatchedLoadProcess, one_choice_arrivals
from ..core.config import DEFAULT_BETA, LoadConfiguration, legitimacy_threshold
from ..core.observers import ObserverList
from ..errors import ConfigurationError
from ..rng import as_generator
from ..types import LoadVector, SeedLike

__all__ = [
    "one_shot_d_choices_max_load",
    "batched_one_shot_d_choices_max_load",
    "DChoicesProcess",
    "BatchedDChoices",
    "DChoicesResult",
    "theoretical_d_choices_max_load",
]


def one_shot_d_choices_max_load(
    n_bins: int, d: int = 2, n_balls: Optional[int] = None, seed: SeedLike = None
) -> int:
    """Maximum load of a one-shot greedy[d] allocation (sequential placements)."""
    if n_bins < 1:
        raise ConfigurationError(f"n_bins must be >= 1, got {n_bins}")
    if d < 1:
        raise ConfigurationError(f"d must be >= 1, got {d}")
    m = n_bins if n_balls is None else int(n_balls)
    if m < 0:
        raise ConfigurationError(f"n_balls must be >= 0, got {m}")
    rng = as_generator(seed)
    loads = np.zeros(n_bins, dtype=np.int64)
    if m == 0:
        return 0
    choices = rng.integers(0, n_bins, size=(m, d))
    for ball in range(m):
        candidate_bins = choices[ball]
        best = candidate_bins[np.argmin(loads[candidate_bins])]
        loads[best] += 1
    return int(loads.max())


def batched_one_shot_d_choices_max_load(
    n_bins: int,
    n_replicas: int,
    d: int = 2,
    n_balls: Optional[int] = None,
    seed: SeedLike = None,
) -> np.ndarray:
    """Per-replica maximum loads of ``R`` independent one-shot greedy[d] runs.

    The ``b``-th placement of every replica happens in one vectorized
    operation (the placements within a replica remain sequential, as the
    allocator requires).  With ``R == 1`` and the same seed the result
    matches :func:`one_shot_d_choices_max_load` exactly.
    """
    if n_bins < 1:
        raise ConfigurationError(f"n_bins must be >= 1, got {n_bins}")
    if n_replicas < 1:
        raise ConfigurationError(f"n_replicas must be >= 1, got {n_replicas}")
    if d < 1:
        raise ConfigurationError(f"d must be >= 1, got {d}")
    m = n_bins if n_balls is None else int(n_balls)
    if m < 0:
        raise ConfigurationError(f"n_balls must be >= 0, got {m}")
    rng = as_generator(seed)
    R = n_replicas
    if m == 0:
        return np.zeros(R, dtype=np.int64)
    if d == 1:
        # a single choice needs no argmin: one flat draw and one bincount
        row_base = np.arange(R, dtype=np.int64) * n_bins
        counts = np.full(R, m, dtype=np.int64)
        arrivals = one_choice_arrivals(rng, row_base, counts, R, n_bins)
        return arrivals.max(axis=1).astype(np.int64)
    loads = np.zeros((R, n_bins), dtype=np.int64)
    rows = np.arange(R)
    for _ in range(m):
        choices = rng.integers(0, n_bins, size=(R, d))
        candidates = np.take_along_axis(loads, choices, axis=1)
        best = choices[rows, np.argmin(candidates, axis=1)]
        loads[rows, best] += 1
    return loads.max(axis=1)


def theoretical_d_choices_max_load(n_bins: int, d: int = 2) -> float:
    """First-order prediction ``ln ln n / ln d + Theta(1)`` for greedy[d]
    with ``m = n`` (the additive constant is taken as 1)."""
    if n_bins < 1:
        raise ConfigurationError(f"n_bins must be >= 1, got {n_bins}")
    if d < 2:
        raise ConfigurationError(f"d must be >= 2 for the two-choices bound, got {d}")
    if n_bins < 4:
        return 1.0
    return math.log(max(math.log(n_bins), 1.0 + 1e-9)) / math.log(d) + 1.0


@dataclass
class DChoicesResult:
    """Summary of a repeated greedy[d] run (mirrors ``SimulationResult``)."""

    rounds: int
    final_configuration: LoadConfiguration
    max_load_seen: int
    min_empty_bins_seen: int


class DChoicesProcess:
    """Repeated balls-into-bins where every re-thrown ball uses ``d`` choices.

    In each round one ball is extracted from every non-empty bin (anonymous,
    as in the original process); the extracted balls are then placed
    *sequentially in random order*, each into the least loaded of ``d``
    uniformly random candidate bins (ties broken by the first minimum).

    Parameters
    ----------
    n_bins, n_balls, initial, seed:
        As for :class:`~repro.core.process.RepeatedBallsIntoBins`.
    d:
        Number of candidate bins per placement (``d = 1`` degenerates to the
        original process up to the sequential-placement detail).
    """

    def __init__(
        self,
        n_bins: int,
        d: int = 2,
        n_balls: Optional[int] = None,
        initial: Union[LoadConfiguration, np.ndarray, None] = None,
        seed: SeedLike = None,
    ) -> None:
        if n_bins < 1:
            raise ConfigurationError(f"n_bins must be >= 1, got {n_bins}")
        if d < 1:
            raise ConfigurationError(f"d must be >= 1, got {d}")
        self._n_bins = n_bins
        self._d = int(d)
        if initial is not None:
            config = initial if isinstance(initial, LoadConfiguration) else LoadConfiguration(np.asarray(initial))
            if config.n_bins != n_bins:
                raise ConfigurationError(
                    f"initial configuration has {config.n_bins} bins, expected {n_bins}"
                )
            self._loads = config.as_array()
        else:
            m = n_bins if n_balls is None else int(n_balls)
            if m < 0:
                raise ConfigurationError(f"n_balls must be >= 0, got {m}")
            self._loads = LoadConfiguration.balanced(n_bins, m).as_array()
        self._n_balls = int(self._loads.sum())
        self._rng = as_generator(seed)
        self._round = 0

    # ------------------------------------------------------------------
    @property
    def n_bins(self) -> int:
        return self._n_bins

    @property
    def n_balls(self) -> int:
        return self._n_balls

    @property
    def d(self) -> int:
        return self._d

    @property
    def round_index(self) -> int:
        return self._round

    @property
    def loads(self) -> LoadVector:
        view = self._loads.view()
        view.setflags(write=False)
        return view

    def configuration(self) -> LoadConfiguration:
        return LoadConfiguration(self._loads)

    @property
    def max_load(self) -> int:
        return int(self._loads.max())

    def is_legitimate(self, beta: float = DEFAULT_BETA) -> bool:
        return self.max_load <= legitimacy_threshold(self._n_bins, beta)

    # ------------------------------------------------------------------
    def step(self) -> LoadVector:
        """Advance one round."""
        loads = self._loads
        n = self._n_bins
        rng = self._rng
        nonempty = loads > 0
        h = int(np.count_nonzero(nonempty))
        loads -= nonempty
        if h:
            if self._d == 1:
                destinations = rng.integers(0, n, size=h)
                loads += np.bincount(destinations, minlength=n)
            else:
                choices = rng.integers(0, n, size=(h, self._d))
                for row in choices:
                    best = row[np.argmin(loads[row])]
                    loads[best] += 1
        self._round += 1
        return self.loads

    def run(self, rounds: int, observers=None) -> DChoicesResult:
        """Simulate ``rounds`` rounds collecting the standard load metrics."""
        if rounds < 0:
            raise ConfigurationError(f"rounds must be >= 0, got {rounds}")
        obs = ObserverList.coerce(observers)
        max_load_seen = self.max_load
        min_empty = int(np.count_nonzero(self._loads == 0))
        executed = 0
        for _ in range(rounds):
            loads = self.step()
            executed += 1
            max_load_seen = max(max_load_seen, int(loads.max()))
            min_empty = min(min_empty, int(np.count_nonzero(loads == 0)))
            if not obs.is_empty:
                obs.observe(self._round, loads)
        return DChoicesResult(
            rounds=executed,
            final_configuration=self.configuration(),
            max_load_seen=max_load_seen,
            min_empty_bins_seen=min_empty,
        )


class BatchedDChoices(BatchedLoadProcess):
    """Vectorized ensemble of ``R`` independent repeated greedy[d] runs.

    Each round extracts one ball from every non-empty bin of every replica
    and replaces the extracted balls sequentially *within* each replica,
    each into the least loaded of ``d`` uniformly random candidate bins.
    The ``k``-th placement of all replicas is performed as one vectorized
    operation, so a round costs ``max_r h_r`` small array operations instead
    of ``sum_r h_r`` Python iterations (``h_r`` = non-empty bins of replica
    ``r``).

    With ``d == 1`` the allocator degenerates to the plain repeated
    balls-into-bins update and a round collapses to one flat draw plus one
    ``np.bincount``, exactly like
    :class:`~repro.core.batched.BatchedRepeatedBallsIntoBins`'s numpy
    kernel.  With ``R == 1`` and the same seed the trajectory matches
    :class:`DChoicesProcess` step for step (identical generator
    consumption), for every ``d``.

    Parameters
    ----------
    n_bins, n_replicas, n_balls, initial, seed:
        As for :class:`~repro.core.batched.BatchedLoadProcess`.
    d:
        Number of candidate bins per placement.
    """

    def __init__(
        self,
        n_bins: int,
        n_replicas: int,
        d: int = 2,
        n_balls: Optional[int] = None,
        initial: Union[LoadConfiguration, np.ndarray, None] = None,
        seed: SeedLike = None,
    ) -> None:
        if d < 1:
            raise ConfigurationError(f"d must be >= 1, got {d}")
        super().__init__(
            n_bins, n_replicas, n_balls=n_balls, initial=initial, seed=seed
        )
        self._d = int(d)
        self._rows = np.arange(n_replicas)

    @property
    def d(self) -> int:
        return self._d

    def _advance(self) -> None:
        loads = self._loads
        active = self._active
        n = self._n_bins
        nonempty = loads > 0
        if not active.all():
            nonempty &= active[:, None]
        counts = np.count_nonzero(nonempty, axis=1)
        if not counts.any():
            return
        loads -= nonempty
        if self._d == 1:
            loads += one_choice_arrivals(
                self._rng, self._row_base, counts, self._n_replicas, n
            )
            return
        max_h = int(counts.max())
        for k in range(max_h):
            placing = self._rows[counts > k]
            choices = self._rng.integers(0, n, size=(placing.size, self._d))
            candidates = loads[placing[:, None], choices]
            best = choices[np.arange(placing.size), np.argmin(candidates, axis=1)]
            loads[placing, best] += 1
