"""Classical one-shot balls-into-bins.

Throw ``m`` balls independently and uniformly at random into ``n`` bins,
once.  For ``m = n`` the maximum load is ``Theta(log n / log log n)`` w.h.p.
(the lower bound the paper cites as applying to the repeated process too).
This module provides the Monte-Carlo experiment and the standard first-order
theoretical prediction used as the comparison curve in experiment E10.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..rng import as_generator
from ..types import SeedLike

__all__ = [
    "one_shot_max_load",
    "one_shot_max_load_trials",
    "theoretical_one_shot_max_load",
    "one_shot_empty_fraction",
]


def one_shot_max_load(n_bins: int, n_balls: Optional[int] = None, seed: SeedLike = None) -> int:
    """Maximum load after one round of throwing ``m`` balls into ``n`` bins."""
    if n_bins < 1:
        raise ConfigurationError(f"n_bins must be >= 1, got {n_bins}")
    m = n_bins if n_balls is None else int(n_balls)
    if m < 0:
        raise ConfigurationError(f"n_balls must be >= 0, got {m}")
    if m == 0:
        return 0
    rng = as_generator(seed)
    destinations = rng.integers(0, n_bins, size=m)
    return int(np.bincount(destinations, minlength=n_bins).max())


def one_shot_max_load_trials(
    n_bins: int, trials: int, n_balls: Optional[int] = None, seed: SeedLike = None
) -> np.ndarray:
    """Vector of maximum loads over ``trials`` independent one-shot experiments."""
    if trials < 0:
        raise ConfigurationError(f"trials must be >= 0, got {trials}")
    rng = as_generator(seed)
    out = np.empty(trials, dtype=np.int64)
    for i in range(trials):
        out[i] = one_shot_max_load(n_bins, n_balls=n_balls, seed=rng)
    return out


def one_shot_empty_fraction(n_bins: int, n_balls: Optional[int] = None, seed: SeedLike = None) -> float:
    """Fraction of empty bins after a one-shot throw (≈ ``e^{-m/n}``)."""
    if n_bins < 1:
        raise ConfigurationError(f"n_bins must be >= 1, got {n_bins}")
    m = n_bins if n_balls is None else int(n_balls)
    rng = as_generator(seed)
    destinations = rng.integers(0, n_bins, size=m) if m else np.empty(0, dtype=np.int64)
    loads = np.bincount(destinations, minlength=n_bins)
    return float(np.count_nonzero(loads == 0) / n_bins)


def theoretical_one_shot_max_load(n_bins: int) -> float:
    """First-order prediction ``ln n / ln ln n`` for the one-shot maximum load
    with ``m = n`` (Gonnet / Raab–Steger).

    Returns 1.0 for tiny ``n`` where the asymptotic formula is meaningless.
    """
    if n_bins < 1:
        raise ConfigurationError(f"n_bins must be >= 1, got {n_bins}")
    if n_bins < 4:
        return 1.0
    log_n = math.log(n_bins)
    log_log_n = math.log(log_n)
    if log_log_n <= 0:
        return log_n
    return log_n / log_log_n
