"""The independent-throws approximation behind the earlier O(sqrt(t)) bound.

The prior analysis of the repeated process ([12], Becchetti et al., SODA
2015) treats each bin like a birth-death chain whose expected in/out balance
is non-positive and derives a maximum-load bound that grows like
``O(sqrt(t))`` with the length ``t`` of the observation window.  To contrast
that "standard-deviation" envelope with the paper's flat ``O(log n)``
result (experiment E11), this module provides

* :func:`sqrt_t_envelope` — the ``c * sqrt(t)`` curve, and
* :class:`IndependentThrowsProcess` — a simulable surrogate of the
  approximation: in every round each non-empty bin still loses one ball, but
  a *full* complement of ``n`` balls is re-thrown independently of the
  state (so arrivals are i.i.d. ``Binomial(n, 1/n)`` per bin, with zero
  expected drift at every bin).  Its maximum load does grow with the window
  length, unlike the real process.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..core.config import LoadConfiguration
from ..core.observers import ObserverList
from ..errors import ConfigurationError
from ..rng import as_generator
from ..types import LoadVector, SeedLike

__all__ = ["sqrt_t_envelope", "IndependentThrowsProcess", "IndependentThrowsResult"]


def sqrt_t_envelope(t: float, constant: float = 1.0) -> float:
    """The ``constant * sqrt(t)`` envelope of the prior analysis."""
    if t < 0:
        raise ConfigurationError(f"t must be >= 0, got {t}")
    return constant * math.sqrt(t)


@dataclass
class IndependentThrowsResult:
    """Summary of an :class:`IndependentThrowsProcess` run."""

    rounds: int
    final_configuration: LoadConfiguration
    max_load_seen: int


class IndependentThrowsProcess:
    """Zero-drift surrogate with state-independent arrivals.

    Every round: each non-empty bin loses one ball, and ``arrivals_per_round``
    fresh balls (default ``n``) are thrown independently and uniformly at
    random.  Unlike Tetris (which throws only ``(3/4) n`` and therefore has
    strictly negative drift), this process has zero expected drift at a
    non-empty bin, which is why its maximum load creeps upward like a random
    walk — the behaviour the O(sqrt(t)) analysis cannot rule out.
    """

    def __init__(
        self,
        n_bins: int,
        arrivals_per_round: Optional[int] = None,
        initial: Union[LoadConfiguration, np.ndarray, None] = None,
        seed: SeedLike = None,
    ) -> None:
        if n_bins < 1:
            raise ConfigurationError(f"n_bins must be >= 1, got {n_bins}")
        self._n_bins = n_bins
        self._arrivals = n_bins if arrivals_per_round is None else int(arrivals_per_round)
        if self._arrivals < 0:
            raise ConfigurationError(f"arrivals_per_round must be >= 0, got {self._arrivals}")
        if initial is None:
            self._loads = LoadConfiguration.balanced(n_bins).as_array()
        else:
            config = initial if isinstance(initial, LoadConfiguration) else LoadConfiguration(np.asarray(initial))
            if config.n_bins != n_bins:
                raise ConfigurationError(
                    f"initial configuration has {config.n_bins} bins, expected {n_bins}"
                )
            self._loads = config.as_array()
        self._rng = as_generator(seed)
        self._round = 0

    @property
    def n_bins(self) -> int:
        return self._n_bins

    @property
    def round_index(self) -> int:
        return self._round

    @property
    def loads(self) -> LoadVector:
        view = self._loads.view()
        view.setflags(write=False)
        return view

    @property
    def max_load(self) -> int:
        return int(self._loads.max())

    def configuration(self) -> LoadConfiguration:
        return LoadConfiguration(self._loads)

    def step(self) -> LoadVector:
        """Advance one round."""
        loads = self._loads
        nonempty = loads > 0
        loads -= nonempty
        if self._arrivals:
            destinations = self._rng.integers(0, self._n_bins, size=self._arrivals)
            loads += np.bincount(destinations, minlength=self._n_bins)
        self._round += 1
        return self.loads

    def run(self, rounds: int, observers=None) -> IndependentThrowsResult:
        """Simulate ``rounds`` rounds."""
        if rounds < 0:
            raise ConfigurationError(f"rounds must be >= 0, got {rounds}")
        obs = ObserverList.coerce(observers)
        max_load_seen = self.max_load
        executed = 0
        for _ in range(rounds):
            loads = self.step()
            executed += 1
            max_load_seen = max(max_load_seen, int(loads.max()))
            if not obs.is_empty:
                obs.observe(self._round, loads)
        return IndependentThrowsResult(
            rounds=executed,
            final_configuration=self.configuration(),
            max_load_seen=max_load_seen,
        )
