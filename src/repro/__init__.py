"""repro — a reproduction of *Self-stabilizing repeated balls-into-bins*.

The library implements the repeated balls-into-bins process of Becchetti,
Clementi, Natale, Pasquale and Posta (SPAA 2015 / Distributed Computing
2019), every auxiliary process its analysis relies on (the Tetris process,
the Lemma 3 coupling, the Lemma 5 absorbing chain), the multi-token
traversal protocol of Section 4, the adversarial fault model of Section 4.1,
the baselines it is compared against, and an experiment harness that
empirically reproduces each theorem/lemma/corollary as a table (see
DESIGN.md and EXPERIMENTS.md).

Quickstart
----------
>>> from repro import RepeatedBallsIntoBins, LoadConfiguration
>>> process = RepeatedBallsIntoBins(1024, initial=LoadConfiguration.all_in_one(1024), seed=0)
>>> hit = process.run_until_legitimate(max_rounds=20 * 1024)
>>> hit is not None and hit <= 20 * 1024
True
"""

from .adversary import (
    Adversary,
    BatchedFaultyProcess,
    ConcentrateAdversary,
    FaultSchedule,
    FaultyProcess,
    PyramidAdversary,
    ShuffleAdversary,
)
from .baselines import (
    BatchedDChoices,
    DChoicesProcess,
    IndependentThrowsProcess,
    batched_one_shot_d_choices_max_load,
    one_shot_max_load,
    theoretical_one_shot_max_load,
)
from .core import (
    BatchedLoadProcess,
    BatchedProcess,
    BatchedRepeatedBallsIntoBins,
    CoupledRun,
    CouplingResult,
    EmptyBinsTracker,
    EnsembleResult,
    LegitimacyTracker,
    LoadConfiguration,
    MaxLoadTracker,
    ProbabilisticTetris,
    RepeatedBallsIntoBins,
    SimulationResult,
    TetrisProcess,
    TokenRepeatedBallsIntoBins,
    legitimacy_threshold,
    make_ensemble_initial,
    native_available,
)
from .errors import (
    ConfigurationError,
    CouplingError,
    ExperimentError,
    GraphError,
    ReproError,
    ScenarioError,
    SimulationError,
)
from .experiments import available_experiments, format_table, run_experiment
from .graphs import (
    BatchedConstrainedWalks,
    ConstrainedParallelWalks,
    Topology,
    complete_graph,
    cycle_graph,
    parse_topology_spec,
    resolve_topology,
)
from .markov import BinLoadChain, FiniteMarkovChain, absorption_tail_bound
from .metrics import (
    METRIC_NAMES,
    BatchedBinEmptyingTracker,
    BatchedEmptyBinsTracker,
    BatchedLegitimacyTracker,
    BatchedLoadHistogramTracker,
    BatchedMaxLoadTracker,
    BatchedObserverList,
    BatchedTraceRecorder,
    MetricPayload,
)
from .parallel import EnsembleSpec, run_ensemble
from .rng import as_generator, spawn_generators
from .scenarios import (
    ScenarioEvent,
    ScenarioSpec,
    available_scenarios,
    compile_scenario,
    get_scenario,
    resolve_scenario,
)
from .store import PointTable, ResultStore, StreamingMoments, TailCounter
from .sweeps import (
    SweepSpec,
    expand_sweep,
    resume_sweep,
    run_sweep,
    sweep_status,
)
from .traversal import MultiTokenTraversal, SingleTokenWalk, expected_single_cover_time

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "LoadConfiguration",
    "legitimacy_threshold",
    "RepeatedBallsIntoBins",
    "SimulationResult",
    "BatchedProcess",
    "BatchedLoadProcess",
    "BatchedRepeatedBallsIntoBins",
    "EnsembleResult",
    "make_ensemble_initial",
    "native_available",
    "TetrisProcess",
    "ProbabilisticTetris",
    "CoupledRun",
    "CouplingResult",
    "TokenRepeatedBallsIntoBins",
    "MaxLoadTracker",
    "EmptyBinsTracker",
    "LegitimacyTracker",
    # metrics (unified observation layer)
    "METRIC_NAMES",
    "MetricPayload",
    "BatchedObserverList",
    "BatchedMaxLoadTracker",
    "BatchedEmptyBinsTracker",
    "BatchedLegitimacyTracker",
    "BatchedLoadHistogramTracker",
    "BatchedTraceRecorder",
    "BatchedBinEmptyingTracker",
    # markov
    "FiniteMarkovChain",
    "BinLoadChain",
    "absorption_tail_bound",
    # graphs
    "Topology",
    "complete_graph",
    "cycle_graph",
    "parse_topology_spec",
    "resolve_topology",
    "ConstrainedParallelWalks",
    "BatchedConstrainedWalks",
    # traversal
    "MultiTokenTraversal",
    "SingleTokenWalk",
    "expected_single_cover_time",
    # adversary
    "Adversary",
    "ConcentrateAdversary",
    "PyramidAdversary",
    "ShuffleAdversary",
    "FaultSchedule",
    "FaultyProcess",
    "BatchedFaultyProcess",
    # baselines
    "one_shot_max_load",
    "theoretical_one_shot_max_load",
    "DChoicesProcess",
    "BatchedDChoices",
    "batched_one_shot_d_choices_max_load",
    "IndependentThrowsProcess",
    # experiments
    "run_experiment",
    "available_experiments",
    "format_table",
    # parallel
    "EnsembleSpec",
    "run_ensemble",
    # scenarios
    "ScenarioSpec",
    "ScenarioEvent",
    "resolve_scenario",
    "get_scenario",
    "available_scenarios",
    "compile_scenario",
    # sweeps + store
    "SweepSpec",
    "expand_sweep",
    "run_sweep",
    "resume_sweep",
    "sweep_status",
    "ResultStore",
    "PointTable",
    "StreamingMoments",
    "TailCounter",
    # rng
    "as_generator",
    "spawn_generators",
    # errors
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "CouplingError",
    "GraphError",
    "ScenarioError",
    "ExperimentError",
]
