"""Markov-chain substrate.

The paper's analysis leans on two chains:

* the full repeated balls-into-bins chain on load configurations (huge, but
  exactly enumerable for tiny ``n`` — :mod:`repro.markov.small_n`), and
* the one-dimensional absorbing chain ``Z_t`` of Lemma 5 that upper-bounds a
  single bin's load during a phase (:mod:`repro.markov.absorbing`).

The generic finite-chain tools in :mod:`repro.markov.chain` and the
spectral / total-variation helpers in :mod:`repro.markov.spectral` support
both, plus the exactness checks used by the test-suite.
"""

from .absorbing import BinLoadChain, absorption_tail_bound
from .chain import FiniteMarkovChain
from .small_n import (
    arrival_joint_distribution_n2,
    enumerate_configurations,
    exact_greedy_d_transition_matrix,
    exact_rbb_transition_matrix,
    exact_token_transition_matrix,
    exact_walk_transition_matrix,
)
from .spectral import mixing_time_bound, spectral_gap, total_variation_distance

__all__ = [
    "FiniteMarkovChain",
    "BinLoadChain",
    "absorption_tail_bound",
    "enumerate_configurations",
    "exact_rbb_transition_matrix",
    "exact_greedy_d_transition_matrix",
    "exact_token_transition_matrix",
    "exact_walk_transition_matrix",
    "arrival_joint_distribution_n2",
    "total_variation_distance",
    "spectral_gap",
    "mixing_time_bound",
]
