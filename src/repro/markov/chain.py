"""Generic finite discrete-time Markov chain utilities.

A small, dependency-light DTMC toolbox: stationary distributions, k-step
distributions, expected hitting times, absorption probabilities, and
simulation.  It backs the exact small-``n`` analysis of the repeated
balls-into-bins chain and the Lemma 5 absorbing chain, and it is exercised
directly by the test-suite as a substrate in its own right.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..rng import as_generator
from ..types import SeedLike

__all__ = ["FiniteMarkovChain"]


class FiniteMarkovChain:
    """A finite DTMC defined by a row-stochastic transition matrix.

    Parameters
    ----------
    transition_matrix:
        Square array ``P`` with non-negative entries and unit row sums.
    state_labels:
        Optional hashable labels for the states (defaults to ``0..k-1``).
    """

    def __init__(
        self,
        transition_matrix: np.ndarray,
        state_labels: Optional[Sequence] = None,
        atol: float = 1e-9,
    ) -> None:
        P = np.asarray(transition_matrix, dtype=float)
        if P.ndim != 2 or P.shape[0] != P.shape[1]:
            raise ConfigurationError(f"transition matrix must be square, got shape {P.shape}")
        if P.shape[0] == 0:
            raise ConfigurationError("transition matrix must have at least one state")
        if np.any(P < -atol):
            raise ConfigurationError("transition matrix has negative entries")
        row_sums = P.sum(axis=1)
        if not np.allclose(row_sums, 1.0, atol=1e-6):
            raise ConfigurationError("transition matrix rows must sum to 1")
        self._P = np.clip(P, 0.0, None)
        self._P = self._P / self._P.sum(axis=1, keepdims=True)
        self._n = P.shape[0]
        if state_labels is not None:
            labels = list(state_labels)
            if len(labels) != self._n:
                raise ConfigurationError(
                    f"{len(labels)} labels supplied for {self._n} states"
                )
            self._labels = labels
            self._index = {label: i for i, label in enumerate(labels)}
        else:
            self._labels = list(range(self._n))
            self._index = {i: i for i in range(self._n)}

    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        return self._n

    @property
    def transition_matrix(self) -> np.ndarray:
        return np.array(self._P, copy=True)

    @property
    def state_labels(self) -> list:
        return list(self._labels)

    def index_of(self, label) -> int:
        """Map a state label to its row index."""
        try:
            return self._index[label]
        except KeyError:
            raise ConfigurationError(f"unknown state label {label!r}") from None

    # ------------------------------------------------------------------
    # Distributions
    # ------------------------------------------------------------------
    def step_distribution(self, distribution: np.ndarray, steps: int = 1) -> np.ndarray:
        """Push a distribution forward ``steps`` rounds."""
        mu = np.asarray(distribution, dtype=float)
        if mu.shape != (self._n,):
            raise ConfigurationError(
                f"distribution must have shape ({self._n},), got {mu.shape}"
            )
        if steps < 0:
            raise ConfigurationError(f"steps must be >= 0, got {steps}")
        for _ in range(steps):
            mu = mu @ self._P
        return mu

    def k_step_matrix(self, steps: int) -> np.ndarray:
        """Return ``P^steps``."""
        if steps < 0:
            raise ConfigurationError(f"steps must be >= 0, got {steps}")
        return np.linalg.matrix_power(self._P, steps)

    def stationary_distribution(self) -> np.ndarray:
        """Stationary distribution ``pi`` with ``pi P = pi``.

        Computed as the null space of ``(P^T - I)`` restricted to the
        probability simplex.  For reducible chains this returns *one*
        stationary distribution (the least-squares solution), which is what
        the library needs for its exactness checks on irreducible chains.
        """
        A = np.vstack([self._P.T - np.eye(self._n), np.ones((1, self._n))])
        b = np.zeros(self._n + 1)
        b[-1] = 1.0
        pi, *_ = np.linalg.lstsq(A, b, rcond=None)
        pi = np.clip(pi, 0.0, None)
        total = pi.sum()
        if total <= 0:
            raise ConfigurationError("failed to compute a stationary distribution")
        return pi / total

    # ------------------------------------------------------------------
    # Hitting / absorption
    # ------------------------------------------------------------------
    def expected_hitting_times(self, targets: Iterable) -> np.ndarray:
        """Expected number of steps to reach the target set from every state.

        Solves the standard first-step system ``h_i = 0`` for targets and
        ``h_i = 1 + sum_j P_ij h_j`` otherwise.  States that cannot reach the
        target set get ``inf``.
        """
        target_idx = {self.index_of(t) for t in targets}
        if not target_idx:
            raise ConfigurationError("targets must be non-empty")
        others = [i for i in range(self._n) if i not in target_idx]
        h = np.zeros(self._n)
        if not others:
            return h
        Q = self._P[np.ix_(others, others)]
        A = np.eye(len(others)) - Q
        b = np.ones(len(others))
        try:
            sol = np.linalg.solve(A, b)
        except np.linalg.LinAlgError:
            sol, *_ = np.linalg.lstsq(A, b, rcond=None)
        for pos, i in enumerate(others):
            value = sol[pos]
            h[i] = value if np.isfinite(value) and value >= 0 else np.inf
        return h

    def absorption_probabilities(self, absorbing_states: Iterable) -> np.ndarray:
        """Probability of eventually hitting the absorbing set from each state."""
        target_idx = sorted({self.index_of(t) for t in absorbing_states})
        if not target_idx:
            raise ConfigurationError("absorbing_states must be non-empty")
        others = [i for i in range(self._n) if i not in target_idx]
        probs = np.zeros(self._n)
        probs[target_idx] = 1.0
        if not others:
            return probs
        Q = self._P[np.ix_(others, others)]
        R = self._P[np.ix_(others, target_idx)]
        A = np.eye(len(others)) - Q
        b = R.sum(axis=1)
        try:
            sol = np.linalg.solve(A, b)
        except np.linalg.LinAlgError:
            sol, *_ = np.linalg.lstsq(A, b, rcond=None)
        probs[others] = np.clip(sol, 0.0, 1.0)
        return probs

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def sample_path(self, start, length: int, seed: SeedLike = None) -> list:
        """Simulate a trajectory of ``length`` transitions starting at ``start``."""
        if length < 0:
            raise ConfigurationError(f"length must be >= 0, got {length}")
        rng = as_generator(seed)
        current = self.index_of(start)
        path = [self._labels[current]]
        for _ in range(length):
            current = int(rng.choice(self._n, p=self._P[current]))
            path.append(self._labels[current])
        return path

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FiniteMarkovChain(num_states={self._n})"
