"""Exact analysis of the repeated balls-into-bins chain for tiny systems.

For very small ``n`` the full configuration chain can be enumerated and its
transition matrix computed exactly, which the test-suite uses to validate
the Monte-Carlo simulators against ground truth, and which reproduces the
Appendix B counterexample (arrival counts at a bin in consecutive rounds are
*not* negatively associated) by exact enumeration.

The state space is the set of *compositions* of ``m`` balls into ``n``
ordered bins; its size is ``C(m + n - 1, n - 1)``, so exact work is limited
to roughly ``n <= 5``.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Tuple

import numpy as np

from .chain import FiniteMarkovChain
from ..errors import ConfigurationError

__all__ = [
    "enumerate_configurations",
    "exact_rbb_transition_matrix",
    "exact_rbb_chain",
    "arrival_joint_distribution_n2",
    "appendix_b_counterexample",
]

Configuration = Tuple[int, ...]


def enumerate_configurations(n_balls: int, n_bins: int) -> List[Configuration]:
    """All load configurations of ``n_balls`` balls in ``n_bins`` ordered bins.

    Returned in lexicographic order; the list length is
    ``C(n_balls + n_bins - 1, n_bins - 1)``.
    """
    if n_bins < 1:
        raise ConfigurationError(f"n_bins must be >= 1, got {n_bins}")
    if n_balls < 0:
        raise ConfigurationError(f"n_balls must be >= 0, got {n_balls}")

    configs: List[Configuration] = []

    def rec(prefix: List[int], remaining: int, bins_left: int) -> None:
        if bins_left == 1:
            configs.append(tuple(prefix + [remaining]))
            return
        for take in range(remaining + 1):
            rec(prefix + [take], remaining - take, bins_left - 1)

    rec([], n_balls, n_bins)
    return configs


def _transition_distribution(config: Configuration, n_bins: int) -> Dict[Configuration, float]:
    """Exact one-round transition distribution out of ``config``.

    Each non-empty bin sends one ball to an independent uniform destination;
    we enumerate all ``n^h`` destination tuples (``h`` = non-empty bins).
    """
    loads = np.asarray(config, dtype=np.int64)
    nonempty = np.flatnonzero(loads > 0)
    h = nonempty.size
    base = loads.copy()
    base[nonempty] -= 1
    if h == 0:
        return {tuple(base.tolist()): 1.0}
    prob = (1.0 / n_bins) ** h
    out: Dict[Configuration, float] = {}
    for destinations in itertools.product(range(n_bins), repeat=h):
        result = base.copy()
        for d in destinations:
            result[d] += 1
        key = tuple(int(x) for x in result)
        out[key] = out.get(key, 0.0) + prob
    return out


def exact_rbb_transition_matrix(
    n_bins: int, n_balls: int | None = None
) -> Tuple[np.ndarray, List[Configuration]]:
    """Exact transition matrix of the repeated balls-into-bins chain.

    Returns ``(P, states)`` where ``states`` lists the configurations in the
    row/column order of ``P``.
    """
    m = n_bins if n_balls is None else n_balls
    states = enumerate_configurations(m, n_bins)
    index = {s: i for i, s in enumerate(states)}
    P = np.zeros((len(states), len(states)))
    for i, config in enumerate(states):
        for target, prob in _transition_distribution(config, n_bins).items():
            P[i, index[target]] += prob
    return P, states


def exact_rbb_chain(n_bins: int, n_balls: int | None = None) -> FiniteMarkovChain:
    """The exact configuration chain wrapped as a :class:`FiniteMarkovChain`."""
    P, states = exact_rbb_transition_matrix(n_bins, n_balls)
    return FiniteMarkovChain(P, state_labels=states)


# ----------------------------------------------------------------------
# Appendix B: the negative-association counterexample for n = 2
# ----------------------------------------------------------------------
def arrival_joint_distribution_n2(
    observed_bin: int = 0, rounds: int = 2
) -> Dict[Tuple[int, ...], float]:
    """Exact joint distribution of the arrival counts at one bin over the
    first ``rounds`` rounds of the ``n = 2`` process started from ``(1, 1)``.

    ``X_t`` is the number of balls *arriving* at ``observed_bin`` in round
    ``t``.  Appendix B uses ``rounds = 2`` and shows
    ``P(X_1 = 0, X_2 = 0) = 1/8 > P(X_1 = 0) P(X_2 = 0) = 1/4 * 3/8``.
    """
    n = 2
    if observed_bin not in (0, 1):
        raise ConfigurationError("observed_bin must be 0 or 1 for the n=2 system")
    if rounds < 1:
        raise ConfigurationError(f"rounds must be >= 1, got {rounds}")

    joint: Dict[Tuple[int, ...], float] = {}

    def recurse(config: Tuple[int, int], history: Tuple[int, ...], prob: float, depth: int) -> None:
        if depth == rounds:
            joint[history] = joint.get(history, 0.0) + prob
            return
        loads = np.asarray(config, dtype=np.int64)
        nonempty = np.flatnonzero(loads > 0)
        h = nonempty.size
        base = loads.copy()
        base[nonempty] -= 1
        if h == 0:
            recurse(tuple(base.tolist()), history + (0,), prob, depth + 1)
            return
        p_each = prob * (1.0 / n) ** h
        for destinations in itertools.product(range(n), repeat=h):
            result = base.copy()
            arrivals = 0
            for d in destinations:
                result[d] += 1
                if d == observed_bin:
                    arrivals += 1
            recurse(tuple(int(x) for x in result), history + (arrivals,), p_each, depth + 1)

    recurse((1, 1), (), 1.0, 0)
    return joint


def appendix_b_counterexample() -> Dict[str, float]:
    """Reproduce the exact numbers of Appendix B.

    Returns a dictionary with ``p_x1_0`` (= 1/4), ``p_x2_0`` (= 3/8),
    ``p_joint_00`` (= 1/8), ``product`` (= 3/32), and the boolean-as-float
    ``violates_negative_association`` (1.0 since 1/8 > 3/32).
    """
    joint = arrival_joint_distribution_n2(rounds=2)
    p_x1_0 = sum(p for (x1, _x2), p in joint.items() if x1 == 0)
    p_x2_0 = sum(p for (_x1, x2), p in joint.items() if x2 == 0)
    p_joint = joint.get((0, 0), 0.0)
    product = p_x1_0 * p_x2_0
    return {
        "p_x1_0": p_x1_0,
        "p_x2_0": p_x2_0,
        "p_joint_00": p_joint,
        "product": product,
        "violates_negative_association": float(p_joint > product),
    }
