"""Exact analysis of the repeated balls-into-bins chain for tiny systems.

For very small ``n`` the full configuration chain can be enumerated and its
transition matrix computed exactly, which the test-suite uses to validate
the Monte-Carlo simulators against ground truth, and which reproduces the
Appendix B counterexample (arrival counts at a bin in consecutive rounds are
*not* negatively associated) by exact enumeration.

The state space is the set of *compositions* of ``m`` balls into ``n``
ordered bins; its size is ``C(m + n - 1, n - 1)``, so exact work is limited
to roughly ``n <= 5``.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Tuple

import numpy as np

from .chain import FiniteMarkovChain
from ..errors import ConfigurationError

__all__ = [
    "enumerate_configurations",
    "exact_rbb_transition_matrix",
    "exact_rbb_chain",
    "exact_greedy_d_transition_matrix",
    "exact_greedy_d_chain",
    "exact_token_transition_matrix",
    "exact_walk_transition_matrix",
    "exact_walk_chain",
    "arrival_joint_distribution_n2",
    "appendix_b_counterexample",
]

Configuration = Tuple[int, ...]


def enumerate_configurations(n_balls: int, n_bins: int) -> List[Configuration]:
    """All load configurations of ``n_balls`` balls in ``n_bins`` ordered bins.

    Returned in lexicographic order; the list length is
    ``C(n_balls + n_bins - 1, n_bins - 1)``.
    """
    if n_bins < 1:
        raise ConfigurationError(f"n_bins must be >= 1, got {n_bins}")
    if n_balls < 0:
        raise ConfigurationError(f"n_balls must be >= 0, got {n_balls}")

    configs: List[Configuration] = []

    def rec(prefix: List[int], remaining: int, bins_left: int) -> None:
        if bins_left == 1:
            configs.append(tuple(prefix + [remaining]))
            return
        for take in range(remaining + 1):
            rec(prefix + [take], remaining - take, bins_left - 1)

    rec([], n_balls, n_bins)
    return configs


def _transition_distribution(config: Configuration, n_bins: int) -> Dict[Configuration, float]:
    """Exact one-round transition distribution out of ``config``.

    Each non-empty bin sends one ball to an independent uniform destination;
    we enumerate all ``n^h`` destination tuples (``h`` = non-empty bins).
    """
    loads = np.asarray(config, dtype=np.int64)
    nonempty = np.flatnonzero(loads > 0)
    h = nonempty.size
    base = loads.copy()
    base[nonempty] -= 1
    if h == 0:
        return {tuple(base.tolist()): 1.0}
    prob = (1.0 / n_bins) ** h
    out: Dict[Configuration, float] = {}
    for destinations in itertools.product(range(n_bins), repeat=h):
        result = base.copy()
        for d in destinations:
            result[d] += 1
        key = tuple(int(x) for x in result)
        out[key] = out.get(key, 0.0) + prob
    return out


def exact_rbb_transition_matrix(
    n_bins: int, n_balls: int | None = None
) -> Tuple[np.ndarray, List[Configuration]]:
    """Exact transition matrix of the repeated balls-into-bins chain.

    Returns ``(P, states)`` where ``states`` lists the configurations in the
    row/column order of ``P``.
    """
    m = n_bins if n_balls is None else n_balls
    states = enumerate_configurations(m, n_bins)
    index = {s: i for i, s in enumerate(states)}
    P = np.zeros((len(states), len(states)))
    for i, config in enumerate(states):
        for target, prob in _transition_distribution(config, n_bins).items():
            P[i, index[target]] += prob
    return P, states


def exact_rbb_chain(n_bins: int, n_balls: int | None = None) -> FiniteMarkovChain:
    """The exact configuration chain wrapped as a :class:`FiniteMarkovChain`."""
    P, states = exact_rbb_transition_matrix(n_bins, n_balls)
    return FiniteMarkovChain(P, state_labels=states)


# ----------------------------------------------------------------------
# Exact chains for the other load processes (Greedy[d], token, walks)
# ----------------------------------------------------------------------
def _greedy_transition_distribution(
    config: Configuration, n_bins: int, d: int
) -> Dict[Configuration, float]:
    """Exact one-round transition distribution of Greedy[d] out of ``config``.

    Mirrors :meth:`repro.baselines.d_choices.DChoicesProcess.step` exactly:
    every non-empty bin removes one ball first, then the re-throws are placed
    *sequentially* in increasing bin order, each choosing the least-loaded of
    ``d`` independent uniform candidate bins against the **current** loads,
    with ties broken by the first occurrence in the candidate tuple
    (``row[np.argmin(loads[row])]``).
    """
    loads = np.asarray(config, dtype=np.int64)
    nonempty = np.flatnonzero(loads > 0)
    base = loads.copy()
    base[nonempty] -= 1
    dist: Dict[Configuration, float] = {tuple(int(x) for x in base): 1.0}
    if nonempty.size == 0:
        return dist
    branch_prob = (1.0 / n_bins) ** d
    for _ in nonempty:  # one placement stage per re-throwing bin
        merged: Dict[Configuration, float] = {}
        for cfg, prob in dist.items():
            arr = np.asarray(cfg, dtype=np.int64)
            for row in itertools.product(range(n_bins), repeat=d):
                best = row[int(np.argmin(arr[list(row)]))]
                placed = arr.copy()
                placed[best] += 1
                key = tuple(int(x) for x in placed)
                merged[key] = merged.get(key, 0.0) + prob * branch_prob
        dist = merged
    return dist


def exact_greedy_d_transition_matrix(
    n_bins: int, d: int, n_balls: int | None = None
) -> Tuple[np.ndarray, List[Configuration]]:
    """Exact transition matrix of the repeated Greedy[d] baseline.

    ``d = 1`` degenerates to the plain repeated balls-into-bins matrix.
    Work grows as ``|states| * h * n^d`` per row, so keep ``n <= 4`` and
    ``d`` small.
    """
    if d < 1:
        raise ConfigurationError(f"d must be >= 1, got {d}")
    m = n_bins if n_balls is None else n_balls
    states = enumerate_configurations(m, n_bins)
    index = {s: i for i, s in enumerate(states)}
    P = np.zeros((len(states), len(states)))
    for i, config in enumerate(states):
        for target, prob in _greedy_transition_distribution(config, n_bins, d).items():
            P[i, index[target]] += prob
    return P, states


def exact_greedy_d_chain(
    n_bins: int, d: int, n_balls: int | None = None
) -> FiniteMarkovChain:
    """The exact Greedy[d] chain wrapped as a :class:`FiniteMarkovChain`."""
    P, states = exact_greedy_d_transition_matrix(n_bins, d, n_balls)
    return FiniteMarkovChain(P, state_labels=states)


def exact_token_transition_matrix(
    n_bins: int, n_balls: int | None = None
) -> Tuple[np.ndarray, List[Configuration]]:
    """Exact load-level transition matrix of the token-identity process.

    :class:`~repro.core.token_process.TokenRepeatedBallsIntoBins` tracks
    *which* token each bin forwards (queue discipline), but the load vector
    evolves exactly as in the anonymous process: every non-empty bin removes
    one ball and re-throws it to an independent uniform destination,
    regardless of which token was selected.  The load-level chain is
    therefore identical to :func:`exact_rbb_transition_matrix`; this wrapper
    exists so the verification harness can state (and test) that invariance
    explicitly rather than assuming it.
    """
    return exact_rbb_transition_matrix(n_bins, n_balls)


def _walk_transition_distribution(
    config: Configuration,
    neighbor_lists: List[List[int]],
    constrained: bool,
) -> Dict[Configuration, float]:
    """Exact one-round transition distribution of the graph-walk process."""
    loads = np.asarray(config, dtype=np.int64)
    n = loads.size
    if constrained:
        # each non-empty node forwards ONE token to a uniform neighbor
        sources = [v for v in range(n) if loads[v] > 0]
        base = loads.copy()
        for v in sources:
            base[v] -= 1
        movers = [(v, 1) for v in sources]
    else:
        # every token moves independently to a uniform neighbor of its node
        base = np.zeros(n, dtype=np.int64)
        movers = [(v, int(loads[v])) for v in range(n) if loads[v] > 0]
    dist: Dict[Configuration, float] = {tuple(int(x) for x in base): 1.0}
    for node, count in movers:
        neighbors = neighbor_lists[node]
        p_each = 1.0 / len(neighbors)
        for _ in range(count):
            merged: Dict[Configuration, float] = {}
            for cfg, prob in dist.items():
                for dest in neighbors:
                    placed = list(cfg)
                    placed[dest] += 1
                    key = tuple(placed)
                    merged[key] = merged.get(key, 0.0) + prob * p_each
            dist = merged
    return dist


def exact_walk_transition_matrix(
    topology, n_tokens: int | None = None, constrained: bool = True
) -> Tuple[np.ndarray, List[Configuration]]:
    """Exact transition matrix of (anonymous) parallel walks on ``topology``.

    ``constrained=True`` is the paper's one-token-per-round process
    (:class:`~repro.graphs.walks.ConstrainedParallelWalks`); ``False`` moves
    every token independently.  On the complete graph with self-loops the
    constrained matrix equals :func:`exact_rbb_transition_matrix`.  Every
    node must have at least one neighbor.
    """
    n = topology.num_nodes
    m = n if n_tokens is None else int(n_tokens)
    if m < 0:
        raise ConfigurationError(f"n_tokens must be >= 0, got {m}")
    neighbor_lists = [
        [int(u) for u in topology.neighbors_of(v)] for v in range(n)
    ]
    for v, neigh in enumerate(neighbor_lists):
        if not neigh:
            raise ConfigurationError(
                f"node {v} has no neighbors; the walk chain is undefined"
            )
    states = enumerate_configurations(m, n)
    index = {s: i for i, s in enumerate(states)}
    P = np.zeros((len(states), len(states)))
    for i, config in enumerate(states):
        dist = _walk_transition_distribution(config, neighbor_lists, constrained)
        for target, prob in dist.items():
            P[i, index[target]] += prob
    return P, states


def exact_walk_chain(
    topology, n_tokens: int | None = None, constrained: bool = True
) -> FiniteMarkovChain:
    """The exact walk chain wrapped as a :class:`FiniteMarkovChain`."""
    P, states = exact_walk_transition_matrix(topology, n_tokens, constrained)
    return FiniteMarkovChain(P, state_labels=states)


# ----------------------------------------------------------------------
# Appendix B: the negative-association counterexample for n = 2
# ----------------------------------------------------------------------
def arrival_joint_distribution_n2(
    observed_bin: int = 0, rounds: int = 2
) -> Dict[Tuple[int, ...], float]:
    """Exact joint distribution of the arrival counts at one bin over the
    first ``rounds`` rounds of the ``n = 2`` process started from ``(1, 1)``.

    ``X_t`` is the number of balls *arriving* at ``observed_bin`` in round
    ``t``.  Appendix B uses ``rounds = 2`` and shows
    ``P(X_1 = 0, X_2 = 0) = 1/8 > P(X_1 = 0) P(X_2 = 0) = 1/4 * 3/8``.
    """
    n = 2
    if observed_bin not in (0, 1):
        raise ConfigurationError("observed_bin must be 0 or 1 for the n=2 system")
    if rounds < 1:
        raise ConfigurationError(f"rounds must be >= 1, got {rounds}")

    joint: Dict[Tuple[int, ...], float] = {}

    def recurse(config: Tuple[int, int], history: Tuple[int, ...], prob: float, depth: int) -> None:
        if depth == rounds:
            joint[history] = joint.get(history, 0.0) + prob
            return
        loads = np.asarray(config, dtype=np.int64)
        nonempty = np.flatnonzero(loads > 0)
        h = nonempty.size
        base = loads.copy()
        base[nonempty] -= 1
        if h == 0:
            recurse(tuple(base.tolist()), history + (0,), prob, depth + 1)
            return
        p_each = prob * (1.0 / n) ** h
        for destinations in itertools.product(range(n), repeat=h):
            result = base.copy()
            arrivals = 0
            for d in destinations:
                result[d] += 1
                if d == observed_bin:
                    arrivals += 1
            recurse(tuple(int(x) for x in result), history + (arrivals,), p_each, depth + 1)

    recurse((1, 1), (), 1.0, 0)
    return joint


def appendix_b_counterexample() -> Dict[str, float]:
    """Reproduce the exact numbers of Appendix B.

    Returns a dictionary with ``p_x1_0`` (= 1/4), ``p_x2_0`` (= 3/8),
    ``p_joint_00`` (= 1/8), ``product`` (= 3/32), and the boolean-as-float
    ``violates_negative_association`` (1.0 since 1/8 > 3/32).
    """
    joint = arrival_joint_distribution_n2(rounds=2)
    p_x1_0 = sum(p for (x1, _x2), p in joint.items() if x1 == 0)
    p_x2_0 = sum(p for (_x1, x2), p in joint.items() if x2 == 0)
    p_joint = joint.get((0, 0), 0.0)
    product = p_x1_0 * p_x2_0
    return {
        "p_x1_0": p_x1_0,
        "p_x2_0": p_x2_0,
        "p_joint_00": p_joint,
        "product": product,
        "violates_negative_association": float(p_joint > product),
    }
