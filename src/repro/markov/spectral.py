"""Spectral and distance utilities for finite chains.

These helpers support the exactness tests (stationary-distribution
convergence of the small-``n`` chain) and give a quantitative handle on how
fast the repeated balls-into-bins chain forgets its initial configuration —
the mechanism behind self-stabilization.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "total_variation_distance",
    "spectral_gap",
    "mixing_time_bound",
    "empirical_mixing_time",
]


def total_variation_distance(p: np.ndarray, q: np.ndarray) -> float:
    """Total variation distance ``0.5 * sum |p_i - q_i|`` between two pmfs."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ConfigurationError(f"shape mismatch: {p.shape} vs {q.shape}")
    return 0.5 * float(np.abs(p - q).sum())


def spectral_gap(transition_matrix: np.ndarray) -> float:
    """Absolute spectral gap ``1 - max_{i >= 2} |lambda_i|`` of a stochastic matrix.

    For reversible chains this controls mixing; for the (non-reversible)
    repeated balls-into-bins chain it is still a useful diagnostic.
    """
    P = np.asarray(transition_matrix, dtype=float)
    if P.ndim != 2 or P.shape[0] != P.shape[1]:
        raise ConfigurationError(f"transition matrix must be square, got shape {P.shape}")
    eigenvalues = np.linalg.eigvals(P)
    moduli = np.sort(np.abs(eigenvalues))[::-1]
    if moduli.size == 1:
        return 1.0
    second = float(moduli[1])
    return max(0.0, 1.0 - min(second, 1.0))


def mixing_time_bound(
    transition_matrix: np.ndarray,
    stationary: Optional[np.ndarray] = None,
    epsilon: float = 0.25,
) -> float:
    """Standard spectral upper bound on the mixing time.

    ``t_mix(eps) <= log(1 / (eps * pi_min)) / gap`` — meaningful for chains
    with a positive gap; returns ``inf`` when the gap is (numerically) zero.
    """
    if not 0 < epsilon < 1:
        raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
    gap = spectral_gap(transition_matrix)
    if gap <= 1e-12:
        return math.inf
    P = np.asarray(transition_matrix, dtype=float)
    if stationary is None:
        from .chain import FiniteMarkovChain

        stationary = FiniteMarkovChain(P).stationary_distribution()
    pi_min = float(np.min(stationary[stationary > 0])) if np.any(stationary > 0) else 1e-12
    return math.log(1.0 / (epsilon * pi_min)) / gap


def empirical_mixing_time(
    transition_matrix: np.ndarray,
    start_distribution: np.ndarray,
    epsilon: float = 0.25,
    max_steps: int = 10_000,
) -> Optional[int]:
    """Smallest ``t`` with ``TV(mu_0 P^t, pi) <= epsilon``, or ``None`` if not
    reached within ``max_steps``."""
    from .chain import FiniteMarkovChain

    chain = FiniteMarkovChain(np.asarray(transition_matrix, dtype=float))
    pi = chain.stationary_distribution()
    mu = np.asarray(start_distribution, dtype=float)
    if mu.shape != pi.shape:
        raise ConfigurationError(f"start distribution shape {mu.shape} incompatible with chain")
    for t in range(max_steps + 1):
        if total_variation_distance(mu, pi) <= epsilon:
            return t
        mu = chain.step_distribution(mu)
    return None
