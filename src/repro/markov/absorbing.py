"""The absorbing bin-load chain of Lemma 5.

Lemma 5 analyzes a one-dimensional Markov chain ``Z_t`` that dominates the
load of a single bin in the Tetris process during a "phase":

* ``Z_t = 0`` if ``Z_{t-1} = 0`` (0 is absorbing), and
* ``Z_t = Z_{t-1} - 1 + X_t`` otherwise, with ``X_t ~ Binomial((3/4) n, 1/n)``
  i.i.d. arrivals.

The paper proves ``P_k(tau > t) <= exp(-t / 144)`` for every ``t >= 8 k``,
where ``tau`` is the absorption time started from ``Z_0 = k``.  This module
provides

* :class:`BinLoadChain` — exact tail probabilities by dynamic programming
  over the (truncated) load distribution, plus Monte-Carlo simulation of the
  absorption time, and
* :func:`absorption_tail_bound` — the paper's analytic envelope.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np
from scipy import stats

from ..errors import ConfigurationError
from ..rng import as_generator
from ..types import SeedLike

__all__ = ["BinLoadChain", "absorption_tail_bound"]


def absorption_tail_bound(t: float, k: int = 0) -> float:
    """The Lemma 5 envelope ``exp(-t/144)``, valid for ``t >= 8 k``.

    For ``t < 8 k`` the lemma makes no claim; we return 1.0 (the trivial
    bound) so the function is safe to evaluate on a whole grid.
    """
    if k < 0:
        raise ConfigurationError(f"k must be >= 0, got {k}")
    if t < 8 * k:
        return 1.0
    return math.exp(-t / 144.0)


class BinLoadChain:
    """The Lemma 5 chain for a system with ``n`` bins.

    Parameters
    ----------
    n_bins:
        System size ``n``; arrivals per round are ``Binomial(arrivals, 1/n)``.
    arrivals:
        Number of balls thrown per round in the dominating Tetris process;
        defaults to ``floor(3 n / 4)`` as in the paper.
    """

    def __init__(self, n_bins: int, arrivals: Optional[int] = None) -> None:
        if n_bins < 1:
            raise ConfigurationError(f"n_bins must be >= 1, got {n_bins}")
        self._n = n_bins
        self._arrivals = (3 * n_bins) // 4 if arrivals is None else int(arrivals)
        if self._arrivals < 0:
            raise ConfigurationError(f"arrivals must be >= 0, got {self._arrivals}")
        self._p = 1.0 / n_bins
        # Per-round arrival pmf, truncated where negligible.
        dist = stats.binom(self._arrivals, self._p)
        upper = int(dist.ppf(1.0 - 1e-15)) + 1
        ks = np.arange(0, max(upper, 2))
        pmf = dist.pmf(ks)
        pmf = pmf / pmf.sum()
        self._arrival_pmf = pmf

    # ------------------------------------------------------------------
    @property
    def n_bins(self) -> int:
        return self._n

    @property
    def arrivals(self) -> int:
        return self._arrivals

    @property
    def drift(self) -> float:
        """Expected one-round change ``E[X] - 1`` while above zero (negative)."""
        return self._arrivals * self._p - 1.0

    @property
    def arrival_pmf(self) -> np.ndarray:
        """Truncated pmf of the per-round arrival count ``X_t``."""
        return np.array(self._arrival_pmf, copy=True)

    # ------------------------------------------------------------------
    # Exact computations
    # ------------------------------------------------------------------
    def survival_probabilities(self, start: int, horizon: int, cap: Optional[int] = None) -> np.ndarray:
        """Exact ``P_k(tau > t)`` for ``t = 0 .. horizon``.

        The load distribution is propagated by convolution with the arrival
        pmf; probability mass reaching the cap is clipped there, which makes
        the returned survival probabilities (slight) *over*-estimates — i.e.
        still valid for checking the upper-bound claim of Lemma 5.
        """
        if start < 0:
            raise ConfigurationError(f"start must be >= 0, got {start}")
        if horizon < 0:
            raise ConfigurationError(f"horizon must be >= 0, got {horizon}")
        if cap is None:
            cap = max(4 * start + 8 * len(self._arrival_pmf), 64)
        dist = np.zeros(cap + 1)
        dist[min(start, cap)] = 1.0
        absorbed = 0.0 if start > 0 else 1.0
        if start == 0:
            dist[:] = 0.0

        survival = np.empty(horizon + 1)
        survival[0] = 1.0 - absorbed
        pmf = self._arrival_pmf
        for t in range(1, horizon + 1):
            # shift down by one (the departure), then convolve with arrivals
            shifted = np.zeros_like(dist)
            shifted[:-1] = dist[1:]
            new = np.convolve(shifted, pmf)[: cap + 1]
            # mass that would exceed the cap is folded onto the cap
            overflow = 1.0 - absorbed - new.sum()
            if overflow > 0:
                new[cap] += overflow
            # transitions into state 0 are absorbing: remove them from the
            # transient distribution and account them in `absorbed`
            absorbed += float(new[0])
            new[0] = 0.0
            dist = new
            survival[t] = max(1.0 - absorbed, 0.0)
        return survival

    def expected_absorption_time(self, start: int) -> float:
        """Expected absorption time from ``Z_0 = start``.

        With negative drift ``delta = 1 - E[X]`` the exact expectation is
        ``start / delta`` by Wald's identity (the walk is skip-free
        downward), which we return in closed form.
        """
        if start < 0:
            raise ConfigurationError(f"start must be >= 0, got {start}")
        delta = 1.0 - self._arrivals * self._p
        if delta <= 0:
            return math.inf
        return start / delta

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulate_absorption_time(
        self, start: int, max_rounds: int, seed: SeedLike = None
    ) -> Optional[int]:
        """Simulate one trajectory; return ``tau`` or ``None`` if not absorbed
        within ``max_rounds``."""
        if start < 0:
            raise ConfigurationError(f"start must be >= 0, got {start}")
        if start == 0:
            return 0
        rng = as_generator(seed)
        z = start
        for t in range(1, max_rounds + 1):
            z = z - 1 + int(rng.binomial(self._arrivals, self._p))
            if z <= 0:
                return t
        return None

    def simulate_absorption_times(
        self, start: int, trials: int, max_rounds: int, seed: SeedLike = None
    ) -> np.ndarray:
        """Simulate ``trials`` absorption times (censored values are ``-1``)."""
        if trials < 0:
            raise ConfigurationError(f"trials must be >= 0, got {trials}")
        rng = as_generator(seed)
        out = np.empty(trials, dtype=np.int64)
        for i in range(trials):
            tau = self.simulate_absorption_time(start, max_rounds, seed=rng)
            out[i] = -1 if tau is None else tau
        return out

    def empirical_survival(
        self, start: int, trials: int, horizon: int, seed: SeedLike = None
    ) -> np.ndarray:
        """Monte-Carlo estimate of ``P_k(tau > t)`` for ``t = 0 .. horizon``."""
        taus = self.simulate_absorption_times(start, trials, max_rounds=horizon, seed=seed)
        # censored runs (tau == -1) survived past the horizon
        taus = np.where(taus < 0, horizon + 1, taus)
        ts = np.arange(horizon + 1)
        return (taus[None, :] > ts[:, None]).mean(axis=1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BinLoadChain(n_bins={self._n}, arrivals={self._arrivals})"
