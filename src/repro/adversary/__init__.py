"""Adversarial fault model (Section 4.1).

In some *faulty* rounds an adversary may re-assign the balls to the bins in
an arbitrary way (it cannot create or destroy balls).  The paper shows that
as long as faulty rounds occur with frequency at most once every ``gamma n``
rounds (for ``gamma >= 6``), the ``O(n log^2 n)`` cover-time bound survives
up to constants, because the linear self-stabilization time (Theorem 1)
absorbs each fault.

:mod:`repro.adversary.adversaries` provides concrete reassignment
strategies (single-vector and vectorized ``(R, n)`` batch forms);
:mod:`repro.adversary.faulty_process` wraps any load-level process with
periodic (or externally triggered) fault injection, and
:mod:`repro.adversary.batched` does the same for whole batched ensembles
at once.
"""

from .adversaries import (
    Adversary,
    ConcentrateAdversary,
    PyramidAdversary,
    ShuffleAdversary,
    TargetHeaviestAdversary,
    available_adversaries,
    get_adversary,
)
from .batched import BatchedFaultyProcess, BatchedFaultyResult
from .faulty_process import FaultSchedule, FaultyProcess, FaultyRunResult

__all__ = [
    "Adversary",
    "ConcentrateAdversary",
    "PyramidAdversary",
    "ShuffleAdversary",
    "TargetHeaviestAdversary",
    "available_adversaries",
    "get_adversary",
    "FaultSchedule",
    "FaultyProcess",
    "FaultyRunResult",
    "BatchedFaultyProcess",
    "BatchedFaultyResult",
]
