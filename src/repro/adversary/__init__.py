"""Adversarial fault model (Section 4.1).

In some *faulty* rounds an adversary may re-assign the balls to the bins in
an arbitrary way (it cannot create or destroy balls).  The paper shows that
as long as faulty rounds occur with frequency at most once every ``gamma n``
rounds (for ``gamma >= 6``), the ``O(n log^2 n)`` cover-time bound survives
up to constants, because the linear self-stabilization time (Theorem 1)
absorbs each fault.

:mod:`repro.adversary.adversaries` provides concrete reassignment
strategies; :mod:`repro.adversary.faulty_process` wraps any load-level
process with periodic (or externally triggered) fault injection.
"""

from .adversaries import (
    Adversary,
    ConcentrateAdversary,
    PyramidAdversary,
    ShuffleAdversary,
    TargetHeaviestAdversary,
    get_adversary,
)
from .faulty_process import FaultSchedule, FaultyProcess, FaultyRunResult

__all__ = [
    "Adversary",
    "ConcentrateAdversary",
    "PyramidAdversary",
    "ShuffleAdversary",
    "TargetHeaviestAdversary",
    "get_adversary",
    "FaultSchedule",
    "FaultyProcess",
    "FaultyRunResult",
]
