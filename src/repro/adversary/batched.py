"""Batched fault injection: adversarial ensembles as one ``(R, n)`` state.

:class:`BatchedFaultyProcess` is the vectorized counterpart of
:class:`~repro.adversary.faulty_process.FaultyProcess`: it drives a batched
process (by default a
:class:`~repro.core.batched.BatchedRepeatedBallsIntoBins`, so the compiled
native kernel applies) and, at the rounds selected by a
:class:`~repro.adversary.faulty_process.FaultSchedule`, rewrites **every
replica's** configuration through the adversary's vectorized
:meth:`~repro.adversary.adversaries.Adversary.apply_batch` — ball
conservation is enforced per replica, both by the adversary wrapper and by
the process' :meth:`~repro.core.batched.BatchedLoadProcess.inject_loads`.

Execution is segmented: the rounds between consecutive faults run as one
engine call (a single FFI call with the native kernel), so an adversarial
ensemble costs barely more than a fault-free one.  Recovery times are read
off each post-fault segment's ``first_legitimate_round`` vector.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

from .adversaries import Adversary, get_adversary
from .faulty_process import FaultSchedule
from ..core.batched import (
    BatchedLoadProcess,
    BatchedRepeatedBallsIntoBins,
    EnsembleResult,
)
from ..core.config import DEFAULT_BETA, LoadConfiguration
from ..errors import ConfigurationError
from ..metrics.base import BatchedObserverList
from ..rng import as_seed_sequence
from ..types import SeedLike

__all__ = ["BatchedFaultyProcess", "BatchedFaultyResult"]


@dataclass
class BatchedFaultyResult:
    """Vector-valued summary of one :meth:`BatchedFaultyProcess.run`.

    Attributes
    ----------
    rounds:
        Rounds simulated (shared by every replica; faults never freeze).
    fault_rounds:
        Rounds at which the adversary struck (shared by every replica).
    max_load_seen:
        Per-replica window maximum, including post-fault configurations.
    min_empty_bins_seen:
        Per-replica window minimum of the empty-bin count over the
        executed rounds.
    recovery_times:
        ``(F, R)`` matrix: for fault ``f`` and replica ``r``, the number of
        rounds until that replica was next in a legitimate configuration,
        or ``-1`` if it did not recover before the end of the run or the
        next fault.
    first_legitimate_round:
        Per-replica first round (1-based, in the wrapper's clock) with a
        legitimate configuration, or ``-1``.
    final_loads:
        The ``(R, n)`` configuration after the last round.
    """

    n_bins: int
    rounds: int
    fault_rounds: List[int]
    max_load_seen: np.ndarray
    min_empty_bins_seen: np.ndarray
    recovery_times: np.ndarray
    first_legitimate_round: np.ndarray
    final_loads: np.ndarray
    beta: float = field(default=DEFAULT_BETA)
    kernel: str = "numpy"

    @property
    def n_replicas(self) -> int:
        return int(self.final_loads.shape[0])

    @property
    def n_faults(self) -> int:
        """Faults injected per replica."""
        return len(self.fault_rounds)

    @property
    def fault_count(self) -> int:
        """Total fault events across the ensemble (``F * R``)."""
        return self.n_faults * self.n_replicas

    @property
    def recovered(self) -> np.ndarray:
        """``(F, R)`` boolean mask of fault events that recovered in time."""
        return self.recovery_times >= 0

    def flat_recoveries(self) -> np.ndarray:
        """All observed recovery times (faults that did recover), flattened."""
        return self.recovery_times[self.recovered]

    @property
    def max_recovery_time(self) -> Optional[int]:
        """Largest observed recovery time (``None`` when no fault recovered)."""
        recovered = self.flat_recoveries()
        return int(recovered.max()) if recovered.size else None

    @property
    def all_recovered(self) -> bool:
        return bool(self.n_faults) and bool(self.recovered.all())

    def to_ensemble_result(self) -> EnsembleResult:
        """Window metrics in the engine-agnostic :class:`EnsembleResult` shape."""
        R = self.n_replicas
        return EnsembleResult(
            n_bins=self.n_bins,
            rounds=np.full(R, self.rounds, dtype=np.int64),
            final_loads=self.final_loads,
            max_load_seen=self.max_load_seen,
            min_empty_bins_seen=self.min_empty_bins_seen,
            first_legitimate_round=self.first_legitimate_round,
            beta=self.beta,
            kernel=self.kernel,
        )


class BatchedFaultyProcess:
    """``R`` independent repeated balls-into-bins runs under adversarial faults.

    Parameters
    ----------
    n_bins, n_replicas:
        System size and ensemble size.
    adversary:
        Adversary name or instance applied (to every replica independently)
        at faulty rounds.
    schedule:
        A :class:`FaultSchedule`; the convenience constructor
        :meth:`with_gamma` builds the paper's ``gamma * n`` periodic
        schedule.
    n_balls, initial, seed, kernel, n_threads:
        Forwarded to :class:`~repro.core.batched.BatchedRepeatedBallsIntoBins`
        (``seed`` also feeds the adversary's own stream).  Passing an
        existing :class:`numpy.random.Generator` makes the adversary and
        the process share that one stream — the convention of the
        sequential :class:`~repro.adversary.faulty_process.FaultyProcess`,
        which (with the numpy kernel, ``R == 1`` and a deterministic-draw
        adversary) makes the two fault injectors stream-compatible.
    process:
        Optional pre-built batched process to attack instead of a fresh
        :class:`BatchedRepeatedBallsIntoBins` — any
        :class:`~repro.core.batched.BatchedLoadProcess` works (e.g. a
        :class:`~repro.baselines.d_choices.BatchedDChoices`).  Mutually
        exclusive with ``n_balls``/``initial`` (configure the process
        itself); ``kernel`` is ignored in this case.
    """

    def __init__(
        self,
        n_bins: int,
        n_replicas: int,
        adversary: Union[str, Adversary] = "concentrate",
        schedule: Optional[FaultSchedule] = None,
        n_balls: Optional[int] = None,
        initial: Union[LoadConfiguration, np.ndarray, None] = None,
        seed: SeedLike = None,
        kernel: str = "auto",
        process: Optional[BatchedLoadProcess] = None,
        n_threads: Optional[int] = None,
    ) -> None:
        if isinstance(seed, np.random.Generator):
            # one shared stream for adversary and process, as in FaultyProcess
            self._rng = seed
            process_seq: SeedLike = seed
        else:
            adversary_seq, process_seq = as_seed_sequence(seed).spawn(2)
            self._rng = np.random.default_rng(adversary_seq)
        if process is not None:
            if n_balls is not None or initial is not None:
                raise ConfigurationError(
                    "n_balls/initial cannot be combined with a pre-built "
                    "process; configure the process itself instead"
                )
            if process.n_bins != n_bins or process.n_replicas != n_replicas:
                raise ConfigurationError(
                    f"provided process simulates ({process.n_replicas}, "
                    f"{process.n_bins}), expected ({n_replicas}, {n_bins})"
                )
            self._process: BatchedLoadProcess = process
        else:
            self._process = BatchedRepeatedBallsIntoBins(
                n_bins,
                n_replicas,
                n_balls=n_balls,
                initial=initial,
                seed=process_seq,
                kernel=kernel,
                n_threads=n_threads,
            )
        self._adversary = get_adversary(adversary)
        self._schedule = schedule if schedule is not None else FaultSchedule.never()

    @classmethod
    def with_gamma(
        cls,
        n_bins: int,
        n_replicas: int,
        gamma: float = 6.0,
        adversary: Union[str, Adversary] = "concentrate",
        **kwargs,
    ) -> "BatchedFaultyProcess":
        """Periodic faults every ``gamma * n`` rounds (the Section 4.1 regime)."""
        if gamma <= 0:
            raise ConfigurationError(f"gamma must be positive, got {gamma}")
        period = max(int(math.ceil(gamma * n_bins)), 1)
        return cls(
            n_bins,
            n_replicas,
            adversary=adversary,
            schedule=FaultSchedule.every(period),
            **kwargs,
        )

    # ------------------------------------------------------------------
    @property
    def process(self) -> BatchedLoadProcess:
        return self._process

    @property
    def adversary(self) -> Adversary:
        return self._adversary

    @property
    def schedule(self) -> FaultSchedule:
        return self._schedule

    @property
    def n_bins(self) -> int:
        return self._process.n_bins

    @property
    def n_replicas(self) -> int:
        return self._process.n_replicas

    # ------------------------------------------------------------------
    def run(
        self,
        rounds: int,
        beta: float = DEFAULT_BETA,
        observers=None,
        observe_every: int = 1,
    ) -> BatchedFaultyResult:
        """Simulate ``rounds`` rounds with fault injection.

        In a faulty round the adversary reassigns every replica's
        configuration *before* the normal round executes (so the process
        immediately starts recovering from the adversarial state), exactly
        as in :meth:`FaultyProcess.run`.  Rounds between consecutive faults
        execute as one engine call, so the native kernel's whole-window FFI
        speedup carries over to adversarial ensembles.

        ``observers`` / ``observe_every`` are forwarded to every segment's
        engine call (see :meth:`BatchedLoadProcess.run`); observers see
        post-step configurations only (not the injected pre-step states),
        with round indexes counted on the wrapped process' global clock,
        and the observation stride restarts at each fault.
        """
        if rounds < 0:
            raise ConfigurationError(f"rounds must be >= 0, got {rounds}")
        obs = BatchedObserverList.coerce(observers)
        process = self._process
        R = process.n_replicas
        fault_rounds = [
            t for t in range(1, rounds + 1) if self._schedule.is_faulty(t)
        ]
        recovery = np.full((len(fault_rounds), R), -1, dtype=np.int64)
        first_legit = np.full(R, -1, dtype=np.int64)
        max_seen = process.max_load.astype(np.int64)
        min_empty = np.full(R, process.n_bins, dtype=np.int64)
        kernels = set()

        def run_segment(start_round: int, length: int, fault_index: Optional[int]):
            """One fault-free stretch starting at wrapper round ``start_round``."""
            if length <= 0:
                return
            offset = process.rounds_completed
            result = process.run(
                length, beta=beta, observers=obs, observe_every=observe_every
            )
            kernels.add(result.kernel)
            np.maximum(max_seen, result.max_load_seen, out=max_seen)
            np.minimum(
                min_empty, result.min_empty_bins_seen, out=min_empty
            )
            hit = result.first_legitimate_round >= 0
            if not hit.any():
                return
            # translate the engine's global round counter into wrapper rounds
            wrapper_round = (
                result.first_legitimate_round - offset + start_round - 1
            )
            np.copyto(
                first_legit, wrapper_round, where=hit & (first_legit < 0)
            )
            if fault_index is not None:
                recovery[fault_index, hit] = (
                    wrapper_round[hit] - fault_rounds[fault_index]
                )

        previous = 1  # wrapper round at which the next segment starts
        pending: Optional[int] = None  # fault awaiting recovery
        for index, fault_round in enumerate(fault_rounds):
            run_segment(previous, fault_round - previous, pending)
            reassigned = self._adversary.apply_batch(process.loads, self._rng)
            process.inject_loads(reassigned)
            np.maximum(max_seen, reassigned.max(axis=1), out=max_seen)
            previous = fault_round
            pending = index
        run_segment(previous, rounds - previous + 1, pending)

        if rounds == 0:
            min_empty = process.num_empty_bins.astype(np.int64)
        if not kernels:
            kernel = getattr(self._process, "kernel_name", "numpy")
        else:
            kernel = kernels.pop() if len(kernels) == 1 else "mixed"
        return BatchedFaultyResult(
            n_bins=process.n_bins,
            rounds=rounds,
            fault_rounds=fault_rounds,
            max_load_seen=max_seen,
            min_empty_bins_seen=min_empty,
            recovery_times=recovery,
            first_legitimate_round=first_legit,
            final_loads=process.loads.copy(),
            beta=beta,
            kernel=kernel,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchedFaultyProcess(n_bins={self.n_bins}, "
            f"n_replicas={self.n_replicas}, adversary={self._adversary!r}, "
            f"schedule={self._schedule!r})"
        )
