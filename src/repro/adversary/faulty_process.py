"""Fault injection around a load-level process.

:class:`FaultyProcess` wraps a :class:`~repro.core.process.RepeatedBallsIntoBins`
(or any object with the same ``step``/``loads`` surface plus a ``reset``)
and applies an :class:`~repro.adversary.adversaries.Adversary` at rounds
chosen by a :class:`FaultSchedule`.  This is the Section 4.1 model: faulty
rounds at frequency at most once every ``gamma * n`` rounds leave the
cover-time/self-stabilization guarantees intact up to constants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

from .adversaries import Adversary, get_adversary
from ..core.config import DEFAULT_BETA, LoadConfiguration, legitimacy_threshold
from ..core.observers import ObserverList
from ..core.process import RepeatedBallsIntoBins
from ..errors import ConfigurationError
from ..rng import as_generator
from ..types import SeedLike

__all__ = ["FaultSchedule", "FaultyProcess", "FaultyRunResult"]


@dataclass(frozen=True)
class FaultSchedule:
    """When faults happen.

    Attributes
    ----------
    period:
        A fault is injected every ``period`` rounds (``None`` disables
        periodic faults).  The paper's guarantee needs ``period >= 6 n``.
    offset:
        First faulty round (defaults to ``period``).
    explicit_rounds:
        Additional explicit fault rounds (useful in tests).
    """

    period: Optional[int] = None
    offset: Optional[int] = None
    explicit_rounds: frozenset = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.period is not None and self.period < 1:
            raise ConfigurationError(f"period must be >= 1, got {self.period}")
        if self.offset is not None and self.offset < 1:
            raise ConfigurationError(f"offset must be >= 1, got {self.offset}")
        object.__setattr__(self, "explicit_rounds", frozenset(int(r) for r in self.explicit_rounds))

    def is_faulty(self, round_index: int) -> bool:
        """Whether ``round_index`` (1-based) is a faulty round."""
        if round_index in self.explicit_rounds:
            return True
        if self.period is None:
            return False
        start = self.offset if self.offset is not None else self.period
        return round_index >= start and (round_index - start) % self.period == 0

    @classmethod
    def every(cls, period: int, offset: Optional[int] = None) -> "FaultSchedule":
        """Periodic schedule with the given period."""
        return cls(period=period, offset=offset)

    @classmethod
    def never(cls) -> "FaultSchedule":
        """The fault-free schedule."""
        return cls(period=None)


@dataclass
class FaultyRunResult:
    """Summary of a faulty run.

    Attributes
    ----------
    rounds:
        Rounds simulated.
    fault_rounds:
        Rounds at which the adversary struck.
    max_load_seen:
        Window maximum load (including post-fault configurations).
    recovery_times:
        For each fault, the number of rounds until the process was next in a
        legitimate configuration (``-1`` if it did not recover before the end
        of the run or the next fault).
    final_configuration:
        The configuration after the last round.
    """

    rounds: int
    fault_rounds: List[int]
    max_load_seen: int
    recovery_times: List[int]
    final_configuration: LoadConfiguration

    @property
    def max_recovery_time(self) -> Optional[int]:
        """Largest observed recovery time (``None`` when no fault recovered)."""
        recovered = [r for r in self.recovery_times if r >= 0]
        return max(recovered) if recovered else None

    @property
    def all_recovered(self) -> bool:
        return bool(self.recovery_times) and all(r >= 0 for r in self.recovery_times)


class FaultyProcess:
    """A repeated balls-into-bins process subject to adversarial faults.

    Parameters
    ----------
    n_bins:
        Number of bins.
    adversary:
        Adversary name or instance applied at faulty rounds.
    schedule:
        A :class:`FaultSchedule`; the convenience constructor
        :meth:`with_gamma` builds the paper's ``gamma * n`` periodic schedule.
    initial, n_balls, seed:
        Forwarded to :class:`~repro.core.process.RepeatedBallsIntoBins`.
    """

    def __init__(
        self,
        n_bins: int,
        adversary: Union[str, Adversary] = "concentrate",
        schedule: Optional[FaultSchedule] = None,
        n_balls: Optional[int] = None,
        initial: Union[LoadConfiguration, np.ndarray, None] = None,
        seed: SeedLike = None,
    ) -> None:
        rng = as_generator(seed)
        self._process = RepeatedBallsIntoBins(n_bins, n_balls=n_balls, initial=initial, seed=rng)
        self._adversary = get_adversary(adversary)
        self._schedule = schedule if schedule is not None else FaultSchedule.never()
        self._rng = rng

    @classmethod
    def with_gamma(
        cls,
        n_bins: int,
        gamma: float = 6.0,
        adversary: Union[str, Adversary] = "concentrate",
        **kwargs,
    ) -> "FaultyProcess":
        """Periodic faults every ``gamma * n`` rounds (the Section 4.1 regime)."""
        if gamma <= 0:
            raise ConfigurationError(f"gamma must be positive, got {gamma}")
        period = max(int(math.ceil(gamma * n_bins)), 1)
        return cls(n_bins, adversary=adversary, schedule=FaultSchedule.every(period), **kwargs)

    # ------------------------------------------------------------------
    @property
    def process(self) -> RepeatedBallsIntoBins:
        return self._process

    @property
    def adversary(self) -> Adversary:
        return self._adversary

    @property
    def schedule(self) -> FaultSchedule:
        return self._schedule

    # ------------------------------------------------------------------
    def run(
        self,
        rounds: int,
        beta: float = DEFAULT_BETA,
        observers=None,
    ) -> FaultyRunResult:
        """Simulate ``rounds`` rounds with fault injection.

        In a faulty round the adversary reassigns the configuration *before*
        the normal process round executes (so the process immediately starts
        recovering from the adversarial state).
        """
        if rounds < 0:
            raise ConfigurationError(f"rounds must be >= 0, got {rounds}")
        obs = ObserverList.coerce(observers)
        process = self._process
        n = process.n_bins
        threshold = legitimacy_threshold(n, beta)

        fault_rounds: List[int] = []
        recovery_times: List[int] = []
        pending_fault_round: Optional[int] = None
        max_load_seen = process.max_load

        for step in range(1, rounds + 1):
            if self._schedule.is_faulty(step):
                reassigned = self._adversary(process.loads, self._rng)
                process.reset(initial=LoadConfiguration(reassigned))
                # reset() zeroes the process-internal round counter; the wrapper
                # keeps its own notion of time via `step`.
                post_fault_max = int(reassigned.max())
                if post_fault_max > max_load_seen:
                    max_load_seen = post_fault_max
                fault_rounds.append(step)
                if pending_fault_round is not None:
                    recovery_times.append(-1)
                pending_fault_round = step
            loads = process.step()
            current_max = int(loads.max())
            if current_max > max_load_seen:
                max_load_seen = current_max
            if not obs.is_empty:
                obs.observe(step, loads)
            if pending_fault_round is not None and current_max <= threshold:
                recovery_times.append(step - pending_fault_round)
                pending_fault_round = None

        if pending_fault_round is not None:
            recovery_times.append(-1)

        return FaultyRunResult(
            rounds=rounds,
            fault_rounds=fault_rounds,
            max_load_seen=max_load_seen,
            recovery_times=recovery_times,
            final_configuration=process.configuration(),
        )
