"""Adversarial reassignment strategies.

An adversary takes the current load vector and returns a new one with the
*same total number of balls* (it may not create or destroy balls — that is
the constraint of the Section 4.1 fault model).  Strategies range from the
worst case for convergence time (concentrate everything in one bin) to a
mild reshuffle (random permutation of bin labels).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Type

import numpy as np

from ..core.config import LoadConfiguration
from ..errors import ConfigurationError
from ..types import LoadVector

__all__ = [
    "Adversary",
    "ConcentrateAdversary",
    "PyramidAdversary",
    "ShuffleAdversary",
    "TargetHeaviestAdversary",
    "get_adversary",
    "available_adversaries",
]


class Adversary(ABC):
    """A ball-conserving reassignment of the current configuration."""

    name: str = "abstract"

    @abstractmethod
    def reassign(self, loads: LoadVector, rng: np.random.Generator) -> np.ndarray:
        """Return a new load vector with the same total as ``loads``."""

    def __call__(self, loads: LoadVector, rng: np.random.Generator) -> np.ndarray:
        result = np.asarray(self.reassign(loads, rng), dtype=np.int64)
        if result.shape != np.asarray(loads).shape:
            raise ConfigurationError(
                f"{type(self).__name__} changed the number of bins"
            )
        if int(result.sum()) != int(np.asarray(loads).sum()):
            raise ConfigurationError(
                f"{type(self).__name__} did not conserve the number of balls"
            )
        if np.any(result < 0):
            raise ConfigurationError(f"{type(self).__name__} produced negative loads")
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class ConcentrateAdversary(Adversary):
    """Move every ball into a single bin — the worst case for convergence.

    The target bin is chosen uniformly at random each fault (a fixed target
    would be equivalent for the anonymous process).
    """

    name = "concentrate"

    def reassign(self, loads: LoadVector, rng: np.random.Generator) -> np.ndarray:
        loads = np.asarray(loads)
        out = np.zeros_like(loads)
        out[int(rng.integers(0, loads.size))] = int(loads.sum())
        return out


class PyramidAdversary(Adversary):
    """Rebuild the configuration as a geometric "pyramid" (half the balls in
    the first bin, half of the rest in the second, ...)."""

    name = "pyramid"

    def reassign(self, loads: LoadVector, rng: np.random.Generator) -> np.ndarray:
        loads = np.asarray(loads)
        total = int(loads.sum())
        return LoadConfiguration.pyramid(loads.size, total).as_array()


class ShuffleAdversary(Adversary):
    """Permute bin labels uniformly at random — preserves the load multiset,
    so it perturbs token positions without changing any load statistic."""

    name = "shuffle"

    def reassign(self, loads: LoadVector, rng: np.random.Generator) -> np.ndarray:
        loads = np.asarray(loads)
        return loads[rng.permutation(loads.size)]


class TargetHeaviestAdversary(Adversary):
    """Move a fraction of all balls onto the currently heaviest bin.

    Parameters
    ----------
    fraction:
        Fraction of the total ball count to pile onto the heaviest bin
        (clipped to what the other bins actually hold).
    """

    name = "target_heaviest"

    def __init__(self, fraction: float = 0.5) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError(f"fraction must be in (0, 1], got {fraction}")
        self.fraction = float(fraction)

    def reassign(self, loads: LoadVector, rng: np.random.Generator) -> np.ndarray:
        loads = np.array(loads, dtype=np.int64, copy=True)
        total = int(loads.sum())
        if total == 0:
            return loads
        target = int(np.argmax(loads))
        to_move = int(self.fraction * total)
        # harvest balls from the other bins, largest first, until quota met
        order = np.argsort(loads)[::-1]
        for bin_index in order:
            if to_move <= 0:
                break
            if bin_index == target:
                continue
            take = min(int(loads[bin_index]), to_move)
            loads[bin_index] -= take
            loads[target] += take
            to_move -= take
        return loads


_REGISTRY: Dict[str, Type] = {
    cls.name: cls
    for cls in (ConcentrateAdversary, PyramidAdversary, ShuffleAdversary, TargetHeaviestAdversary)
}


def available_adversaries() -> List[str]:
    """Names accepted by :func:`get_adversary`."""
    return sorted(_REGISTRY)


def get_adversary(name_or_instance) -> Adversary:
    """Resolve an adversary from a name, class, or instance."""
    if isinstance(name_or_instance, Adversary):
        return name_or_instance
    if isinstance(name_or_instance, type) and issubclass(name_or_instance, Adversary):
        return name_or_instance()
    if isinstance(name_or_instance, str):
        key = name_or_instance.lower()
        if key not in _REGISTRY:
            raise ConfigurationError(
                f"unknown adversary {name_or_instance!r}; "
                f"available: {', '.join(available_adversaries())}"
            )
        return _REGISTRY[key]()
    raise ConfigurationError(f"cannot interpret {name_or_instance!r} as an adversary")
