"""Adversarial reassignment strategies.

An adversary takes the current load vector and returns a new one with the
*same total number of balls* (it may not create or destroy balls — that is
the constraint of the Section 4.1 fault model).  Strategies range from the
worst case for convergence time (concentrate everything in one bin) to a
mild reshuffle (random permutation of bin labels).

Every adversary operates at two granularities: :meth:`Adversary.reassign`
rewrites one load vector, and :meth:`Adversary.apply_batch` rewrites a
whole ``(R, n)`` ensemble matrix at once — each replica is attacked
independently, with the ball-conservation constraint enforced per replica.
The concrete strategies override :meth:`Adversary.reassign_batch` with
fully vectorized implementations; custom subclasses that only implement
``reassign`` fall back to a row-wise loop and still get the batch
validation for free.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Type

import numpy as np

from ..core.config import LoadConfiguration
from ..errors import ConfigurationError
from ..types import LoadVector

__all__ = [
    "Adversary",
    "ConcentrateAdversary",
    "PyramidAdversary",
    "ShuffleAdversary",
    "TargetHeaviestAdversary",
    "get_adversary",
    "available_adversaries",
]


class Adversary(ABC):
    """A ball-conserving reassignment of the current configuration."""

    name: str = "abstract"

    @abstractmethod
    def reassign(self, loads: LoadVector, rng: np.random.Generator) -> np.ndarray:
        """Return a new load vector with the same total as ``loads``."""

    def reassign_batch(
        self, loads: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Return a new ``(R, n)`` matrix; each row conserves its own total.

        The default falls back to calling :meth:`reassign` row by row;
        concrete strategies override this with vectorized implementations.
        """
        return np.stack(
            [np.asarray(self.reassign(row, rng)) for row in np.asarray(loads)]
        )

    def __call__(self, loads: LoadVector, rng: np.random.Generator) -> np.ndarray:
        result = np.asarray(self.reassign(loads, rng), dtype=np.int64)
        if result.shape != np.asarray(loads).shape:
            raise ConfigurationError(
                f"{type(self).__name__} changed the number of bins"
            )
        if int(result.sum()) != int(np.asarray(loads).sum()):
            raise ConfigurationError(
                f"{type(self).__name__} did not conserve the number of balls"
            )
        if np.any(result < 0):
            raise ConfigurationError(f"{type(self).__name__} produced negative loads")
        return result

    def apply_batch(
        self, loads: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Reassign every replica of an ``(R, n)`` matrix, validated.

        The Section 4.1 constraint is enforced *per replica*: the returned
        matrix must have the same shape, row sums identical to the input's
        (no ball created or destroyed in any replica), and no negative
        loads.
        """
        loads = np.asarray(loads)
        if loads.ndim != 2:
            raise ConfigurationError(
                f"apply_batch expects an (R, n) matrix, got ndim={loads.ndim}"
            )
        result = np.asarray(self.reassign_batch(loads, rng), dtype=np.int64)
        if result.shape != loads.shape:
            raise ConfigurationError(
                f"{type(self).__name__} changed the ensemble shape "
                f"({loads.shape} -> {result.shape})"
            )
        before = loads.sum(axis=1)
        after = result.sum(axis=1)
        if not np.array_equal(before, after):
            bad = int(np.flatnonzero(before != after)[0])
            raise ConfigurationError(
                f"{type(self).__name__} did not conserve balls in replica "
                f"{bad}: {int(before[bad])} -> {int(after[bad])}"
            )
        if np.any(result < 0):
            raise ConfigurationError(
                f"{type(self).__name__} produced negative loads"
            )
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class ConcentrateAdversary(Adversary):
    """Move every ball into a single bin — the worst case for convergence.

    The target bin is chosen uniformly at random each fault (a fixed target
    would be equivalent for the anonymous process); in a batch every
    replica draws its own target.
    """

    name = "concentrate"

    def reassign(self, loads: LoadVector, rng: np.random.Generator) -> np.ndarray:
        loads = np.asarray(loads)
        out = np.zeros_like(loads)
        out[int(rng.integers(0, loads.size))] = int(loads.sum())
        return out

    def reassign_batch(
        self, loads: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        loads = np.asarray(loads)
        R, n = loads.shape
        out = np.zeros_like(loads)
        targets = rng.integers(0, n, size=R)
        out[np.arange(R), targets] = loads.sum(axis=1)
        return out


class PyramidAdversary(Adversary):
    """Rebuild the configuration as a geometric "pyramid" (half the balls in
    the first bin, half of the rest in the second, ...)."""

    name = "pyramid"

    def reassign(self, loads: LoadVector, rng: np.random.Generator) -> np.ndarray:
        loads = np.asarray(loads)
        total = int(loads.sum())
        return LoadConfiguration.pyramid(loads.size, total).as_array()

    def reassign_batch(
        self, loads: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        loads = np.asarray(loads)
        R, n = loads.shape
        totals = loads.sum(axis=1)
        out = np.empty_like(loads)
        # the pyramid shape depends only on the total; build each distinct
        # total once (ensembles usually share one ball count per replica)
        for total in np.unique(totals):
            row = LoadConfiguration.pyramid(n, int(total)).as_array()
            out[totals == total] = row
        return out


class ShuffleAdversary(Adversary):
    """Permute bin labels uniformly at random — preserves the load multiset,
    so it perturbs token positions without changing any load statistic."""

    name = "shuffle"

    def reassign(self, loads: LoadVector, rng: np.random.Generator) -> np.ndarray:
        loads = np.asarray(loads)
        return loads[rng.permutation(loads.size)]

    def reassign_batch(
        self, loads: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        # one independent permutation per replica, in a single call
        return rng.permuted(np.asarray(loads), axis=1)


class TargetHeaviestAdversary(Adversary):
    """Move a fraction of all balls onto the currently heaviest bin.

    Parameters
    ----------
    fraction:
        Fraction of the total ball count to pile onto the heaviest bin
        (clipped to what the other bins actually hold).
    """

    name = "target_heaviest"

    def __init__(self, fraction: float = 0.5) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError(f"fraction must be in (0, 1], got {fraction}")
        self.fraction = float(fraction)

    def reassign(self, loads: LoadVector, rng: np.random.Generator) -> np.ndarray:
        loads = np.array(loads, dtype=np.int64, copy=True)
        total = int(loads.sum())
        if total == 0:
            return loads
        target = int(np.argmax(loads))
        to_move = int(self.fraction * total)
        # harvest balls from the other bins, largest first, until quota met
        order = np.argsort(loads)[::-1]
        for bin_index in order:
            if to_move <= 0:
                break
            if bin_index == target:
                continue
            take = min(int(loads[bin_index]), to_move)
            loads[bin_index] -= take
            loads[target] += take
            to_move -= take
        return loads

    def reassign_batch(
        self, loads: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        loads = np.array(loads, dtype=np.int64, copy=True)
        R, n = loads.shape
        totals = loads.sum(axis=1)
        quotas = (self.fraction * totals).astype(np.int64)
        targets = loads.argmax(axis=1)
        # visit donors in descending-load order (excluding each replica's
        # target); the amount taken from donor i is the part of the quota
        # not yet covered by the donors before it, clipped to its load
        order = np.argsort(loads, axis=1)[:, ::-1]
        sorted_loads = np.take_along_axis(loads, order, axis=1)
        donor_loads = np.where(order == targets[:, None], 0, sorted_loads)
        taken_before = np.cumsum(donor_loads, axis=1) - donor_loads
        take = np.clip(quotas[:, None] - taken_before, 0, donor_loads)
        out = np.empty_like(loads)
        np.put_along_axis(out, order, sorted_loads - take, axis=1)
        out[np.arange(R), targets] += take.sum(axis=1)
        return out


_REGISTRY: Dict[str, Type] = {
    cls.name: cls
    for cls in (ConcentrateAdversary, PyramidAdversary, ShuffleAdversary, TargetHeaviestAdversary)
}


def available_adversaries() -> List[str]:
    """Names accepted by :func:`get_adversary`."""
    return sorted(_REGISTRY)


def get_adversary(name_or_instance) -> Adversary:
    """Resolve an adversary from a name, class, or instance."""
    if isinstance(name_or_instance, Adversary):
        return name_or_instance
    if isinstance(name_or_instance, type) and issubclass(name_or_instance, Adversary):
        return name_or_instance()
    if isinstance(name_or_instance, str):
        key = name_or_instance.lower()
        if key not in _REGISTRY:
            raise ConfigurationError(
                f"unknown adversary {name_or_instance!r}; "
                f"available: {', '.join(available_adversaries())}"
            )
        return _REGISTRY[key]()
    raise ConfigurationError(f"cannot interpret {name_or_instance!r} as an adversary")
