"""Observer plumbing for the unified (replica-aware) observation layer.

Every engine in the repository — the sequential simulators, the batched
``(R, n)`` processes, and the sweep scheduler on top of them — reports its
state through one protocol: ``observer.observe(round_index, loads)`` where
``loads`` is an ``(R, n)`` load matrix.  The sequential observer protocol of
:mod:`repro.core.observers` is the ``R == 1`` view of this one: the helpers
here normalize a 1-D load vector into a ``(1, n)`` matrix, so the batched
trackers in :mod:`repro.metrics.trackers` can be attached unchanged to a
sequential simulator, and :func:`as_batched` adapts a legacy sequential
observer to a batched ``R == 1`` run.

Observers must treat the arrays they receive as read-only (the engines pass
views of their internal buffers for efficiency).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..types import Observer

__all__ = [
    "as_load_matrix",
    "as_batched",
    "BatchedCallbackObserver",
    "BatchedObserverList",
    "SequentialObserverAdapter",
    "TRACE_ELEMENT_BUDGET",
    "check_trace_budget",
]

#: Default snapshot budget (total stored elements) for the trace recorders;
#: ~400 MB of int64 data.  Million-round runs must either raise the budget
#: explicitly or use a stride — silent RAM exhaustion is not an option.
TRACE_ELEMENT_BUDGET = 50_000_000


def as_load_matrix(loads) -> np.ndarray:
    """Normalize a load vector or matrix into an ``(R, n)`` matrix view.

    A 1-D length-``n`` vector (the sequential protocol) becomes a
    ``(1, n)`` view of the same data; a 2-D matrix passes through.

    >>> as_load_matrix(np.array([1, 0, 2])).shape
    (1, 3)
    >>> as_load_matrix(np.zeros((4, 8), dtype=np.int64)).shape
    (4, 8)
    """
    arr = np.asarray(loads)
    if arr.ndim == 1:
        return arr.reshape(1, -1)
    if arr.ndim == 2:
        return arr
    raise ConfigurationError(
        f"loads must be a 1-D vector or a 2-D (R, n) matrix, got ndim={arr.ndim}"
    )


def resolve_trace_budget(max_elements) -> int:
    """Validate and default a trace recorder's element budget.

    Shared by :class:`repro.core.metrics.TraceRecorder` and its batched
    port so the budget policy lives in one place.
    """
    if max_elements is None:
        return TRACE_ELEMENT_BUDGET
    if max_elements < 1:
        raise ConfigurationError(
            f"max_elements must be >= 1, got {max_elements}"
        )
    return int(max_elements)


def check_trace_budget(
    stored_elements: int, next_elements: int, budget: int, what: str
) -> None:
    """Refuse a snapshot that would push a trace past its element budget."""
    if stored_elements + next_elements > budget:
        raise ConfigurationError(
            f"{what} would exceed its element budget: {stored_elements} "
            f"elements stored, next snapshot adds {next_elements}, budget is "
            f"{budget}. Raise max_elements, increase the stride, or use a "
            "streaming tracker instead of a full trace"
        )


class BatchedCallbackObserver:
    """Adapt a bare callable ``f(round_index, loads)`` to the batched protocol."""

    def __init__(self, callback: Callable[[int, np.ndarray], None]) -> None:
        self._callback = callback

    def observe(self, round_index: int, loads: np.ndarray) -> None:
        self._callback(round_index, loads)


class SequentialObserverAdapter:
    """Present a sequential observer as a batched one (``R == 1`` only).

    The wrapped observer receives the single replica's 1-D load vector, so
    legacy :class:`repro.core.metrics` trackers can ride on a batched
    ``R == 1`` run and produce byte-identical output to a sequential run of
    the same stream.
    """

    def __init__(self, observer: Observer) -> None:
        if not hasattr(observer, "observe"):
            raise ConfigurationError(
                f"sequential observer must implement .observe(t, loads), got {observer!r}"
            )
        self.observer = observer

    def observe(self, round_index: int, loads: np.ndarray) -> None:
        matrix = as_load_matrix(loads)
        if matrix.shape[0] != 1:
            raise ConfigurationError(
                "a sequential observer can only be attached to a single-replica "
                f"(R == 1) run; got R = {matrix.shape[0]}"
            )
        self.observer.observe(round_index, matrix[0])


def as_batched(observer) -> SequentialObserverAdapter:
    """Wrap a sequential observer/callable for use on an ``R == 1`` batched run."""
    if callable(observer) and not hasattr(observer, "observe"):
        observer = BatchedCallbackObserver(observer)
        # the callback sees the 1-D vector, like a sequential callback would
    return SequentialObserverAdapter(observer)


class BatchedObserverList:
    """A composite batched observer forwarding to an ordered list of observers.

    The engines hold exactly one of these, so the hot loop pays one
    attribute lookup regardless of how many metrics are attached.
    """

    def __init__(self, observers: Iterable = ()) -> None:
        self._observers: List = []
        for obs in observers:
            self.add(obs)

    def add(self, observer) -> None:
        """Attach *observer*; bare callables are wrapped automatically."""
        if hasattr(observer, "observe"):
            self._observers.append(observer)
        elif callable(observer):
            self._observers.append(BatchedCallbackObserver(observer))
        else:
            raise ConfigurationError(
                f"observer must implement .observe(t, loads) or be callable, got {observer!r}"
            )

    def observe(self, round_index: int, loads: np.ndarray) -> None:
        for obs in self._observers:
            obs.observe(round_index, loads)

    def __len__(self) -> int:
        return len(self._observers)

    def __iter__(self):
        return iter(self._observers)

    @property
    def is_empty(self) -> bool:
        return not self._observers

    @staticmethod
    def coerce(observers) -> "BatchedObserverList":
        """Normalize ``None`` / a single observer / a sequence into a list."""
        if observers is None:
            return BatchedObserverList()
        if isinstance(observers, BatchedObserverList):
            return observers
        if hasattr(observers, "observe") or callable(observers):
            return BatchedObserverList([observers])
        if isinstance(observers, (Sequence, Iterable)):
            return BatchedObserverList(observers)
        raise ConfigurationError(f"cannot interpret {observers!r} as observers")
