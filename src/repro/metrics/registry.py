"""Named metrics: validated names the ensemble layer can request.

The ``metrics=`` field of :class:`~repro.parallel.ensemble.EnsembleSpec`
(and therefore sweep specs and the CLI) refers to trackers by name.  Names
are validated here at spec-construction time, so a typo fails before
anything runs, and the accepted spelling — a comma-separated string — is a
JSON scalar, which lets sweeps serialize metric selections through store
headers and manifest configs unchanged.

>>> normalize_metric_names("max_load, legitimacy")
('max_load', 'legitimacy')
>>> [name for name, _ in build_trackers(("empty_bins",))]
['empty_bins']
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple, Union

from .trackers import (
    BatchedBinEmptyingTracker,
    BatchedEmptyBinsTracker,
    BatchedLegitimacyTracker,
    BatchedLoadHistogramTracker,
    BatchedLoadMomentsTracker,
    BatchedMaxLoadTracker,
    BatchedTraceRecorder,
)
from ..core.config import DEFAULT_BETA
from ..errors import ConfigurationError

__all__ = ["METRIC_NAMES", "normalize_metric_names", "make_tracker", "build_trackers"]

_FACTORIES: Dict[str, Callable[[float], object]] = {
    "max_load": lambda beta: BatchedMaxLoadTracker(),
    "empty_bins": lambda beta: BatchedEmptyBinsTracker(),
    "legitimacy": lambda beta: BatchedLegitimacyTracker(beta=beta),
    "moments": lambda beta: BatchedLoadMomentsTracker(),
    "histogram": lambda beta: BatchedLoadHistogramTracker(),
    "trace": lambda beta: BatchedTraceRecorder(),
    "bin_emptying": lambda beta: BatchedBinEmptyingTracker(),
}

#: Metric names accepted by ``EnsembleSpec.metrics`` and the CLI.
METRIC_NAMES: Tuple[str, ...] = tuple(_FACTORIES)

MetricsLike = Union[None, str, Sequence[str]]


def normalize_metric_names(metrics: MetricsLike) -> Tuple[str, ...]:
    """Validate a metric selection and normalize it to a tuple of names.

    Accepts ``None`` / an empty value, a comma-separated string (the
    JSON-scalar spelling sweeps use), or a sequence of names.  Unknown
    names and duplicates are rejected.
    """
    if metrics is None:
        return ()
    if isinstance(metrics, str):
        names = [token.strip() for token in metrics.split(",") if token.strip()]
    else:
        names = [str(token).strip() for token in metrics]
    seen = set()
    for name in names:
        if name not in _FACTORIES:
            raise ConfigurationError(
                f"unknown metric {name!r}; available: {', '.join(METRIC_NAMES)}"
            )
        if name in seen:
            raise ConfigurationError(f"metric {name!r} requested twice")
        seen.add(name)
    return tuple(names)


def make_tracker(name: str, beta: float = DEFAULT_BETA):
    """Build one named batched tracker."""
    if name not in _FACTORIES:
        raise ConfigurationError(
            f"unknown metric {name!r}; available: {', '.join(METRIC_NAMES)}"
        )
    return _FACTORIES[name](beta)


def build_trackers(
    metrics: MetricsLike, beta: float = DEFAULT_BETA
) -> List[Tuple[str, object]]:
    """Build ``(name, tracker)`` pairs for a validated metric selection."""
    return [
        (name, make_tracker(name, beta=beta))
        for name in normalize_metric_names(metrics)
    ]
