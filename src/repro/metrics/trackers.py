"""Replica-aware (batched) ports of the per-round metric trackers.

Each tracker here is the vectorized counterpart of one
:mod:`repro.core.metrics` tracker: it implements the batched observer
protocol ``observe(round_index, loads)`` with ``loads`` an ``(R, n)``
matrix — or a plain length-``n`` vector, which is treated as ``R == 1``,
so the same tracker instance works on a sequential simulator unchanged.

All trackers reduce as they observe: with series recording disabled the
max-load and empty-bins trackers keep ``O(R)`` state, the legitimacy and
bin-emptying trackers keep ``O(R)`` / ``O(R·n)`` state, and the histogram
keeps ``O(R·K)`` — never ``O(R·T)`` over a ``T``-round run.  At ``R == 1``
every tracker produces the same series and summaries as its sequential
counterpart on the same trajectory (covered by the stream-equality tests).

Trackers observe at whatever cadence the engine drives them (see
``observe_every`` on the batched ``run`` methods); window-style summaries
therefore cover the *observed* rounds.  The engines' own window metrics
(``max_load_seen`` etc. in :class:`~repro.core.batched.EnsembleResult`)
remain exact over every simulated round regardless of the stride.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .base import as_load_matrix, check_trace_budget, resolve_trace_budget
from .fused import FusedSegmentStats
from .payload import MetricPayload
from ..core.config import DEFAULT_BETA, legitimacy_threshold
from ..errors import ConfigurationError

__all__ = [
    "BatchedMaxLoadTracker",
    "BatchedEmptyBinsTracker",
    "BatchedLegitimacyTracker",
    "BatchedLoadMomentsTracker",
    "BatchedLoadHistogramTracker",
    "BatchedTraceRecorder",
    "BatchedBinEmptyingTracker",
]


class _BatchedTracker:
    """Shape binding and bookkeeping shared by the batched trackers.

    Dimensions bind on the first ``observe`` call — or eagerly through
    :meth:`bind`, which the ensemble engine uses so that payloads are
    well-shaped ``(R,)`` vectors even when a run executes zero rounds
    (e.g. every replica passes the ``stop_when_legitimate`` pre-check).
    Later observations must match the bound shape.

    Subclasses implement :meth:`_on_bind` (allocate per-replica state) and
    :meth:`_update` (fold one observation in).  The observed-round log
    (``rounds``) is kept only by trackers whose payload carries a time
    series (``record_rounds``); summary-only trackers stay ``O(R)`` no
    matter how many rounds they observe.
    """

    #: Payload name; subclasses override.
    metric_name = ""
    #: Whether this tracker can fold in-kernel partials via
    #: :meth:`ingest_fused` (see :mod:`repro.metrics.fused`).
    supports_fused_ingest = False
    #: Whether fused ingestion needs the load sum / sum-of-squares blocks.
    fused_needs_moments = False

    def __init__(self) -> None:
        self.n_replicas: Optional[int] = None
        self.n_bins: Optional[int] = None
        self.rounds_observed: int = 0
        self.rounds: List[int] = []
        #: Whether observation round indexes are logged (series trackers).
        self.record_rounds: bool = False

    def bind(self, n_replicas: int, n_bins: int) -> None:
        """Fix the ``(R, n)`` dimensions before any observation."""
        if n_replicas < 1 or n_bins < 1:
            raise ConfigurationError(
                f"cannot bind to shape ({n_replicas}, {n_bins})"
            )
        if self.n_replicas is None:
            self.n_replicas = int(n_replicas)
            self.n_bins = int(n_bins)
            self._on_bind()
        elif (self.n_replicas, self.n_bins) != (n_replicas, n_bins):
            raise ConfigurationError(
                f"{type(self).__name__} was bound to shape "
                f"({self.n_replicas}, {self.n_bins}) but got "
                f"({n_replicas}, {n_bins})"
            )

    def _on_bind(self) -> None:
        pass

    def _update(self, round_index: int, matrix: np.ndarray) -> None:
        raise NotImplementedError

    def observe(self, round_index: int, loads) -> None:
        matrix = as_load_matrix(loads)
        self.bind(int(matrix.shape[0]), int(matrix.shape[1]))
        self._update(int(round_index), matrix)
        if self.record_rounds:
            self.rounds.append(int(round_index))
        self.rounds_observed += 1

    def _bind_fused(self, stats: FusedSegmentStats) -> None:
        """Bind dimensions and log observed rounds for a fused segment."""
        self.bind(stats.n_replicas, stats.n_bins)
        if self.record_rounds:
            self.rounds.extend(int(t) for t in stats.rounds)
        self.rounds_observed += stats.n_observations

    def _rounds_array(self) -> np.ndarray:
        return np.asarray(self.rounds, dtype=np.int64)

    def payload(self) -> MetricPayload:
        raise NotImplementedError


class _ScalarSeriesTracker(_BatchedTracker):
    """Shared machinery for scalar-per-replica series trackers.

    Subclasses define one per-round reduction (``_reduce``), the window
    accumulator it folds into (``_initial_window`` / ``_accumulate``), and
    the payload key names; this base handles series recording, binding,
    and payload assembly once for all of them.
    """

    #: Payload key of the recorded series; subclasses override.
    series_key = ""
    #: Payload key of the window summary; subclasses override.
    window_key = ""
    #: :class:`FusedSegmentStats` field this tracker's per-round reduction
    #: corresponds to; fused-capable subclasses override.
    fused_field = ""

    def __init__(self, record_series: bool = True) -> None:
        super().__init__()
        self.record_series = record_series
        self.record_rounds = record_series
        self._series: List[np.ndarray] = []
        self._window: Optional[np.ndarray] = None
        self._last: Optional[np.ndarray] = None

    def _initial_window(self) -> np.ndarray:
        raise NotImplementedError

    def _reduce(self, matrix: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _accumulate(self, window: np.ndarray, value: np.ndarray) -> None:
        raise NotImplementedError

    def _on_bind(self) -> None:
        self._window = self._initial_window()

    def _update(self, round_index: int, matrix: np.ndarray) -> None:
        value = self._reduce(matrix)
        if self.record_series:
            self._series.append(value)
        self._accumulate(self._window, value)
        self._last = value

    def ingest_fused(self, stats: FusedSegmentStats) -> None:
        """Fold a kernel-computed segment of per-round reductions.

        The kernel records the same integer reduction :meth:`_reduce`
        would compute from the matrix, so the resulting state is
        bit-identical to having observed every point through
        :meth:`observe`.
        """
        self._bind_fused(stats)
        block = getattr(stats, self.fused_field)
        for k in range(stats.n_observations):
            value = block[k].astype(np.int64)
            if self.record_series:
                self._series.append(value)
            self._accumulate(self._window, value)
            self._last = value

    @property
    def series(self) -> List[np.ndarray]:
        """Per-observation ``(R,)`` vectors (empty when not recording)."""
        return self._series

    @property
    def final(self) -> Optional[np.ndarray]:
        """The reduction at the last observation (``None`` before any)."""
        return self._last

    def as_array(self) -> np.ndarray:
        """The recorded series as a ``(T, R)`` matrix."""
        if not self._series:
            R = self.n_replicas or 0
            return np.zeros((0, R), dtype=np.int64)
        return np.stack(self._series)

    def payload(self) -> MetricPayload:
        if self.n_replicas is None:
            window = np.zeros(0, dtype=np.int64)
            final = window
        else:
            window = self._window.copy()
            final = (
                self._last
                if self._last is not None
                else np.zeros(self.n_replicas, dtype=np.int64)
            ).copy()
        return MetricPayload(
            name=self.metric_name,
            rounds=self._rounds_array(),
            series={self.series_key: self.as_array()} if self.record_series else {},
            summaries={self.window_key: window, "final": final},
        )


class BatchedMaxLoadTracker(_ScalarSeriesTracker):
    """Per-replica ``M(t)`` series plus the running window maximum.

    >>> tracker = BatchedMaxLoadTracker()
    >>> tracker.observe(1, np.array([[2, 0], [1, 1]]))
    >>> tracker.observe(2, np.array([[1, 1], [0, 2]]))
    >>> tracker.window_max.tolist()
    [2, 2]
    >>> tracker.as_array().tolist()
    [[2, 1], [1, 2]]
    """

    metric_name = "max_load"
    series_key = "max_load"
    window_key = "window_max"
    fused_field = "max_load"
    supports_fused_ingest = True

    def _initial_window(self) -> np.ndarray:
        return np.zeros(self.n_replicas, dtype=np.int64)

    def _reduce(self, matrix: np.ndarray) -> np.ndarray:
        return matrix.max(axis=1).astype(np.int64)

    def _accumulate(self, window: np.ndarray, value: np.ndarray) -> None:
        np.maximum(window, value, out=window)

    @property
    def window_max(self) -> Optional[np.ndarray]:
        """Per-replica running maximum over the observed rounds."""
        return self._window


class BatchedEmptyBinsTracker(_ScalarSeriesTracker):
    """Per-replica empty-bin counts and the running window minimum."""

    metric_name = "empty_bins"
    series_key = "empty_bins"
    window_key = "window_min"
    fused_field = "empty_bins"
    supports_fused_ingest = True

    def _initial_window(self) -> np.ndarray:
        return np.full(self.n_replicas, self.n_bins, dtype=np.int64)

    def _reduce(self, matrix: np.ndarray) -> np.ndarray:
        return (matrix == 0).sum(axis=1).astype(np.int64)

    def _accumulate(self, window: np.ndarray, value: np.ndarray) -> None:
        np.minimum(window, value, out=window)

    @property
    def window_min(self) -> Optional[np.ndarray]:
        """Per-replica running minimum over the observed rounds."""
        return self._window

    @property
    def min_fraction(self) -> Optional[np.ndarray]:
        """Smallest per-replica empty-bin fraction seen so far."""
        if self.rounds_observed == 0 or not self.n_bins:
            return None
        return self._window / self.n_bins

    def always_at_least(self, threshold_fraction: float = 0.25) -> np.ndarray:
        """Per-replica Lemma 2 event: every observed round had at least
        ``threshold_fraction`` of the bins empty."""
        frac = self.min_fraction
        if frac is None:
            return np.zeros(self.n_replicas or 0, dtype=bool)
        return frac >= threshold_fraction


class BatchedLegitimacyTracker(_BatchedTracker):
    """Per-replica legitimacy hitting/holding times (Theorem 1), streaming.

    State is three ``(R,)`` vectors regardless of run length: the first
    observed legitimate round, the first violation after that hit, and the
    total violation count (all with ``-1`` sentinels where applicable).

    Hitting times are measured at observation granularity: with
    ``observe_every > 1`` a hit between observation points is attributed
    to the next observed round, and a transient legitimacy window shorter
    than the stride can be missed.  For exact hitting times use
    ``observe_every=1`` or the engine's own
    ``EnsembleResult.first_legitimate_round``, which is exact at any
    stride.
    """

    metric_name = "legitimacy"
    supports_fused_ingest = True

    def __init__(self, beta: float = DEFAULT_BETA) -> None:
        super().__init__()
        self.beta = beta
        self.first_legitimate_round: Optional[np.ndarray] = None
        self.first_violation_after_hit: Optional[np.ndarray] = None
        self.violations: Optional[np.ndarray] = None
        self._threshold: Optional[float] = None

    def _on_bind(self) -> None:
        R = self.n_replicas
        self.first_legitimate_round = np.full(R, -1, dtype=np.int64)
        self.first_violation_after_hit = np.full(R, -1, dtype=np.int64)
        self.violations = np.zeros(R, dtype=np.int64)
        self._threshold = legitimacy_threshold(self.n_bins, self.beta)

    def _fold_legit(self, round_index: int, legit: np.ndarray) -> None:
        """Fold one observation's per-replica legitimacy flags."""
        newly = legit & (self.first_legitimate_round < 0)
        self.first_legitimate_round[newly] = round_index
        bad = ~legit
        self.violations += bad
        relapsed = (
            bad
            & (self.first_legitimate_round >= 0)
            & (self.first_violation_after_hit < 0)
        )
        self.first_violation_after_hit[relapsed] = round_index

    def _update(self, round_index: int, matrix: np.ndarray) -> None:
        self._fold_legit(round_index, matrix.max(axis=1) <= self._threshold)

    def ingest_fused(self, stats: FusedSegmentStats) -> None:
        """Replay kernel-computed max loads through the legitimacy fold.

        The kernel's per-observation max load is the exact integer the
        matrix reduction would produce, and the threshold comparison is
        the same, so fused state is bit-identical to observed state.
        """
        self._bind_fused(stats)
        for k in range(stats.n_observations):
            legit = stats.max_load[k] <= self._threshold
            self._fold_legit(int(stats.rounds[k]), legit)

    @property
    def converged(self) -> np.ndarray:
        if self.first_legitimate_round is None:
            return np.zeros(self.n_replicas or 0, dtype=bool)
        return self.first_legitimate_round >= 0

    @property
    def stable_after_convergence(self) -> np.ndarray:
        """Replicas that reached legitimacy and never left it afterwards."""
        if self.first_legitimate_round is None:
            return np.zeros(self.n_replicas or 0, dtype=bool)
        return self.converged & (self.first_violation_after_hit < 0)

    def payload(self) -> MetricPayload:
        R = self.n_replicas or 0
        if self.first_legitimate_round is None:
            first = np.full(R, -1, dtype=np.int64)
            violation = np.full(R, -1, dtype=np.int64)
            count = np.zeros(R, dtype=np.int64)
        else:
            first = self.first_legitimate_round
            violation = self.first_violation_after_hit
            count = self.violations
        return MetricPayload(
            name=self.metric_name,
            rounds=self._rounds_array(),
            summaries={
                "first_legitimate_round": first.copy(),
                "first_violation_after_hit": violation.copy(),
                "violations": count.copy(),
                "stable_after_convergence": self.stable_after_convergence.astype(
                    np.int64
                ),
            },
        )


class BatchedLoadMomentsTracker(_BatchedTracker):
    """Streaming per-replica moments of the observed load distribution.

    Accumulates the count of observed (round, bin) values plus the exact
    integer load sum and sum of squares, from which the per-replica mean
    and (population) variance over all observed configurations follow.

    Loads are integers, so integer accumulators make the streaming
    update *exact* — there is nothing for Welford's recurrence to
    stabilize, and a kernel-side partial (:meth:`ingest_fused`) merges
    into state bit-identical to Python-side observation.  Only the final
    mean/variance division happens in floating point.
    """

    metric_name = "moments"
    supports_fused_ingest = True
    fused_needs_moments = True

    def __init__(self) -> None:
        super().__init__()
        self.load_sum: Optional[np.ndarray] = None
        self.load_sumsq: Optional[np.ndarray] = None

    def _on_bind(self) -> None:
        R = self.n_replicas
        self.load_sum = np.zeros(R, dtype=np.int64)
        self.load_sumsq = np.zeros(R, dtype=np.int64)

    def _update(self, round_index: int, matrix: np.ndarray) -> None:
        m = matrix.astype(np.int64, copy=False)
        self.load_sum += m.sum(axis=1)
        self.load_sumsq += (m * m).sum(axis=1)

    def ingest_fused(self, stats: FusedSegmentStats) -> None:
        """Merge kernel-computed load sums and sums of squares."""
        if stats.load_sum is None or stats.load_sumsq is None:
            raise ConfigurationError(
                "moments tracker needs fused load_sum/load_sumsq blocks"
            )
        self._bind_fused(stats)
        self.load_sum += stats.load_sum.sum(axis=0)
        self.load_sumsq += stats.load_sumsq.sum(axis=0)

    @property
    def count(self) -> int:
        """Observed (round, bin) values per replica."""
        return self.rounds_observed * (self.n_bins or 0)

    @property
    def mean(self) -> Optional[np.ndarray]:
        """Per-replica mean load over all observed configurations."""
        if self.load_sum is None or self.count == 0:
            return None
        return self.load_sum / self.count

    @property
    def variance(self) -> Optional[np.ndarray]:
        """Per-replica population variance of the observed loads."""
        if self.load_sumsq is None or self.count == 0:
            return None
        mean = self.load_sum / self.count
        return self.load_sumsq / self.count - mean * mean

    def payload(self) -> MetricPayload:
        R = self.n_replicas or 0
        mean = self.mean
        var = self.variance
        if mean is None:
            mean = np.zeros(R, dtype=np.float64)
            var = np.zeros(R, dtype=np.float64)
        return MetricPayload(
            name=self.metric_name,
            rounds=self._rounds_array(),
            summaries={
                "mean_load": np.asarray(mean, dtype=np.float64),
                "load_variance": np.asarray(var, dtype=np.float64),
                "observations": np.full(R, self.count, dtype=np.int64),
            },
        )


class BatchedLoadHistogramTracker(_BatchedTracker):
    """Per-replica time-aggregated load distribution.

    ``counts[r, k]`` is the number of (observed round, bin) pairs of
    replica ``r`` with load exactly ``k``; loads above ``max_tracked_load``
    are clipped into the last bucket and counted in ``overflow``.
    """

    metric_name = "histogram"

    def __init__(self, max_tracked_load: int = 256) -> None:
        super().__init__()
        if max_tracked_load < 0:
            raise ConfigurationError(
                f"max_tracked_load must be >= 0, got {max_tracked_load}"
            )
        self.max_tracked_load = max_tracked_load
        self.counts: Optional[np.ndarray] = None
        self.overflow: Optional[np.ndarray] = None

    def _on_bind(self) -> None:
        R, K = self.n_replicas, self.max_tracked_load
        self.counts = np.zeros((R, K + 1), dtype=np.int64)
        self.overflow = np.zeros(R, dtype=np.int64)
        self._row_base = np.arange(R, dtype=np.int64)[:, None] * (K + 1)

    def _update(self, round_index: int, matrix: np.ndarray) -> None:
        K = self.max_tracked_load
        clipped = np.minimum(matrix, K)
        self.overflow += (matrix > K).sum(axis=1)
        flat = (clipped + self._row_base).ravel()
        self.counts += np.bincount(
            flat, minlength=self.n_replicas * (K + 1)
        ).reshape(self.n_replicas, K + 1)

    def distribution(self) -> np.ndarray:
        """Row-normalized ``(R, K + 1)`` occupancy distribution."""
        if self.counts is None:
            return np.zeros((self.n_replicas or 0, self.max_tracked_load + 1))
        totals = self.counts.sum(axis=1, keepdims=True)
        safe = np.where(totals == 0, 1, totals)
        return self.counts / safe

    def mean_load(self) -> np.ndarray:
        """Per-replica mean of the empirical occupancy distribution."""
        dist = self.distribution()
        return dist @ np.arange(dist.shape[1])

    def payload(self) -> MetricPayload:
        R = self.n_replicas or 0
        counts = (
            self.counts
            if self.counts is not None
            else np.zeros((R, self.max_tracked_load + 1), dtype=np.int64)
        )
        overflow = (
            self.overflow if self.overflow is not None else np.zeros(R, dtype=np.int64)
        )
        return MetricPayload(
            name=self.metric_name,
            rounds=self._rounds_array(),
            summaries={"mean_load": self.mean_load(), "overflow": overflow.copy()},
            arrays={"counts": counts.copy()},
        )


class BatchedTraceRecorder(_BatchedTracker):
    """Record full ``(R, n)`` snapshots every ``stride`` observations.

    Memory is ``O(snapshots · R · n)``, so the recorder enforces an element
    budget: an observation that would push the stored trace past
    ``max_elements`` raises a
    :class:`~repro.errors.ConfigurationError` instead of silently
    exhausting RAM on million-round runs.
    """

    metric_name = "trace"

    def __init__(
        self, stride: int = 1, max_elements: Optional[int] = None
    ) -> None:
        super().__init__()
        if stride < 1:
            raise ConfigurationError(f"stride must be >= 1, got {stride}")
        self.stride = stride
        self.max_elements = resolve_trace_budget(max_elements)
        self.snapshot_rounds: List[int] = []
        self.snapshots: List[np.ndarray] = []

    def _update(self, round_index: int, matrix: np.ndarray) -> None:
        if round_index % self.stride != 0:
            return
        per_snapshot = int(matrix.size)
        check_trace_budget(
            len(self.snapshots) * per_snapshot,
            per_snapshot,
            self.max_elements,
            f"{type(self).__name__}(stride={self.stride})",
        )
        self.snapshot_rounds.append(round_index)
        self.snapshots.append(np.array(matrix, dtype=np.int64, copy=True))

    def as_matrix(self) -> np.ndarray:
        """Snapshots stacked as a ``(num_snapshots, R, n)`` array."""
        if not self.snapshots:
            return np.zeros((0, self.n_replicas or 0, self.n_bins or 0), dtype=np.int64)
        return np.stack(self.snapshots)

    def payload(self) -> MetricPayload:
        R = self.n_replicas or 0
        return MetricPayload(
            name=self.metric_name,
            rounds=np.asarray(self.snapshot_rounds, dtype=np.int64),
            series={"trace": self.as_matrix()},
            summaries={
                "snapshots": np.full(R, len(self.snapshots), dtype=np.int64)
            },
        )


class BatchedBinEmptyingTracker(_BatchedTracker):
    """Per (replica, bin) first observed round at which the bin was empty.

    The batched analogue of the Lemma 4 measurement: state is one
    ``(R, n)`` matrix with ``-1`` for bins that have not yet been empty.
    """

    metric_name = "bin_emptying"

    def __init__(self) -> None:
        super().__init__()
        self.first_empty_round: Optional[np.ndarray] = None

    def _on_bind(self) -> None:
        self.first_empty_round = np.full(
            (self.n_replicas, self.n_bins), -1, dtype=np.int64
        )

    def _update(self, round_index: int, matrix: np.ndarray) -> None:
        newly = (self.first_empty_round < 0) & (matrix == 0)
        self.first_empty_round[newly] = round_index

    @property
    def all_emptied(self) -> np.ndarray:
        """Per-replica flag: every bin has been empty at least once."""
        if self.first_empty_round is None:
            return np.zeros(self.n_replicas or 0, dtype=bool)
        return (self.first_empty_round >= 0).all(axis=1)

    @property
    def last_first_empty(self) -> np.ndarray:
        """Per-replica round by which every bin had been empty (-1 if not yet)."""
        R = self.n_replicas or 0
        if self.first_empty_round is None:
            return np.full(R, -1, dtype=np.int64)
        result = self.first_empty_round.max(axis=1)
        result[~self.all_emptied] = -1
        return result

    def payload(self) -> MetricPayload:
        R = self.n_replicas or 0
        n = self.n_bins or 0
        first = (
            self.first_empty_round
            if self.first_empty_round is not None
            else np.full((R, n), -1, dtype=np.int64)
        )
        return MetricPayload(
            name=self.metric_name,
            rounds=self._rounds_array(),
            summaries={
                "all_emptied": self.all_emptied.astype(np.int64),
                "last_first_empty": self.last_first_empty,
            },
            arrays={"first_empty_round": first.copy()},
        )
