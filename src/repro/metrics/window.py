"""The shared window-metric run loop.

Before this module existed, the same per-round reduction — running max
load, running min empty-bin count, first legitimate round, optional
per-replica early stop — was hand-rolled three times: in the sequential
ensemble engine's ``_window_record``, in the batched reference loop of
:class:`~repro.core.batched.BatchedLoadProcess`, and (specialized) in the
streaming store reducers.  :func:`run_window` is now the single
implementation; the batched processes call it directly and the sequential
engine calls it through :class:`SingleReplicaView`, the ``R == 1`` adapter
that presents a sequential simulator as a batched one.

The loop also drives observers: every ``observe_every`` executed rounds
(and after the final executed round) the attached
:class:`~repro.metrics.base.BatchedObserverList` sees
``(round_index, loads)`` with the engine's current ``(R, n)`` state, where
``round_index`` is the global round counter of the most-advanced replica.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .base import BatchedObserverList
from ..core.config import DEFAULT_BETA, legitimacy_threshold
from ..errors import ConfigurationError

__all__ = ["run_window", "run_replica_window", "SingleReplicaView"]


class SingleReplicaView:
    """Adapt a sequential load process to the ``(1, n)`` batched-run surface.

    Works for any simulator exposing ``step() -> loads``, ``loads``,
    ``n_bins`` and ``round_index`` (``RepeatedBallsIntoBins``,
    ``DChoicesProcess``, ...).  The view owns the single replica's activity
    flag, so the shared loop's early-stop freezing applies to sequential
    runs too.
    """

    def __init__(self, process) -> None:
        self._process = process
        self._active = np.ones(1, dtype=bool)

    @property
    def process(self):
        return self._process

    @property
    def n_bins(self) -> int:
        return int(self._process.n_bins)

    @property
    def n_replicas(self) -> int:
        return 1

    @property
    def loads(self) -> np.ndarray:
        return np.asarray(self._process.loads).reshape(1, -1)

    @property
    def rounds_completed(self) -> np.ndarray:
        return np.asarray([self._process.round_index], dtype=np.int64)

    @property
    def active(self) -> np.ndarray:
        return self._active.copy()

    def step(self) -> np.ndarray:
        if self._active[0]:
            self._process.step()
        return self.loads

    def deactivate(self, mask) -> None:
        self._active[np.asarray(mask, dtype=bool)] = False


def run_window(
    process,
    rounds: int,
    threshold: float,
    stop_when_legitimate: bool = False,
    first_legit: Optional[np.ndarray] = None,
    observers=None,
    observe_every: int = 1,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Advance ``process`` up to ``rounds`` rounds, reducing window metrics.

    ``process`` exposes the batched stepping surface (``step``, ``loads``,
    ``active``, ``rounds_completed``, ``deactivate``); use
    :class:`SingleReplicaView` for sequential simulators.  ``first_legit``
    may be a pre-seeded ``(R,)`` vector (the batched pre-check writes into
    it); it is updated in place.

    Returns ``(max_seen, min_empty, first_legit, executed)`` where the
    first two are per-replica reductions over the rounds each replica
    actually executed and ``executed`` counts loop iterations (rounds in
    which at least one replica stepped).
    """
    if rounds < 0:
        raise ConfigurationError(f"rounds must be >= 0, got {rounds}")
    if observe_every < 1:
        raise ConfigurationError(
            f"observe_every must be >= 1, got {observe_every}"
        )
    obs = BatchedObserverList.coerce(observers)
    R, n = process.n_replicas, process.n_bins
    if first_legit is None:
        first_legit = np.full(R, -1, dtype=np.int64)
    max_seen = np.zeros(R, dtype=np.int64)
    min_empty = np.full(R, n, dtype=np.int64)
    executed = 0
    for _ in range(rounds):
        stepped = process.active
        if not stepped.any():
            break
        loads = process.step()
        executed += 1
        current_max = loads.max(axis=1)
        current_empty = (loads == 0).sum(axis=1)
        np.maximum(max_seen, current_max, out=max_seen, where=stepped)
        np.minimum(min_empty, current_empty, out=min_empty, where=stepped)
        newly = stepped & (first_legit < 0) & (current_max <= threshold)
        if newly.any():
            first_legit[newly] = process.rounds_completed[newly]
            if stop_when_legitimate:
                process.deactivate(newly)
        if not obs.is_empty and (
            executed % observe_every == 0
            or executed == rounds
            or not process.active.any()
        ):
            obs.observe(int(process.rounds_completed.max()), loads)
    return max_seen, min_empty, first_legit, executed


def run_replica_window(
    process,
    rounds: int,
    beta: float = DEFAULT_BETA,
    stop_when_legitimate: bool = False,
    warmup_rounds: int = 0,
    observers=None,
    observe_every: int = 1,
) -> dict:
    """Window record of one sequential replica through the shared loop.

    This is what one trial of the sequential ensemble engine runs; the
    returned dict matches the per-trial record schema
    (``rounds`` / ``window_max_load`` / ``min_empty_bins`` /
    ``first_legitimate_round`` / ``final_loads``).

    Mirroring ``run_until_legitimate``, a ``stop_when_legitimate`` run
    whose post-warmup configuration is already legitimate executes zero
    rounds — and reports the *observed* current max load and empty-bin
    count (not zeros) for its window metrics.
    """
    if warmup_rounds < 0:
        raise ConfigurationError(
            f"warmup_rounds must be >= 0, got {warmup_rounds}"
        )
    threshold = legitimacy_threshold(process.n_bins, beta)
    for _ in range(warmup_rounds):
        process.step()

    def current_record() -> dict:
        loads = np.asarray(process.loads)
        return {
            "rounds": 0,
            "window_max_load": int(loads.max()),
            "min_empty_bins": int(np.count_nonzero(loads == 0)),
            "first_legitimate_round": int(process.round_index),
            "final_loads": np.array(loads, copy=True),
        }

    if stop_when_legitimate and int(np.asarray(process.loads).max()) <= threshold:
        return current_record()
    view = SingleReplicaView(process)
    max_seen, min_empty, first_legit, executed = run_window(
        view,
        rounds,
        threshold,
        stop_when_legitimate=stop_when_legitimate,
        observers=observers,
        observe_every=observe_every,
    )
    if executed == 0:
        record = current_record()
        record["first_legitimate_round"] = -1
        return record
    return {
        "rounds": executed,
        "window_max_load": int(max_seen[0]),
        "min_empty_bins": int(min_empty[0]),
        "first_legitimate_round": int(first_legit[0]),
        "final_loads": np.array(process.loads, copy=True),
    }
