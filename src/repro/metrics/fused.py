"""In-kernel (fused) observation partials and their observer contract.

The native kernels can record streaming per-replica reductions *inside*
the C round loop — post-round max load, empty-bin count, and optionally
the load sum and sum of squares — at every ``observe_every`` boundary,
instead of returning to Python so trackers can scan the full ``(R, n)``
matrix.  One kernel call then replaces ``ceil(rounds / observe_every)``
FFI round-trips plus as many full-matrix reductions.

:class:`FusedSegmentStats` is the package those partials travel in: a
``(T, R)`` block per statistic covering the ``T`` observation points of
one ``run()`` window.  Everything is integer-valued, so a tracker that
folds these partials produces **bit-identical** state to observing the
matrices itself — the Python observation loop stays the semantic
reference, and the equality is covered by tests.

A tracker opts into fusion by setting the class attribute
``supports_fused_ingest = True`` and implementing
``ingest_fused(stats)``; trackers that genuinely need the raw matrix
(histogram, trace, bin-emptying) simply never set the flag, and the
engine falls back to the segmented Python loop for the whole observer
list.  ``fused_needs_moments`` marks trackers that require the optional
sum/sum-of-squares blocks, so the kernel only pays the extra per-bin
scan when someone will consume it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ConfigurationError

__all__ = ["FusedSegmentStats", "supports_fused", "fused_needs_moments"]


@dataclass(frozen=True)
class FusedSegmentStats:
    """Per-observation-point reductions recorded inside a native kernel.

    ``rounds[k]`` is the global (1-based) round index of observation
    point ``k``; all block arrays are ``(T, R)`` with ``T = len(rounds)``
    observation points over ``R`` replicas.  ``load_sum`` and
    ``load_sumsq`` are present only when a moments consumer asked for
    them.
    """

    rounds: np.ndarray  # (T,) int64 global round indexes
    max_load: np.ndarray  # (T, R) post-round max load
    empty_bins: np.ndarray  # (T, R) post-round empty-bin count
    n_bins: int
    load_sum: Optional[np.ndarray] = None  # (T, R) int64
    load_sumsq: Optional[np.ndarray] = None  # (T, R) int64

    def __post_init__(self) -> None:
        T = len(self.rounds)
        for label in ("max_load", "empty_bins", "load_sum", "load_sumsq"):
            block = getattr(self, label)
            if block is None:
                continue
            if block.ndim != 2 or block.shape[0] != T:
                raise ConfigurationError(
                    f"fused block {label!r} must be (T, R) with T={T}, "
                    f"got shape {block.shape}"
                )
            if block.shape[1] != self.max_load.shape[1]:
                raise ConfigurationError(
                    f"fused block {label!r} disagrees on R: "
                    f"{block.shape[1]} != {self.max_load.shape[1]}"
                )

    @property
    def n_observations(self) -> int:
        return int(len(self.rounds))

    @property
    def n_replicas(self) -> int:
        return int(self.max_load.shape[1])


def supports_fused(observer) -> bool:
    """Whether an observer can ingest fused partials instead of matrices."""
    return bool(getattr(observer, "supports_fused_ingest", False))


def fused_needs_moments(observer) -> bool:
    """Whether a fused-capable observer needs the sum/sumsq blocks."""
    return bool(getattr(observer, "fused_needs_moments", False))
