"""Engine-agnostic containers for observed metric data.

A :class:`MetricPayload` is what one tracker hands back after a run: the
observed round indexes, optional time-major series, per-replica scalar
summaries, and per-replica auxiliary arrays.  Payloads are the currency the
ensemble engine moves around — they ride inside
:class:`~repro.core.batched.EnsembleResult`, concatenate across worker
shards, turn into columns in :func:`repro.parallel.aggregate.aggregate_ensemble`,
and are persisted by :class:`repro.store.store.ResultStore`.

Array-shape conventions
-----------------------
``series``
    Time-major: axis 0 is the observation index, axis 1 the replica
    (``(T, R)`` for scalar-per-replica series, ``(T, R, n)`` for traces).
``summaries``
    One scalar per replica: ``(R,)`` vectors, always numeric (booleans are
    stored as 0/1), so they can be summarized and tabulated directly.
``arrays``
    Replica-major extras that are neither time series nor scalars
    (histogram count matrices, per-bin first-emptying rounds): axis 0 is
    the replica.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ..errors import ConfigurationError

__all__ = ["MetricPayload", "concatenate_payload_maps"]

#: Fill value for series entries of shards that stopped observing before the
#: longest shard (possible only for zero-observation shards; see
#: :meth:`MetricPayload.concatenate`).
SERIES_FILL = -1


@dataclass
class MetricPayload:
    """Observed data of one metric over one run (or one shard of a run)."""

    name: str
    rounds: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    series: Dict[str, np.ndarray] = field(default_factory=dict)
    summaries: Dict[str, np.ndarray] = field(default_factory=dict)
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def n_replicas(self) -> int:
        for vector in self.summaries.values():
            return int(np.asarray(vector).shape[0])
        for arr in self.arrays.values():
            return int(np.asarray(arr).shape[0])
        for arr in self.series.values():
            return int(np.asarray(arr).shape[1])
        return 0

    @property
    def n_observations(self) -> int:
        return int(np.asarray(self.rounds).size)

    @staticmethod
    def _pad_series(arr: np.ndarray, target: int) -> np.ndarray:
        """Extend a time-major series to ``target`` observations.

        Shards stop observing once every replica they own is frozen, at
        which point their state no longer changes — so repeating the last
        observed row is exact.  A shard with zero observations has no row
        to repeat and is padded with :data:`SERIES_FILL`.
        """
        arr = np.asarray(arr)
        have = arr.shape[0]
        if have >= target:
            return arr
        if have == 0:
            shape = (target,) + arr.shape[1:]
            return np.full(shape, SERIES_FILL, dtype=arr.dtype)
        pad = np.repeat(arr[-1:], target - have, axis=0)
        return np.concatenate([arr, pad], axis=0)

    @staticmethod
    def concatenate(payloads: Sequence["MetricPayload"]) -> "MetricPayload":
        """Stack shard payloads of one metric along the replica axis.

        Shards may have observed different numbers of rounds (early-stopped
        shards freeze and stop observing); shorter series are edge-padded to
        the longest shard's observation grid, whose round indexes are kept.
        """
        if not payloads:
            raise ConfigurationError("cannot concatenate zero metric payloads")
        head = payloads[0]
        for other in payloads[1:]:
            if other.name != head.name:
                raise ConfigurationError(
                    f"cannot concatenate payloads of different metrics: "
                    f"{head.name!r} vs {other.name!r}"
                )
            for slot in ("series", "summaries", "arrays"):
                if set(getattr(other, slot)) != set(getattr(head, slot)):
                    raise ConfigurationError(
                        f"metric {head.name!r} shards disagree on {slot} keys; "
                        "refusing to merge"
                    )
        longest = max(payloads, key=lambda p: p.n_observations)
        target = longest.n_observations
        return MetricPayload(
            name=head.name,
            rounds=np.array(longest.rounds, dtype=np.int64, copy=True),
            series={
                key: np.concatenate(
                    [MetricPayload._pad_series(p.series[key], target) for p in payloads],
                    axis=1,
                )
                for key in head.series
            },
            summaries={
                key: np.concatenate([np.asarray(p.summaries[key]) for p in payloads])
                for key in head.summaries
            },
            arrays={
                key: np.concatenate(
                    [np.asarray(p.arrays[key]) for p in payloads], axis=0
                )
                for key in head.arrays
            },
        )


def concatenate_payload_maps(
    maps: Sequence[Dict[str, MetricPayload]],
) -> Dict[str, MetricPayload]:
    """Merge per-shard ``{metric name: payload}`` dicts along replicas.

    Every shard must carry the same metric names (they come from one
    :class:`~repro.parallel.ensemble.EnsembleSpec`); an empty input or
    all-empty maps yield ``{}``.
    """
    non_empty: List[Dict[str, MetricPayload]] = [m for m in maps if m]
    if not non_empty:
        return {}
    names = set(non_empty[0])
    if len(non_empty) != len(maps) or any(set(m) != names for m in non_empty):
        raise ConfigurationError(
            "ensemble shards disagree on observed metric names; refusing to merge"
        )
    return {
        name: MetricPayload.concatenate([m[name] for m in maps]) for name in names
    }
