"""Adapters feeding the store's streaming reducers straight from the engine.

The result store summarizes every sweep point with
:class:`~repro.store.streaming.StreamingMoments` (Welford/Chan moments)
and :class:`~repro.store.streaming.TailCounter` (exact integer tails).
These adapters close the loop in the other direction:

* :class:`StreamingMomentsObserver` is a batched observer that folds a
  per-round, per-replica scalar (max load, empty-bin count, or a custom
  reduction) into a ``StreamingMoments`` — and optionally a
  ``TailCounter`` — *while the engine runs*, with ``O(1)`` state.  A
  million-round trajectory can be summarized without ever materializing a
  series.
* :func:`summarize_payloads` turns the per-replica summary vectors of
  observed :class:`~repro.metrics.payload.MetricPayload` objects into the
  manifest-ready nested-moments dict the store records, folding replicas
  in bounded chunks.  This is how sweeps summarize observed metrics inline
  at write time instead of re-reading replica shards at query time.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Union

import numpy as np

from .base import as_load_matrix
from .payload import MetricPayload
from ..errors import ConfigurationError
from ..store.streaming import StreamingMoments, TailCounter

__all__ = ["StreamingMomentsObserver", "summarize_payloads", "REPLICA_CHUNK"]

#: Replicas are folded into streaming summaries in chunks of this size.
REPLICA_CHUNK = 1024

#: Built-in per-round reductions: ``(R, n)`` loads -> ``(R,)`` values.
_REDUCERS: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "max_load": lambda matrix: matrix.max(axis=1),
    "empty_bins": lambda matrix: (matrix == 0).sum(axis=1),
}


class StreamingMomentsObserver:
    """Fold a per-round scalar reduction into streaming accumulators.

    Parameters
    ----------
    reduce:
        ``"max_load"``, ``"empty_bins"``, or a callable mapping the
        ``(R, n)`` load matrix to a ``(R,)`` value vector.
    tail:
        Also maintain an exact :class:`TailCounter` histogram of the
        (integer) values, for tail-probability queries.

    >>> obs = StreamingMomentsObserver("max_load", tail=True)
    >>> obs.observe(1, np.array([[2, 0], [1, 1]]))
    >>> obs.observe(2, np.array([[3, 0], [1, 1]]))
    >>> obs.moments.count, obs.moments.maximum
    (4, 3.0)
    >>> obs.tail.tail(2)
    2
    """

    def __init__(
        self,
        reduce: Union[str, Callable[[np.ndarray], np.ndarray]] = "max_load",
        tail: bool = False,
    ) -> None:
        if callable(reduce):
            self._reduce = reduce
            self.reduction = getattr(reduce, "__name__", "custom")
        elif reduce in _REDUCERS:
            self._reduce = _REDUCERS[reduce]
            self.reduction = reduce
        else:
            raise ConfigurationError(
                f"unknown reduction {reduce!r}; expected a callable or one of "
                f"{', '.join(_REDUCERS)}"
            )
        self.moments = StreamingMoments()
        self.tail = TailCounter() if tail else None

    def observe(self, round_index: int, loads) -> None:
        values = np.asarray(self._reduce(as_load_matrix(loads)))
        self.moments.update(values)
        if self.tail is not None:
            self.tail.update(values)


def summarize_payloads(
    metrics: Mapping[str, MetricPayload],
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Manifest-ready streaming summary of observed metric payloads.

    For every payload summary vector, the per-replica values are folded
    chunk-by-chunk into a :class:`StreamingMoments`, whose dict encoding is
    what :class:`~repro.store.store.ResultStore` writes into the manifest —
    so store queries over observed metrics never touch replica shards.
    """
    summary: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name in sorted(metrics):
        payload = metrics[name]
        entry: Dict[str, Dict[str, float]] = {}
        for key in sorted(payload.summaries):
            vector = np.asarray(payload.summaries[key], dtype=float)
            moments = StreamingMoments()
            for lo in range(0, vector.size, REPLICA_CHUNK):
                moments.update(vector[lo : lo + REPLICA_CHUNK])
            entry[key] = moments.to_dict()
        summary[name] = entry
    return summary
