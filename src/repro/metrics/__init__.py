"""Unified streaming observation layer shared by every engine.

The paper's claims are statements about *trajectories* — the max-load
window ``M(t)`` of Theorem 1, the per-round empty-bin counts of
Lemmas 1–2, legitimacy hitting times — so observation must not be a
privilege of the slow sequential path.  This package defines one observer
pipeline that the sequential simulators, the batched ``(R, n)`` engines
(including the native C kernel, which executes in segments between
observation points), and the sweep scheduler all share:

``process → observers → reducers → store``

* :mod:`~repro.metrics.base` — the batched observer protocol
  (``observe(round_index, loads)`` with ``(R, n)`` loads; a 1-D load
  vector is the ``R == 1`` view), fan-out lists, and adapters for legacy
  sequential observers.
* :mod:`~repro.metrics.trackers` — replica-aware ports of the six
  sequential trackers, reducing as they observe (memory ``O(R)``, not
  ``O(R·T)``, when series recording is off).
* :mod:`~repro.metrics.window` — the shared window-metric run loop that
  replaced the three hand-rolled copies in the engines.
* :mod:`~repro.metrics.payload` / :mod:`~repro.metrics.registry` — the
  containers and validated names through which ``EnsembleSpec.metrics``
  requests observation and results carry it.
* :mod:`~repro.metrics.adapters` — observers and summarizers feeding
  :class:`~repro.store.streaming.StreamingMoments` /
  :class:`~repro.store.streaming.TailCounter` directly from the engine
  (loaded lazily: the store itself depends on this package).

The sequential trackers of :mod:`repro.core.metrics` remain the ``R == 1``
reference implementations and are re-exported here so this package is the
one-stop import for observation machinery.
"""

from __future__ import annotations

from .base import (
    BatchedCallbackObserver,
    BatchedObserverList,
    SequentialObserverAdapter,
    TRACE_ELEMENT_BUDGET,
    as_batched,
    as_load_matrix,
)
from .fused import FusedSegmentStats, fused_needs_moments, supports_fused
from .payload import MetricPayload, concatenate_payload_maps
from .registry import METRIC_NAMES, build_trackers, make_tracker, normalize_metric_names
from .trackers import (
    BatchedBinEmptyingTracker,
    BatchedEmptyBinsTracker,
    BatchedLegitimacyTracker,
    BatchedLoadHistogramTracker,
    BatchedLoadMomentsTracker,
    BatchedMaxLoadTracker,
    BatchedTraceRecorder,
)
from .window import SingleReplicaView, run_replica_window, run_window
from ..core.metrics import (
    BinEmptyingTracker,
    EmptyBinsTracker,
    LegitimacyTracker,
    LoadHistogramTracker,
    MaxLoadTracker,
    TraceRecorder,
)

__all__ = [
    # protocol + plumbing
    "as_load_matrix",
    "as_batched",
    "BatchedObserverList",
    "BatchedCallbackObserver",
    "SequentialObserverAdapter",
    "TRACE_ELEMENT_BUDGET",
    # batched trackers
    "BatchedMaxLoadTracker",
    "BatchedEmptyBinsTracker",
    "BatchedLegitimacyTracker",
    "BatchedLoadMomentsTracker",
    "BatchedLoadHistogramTracker",
    "BatchedTraceRecorder",
    "BatchedBinEmptyingTracker",
    # fused (in-kernel) observation
    "FusedSegmentStats",
    "supports_fused",
    "fused_needs_moments",
    # sequential (R == 1) reference trackers
    "MaxLoadTracker",
    "EmptyBinsTracker",
    "LegitimacyTracker",
    "LoadHistogramTracker",
    "TraceRecorder",
    "BinEmptyingTracker",
    # shared window loop
    "run_window",
    "run_replica_window",
    "SingleReplicaView",
    # payloads + registry
    "MetricPayload",
    "concatenate_payload_maps",
    "METRIC_NAMES",
    "normalize_metric_names",
    "make_tracker",
    "build_trackers",
    # adapters (lazily loaded)
    "StreamingMomentsObserver",
    "summarize_payloads",
]

#: Adapter exports resolved lazily: repro.store depends on this package, so
#: importing the adapters (which import repro.store.streaming) eagerly from
#: here would close an import cycle while repro.core.batched is mid-import.
_LAZY_ADAPTER_EXPORTS = ("StreamingMomentsObserver", "summarize_payloads")


def __getattr__(name: str):
    if name in _LAZY_ADAPTER_EXPORTS:
        from . import adapters

        return getattr(adapters, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
