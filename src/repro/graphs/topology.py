"""Graph topology abstraction used by the constrained parallel-walk simulator.

A :class:`Topology` stores the adjacency structure in CSR-like flat arrays
(``neighbors`` + ``offsets``) so that sampling a uniform random neighbor for
a batch of tokens is pure NumPy indexing.  Self-loops are allowed (the
complete-graph topology includes them so that it matches the paper's
process, where a ball may be re-assigned to the bin it just left).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import GraphError

__all__ = ["Topology"]


class Topology:
    """An undirected (possibly self-looped) graph in flat-adjacency form.

    Parameters
    ----------
    adjacency:
        A sequence of neighbor lists, one per node.  Node ``u``'s token moves
        to a uniformly random element of ``adjacency[u]``.
    name:
        Human-readable name used in experiment tables.
    """

    def __init__(self, adjacency: Sequence[Iterable[int]], name: str = "custom") -> None:
        lists: List[np.ndarray] = []
        n = len(adjacency)
        if n == 0:
            raise GraphError("topology must contain at least one node")
        for u, nbrs in enumerate(adjacency):
            arr = np.asarray(sorted(int(v) for v in nbrs), dtype=np.int64)
            if arr.size == 0:
                raise GraphError(f"node {u} has no neighbors (tokens would be stuck)")
            if arr.min() < 0 or arr.max() >= n:
                raise GraphError(f"node {u} has a neighbor outside [0, {n})")
            lists.append(arr)
        self._n = n
        self._name = name
        self._degrees = np.asarray([arr.size for arr in lists], dtype=np.int64)
        self._offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(self._degrees, out=self._offsets[1:])
        self._neighbors = np.concatenate(lists)
        self._regular_degree: Optional[int] = (
            int(self._degrees[0])
            if bool(np.all(self._degrees == self._degrees[0]))
            else None
        )

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def num_nodes(self) -> int:
        return self._n

    @property
    def degrees(self) -> np.ndarray:
        return np.array(self._degrees, copy=True)

    @property
    def is_regular(self) -> bool:
        """Whether every node has the same degree."""
        return self._regular_degree is not None

    @property
    def degree(self) -> Optional[int]:
        """The common degree for regular graphs, ``None`` otherwise."""
        return self._regular_degree

    def neighbors_of(self, node: int) -> np.ndarray:
        """Neighbor array of one node (copy)."""
        if not 0 <= node < self._n:
            raise GraphError(f"node {node} out of range [0, {self._n})")
        start, stop = self._offsets[node], self._offsets[node + 1]
        return np.array(self._neighbors[start:stop], copy=True)

    def csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """The flat CSR adjacency as read-only ``(neighbors, offsets)`` views.

        ``neighbors`` holds every adjacency entry consecutively and
        ``offsets`` (length ``n + 1``) delimits node ``u``'s slice —
        the representation the batched walk engines and the native kernel
        consume directly.
        """
        neighbors = self._neighbors.view()
        neighbors.setflags(write=False)
        offsets = self._offsets.view()
        offsets.setflags(write=False)
        return neighbors, offsets

    def edge_list(self) -> List[Tuple[int, int]]:
        """All (u, v) adjacency pairs, including both directions and self-loops."""
        edges: List[Tuple[int, int]] = []
        for u in range(self._n):
            start, stop = self._offsets[u], self._offsets[u + 1]
            edges.extend((u, int(v)) for v in self._neighbors[start:stop])
        return edges

    # ------------------------------------------------------------------
    def sample_neighbors(self, nodes: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Vectorized: one uniform random neighbor for every node in ``nodes``.

        Regular graphs take a gather-free path (``offsets[u]`` is exactly
        ``u * degree``); both paths consume the generator identically
        (``rng.random(len(nodes))``), so the choice is invisible to
        stream-equality.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        if self._regular_degree is not None:
            degree = self._regular_degree
            picks = (rng.random(nodes.size) * degree).astype(np.int64)
            # guard against the (measure-zero) event rng.random() == 1.0
            np.minimum(picks, degree - 1, out=picks)
            return self._neighbors[nodes * degree + picks]
        degrees = self._degrees[nodes]
        picks = (rng.random(nodes.size) * degrees).astype(np.int64)
        np.minimum(picks, degrees - 1, out=picks)
        return self._neighbors[self._offsets[nodes] + picks]

    def is_connected(self) -> bool:
        """Depth-first connectivity check (stack-based DFS; self-loops are
        harmless — they only re-discover already-seen nodes)."""
        seen = np.zeros(self._n, dtype=bool)
        stack = [0]
        seen[0] = True
        while stack:
            u = stack.pop()
            start, stop = self._offsets[u], self._offsets[u + 1]
            for v in self._neighbors[start:stop]:
                if not seen[v]:
                    seen[v] = True
                    stack.append(int(v))
        return bool(seen.all())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        deg = self.degree if self.is_regular else "irregular"
        return f"Topology(name={self._name!r}, nodes={self._n}, degree={deg})"
