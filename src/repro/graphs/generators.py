"""Topology generators.

Every generator returns a :class:`~repro.graphs.topology.Topology`.  The
complete graph includes self-loops so that a token's destination is uniform
over *all* nodes, matching the balls-into-bins re-assignment rule exactly;
the other topologies follow the usual graph-theoretic convention (no
self-loops) because that is what the open question of Section 5 is about.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx
import numpy as np

from .topology import Topology
from ..errors import GraphError
from ..rng import as_generator
from ..types import SeedLike

__all__ = [
    "complete_graph",
    "cycle_graph",
    "torus_grid_graph",
    "hypercube_graph",
    "random_regular_graph",
    "star_graph",
    "from_networkx",
]


def complete_graph(n: int, include_self_loops: bool = True) -> Topology:
    """The clique on ``n`` nodes.

    With ``include_self_loops=True`` (default) each node's neighborhood is
    the full node set, so a token's next position is uniform over ``[n]`` —
    the exact repeated balls-into-bins rule.
    """
    if n < 1:
        raise GraphError(f"n must be >= 1, got {n}")
    if n == 1:
        return Topology([[0]], name="complete")
    nodes = list(range(n))
    if include_self_loops:
        adjacency = [nodes for _ in range(n)]
    else:
        adjacency = [[v for v in nodes if v != u] for u in range(n)]
    return Topology(adjacency, name="complete")


def cycle_graph(n: int) -> Topology:
    """The ring on ``n`` nodes (2-regular for ``n >= 3``)."""
    if n < 3:
        raise GraphError(f"cycle requires n >= 3, got {n}")
    adjacency = [[(u - 1) % n, (u + 1) % n] for u in range(n)]
    return Topology(adjacency, name="cycle")


def torus_grid_graph(rows: int, cols: Optional[int] = None) -> Topology:
    """A 2-D torus (wrap-around grid), 4-regular for dimensions >= 3."""
    if cols is None:
        cols = rows
    if rows < 3 or cols < 3:
        raise GraphError(f"torus requires both dimensions >= 3, got {rows}x{cols}")
    n = rows * cols

    def node(r: int, c: int) -> int:
        return (r % rows) * cols + (c % cols)

    adjacency = []
    for r in range(rows):
        for c in range(cols):
            adjacency.append(
                [node(r - 1, c), node(r + 1, c), node(r, c - 1), node(r, c + 1)]
            )
    topo = Topology(adjacency, name="torus")
    assert topo.num_nodes == n
    return topo


def hypercube_graph(dimension: int) -> Topology:
    """The boolean hypercube with ``2**dimension`` nodes (``dimension``-regular)."""
    if dimension < 1:
        raise GraphError(f"dimension must be >= 1, got {dimension}")
    n = 1 << dimension
    adjacency = [[u ^ (1 << b) for b in range(dimension)] for u in range(n)]
    return Topology(adjacency, name="hypercube")


def random_regular_graph(n: int, degree: int, seed: SeedLike = None) -> Topology:
    """A uniformly random simple ``degree``-regular graph on ``n`` nodes.

    Uses :func:`networkx.random_regular_graph`; retries until the sampled
    graph is connected (disconnected samples would trap tokens and make the
    cover-time metric meaningless).
    """
    if n < 3:
        raise GraphError(f"n must be >= 3, got {n}")
    if degree < 2 or degree >= n:
        raise GraphError(f"degree must be in [2, n), got {degree}")
    if (n * degree) % 2 != 0:
        raise GraphError(f"n * degree must be even, got n={n}, degree={degree}")
    rng = as_generator(seed)
    for _ in range(32):
        graph = nx.random_regular_graph(degree, n, seed=int(rng.integers(2**31)))
        if nx.is_connected(graph):
            return from_networkx(graph, name=f"random_{degree}_regular")
    raise GraphError(
        f"failed to sample a connected {degree}-regular graph on {n} nodes after 32 attempts"
    )


def star_graph(n: int) -> Topology:
    """The star on ``n`` nodes (node 0 is the hub) — a maximally irregular
    stress topology for the load experiments."""
    if n < 2:
        raise GraphError(f"star requires n >= 2, got {n}")
    adjacency = [list(range(1, n))] + [[0] for _ in range(n - 1)]
    return Topology(adjacency, name="star")


def from_networkx(graph: "nx.Graph", name: Optional[str] = None) -> Topology:
    """Convert a NetworkX graph (nodes relabelled to 0..n-1) into a Topology."""
    if graph.number_of_nodes() == 0:
        raise GraphError("graph must contain at least one node")
    relabelled = nx.convert_node_labels_to_integers(graph, ordering="sorted")
    n = relabelled.number_of_nodes()
    adjacency = [sorted(relabelled.neighbors(u)) for u in range(n)]
    return Topology(adjacency, name=name or "networkx")
