"""Topology generators and the JSON-scalar topology-spec language.

Every generator returns a :class:`~repro.graphs.topology.Topology`.  The
complete graph includes self-loops so that a token's destination is uniform
over *all* nodes, matching the balls-into-bins re-assignment rule exactly;
the other topologies follow the usual graph-theoretic convention (no
self-loops) because that is what the open question of Section 5 is about.

The ensemble layer refers to topologies by **spec string** — a single JSON
scalar that sweeps can serialize through store headers and manifest
configs unchanged:

=====================  =======================================  =========
spec                   meaning                                  nodes
=====================  =======================================  =========
``complete:256``       clique with self-loops                   256
``cycle:256``          ring                                     256
``torus:32x32``        2-D wrap-around grid (``torus:32`` is    1024
                       the square shorthand)
``hypercube:10``       boolean hypercube of dimension 10        1024
``random_regular:N:D`` connected random D-regular graph on N    N
                       nodes (seeded from the spec string, so
                       the same spec always names the same
                       graph)
``star:256``           hub-and-leaves stress topology           256
=====================  =======================================  =========

:func:`parse_topology_spec` validates a spec (and knows its node count)
without building anything — that is what ``EnsembleSpec`` construction
uses, so typos fail before a sweep runs; :func:`resolve_topology` builds
(and caches) the actual :class:`Topology`.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Tuple

import networkx as nx

from .topology import Topology
from ..errors import GraphError
from ..rng import as_generator
from ..types import SeedLike

__all__ = [
    "complete_graph",
    "cycle_graph",
    "torus_grid_graph",
    "hypercube_graph",
    "random_regular_graph",
    "star_graph",
    "from_networkx",
    "TOPOLOGY_KINDS",
    "ParsedTopology",
    "parse_topology_spec",
    "resolve_topology",
]


def complete_graph(n: int, include_self_loops: bool = True) -> Topology:
    """The clique on ``n`` nodes.

    With ``include_self_loops=True`` (default) each node's neighborhood is
    the full node set, so a token's next position is uniform over ``[n]`` —
    the exact repeated balls-into-bins rule.
    """
    if n < 1:
        raise GraphError(f"n must be >= 1, got {n}")
    if n == 1:
        return Topology([[0]], name="complete")
    nodes = list(range(n))
    if include_self_loops:
        adjacency = [nodes for _ in range(n)]
    else:
        adjacency = [[v for v in nodes if v != u] for u in range(n)]
    return Topology(adjacency, name="complete")


def cycle_graph(n: int) -> Topology:
    """The ring on ``n`` nodes (2-regular for ``n >= 3``)."""
    if n < 3:
        raise GraphError(f"cycle requires n >= 3, got {n}")
    adjacency = [[(u - 1) % n, (u + 1) % n] for u in range(n)]
    return Topology(adjacency, name="cycle")


def torus_grid_graph(rows: int, cols: Optional[int] = None) -> Topology:
    """A 2-D torus (wrap-around grid), 4-regular for dimensions >= 3."""
    if cols is None:
        cols = rows
    if rows < 3 or cols < 3:
        raise GraphError(f"torus requires both dimensions >= 3, got {rows}x{cols}")
    n = rows * cols

    def node(r: int, c: int) -> int:
        return (r % rows) * cols + (c % cols)

    adjacency = []
    for r in range(rows):
        for c in range(cols):
            adjacency.append(
                [node(r - 1, c), node(r + 1, c), node(r, c - 1), node(r, c + 1)]
            )
    topo = Topology(adjacency, name="torus")
    assert topo.num_nodes == n
    return topo


def hypercube_graph(dimension: int) -> Topology:
    """The boolean hypercube with ``2**dimension`` nodes (``dimension``-regular)."""
    if dimension < 1:
        raise GraphError(f"dimension must be >= 1, got {dimension}")
    n = 1 << dimension
    adjacency = [[u ^ (1 << b) for b in range(dimension)] for u in range(n)]
    return Topology(adjacency, name="hypercube")


def random_regular_graph(n: int, degree: int, seed: SeedLike = None) -> Topology:
    """A uniformly random simple ``degree``-regular graph on ``n`` nodes.

    Uses :func:`networkx.random_regular_graph`; retries until the sampled
    graph is connected (disconnected samples would trap tokens and make the
    cover-time metric meaningless).
    """
    if n < 3:
        raise GraphError(f"n must be >= 3, got {n}")
    if degree < 2 or degree >= n:
        raise GraphError(f"degree must be in [2, n), got {degree}")
    if (n * degree) % 2 != 0:
        raise GraphError(f"n * degree must be even, got n={n}, degree={degree}")
    rng = as_generator(seed)
    for _ in range(32):
        graph = nx.random_regular_graph(degree, n, seed=int(rng.integers(2**31)))
        if nx.is_connected(graph):
            return from_networkx(graph, name=f"random_{degree}_regular")
    raise GraphError(
        f"failed to sample a connected {degree}-regular graph on {n} nodes after 32 attempts"
    )


def star_graph(n: int) -> Topology:
    """The star on ``n`` nodes (node 0 is the hub) — a maximally irregular
    stress topology for the load experiments."""
    if n < 2:
        raise GraphError(f"star requires n >= 2, got {n}")
    adjacency = [list(range(1, n))] + [[0] for _ in range(n - 1)]
    return Topology(adjacency, name="star")


#: Topology families understood by :func:`parse_topology_spec`.
TOPOLOGY_KINDS = (
    "complete",
    "cycle",
    "torus",
    "hypercube",
    "random_regular",
    "star",
)


@dataclass(frozen=True)
class ParsedTopology:
    """A validated topology spec: family, integer arguments, node count.

    ``num_nodes`` is computed statically (no graph is built), so spec
    validation — including the ``n_bins`` consistency check the ensemble
    layer performs — stays O(1) even for expensive families like
    ``random_regular``.
    """

    kind: str
    args: Tuple[int, ...]
    num_nodes: int
    #: The canonical spelling (lowercased family, normalized arguments):
    #: every spec the parser treats as equivalent shares one canonical
    #: string, which is what seeds ``random_regular`` resolution.
    spec: str


def _spec_error(spec: str, reason: str) -> GraphError:
    return GraphError(
        f"invalid topology spec {spec!r}: {reason} "
        "(expected e.g. 'complete:256', 'cycle:256', 'torus:32x32', "
        "'hypercube:10', 'random_regular:1024:8', 'star:256')"
    )


def parse_topology_spec(spec: str) -> ParsedTopology:
    """Validate a topology spec string without building the graph.

    >>> parse_topology_spec("torus:32x32").num_nodes
    1024
    >>> parse_topology_spec("hypercube:10").num_nodes
    1024
    >>> parse_topology_spec("random_regular:1024:8").args
    (1024, 8)
    """
    if not isinstance(spec, str) or not spec.strip():
        raise _spec_error(str(spec), "spec must be a non-empty string")
    parts = [p.strip() for p in spec.strip().split(":")]
    kind = parts[0].lower()
    if kind not in TOPOLOGY_KINDS:
        raise _spec_error(spec, f"unknown family {kind!r}")
    raw_args = parts[1:]
    if kind == "torus":
        # torus takes ROWSxCOLS (or one side for the square grid)
        if len(raw_args) == 1 and "x" in raw_args[0]:
            raw_args = raw_args[0].split("x")
    try:
        args = tuple(int(a) for a in raw_args)
    except ValueError:
        raise _spec_error(spec, "arguments must be integers") from None

    expected = {"complete": 1, "cycle": 1, "hypercube": 1, "star": 1,
                "torus": (1, 2), "random_regular": 2}[kind]
    arity_ok = (
        len(args) in expected if isinstance(expected, tuple)
        else len(args) == expected
    )
    if not arity_ok:
        raise _spec_error(spec, f"wrong number of arguments for {kind!r}")

    # mirror the generators' own bounds so malformed specs fail at
    # EnsembleSpec construction, not mid-sweep
    if kind == "complete":
        (n,) = args
        if n < 1:
            raise _spec_error(spec, "complete requires n >= 1")
    elif kind == "cycle":
        (n,) = args
        if n < 3:
            raise _spec_error(spec, "cycle requires n >= 3")
    elif kind == "torus":
        rows = args[0]
        cols = args[1] if len(args) == 2 else args[0]
        if rows < 3 or cols < 3:
            raise _spec_error(spec, "torus requires both dimensions >= 3")
        args = (rows, cols)
        n = rows * cols
    elif kind == "hypercube":
        (dim,) = args
        if dim < 1:
            raise _spec_error(spec, "hypercube requires dimension >= 1")
        n = 1 << dim
    elif kind == "random_regular":
        n, degree = args
        if n < 3:
            raise _spec_error(spec, "random_regular requires n >= 3")
        if degree < 2 or degree >= n:
            raise _spec_error(spec, "random_regular requires degree in [2, n)")
        if (n * degree) % 2 != 0:
            raise _spec_error(spec, "random_regular requires n * degree even")
    else:  # star
        (n,) = args
        if n < 2:
            raise _spec_error(spec, "star requires n >= 2")
    if kind in ("complete", "cycle", "star", "random_regular"):
        n = args[0]
    canonical = ":".join([kind] + [str(a) for a in args])
    return ParsedTopology(kind=kind, args=args, num_nodes=n, spec=canonical)


@lru_cache(maxsize=64)
def resolve_topology(spec: str) -> Topology:
    """Build (and cache) the :class:`Topology` a spec string names.

    Resolution is deterministic: ``random_regular`` specs derive their
    sampling seed from the spec string itself (CRC-32, stable across
    processes and sessions), so every engine, worker process, and resumed
    sweep that resolves the same spec walks the same graph.

    >>> resolve_topology("cycle:8").num_nodes
    8
    >>> resolve_topology("star:16").is_regular
    False
    """
    parsed = parse_topology_spec(spec)
    if parsed.kind == "complete":
        return complete_graph(parsed.args[0])
    if parsed.kind == "cycle":
        return cycle_graph(parsed.args[0])
    if parsed.kind == "torus":
        return torus_grid_graph(*parsed.args)
    if parsed.kind == "hypercube":
        return hypercube_graph(parsed.args[0])
    if parsed.kind == "random_regular":
        seed = zlib.crc32(parsed.spec.encode("utf-8"))
        return random_regular_graph(parsed.args[0], parsed.args[1], seed=seed)
    return star_graph(parsed.args[0])


def from_networkx(graph: "nx.Graph", name: Optional[str] = None) -> Topology:
    """Convert a NetworkX graph (nodes relabelled to 0..n-1) into a Topology."""
    if graph.number_of_nodes() == 0:
        raise GraphError("graph must contain at least one node")
    relabelled = nx.convert_node_labels_to_integers(graph, ordering="sorted")
    n = relabelled.number_of_nodes()
    adjacency = [sorted(relabelled.neighbors(u)) for u in range(n)]
    return Topology(adjacency, name=name or "networkx")
