/* Native batched kernel for topology-constrained parallel random walks.
 *
 * Advances an (R, n) ensemble of independent walk replicas over one shared
 * CSR topology for a given number of rounds entirely in C.  Per round and
 * per active replica, either every non-empty node forwards one token to a
 * uniformly random neighbor (constrained mode — the paper's process on a
 * general graph) or every token moves independently (unconstrained mode).
 * Window metrics (max load, min empty-node count, first legitimate round)
 * and the per-replica early stop on legitimacy are maintained in-kernel so
 * a whole `run()` costs a single FFI call.
 *
 * Layout and parallelism: the loop is replica-major and replicas are
 * fanned out across threads by repro_for_each_replica()
 * (core/_kernel_common.h).  The arrivals and source-compaction buffers are
 * per-thread slices of (n_threads, n) arrays handed in by the caller, so
 * workers never share mutable state; a replica's trajectory depends only
 * on its own xoshiro256++ stream, making results bit-identical for every
 * thread count.
 *
 * Fused observation: when n_obs > 0 the kernel records, at every stride
 * boundary ((t+1) % observe_every == 0) and at the window end, the
 * post-round max load and empty-node count — plus the load sum and sum of
 * squares when the moment buffers are non-NULL — into (n_obs, R) output
 * buffers, mirroring rbb_kernel.c.
 *
 * Randomness: each replica owns an independent xoshiro256++ stream whose
 * 4-word state is seeded by the caller (from a numpy SeedSequence), exactly
 * like rbb_kernel.c.  Neighbor picks use Lemire's unbiased bounded-integer
 * reduction with per-node rejection thresholds precomputed by the caller;
 * two 32-bit lanes are taken from each 64-bit draw, and the lane buffer is
 * reset at every round boundary so segmented runs (observation strides)
 * follow the exact same trajectory as whole-window runs.
 *
 * Compiled on demand by repro.core.native via the system C compiler; the
 * pure-numpy kernel in repro.graphs.batched is the semantic reference.
 */

#include "_kernel_common.h"

typedef struct {
    int32_t *loads;
    int64_t R;
    int64_t n;
    const int32_t *neighbors;
    const int64_t *offsets;
    const int32_t *degrees;
    const uint32_t *lims;
    int64_t rounds;
    uint64_t *rng_state;
    int32_t thr;
    int stop_when_legitimate;
    int constrained;
    int32_t *max_seen;
    int32_t *min_empty_seen;
    int64_t *first_legit;
    int64_t *rounds_done;
    uint8_t *active;
    int32_t *scratch; /* (n_threads, n) arrivals, all-zero rows */
    int32_t *sources; /* (n_threads, n) non-empty-node compaction */
    int64_t observe_every;
    int64_t n_obs;
    int32_t *obs_max;   /* (n_obs, R) or NULL */
    int32_t *obs_empty; /* (n_obs, R) or NULL */
    int64_t *obs_sum;   /* (n_obs, R) or NULL */
    int64_t *obs_sumsq; /* (n_obs, R) or NULL */
} walks_ctx;

static void walks_record_obs(const walks_ctx *c, int64_t r, int64_t k,
                             int32_t mx, int64_t empty)
{
    c->obs_max[k * c->R + r] = mx;
    c->obs_empty[k * c->R + r] = (int32_t)empty;
    if (c->obs_sum) {
        const int32_t *row = c->loads + r * c->n;
        int64_t s = 0, ss = 0;
        for (int64_t i = 0; i < c->n; i++) {
            const int64_t l = row[i];
            s += l;
            ss += l * l;
        }
        c->obs_sum[k * c->R + r] = s;
        c->obs_sumsq[k * c->R + r] = ss;
    }
}

static void walks_replica(void *vctx, int64_t r, int tid)
{
    walks_ctx *c = (walks_ctx *)vctx;
    const int64_t n = c->n;
    const int32_t thr = c->thr;
    int32_t *row = c->loads + r * n;
    int32_t *scratch = c->scratch + (int64_t)tid * n;
    int32_t *sources = c->sources + (int64_t)tid * n;
    rng_t *g = (rng_t *)(c->rng_state + 4 * r);
    int64_t k = 0; /* next fused observation slot */

    for (int64_t t = 0; t < c->rounds; t++) {
        if (!c->active[r])
            break;
        lanes_t L = {g, 0, 0};

        if (c->constrained) {
            /* departures: one token per non-empty node.  A SIMD-
             * friendly count first, then the path that fits the
             * density: for sparse rows a guarded loop's branch is
             * almost always not-taken (predicts perfectly); for dense
             * rows a branchless compaction (conditional write-cursor
             * increment) avoids mispredicting the random nonempty
             * pattern, and the draw loop touches only the cnt
             * non-empty nodes. */
            int64_t cnt = 0;
            for (int64_t i = 0; i < n; i++)
                cnt += (row[i] > 0);
            if (cnt * 8 < n) { /* sparse */
                for (int64_t i = 0; i < n; i++) {
                    if (row[i] > 0) {
                        row[i]--;
                        const uint32_t d = (uint32_t)c->degrees[i];
                        const int64_t off = c->offsets[i];
                        const int64_t j =
                            d == 1 ? 0 : (int64_t)bounded(&L, d, c->lims[i]);
                        scratch[c->neighbors[off + j]]++;
                    }
                }
            } else { /* dense */
                int64_t w = 0;
                for (int64_t i = 0; i < n; i++) {
                    const int32_t ne = row[i] > 0;
                    sources[w] = (int32_t)i;
                    w += ne;
                    row[i] -= ne;
                }
                for (int64_t s = 0; s < cnt; s++) {
                    const int64_t i = sources[s];
                    const uint32_t d = (uint32_t)c->degrees[i];
                    const int64_t off = c->offsets[i];
                    const int64_t j =
                        d == 1 ? 0 : (int64_t)bounded(&L, d, c->lims[i]);
                    scratch[c->neighbors[off + j]]++;
                }
            }
        } else {
            /* every token moves independently */
            for (int64_t i = 0; i < n; i++) {
                const int32_t l = row[i];
                if (l > 0) {
                    row[i] = 0;
                    const uint32_t d = (uint32_t)c->degrees[i];
                    const int64_t off = c->offsets[i];
                    const uint32_t lim = c->lims[i];
                    for (int32_t b = 0; b < l; b++) {
                        const int64_t j =
                            d == 1 ? 0 : (int64_t)bounded(&L, d, lim);
                        scratch[c->neighbors[off + j]]++;
                    }
                }
            }
        }

        /* arrivals + metrics of the new configuration */
        int32_t mx = 0;
        int64_t empty = 0;
        for (int64_t i = 0; i < n; i++) {
            const int32_t l = row[i] + scratch[i];
            row[i] = l;
            scratch[i] = 0;
            if (l > mx)
                mx = l;
            empty += (l == 0);
        }
        c->rounds_done[r]++;
        if (mx > c->max_seen[r])
            c->max_seen[r] = mx;
        if ((int32_t)empty < c->min_empty_seen[r])
            c->min_empty_seen[r] = (int32_t)empty;
        if (c->first_legit[r] < 0 && mx <= thr) {
            c->first_legit[r] = c->rounds_done[r];
            if (c->stop_when_legitimate)
                c->active[r] = 0;
        }
        if (c->n_obs &&
            ((t + 1) % c->observe_every == 0 || t + 1 == c->rounds)) {
            walks_record_obs(c, r, k, mx, empty);
            k++;
        }
    }

    /* A replica that stopped early (or was frozen on entry) keeps
     * reporting its final configuration at the remaining observation
     * points, matching what the Python segmented loop observes. */
    if (c->n_obs && k < c->n_obs) {
        int32_t mx = 0;
        int64_t empty = 0;
        for (int64_t i = 0; i < n; i++) {
            const int32_t l = row[i];
            if (l > mx)
                mx = l;
            empty += (l == 0);
        }
        for (; k < c->n_obs; k++)
            walks_record_obs(c, r, k, mx, empty);
    }
}

/* Advance the walk ensemble.
 *
 * loads          (R, n) int32, C-contiguous, mutated in place
 * neighbors      (E,)  int32 CSR flat adjacency (shared by all replicas)
 * offsets        (n+1,) int64 CSR row offsets
 * degrees        (n,)  int32 per-node degree (offsets[i+1] - offsets[i])
 * lims           (n,)  uint32 Lemire rejection thresholds (2^32 - d) % d
 * rng_state      (R, 4) uint64 xoshiro256++ states, mutated in place
 * threshold      legitimacy threshold beta * log(n)
 * constrained    1: one token per non-empty node per round; 0: every token
 * max_seen       (R,) int32 running window maximum, updated in place
 * min_empty_seen (R,) int32 running window minimum of the empty-node count
 * first_legit    (R,) int64, -1 until the replica first becomes legitimate
 * rounds_done    (R,) int64 global per-replica round counters
 * active         (R,) uint8, replicas with 0 are frozen and skipped
 * scratch        (n_threads, n) int32 arrivals buffers, all-zero on entry
 *                and on exit
 * sources        (n_threads, n) int32 scratch for non-empty-node lists
 * n_threads      worker threads for the replica axis (<= 1: serial)
 * observe_every  fused observation stride (ignored when n_obs == 0)
 * n_obs          number of fused observation slots; 0 disables observation
 * obs_max        (n_obs, R) int32 post-round max load per slot, or NULL
 * obs_empty      (n_obs, R) int32 empty-node count per slot, or NULL
 * obs_sum        (n_obs, R) int64 load sum per slot, or NULL to skip moments
 * obs_sumsq      (n_obs, R) int64 load sum-of-squares per slot, or NULL
 */
REPRO_ABI void walks_run(int32_t *loads, int64_t R, int64_t n, const int32_t *neighbors,
               const int64_t *offsets, const int32_t *degrees,
               const uint32_t *lims, int64_t rounds, uint64_t *rng_state,
               double threshold, int stop_when_legitimate, int constrained,
               int32_t *max_seen, int32_t *min_empty_seen,
               int64_t *first_legit, int64_t *rounds_done, uint8_t *active,
               int32_t *scratch, int32_t *sources, int32_t n_threads,
               int64_t observe_every, int64_t n_obs, int32_t *obs_max,
               int32_t *obs_empty, int64_t *obs_sum, int64_t *obs_sumsq)
{
    walks_ctx c;
    c.loads = loads;
    c.R = R;
    c.n = n;
    c.neighbors = neighbors;
    c.offsets = offsets;
    c.degrees = degrees;
    c.lims = lims;
    c.rounds = rounds;
    c.rng_state = rng_state;
    c.thr = (int32_t)threshold;
    c.stop_when_legitimate = stop_when_legitimate;
    c.constrained = constrained;
    c.max_seen = max_seen;
    c.min_empty_seen = min_empty_seen;
    c.first_legit = first_legit;
    c.rounds_done = rounds_done;
    c.active = active;
    c.scratch = scratch;
    c.sources = sources;
    c.observe_every = observe_every < 1 ? 1 : observe_every;
    c.n_obs = (obs_max && obs_empty) ? n_obs : 0;
    c.obs_max = obs_max;
    c.obs_empty = obs_empty;
    c.obs_sum = obs_sum;
    c.obs_sumsq = obs_sumsq;
    repro_for_each_replica(&c, walks_replica, R, n_threads);
}
