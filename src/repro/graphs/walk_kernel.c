/* Native batched kernel for topology-constrained parallel random walks.
 *
 * Advances an (R, n) ensemble of independent walk replicas over one shared
 * CSR topology for a given number of rounds entirely in C.  Per round and
 * per active replica, either every non-empty node forwards one token to a
 * uniformly random neighbor (constrained mode — the paper's process on a
 * general graph) or every token moves independently (unconstrained mode).
 * Window metrics (max load, min empty-node count, first legitimate round)
 * and the per-replica early stop on legitimacy are maintained in-kernel so
 * a whole `run()` costs a single FFI call.
 *
 * Randomness: each replica owns an independent xoshiro256++ stream whose
 * 4-word state is seeded by the caller (from a numpy SeedSequence), exactly
 * like rbb_kernel.c.  Neighbor picks use Lemire's unbiased bounded-integer
 * reduction with per-node rejection thresholds precomputed by the caller;
 * two 32-bit lanes are taken from each 64-bit draw, and the lane buffer is
 * reset at every round boundary so segmented runs (observation strides)
 * follow the exact same trajectory as whole-window runs.
 *
 * Compiled on demand by repro.core.native via the system C compiler; the
 * pure-numpy kernel in repro.graphs.batched is the semantic reference.
 */

#include <stdint.h>

static inline uint64_t rotl64(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

typedef struct {
    uint64_t s[4];
} rng_t;

/* xoshiro256++ (Blackman & Vigna, public domain reference implementation) */
static inline uint64_t next64(rng_t *g)
{
    uint64_t *s = g->s;
    const uint64_t result = rotl64(s[0] + s[3], 23) + s[0];
    const uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl64(s[3], 45);
    return result;
}

/* Two 32-bit lanes per 64-bit draw, reset at every round boundary. */
typedef struct {
    rng_t *g;
    uint64_t buf;
    int have;
} lanes_t;

static inline uint32_t lane32(lanes_t *L)
{
    if (L->have) {
        L->have = 0;
        return (uint32_t)(L->buf >> 32);
    }
    L->buf = next64(L->g);
    L->have = 1;
    return (uint32_t)L->buf;
}

/* Unbiased pick in [0, d) via Lemire's reduction; lim = (2^32 - d) % d is
 * precomputed per node by the caller. */
static inline uint32_t bounded(lanes_t *L, uint32_t d, uint32_t lim)
{
    for (;;) {
        const uint64_t m = (uint64_t)lane32(L) * d;
        if ((uint32_t)m >= lim)
            return (uint32_t)(m >> 32);
    }
}

/* Advance the walk ensemble.
 *
 * loads          (R, n) int32, C-contiguous, mutated in place
 * neighbors      (E,)  int32 CSR flat adjacency (shared by all replicas)
 * offsets        (n+1,) int64 CSR row offsets
 * degrees        (n,)  int32 per-node degree (offsets[i+1] - offsets[i])
 * lims           (n,)  uint32 Lemire rejection thresholds (2^32 - d) % d
 * rng_state      (R, 4) uint64 xoshiro256++ states, mutated in place
 * threshold      legitimacy threshold beta * log(n)
 * constrained    1: one token per non-empty node per round; 0: every token
 * max_seen       (R,) int32 running window maximum, updated in place
 * min_empty_seen (R,) int32 running window minimum of the empty-node count
 * first_legit    (R,) int64, -1 until the replica first becomes legitimate
 * rounds_done    (R,) int64 global per-replica round counters
 * active         (R,) uint8, replicas with 0 are frozen and skipped
 * scratch        (n,) int32 arrivals buffer, all-zero on entry and on exit
 * sources        (n,) int32 scratch for the non-empty-node index list
 */
void walks_run(int32_t *loads, int64_t R, int64_t n,
               const int32_t *neighbors, const int64_t *offsets,
               const int32_t *degrees, const uint32_t *lims,
               int64_t rounds, uint64_t *rng_state, double threshold,
               int stop_when_legitimate, int constrained,
               int32_t *max_seen, int32_t *min_empty_seen,
               int64_t *first_legit, int64_t *rounds_done, uint8_t *active,
               int32_t *scratch, int32_t *sources)
{
    const int32_t thr = (int32_t)threshold;

    for (int64_t t = 0; t < rounds; t++) {
        int any_active = 0;
        for (int64_t r = 0; r < R; r++) {
            if (!active[r])
                continue;
            any_active = 1;
            int32_t *row = loads + r * n;
            rng_t *g = (rng_t *)(rng_state + 4 * r);
            lanes_t L = {g, 0, 0};

            if (constrained) {
                /* departures: one token per non-empty node.  A SIMD-
                 * friendly count first, then the path that fits the
                 * density: for sparse rows a guarded loop's branch is
                 * almost always not-taken (predicts perfectly); for dense
                 * rows a branchless compaction (conditional write-cursor
                 * increment) avoids mispredicting the random nonempty
                 * pattern, and the draw loop touches only the cnt
                 * non-empty nodes. */
                int64_t cnt = 0;
                for (int64_t i = 0; i < n; i++)
                    cnt += (row[i] > 0);
                if (cnt * 8 < n) { /* sparse */
                    for (int64_t i = 0; i < n; i++) {
                        if (row[i] > 0) {
                            row[i]--;
                            const uint32_t d = (uint32_t)degrees[i];
                            const int64_t off = offsets[i];
                            const int64_t k =
                                d == 1 ? 0 : (int64_t)bounded(&L, d, lims[i]);
                            scratch[neighbors[off + k]]++;
                        }
                    }
                } else { /* dense */
                    int64_t w = 0;
                    for (int64_t i = 0; i < n; i++) {
                        const int32_t ne = row[i] > 0;
                        sources[w] = (int32_t)i;
                        w += ne;
                        row[i] -= ne;
                    }
                    for (int64_t s = 0; s < cnt; s++) {
                        const int64_t i = sources[s];
                        const uint32_t d = (uint32_t)degrees[i];
                        const int64_t off = offsets[i];
                        const int64_t k =
                            d == 1 ? 0 : (int64_t)bounded(&L, d, lims[i]);
                        scratch[neighbors[off + k]]++;
                    }
                }
            } else {
                /* every token moves independently */
                for (int64_t i = 0; i < n; i++) {
                    const int32_t l = row[i];
                    if (l > 0) {
                        row[i] = 0;
                        const uint32_t d = (uint32_t)degrees[i];
                        const int64_t off = offsets[i];
                        const uint32_t lim = lims[i];
                        for (int32_t b = 0; b < l; b++) {
                            const int64_t k =
                                d == 1 ? 0 : (int64_t)bounded(&L, d, lim);
                            scratch[neighbors[off + k]]++;
                        }
                    }
                }
            }

            /* arrivals + metrics of the new configuration */
            int32_t mx = 0;
            int64_t empty = 0;
            for (int64_t i = 0; i < n; i++) {
                const int32_t l = row[i] + scratch[i];
                row[i] = l;
                scratch[i] = 0;
                if (l > mx)
                    mx = l;
                empty += (l == 0);
            }
            rounds_done[r]++;
            if (mx > max_seen[r])
                max_seen[r] = mx;
            if ((int32_t)empty < min_empty_seen[r])
                min_empty_seen[r] = (int32_t)empty;
            if (first_legit[r] < 0 && mx <= thr) {
                first_legit[r] = rounds_done[r];
                if (stop_when_legitimate)
                    active[r] = 0;
            }
        }
        if (!any_active)
            break;
    }
}
