"""Batched constrained parallel walks: R replicas on one shared topology.

This is the graph generalization of
:class:`~repro.core.batched.BatchedRepeatedBallsIntoBins`: ``R``
independent replicas of the topology-constrained parallel-walk process
(:class:`~repro.graphs.walks.ConstrainedParallelWalks`) advance as one
vectorized ``(R, n)`` load matrix over a single shared CSR
:class:`~repro.graphs.topology.Topology`.  A round costs one flat
neighbor draw over the combined ``r * n + node`` index space plus a single
``np.bincount`` — instead of ``R`` separate Python-level simulations.

Both walk modes are supported:

``constrained=True`` (the paper's model)
    Every non-empty node forwards exactly one token to a uniformly random
    neighbor per round; the rest of the queue waits.
``constrained=False`` (the idealized comparison process)
    Every token moves independently every round — no queueing — so the
    gap between the two modes quantifies the congestion introduced by the
    one-token-per-round constraint.

With ``R == 1`` and the same seed the trajectory is **stream-equal** to
the sequential simulator in either mode: the flat index order (row-major
over ``(R, n)``) visits the single replica's nodes exactly as
``np.flatnonzero`` / ``np.repeat`` do sequentially, and
:meth:`Topology.sample_neighbors` consumes one ``rng.random`` draw per
token in both paths.

Like :class:`~repro.core.batched.BatchedRepeatedBallsIntoBins`, two
kernels drive the update: the pure-numpy reference above, and a compiled
C kernel (``walk_kernel.c``, built on demand through
:mod:`repro.core.native`) with independent per-replica xoshiro256++
streams that collapses a whole ``run()`` into one FFI call — the source
of the order-of-magnitude ensemble speedups
(``benchmarks/bench_batched.py`` enforces them).  ``kernel="auto"`` (the
default) uses the native kernel when a C compiler is available and falls
back to numpy silently; ``REPRO_NATIVE=0`` forces numpy everywhere.

Example
-------
Tokens are conserved per replica and every window metric is a
length-``R`` vector:

>>> from .generators import resolve_topology
>>> walks = BatchedConstrainedWalks(resolve_topology("cycle:8"), 4, seed=0)
>>> result = walks.run(16)
>>> result.final_loads.sum(axis=1).tolist()
[8, 8, 8, 8]
>>> result.max_load_seen.shape
(4,)
"""

from __future__ import annotations

import ctypes
from typing import Optional, Union

import numpy as np

from .topology import Topology
from ..core.batched import BatchedLoadProcess
from ..core.config import LoadConfiguration
from ..core.native import get_kernel, native_status, resolve_n_threads
from ..errors import ConfigurationError
from ..types import SeedLike

__all__ = ["BatchedConstrainedWalks"]


class BatchedConstrainedWalks(BatchedLoadProcess):
    """Vectorized ensemble of ``R`` constrained parallel-walk replicas.

    Parameters
    ----------
    topology:
        The shared graph every replica walks on (one CSR adjacency in
        memory, regardless of ``R``).
    n_replicas:
        Number of independent replicas ``R``.
    n_tokens:
        Tokens per replica (default: one per node, the paper's setting).
        Ignored when ``initial`` is given.
    initial:
        ``None`` for the balanced start, a single configuration
        replicated across replicas, or a 2-D ``(R, n)`` matrix of
        per-replica starts.
    constrained:
        ``True`` (default) forwards one token per non-empty node per
        round; ``False`` moves every token independently.
    seed:
        Seed-like value; with ``R == 1`` and the numpy kernel the
        trajectory matches
        :class:`~repro.graphs.walks.ConstrainedParallelWalks` under the
        same seed, step for step.
    kernel:
        ``"numpy"`` (reference), ``"native"`` (compiled; raises when no C
        compiler is available), or ``"auto"`` (native when possible).
    n_threads:
        Worker threads for native-kernel calls; see
        :class:`~repro.core.batched.BatchedLoadProcess`.  Never changes
        results.
    """

    def __init__(
        self,
        topology: Topology,
        n_replicas: int,
        n_tokens: Optional[int] = None,
        initial: Union[LoadConfiguration, np.ndarray, None] = None,
        constrained: bool = True,
        seed: SeedLike = None,
        kernel: str = "auto",
        n_threads: Optional[int] = None,
    ) -> None:
        if kernel not in ("auto", "numpy", "native"):
            raise ConfigurationError(
                f"kernel must be 'auto', 'numpy' or 'native', got {kernel!r}"
            )
        if kernel == "native" and get_kernel("walks") is None:
            raise ConfigurationError(
                "native walk kernel requested but unavailable "
                f"({native_status('walks')})"
            )
        super().__init__(
            topology.num_nodes,
            n_replicas,
            n_balls=n_tokens,
            initial=initial,
            seed=seed,
            n_threads=n_threads,
        )
        self._topology = topology
        self._constrained = bool(constrained)
        self._kernel = kernel
        self._csr_cache: Optional[tuple] = None
        self._scratch_cache: Optional[tuple] = None

    # ------------------------------------------------------------------
    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def num_nodes(self) -> int:
        return self._n_bins

    @property
    def constrained(self) -> bool:
        return self._constrained

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------
    def _advance(self) -> None:
        """One round for all active replicas with a single flat draw.

        Non-empty cells (constrained) or token multiplicities
        (unconstrained) are flattened over the combined ``r * n + node``
        index space; :meth:`Topology.sample_neighbors` draws one uniform
        neighbor per departing token, destinations are shifted back into
        their replica's block, and one ``np.bincount`` scatters the
        arrivals of the whole ensemble.
        """
        loads = self._loads
        active = self._active
        n = self._n_bins
        if self._constrained:
            nonempty = loads > 0
            if not active.all():
                nonempty &= active[:, None]
            cells = np.flatnonzero(nonempty.ravel())
            if cells.size == 0:
                return
            nodes = cells % n
            loads -= nonempty
            destinations = self._topology.sample_neighbors(nodes, self._rng)
            # cells - nodes is the replica block offset r * n
            combined = cells - nodes + destinations
            loads += np.bincount(
                combined, minlength=self._n_replicas * n
            ).reshape(self._n_replicas, n)
        else:
            if active.all():
                multiplicities = loads.ravel()
            else:
                multiplicities = (loads * active[:, None]).ravel()
            cells = np.repeat(
                np.arange(multiplicities.size, dtype=np.int64), multiplicities
            )
            if cells.size == 0:
                return
            nodes = cells % n
            destinations = self._topology.sample_neighbors(nodes, self._rng)
            combined = cells - nodes + destinations
            arrivals = np.bincount(
                combined, minlength=self._n_replicas * n
            ).reshape(self._n_replicas, n)
            loads[active] = arrivals[active]

    # ------------------------------------------------------------------
    # Dynamics — native kernel
    # ------------------------------------------------------------------
    def _native_supported(self) -> bool:
        neighbors, _ = self._topology.csr()
        return bool(
            self._n_bins < 2**31
            and neighbors.size < 2**31
            and (self._n_balls < 2**31 - 1).all()
        )

    def _native_csr(self) -> tuple:
        """Kernel-ready CSR arrays (int32 neighbors/degrees, Lemire limits)."""
        if self._csr_cache is None:
            neighbors, offsets = self._topology.csr()
            degrees = np.ascontiguousarray(np.diff(offsets), dtype=np.int32)
            # Lemire rejection threshold (2**32 - d) % d, one per node
            d64 = degrees.astype(np.uint64)
            lims = ((np.uint64(2**32) - d64) % d64).astype(np.uint32)
            self._csr_cache = (
                np.ascontiguousarray(neighbors, dtype=np.int32),
                np.ascontiguousarray(offsets, dtype=np.int64),
                degrees,
                np.ascontiguousarray(lims),
            )
        return self._csr_cache

    def _native_scratch(self, n_threads: int) -> tuple:
        """Per-thread kernel work buffers, resized when the thread count
        grows: ``(n_threads, n)`` arrivals rows (all-zero between calls —
        the kernel restores the invariant) and source-compaction rows."""
        if self._scratch_cache is None or self._scratch_cache[0] < n_threads:
            self._scratch_cache = (
                n_threads,
                np.zeros((n_threads, self._n_bins), dtype=np.int32),
                np.empty((n_threads, self._n_bins), dtype=np.int32),
            )
        return self._scratch_cache[1], self._scratch_cache[2]

    def _run_window(
        self, rounds, threshold, stop_when_legitimate, first_legit, observers,
        observe_every,
    ):
        kernel = get_kernel("walks") if self._kernel in ("auto", "native") else None
        if kernel is not None and not self._native_supported():
            if self._kernel == "native":
                raise ConfigurationError(
                    "native walk kernel requested but the state does not fit "
                    "its int32 representation (node, edge, and per-replica "
                    "token counts must stay below 2**31)"
                )
            kernel = None
        if kernel is None:
            return super()._run_window(
                rounds, threshold, stop_when_legitimate, first_legit, observers,
                observe_every,
            )
        # the walk kernel's lane buffer resets at round boundaries, so the
        # shared observed-segmentation loop is trajectory-exact here too
        return self._run_window_native(
            kernel, rounds, threshold, stop_when_legitimate, first_legit,
            observers, observe_every,
        )

    def _run_native(
        self, kernel, rounds, threshold, stop_when_legitimate, first_legit,
        obs=None,
    ):
        R = self._n_replicas
        loads32 = np.ascontiguousarray(self._loads, dtype=np.int32)
        neighbors, offsets, degrees, lims = self._native_csr()
        states = self._native_states()
        max_seen = np.zeros(R, dtype=np.int32)
        min_empty = np.full(R, self._n_bins, dtype=np.int32)
        active8 = np.ascontiguousarray(self._active, dtype=np.uint8)
        rounds_done = np.ascontiguousarray(self._rounds_done)
        first64 = np.ascontiguousarray(first_legit)
        n_threads = resolve_n_threads(self._n_threads, R, kernel="walks")
        scratch, sources = self._native_scratch(n_threads)
        if obs is None:
            observe_every, n_obs = 1, 0
            obs_max = obs_empty = obs_sum = obs_sumsq = None
        else:
            observe_every, obs_max, obs_empty, obs_sum, obs_sumsq = obs
            n_obs = int(obs_max.shape[0])

        def ptr(arr, ctype):
            if arr is None:
                return None  # NULL: kernel skips the optional output
            return arr.ctypes.data_as(ctypes.POINTER(ctype))

        kernel(
            ptr(loads32, ctypes.c_int32),
            ctypes.c_int64(R),
            ctypes.c_int64(self._n_bins),
            ptr(neighbors, ctypes.c_int32),
            ptr(offsets, ctypes.c_int64),
            ptr(degrees, ctypes.c_int32),
            ptr(lims, ctypes.c_uint32),
            ctypes.c_int64(rounds),
            ptr(states, ctypes.c_uint64),
            ctypes.c_double(threshold),
            ctypes.c_int(1 if stop_when_legitimate else 0),
            ctypes.c_int(1 if self._constrained else 0),
            ptr(max_seen, ctypes.c_int32),
            ptr(min_empty, ctypes.c_int32),
            ptr(first64, ctypes.c_int64),
            ptr(rounds_done, ctypes.c_int64),
            ptr(active8, ctypes.c_uint8),
            ptr(scratch, ctypes.c_int32),
            ptr(sources, ctypes.c_int32),
            ctypes.c_int32(n_threads),
            ctypes.c_int64(observe_every),
            ctypes.c_int64(n_obs),
            ptr(obs_max, ctypes.c_int32),
            ptr(obs_empty, ctypes.c_int32),
            ptr(obs_sum, ctypes.c_int64),
            ptr(obs_sumsq, ctypes.c_int64),
        )
        self._loads[...] = loads32
        self._rounds_done[...] = rounds_done
        self._active[...] = active8.astype(bool)
        first_legit[...] = first64
        return max_seen.astype(np.int64), min_empty.astype(np.int64)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "constrained" if self._constrained else "independent"
        return (
            f"BatchedConstrainedWalks(topology={self._topology.name!r}, "
            f"n_replicas={self._n_replicas}, mode={mode}, "
            f"kernel={self._kernel!r}, rounds<= {self.round_index})"
        )
