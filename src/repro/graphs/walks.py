"""Parallel random walks on arbitrary topologies with the one-token-per-round
constraint.

This is the graph generalization of the repeated balls-into-bins process:
``m`` tokens live on the nodes of a graph; in every round each *non-empty*
node forwards exactly one of its tokens to a uniformly random neighbor.  On
the complete graph (with self-loops) this is precisely the paper's process;
on other topologies it is the object of the Section 5 open question.

For comparison the simulator can also run the *unconstrained* variant in
which every token moves independently each round (no queueing): the
difference between the two quantifies the congestion introduced by the
constraint, which is the phenomenon the paper studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from .topology import Topology
from ..core.config import DEFAULT_BETA, LoadConfiguration, legitimacy_threshold
from ..errors import ConfigurationError
from ..metrics.base import BatchedObserverList, as_load_matrix
from ..rng import as_generator
from ..types import LoadVector, SeedLike

__all__ = ["ConstrainedParallelWalks", "GraphWalkResult"]


@dataclass
class GraphWalkResult:
    """Summary of a constrained-parallel-walks run.

    Attributes
    ----------
    rounds:
        Rounds simulated in this call.
    max_load_seen:
        Window maximum load, seeded from the configuration at call time
        (so zero-round calls report the observed max, never 0).
    final_configuration:
        Loads after the last round.
    min_empty_nodes_seen:
        Smallest count of token-free nodes, seeded from the configuration
        at call time.
    """

    rounds: int
    max_load_seen: int
    final_configuration: LoadConfiguration
    min_empty_nodes_seen: int


class ConstrainedParallelWalks:
    """Anonymous (load-level) parallel random walks on a topology.

    Parameters
    ----------
    topology:
        The graph to walk on.
    n_tokens:
        Number of tokens (default: one per node).
    initial:
        Optional initial load configuration over the nodes.
    constrained:
        ``True`` (default) forwards one token per non-empty node per round —
        the paper's model.  ``False`` moves every token independently every
        round (no queueing), the idealized comparison process.
    seed:
        Seed-like value.
    """

    def __init__(
        self,
        topology: Topology,
        n_tokens: Optional[int] = None,
        initial: Union[LoadConfiguration, np.ndarray, None] = None,
        constrained: bool = True,
        seed: SeedLike = None,
    ) -> None:
        self._topology = topology
        n = topology.num_nodes
        if initial is not None:
            config = initial if isinstance(initial, LoadConfiguration) else LoadConfiguration(np.asarray(initial))
            if config.n_bins != n:
                raise ConfigurationError(
                    f"initial configuration has {config.n_bins} nodes, expected {n}"
                )
            if n_tokens is not None and n_tokens != config.n_balls:
                raise ConfigurationError(
                    f"n_tokens={n_tokens} contradicts initial configuration with {config.n_balls} tokens"
                )
            self._loads = config.as_array()
        else:
            m = n if n_tokens is None else int(n_tokens)
            if m < 0:
                raise ConfigurationError(f"n_tokens must be >= 0, got {m}")
            self._loads = LoadConfiguration.balanced(n, m).as_array()
        self._n_tokens = int(self._loads.sum())
        self._constrained = bool(constrained)
        self._rng = as_generator(seed)
        self._round = 0

    # ------------------------------------------------------------------
    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def num_nodes(self) -> int:
        return self._topology.num_nodes

    @property
    def n_bins(self) -> int:
        """Alias of :attr:`num_nodes` — the load-process spelling, so the
        shared window loop and the ensemble engine treat a walk like any
        other single-replica load process."""
        return self._topology.num_nodes

    @property
    def n_tokens(self) -> int:
        return self._n_tokens

    @property
    def constrained(self) -> bool:
        return self._constrained

    @property
    def round_index(self) -> int:
        return self._round

    @property
    def loads(self) -> LoadVector:
        view = self._loads.view()
        view.setflags(write=False)
        return view

    def configuration(self) -> LoadConfiguration:
        return LoadConfiguration(self._loads)

    @property
    def max_load(self) -> int:
        return int(self._loads.max())

    @property
    def num_empty_nodes(self) -> int:
        return int(np.count_nonzero(self._loads == 0))

    def is_legitimate(self, beta: float = DEFAULT_BETA) -> bool:
        return self.max_load <= legitimacy_threshold(self.num_nodes, beta)

    # ------------------------------------------------------------------
    def step(self) -> LoadVector:
        """Advance one synchronous round."""
        loads = self._loads
        n = self.num_nodes
        if self._constrained:
            sources = np.flatnonzero(loads > 0)
            if sources.size:
                loads[sources] -= 1
                destinations = self._topology.sample_neighbors(sources, self._rng)
                loads += np.bincount(destinations, minlength=n)
        else:
            # every token moves: expand node indices by multiplicity
            sources = np.repeat(np.arange(n, dtype=np.int64), loads)
            if sources.size:
                destinations = self._topology.sample_neighbors(sources, self._rng)
                self._loads = np.bincount(destinations, minlength=n).astype(np.int64)
        self._round += 1
        return self.loads

    def run(self, rounds: int, observers=None, observe_every: int = 1) -> GraphWalkResult:
        """Simulate ``rounds`` rounds collecting the standard load metrics.

        Parameters
        ----------
        rounds:
            Number of rounds for this call.
        observers:
            ``None``, a single observer/callable, or a sequence of them,
            coerced through the unified
            :class:`~repro.metrics.base.BatchedObserverList` pipeline —
            the same trackers that attach to the batched engine attach
            here, seeing the state as a ``(1, n)`` load matrix.
        observe_every:
            Observation stride: observers fire every ``observe_every``
            executed rounds (and after the final one).  Window statistics
            stay exact at any stride.

        The window statistics are seeded from the *current* configuration,
        so a zero-round call (or a call on a pre-loaded state) reports the
        observed max load and empty-node count rather than zeros.
        """
        if rounds < 0:
            raise ConfigurationError(f"rounds must be >= 0, got {rounds}")
        if observe_every < 1:
            raise ConfigurationError(
                f"observe_every must be >= 1, got {observe_every}"
            )
        obs = BatchedObserverList.coerce(observers)
        max_load_seen = int(self._loads.max()) if self._loads.size else 0
        min_empty = int(np.count_nonzero(self._loads == 0))
        executed = 0
        for _ in range(rounds):
            loads = self.step()
            executed += 1
            current_max = int(loads.max())
            if current_max > max_load_seen:
                max_load_seen = current_max
            empties = int(np.count_nonzero(loads == 0))
            if empties < min_empty:
                min_empty = empties
            if not obs.is_empty and (
                executed % observe_every == 0 or executed == rounds
            ):
                obs.observe(self._round, as_load_matrix(loads))
        return GraphWalkResult(
            rounds=executed,
            max_load_seen=max_load_seen,
            final_configuration=self.configuration(),
            min_empty_nodes_seen=min_empty,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "constrained" if self._constrained else "independent"
        return (
            f"ConstrainedParallelWalks(topology={self._topology.name!r}, "
            f"tokens={self._n_tokens}, mode={mode}, round={self._round})"
        )
