"""Graph substrate for the general-topology open question (Section 5).

On the complete graph the repeated balls-into-bins process coincides with
running ``n`` parallel random walks under the constraint that each node
forwards at most one token per round.  The paper conjectures (but does not
prove) that the maximum load stays logarithmic on every regular graph; this
package provides the topologies and the constrained parallel-walk simulator
needed to probe that conjecture empirically (experiment E13) and to compare
against the ``O(sqrt(t))`` bound known for regular graphs.
"""

from .generators import (
    complete_graph,
    cycle_graph,
    hypercube_graph,
    random_regular_graph,
    star_graph,
    torus_grid_graph,
)
from .topology import Topology
from .walks import ConstrainedParallelWalks, GraphWalkResult

__all__ = [
    "Topology",
    "complete_graph",
    "cycle_graph",
    "torus_grid_graph",
    "hypercube_graph",
    "random_regular_graph",
    "star_graph",
    "ConstrainedParallelWalks",
    "GraphWalkResult",
]
