"""Graph substrate for the general-topology open question (Section 5).

On the complete graph the repeated balls-into-bins process coincides with
running ``n`` parallel random walks under the constraint that each node
forwards at most one token per round.  The paper conjectures (but does not
prove) that the maximum load stays logarithmic on every regular graph; this
package provides the topologies (addressable through the JSON-scalar spec
language of :func:`~repro.graphs.generators.parse_topology_spec`), the
sequential constrained-walk simulator, and the batched ``(R, n)`` walk
ensemble :class:`~repro.graphs.batched.BatchedConstrainedWalks` needed to
probe that conjecture empirically (experiments E13 and E16) and to compare
against the ``O(sqrt(t))`` bound known for regular graphs.
"""

from .batched import BatchedConstrainedWalks
from .generators import (
    TOPOLOGY_KINDS,
    ParsedTopology,
    complete_graph,
    cycle_graph,
    hypercube_graph,
    parse_topology_spec,
    random_regular_graph,
    resolve_topology,
    star_graph,
    torus_grid_graph,
)
from .topology import Topology
from .walks import ConstrainedParallelWalks, GraphWalkResult

__all__ = [
    "Topology",
    "complete_graph",
    "cycle_graph",
    "torus_grid_graph",
    "hypercube_graph",
    "random_regular_graph",
    "star_graph",
    "TOPOLOGY_KINDS",
    "ParsedTopology",
    "parse_topology_spec",
    "resolve_topology",
    "ConstrainedParallelWalks",
    "GraphWalkResult",
    "BatchedConstrainedWalks",
]
