"""Command-line interface: ``python -m repro`` or the ``repro`` console script.

Sub-commands
------------
``list``
    Show every registered experiment with its claim and default parameters.
``run EXPERIMENT_ID``
    Run one experiment and print its result table; optionally write JSON/CSV.
``describe EXPERIMENT_ID``
    Show the full spec of one experiment.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .experiments import (
    available_experiments,
    format_table,
    get_experiment,
    run_experiment,
    save_result_csv,
    save_result_json,
)
from .errors import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction harness for 'Self-stabilizing repeated balls-into-bins' "
            "(Becchetti et al.)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments")

    describe = sub.add_parser("describe", help="show one experiment's spec")
    describe.add_argument("experiment_id", help="experiment id, e.g. E1")

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment_id", help="experiment id, e.g. E1")
    run.add_argument("--seed", type=int, default=0, help="root seed (default 0)")
    run.add_argument(
        "--param",
        "-p",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override a default parameter (VALUE is parsed as JSON, e.g. -p sizes='[64,128]')",
    )
    run.add_argument("--json", dest="json_path", default=None, help="write the result as JSON")
    run.add_argument("--csv", dest="csv_path", default=None, help="write the rows as CSV")
    run.add_argument(
        "--markdown", action="store_true", help="print a markdown table instead of plain text"
    )
    run.add_argument(
        "--engine",
        choices=["batched", "sequential"],
        default=None,
        help=(
            "Monte-Carlo engine for ensemble experiments: 'batched' advances "
            "all replicas as one vectorized (R x n) state, 'sequential' runs "
            "one replica per trial (ignored by experiments without an "
            "'engine' parameter)"
        ),
    )

    report = sub.add_parser(
        "report", help="run a set of experiments and write a markdown report (EXPERIMENTS.md style)"
    )
    report.add_argument("--out", default="EXPERIMENTS.md", help="output path (default EXPERIMENTS.md)")
    report.add_argument("--seed", type=int, default=0, help="root seed (default 0)")
    report.add_argument(
        "--only",
        nargs="*",
        default=None,
        metavar="ID",
        help="restrict to a subset of experiment ids (default: all)",
    )
    report.add_argument(
        "--engine",
        choices=["batched", "sequential"],
        default=None,
        help="Monte-Carlo engine for the ensemble experiments in the report",
    )
    return parser


def _parse_overrides(pairs: List[str]) -> dict:
    overrides = {}
    for pair in pairs:
        if "=" not in pair:
            raise ReproError(f"parameter override {pair!r} must look like KEY=VALUE")
        key, raw = pair.split("=", 1)
        key = key.strip()
        raw = raw.strip()
        try:
            value = json.loads(raw)
        except json.JSONDecodeError:
            value = raw  # fall back to the raw string (e.g. adversary=concentrate)
        overrides[key] = value
    return overrides


def _cmd_list() -> int:
    rows = [
        {
            "id": spec.experiment_id,
            "claim": spec.claim,
            "title": spec.title,
        }
        for spec in available_experiments()
    ]
    print(format_table(rows, columns=["id", "claim", "title"]))
    return 0


def _cmd_describe(experiment_id: str) -> int:
    spec = get_experiment(experiment_id)
    print(f"{spec.experiment_id}: {spec.title}")
    print(f"  claim          : {spec.claim}")
    print(f"  expected shape : {spec.expected_shape}")
    print("  default params :")
    for key, value in spec.default_params.items():
        print(f"    {key} = {value!r}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    overrides = _parse_overrides(args.param)
    if args.engine is not None:
        spec = get_experiment(args.experiment_id)
        if "engine" in spec.default_params:
            overrides["engine"] = args.engine
        else:
            print(
                f"note: {spec.experiment_id} does not run through the ensemble "
                "engine; --engine ignored",
                file=sys.stderr,
            )
    result = run_experiment(args.experiment_id, params=overrides or None, seed=args.seed)
    style = "markdown" if args.markdown else "text"
    title = f"{result.spec.experiment_id}: {result.spec.title} ({result.spec.claim})"
    print(format_table(result.rows, style=style, title=title))
    for note in result.notes:
        print(f"note: {note}")
    if args.json_path:
        path = save_result_json(result, args.json_path)
        print(f"wrote {path}")
    if args.csv_path:
        path = save_result_csv(result, args.csv_path)
        print(f"wrote {path}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .experiments.report import generate_full_report

    report = generate_full_report(
        experiment_ids=args.only, seed=args.seed, engine=args.engine
    )
    Path(args.out).write_text(report)
    print(f"wrote {args.out}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "describe":
            return _cmd_describe(args.experiment_id)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "report":
            return _cmd_report(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    parser.error(f"unknown command {args.command!r}")
    return 2  # pragma: no cover - argparse exits before reaching this


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
