"""Command-line interface: ``python -m repro`` or the ``repro`` console script.

Sub-commands
------------
``list``
    Show every registered experiment with its claim and default parameters.
``run EXPERIMENT_ID``
    Run one experiment and print its result table; optionally write JSON/CSV.
``describe EXPERIMENT_ID``
    Show the full spec of one experiment.
``report``
    Run a set of experiments and write an EXPERIMENTS.md-style report.
``sweep run|resume|status|query|list``
    Declarative parameter sweeps with a durable result store: run a
    catalogued or JSON-file sweep into a store directory, resume a killed
    sweep without re-running completed points, inspect completion state,
    and query stored point summaries as tables.
``verify``
    Exact-chain conformance harness: drive every engine coordinate
    (engine x kernel x threads x fusion x workers) at small ``n`` and
    gate its empirical distributions against the exactly enumerated
    Markov chains of ``repro.markov``.  Failures write replayable
    counterexample artifacts; ``--replay`` re-runs one from its file.
``scenario run|list|validate``
    Round-clock scenarios (``repro.scenarios``): list the named catalog,
    validate a scenario spelling (catalog name, ``name:key=value`` or
    inline JSON) and show its expanded event schedule, or run one
    against an ensemble and print the recovery summary.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .experiments import (
    available_experiments,
    format_table,
    get_experiment,
    run_experiment,
    save_result_csv,
    save_result_json,
)
from .errors import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction harness for 'Self-stabilizing repeated balls-into-bins' "
            "(Becchetti et al.)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments")

    describe = sub.add_parser("describe", help="show one experiment's spec")
    describe.add_argument("experiment_id", help="experiment id, e.g. E1")

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment_id", help="experiment id, e.g. E1")
    run.add_argument("--seed", type=int, default=0, help="root seed (default 0)")
    run.add_argument(
        "--param",
        "-p",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override a default parameter (VALUE is parsed as JSON, e.g. -p sizes='[64,128]')",
    )
    run.add_argument("--json", dest="json_path", default=None, help="write the result as JSON")
    run.add_argument("--csv", dest="csv_path", default=None, help="write the rows as CSV")
    run.add_argument(
        "--markdown", action="store_true", help="print a markdown table instead of plain text"
    )
    run.add_argument(
        "--engine",
        choices=["batched", "sequential"],
        default=None,
        help=(
            "Monte-Carlo engine for ensemble experiments: 'batched' advances "
            "all replicas as one vectorized (R x n) state, 'sequential' runs "
            "one replica per trial (ignored by experiments without an "
            "'engine' parameter)"
        ),
    )

    report = sub.add_parser(
        "report", help="run a set of experiments and write a markdown report (EXPERIMENTS.md style)"
    )
    report.add_argument("--out", default="EXPERIMENTS.md", help="output path (default EXPERIMENTS.md)")
    report.add_argument("--seed", type=int, default=0, help="root seed (default 0)")
    report.add_argument(
        "--only",
        nargs="*",
        default=None,
        metavar="ID",
        help="restrict to a subset of experiment ids (default: all)",
    )
    report.add_argument(
        "--engine",
        choices=["batched", "sequential"],
        default=None,
        help="Monte-Carlo engine for the ensemble experiments in the report",
    )

    sweep = sub.add_parser(
        "sweep",
        help="declarative parameter sweeps with a durable, resumable result store",
    )
    sweep_sub = sweep.add_subparsers(dest="sweep_command", required=True)

    sweep_sub.add_parser("list", help="list catalogued sweeps")

    sweep_run = sweep_sub.add_parser(
        "run", help="run a sweep into a fresh store directory"
    )
    sweep_run.add_argument(
        "name",
        nargs="?",
        default=None,
        help="catalogued sweep name (see `repro sweep list`); omit with --spec-file",
    )
    sweep_run.add_argument(
        "--spec-file",
        default=None,
        help="JSON file holding a SweepSpec (alternative to a catalogued name)",
    )
    sweep_run.add_argument(
        "--store", required=True, help="store directory (created; must not exist)"
    )
    sweep_run.add_argument("--seed", type=int, default=0, help="root seed (default 0)")
    sweep_run.add_argument(
        "--engine",
        choices=["auto", "batched", "sequential"],
        default="auto",
        help="ensemble engine per point (default auto = batched)",
    )
    sweep_run.add_argument(
        "--kernel",
        choices=["auto", "numpy", "native"],
        default="auto",
        help="batched-engine kernel (default auto)",
    )
    sweep_run.add_argument(
        "--workers",
        type=int,
        default=0,
        help="process-pool workers sharding each point's replicas (default 0 = in-process)",
    )
    sweep_run.add_argument(
        "--threads",
        type=int,
        default=None,
        metavar="N",
        help=(
            "native-kernel threads per shard (default: REPRO_NATIVE_THREADS, "
            "then the visible core count); results are identical for any "
            "value, and workers x threads is capped to the visible cores"
        ),
    )
    sweep_run.add_argument(
        "--max-points",
        type=int,
        default=None,
        help="stop after newly running this many points (resume later)",
    )
    sweep_run.add_argument(
        "--metrics",
        default=None,
        metavar="NAMES",
        help=(
            "observed metrics collected at every point, as comma-separated "
            "tracker names (e.g. max_load,legitimacy); per-replica "
            "series/summaries land in the point shards and streaming "
            "summaries in the manifest"
        ),
    )
    sweep_run.add_argument(
        "--observe-every",
        type=int,
        default=None,
        metavar="STRIDE",
        help=(
            "observation stride for --metrics (default 1); the native "
            "kernel runs in segments of this length between observations"
        ),
    )

    sweep_resume = sweep_sub.add_parser(
        "resume",
        help="continue a stored sweep from its own header; re-runs nothing",
    )
    sweep_resume.add_argument("--store", required=True, help="existing store directory")
    sweep_resume.add_argument(
        "--max-points",
        type=int,
        default=None,
        help="stop after newly running this many points",
    )

    sweep_status_p = sweep_sub.add_parser(
        "status", help="show a stored sweep's completion state"
    )
    sweep_status_p.add_argument("--store", required=True, help="existing store directory")

    sweep_query = sweep_sub.add_parser(
        "query", help="query stored point summaries as a table"
    )
    sweep_query.add_argument("--store", required=True, help="existing store directory")
    sweep_query.add_argument(
        "--where",
        "-w",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help=(
            "exact-match filter on a config field (aliases n/m/R accepted; "
            "VALUE parsed as JSON), e.g. -w process=faulty -w n=1024"
        ),
    )
    sweep_query.add_argument(
        "--columns",
        nargs="*",
        default=None,
        metavar="COL",
        help="explicit column list (default: a compact summary set)",
    )
    sweep_query.add_argument(
        "--markdown", action="store_true", help="print a markdown table"
    )
    sweep_query.add_argument(
        "--csv", dest="csv_path", default=None, help="also write the rows as CSV"
    )

    scenario = sub.add_parser(
        "scenario",
        help="round-clock scenarios: composite, time-varying workloads",
    )
    scenario_sub = scenario.add_subparsers(dest="scenario_command", required=True)

    scenario_sub.add_parser("list", help="list the named scenario catalog")

    scenario_validate = scenario_sub.add_parser(
        "validate",
        help="parse a scenario spelling and show its expanded event schedule",
    )
    scenario_validate.add_argument(
        "spec",
        help=(
            "catalog name (optionally name:key=value,...) or an inline "
            "JSON object"
        ),
    )
    scenario_validate.add_argument(
        "--rounds",
        type=int,
        default=None,
        metavar="T",
        help="expand periodic events over a T-round window (default: no expansion)",
    )

    scenario_run = scenario_sub.add_parser(
        "run", help="run a scenario against an ensemble and summarize recovery"
    )
    scenario_run.add_argument("spec", help="scenario spelling (as for validate)")
    scenario_run.add_argument("--n-bins", type=int, default=64, help="bins (default 64)")
    scenario_run.add_argument(
        "--replicas", type=int, default=256, help="independent replicas (default 256)"
    )
    scenario_run.add_argument(
        "--rounds", type=int, default=128, help="rounds to simulate (default 128)"
    )
    scenario_run.add_argument(
        "--process",
        choices=["rbb", "d_choices", "graph_walks"],
        default="rbb",
        help="process family (default rbb; faulty is spelled as adversary events)",
    )
    scenario_run.add_argument(
        "--topology", default=None, help="graph_walks topology, e.g. cycle:64"
    )
    scenario_run.add_argument(
        "--start", default="balanced", help="start family (default balanced)"
    )
    scenario_run.add_argument(
        "--metrics",
        default=None,
        metavar="NAMES",
        help="comma-separated metric names observed during the run",
    )
    scenario_run.add_argument(
        "--observe-every", type=int, default=1, metavar="STRIDE",
        help="observation stride (default 1)",
    )
    scenario_run.add_argument(
        "--engine", choices=["batched", "sequential"], default="batched"
    )
    scenario_run.add_argument(
        "--kernel", choices=["auto", "numpy", "native"], default="auto"
    )
    scenario_run.add_argument("--seed", type=int, default=0, help="root seed (default 0)")
    scenario_run.add_argument(
        "--json", dest="json_path", default=None, help="write the summary as JSON"
    )

    verify = sub.add_parser(
        "verify",
        help="conformance-check every engine against the exact small-n chains",
    )
    verify.add_argument(
        "--level",
        choices=["smoke", "full"],
        default="smoke",
        help="smoke = the fast CI gate; full = the pre-merge cross product",
    )
    verify.add_argument("--seed", type=int, default=0, help="root seed (default 0)")
    verify.add_argument(
        "--only",
        default=None,
        metavar="SUBSTR",
        help=(
            "restrict to cases whose name contains SUBSTR (thresholds stay "
            "those of the unfiltered run)"
        ),
    )
    verify.add_argument(
        "--artifacts",
        default=None,
        metavar="DIR",
        help="directory for counterexample artifacts (default .verify)",
    )
    verify.add_argument(
        "--no-artifacts",
        action="store_true",
        help="do not write counterexample artifacts on failure",
    )
    verify.add_argument(
        "--replay",
        default=None,
        metavar="ARTIFACT",
        help="re-run exactly the failing check recorded in an artifact JSON",
    )
    verify.add_argument(
        "--list", action="store_true", help="list the catalog cases and exit"
    )

    lint = sub.add_parser(
        "lint",
        help="run the project-invariant linter and the C<->ctypes ABI check",
    )
    lint.add_argument(
        "--root",
        default=None,
        help="directory tree for the AST rules (default: the repro package)",
    )
    lint.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids/slugs (default: all rules)",
    )
    lint.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default: text)",
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    return parser


def _parse_overrides(pairs: List[str]) -> dict:
    overrides = {}
    for pair in pairs:
        if "=" not in pair:
            raise ReproError(f"parameter override {pair!r} must look like KEY=VALUE")
        key, raw = pair.split("=", 1)
        key = key.strip()
        raw = raw.strip()
        try:
            value = json.loads(raw)
        except json.JSONDecodeError:
            value = raw  # fall back to the raw string (e.g. adversary=concentrate)
        overrides[key] = value
    return overrides


def _cmd_list() -> int:
    rows = [
        {
            "id": spec.experiment_id,
            "claim": spec.claim,
            "title": spec.title,
        }
        for spec in available_experiments()
    ]
    print(format_table(rows, columns=["id", "claim", "title"]))
    return 0


def _cmd_describe(experiment_id: str) -> int:
    spec = get_experiment(experiment_id)
    print(f"{spec.experiment_id}: {spec.title}")
    print(f"  claim          : {spec.claim}")
    print(f"  expected shape : {spec.expected_shape}")
    print("  default params :")
    for key, value in spec.default_params.items():
        print(f"    {key} = {value!r}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    overrides = _parse_overrides(args.param)
    if args.engine is not None:
        spec = get_experiment(args.experiment_id)
        if "engine" in spec.default_params:
            overrides["engine"] = args.engine
        else:
            print(
                f"note: {spec.experiment_id} does not run through the ensemble "
                "engine; --engine ignored",
                file=sys.stderr,
            )
    result = run_experiment(args.experiment_id, params=overrides or None, seed=args.seed)
    style = "markdown" if args.markdown else "text"
    title = f"{result.spec.experiment_id}: {result.spec.title} ({result.spec.claim})"
    print(format_table(result.rows, style=style, title=title))
    for note in result.notes:
        print(f"note: {note}")
    if args.json_path:
        path = save_result_json(result, args.json_path)
        print(f"wrote {path}")
    if args.csv_path:
        path = save_result_csv(result, args.csv_path)
        print(f"wrote {path}")
    return 0


#: Compact default column set for `repro sweep query` (full rows carry
#: every config field plus mean/std/min/max per metric).
_QUERY_COLUMNS = [
    "index",
    "n_bins",
    "n_replicas",
    "rounds",
    "process",
    "topology",
    "d",
    "adversary",
    "fault_period",
    "window_max_load_mean",
    "window_max_load_max",
    "min_empty_bins_min",
    "converged_fraction",
]


def _load_sweep_spec(args: argparse.Namespace):
    from .sweeps import SweepSpec, get_sweep

    if (args.name is None) == (args.spec_file is None):
        raise ReproError(
            "provide exactly one of a catalogued sweep name or --spec-file "
            "(see `repro sweep list`)"
        )
    if args.spec_file is not None:
        path = Path(args.spec_file)
        if not path.exists():
            raise ReproError(f"sweep spec file {path} does not exist")
        return SweepSpec.from_dict(json.loads(path.read_text()))
    return get_sweep(args.name)


def _print_sweep_report(report) -> None:
    print(
        f"sweep {report.spec.name!r}: {report.n_run} point(s) run, "
        f"{report.n_skipped} already done, {report.n_remaining} remaining "
        f"({report.engine_seconds:.2f}s engine / "
        f"{report.elapsed_seconds:.2f}s total)"
    )


def _cmd_sweep_list() -> int:
    from .sweeps import available_sweeps, get_sweep

    rows = []
    for name in available_sweeps():
        spec = get_sweep(name)
        rows.append(
            {
                "name": name,
                "points": spec.n_points,
                "description": spec.description,
            }
        )
    print(format_table(rows, columns=["name", "points", "description"]))
    return 0


def _with_observation(spec, metrics: Optional[str], observe_every: Optional[int]):
    """Fold the CLI observation flags into a sweep spec's shared base.

    The modified spec is what gets pinned into the store header, so a
    ``repro sweep resume`` keeps collecting the same observed metrics
    without the flags being repeated.
    """
    if metrics is None and observe_every is None:
        return spec
    import dataclasses

    base = dict(spec.base)
    if metrics is not None:
        base["metrics"] = metrics
    if observe_every is not None:
        base["observe_every"] = observe_every
    return dataclasses.replace(spec, base=base)


def _cmd_sweep_run(args: argparse.Namespace) -> int:
    from .store import ResultStore
    from .sweeps import run_sweep

    spec = _with_observation(
        _load_sweep_spec(args), args.metrics, args.observe_every
    )
    store_dir = Path(args.store)
    if (store_dir / ResultStore.HEADER_NAME).exists():
        raise ReproError(
            f"store {store_dir} already exists; continue it with "
            f"`repro sweep resume --store {store_dir}`"
        )
    if (store_dir / ResultStore.MANIFEST_NAME).exists():
        raise ReproError(
            f"{store_dir} holds a manifest but no {ResultStore.HEADER_NAME} "
            "(incomplete or damaged store); it cannot be resumed — pick a "
            "fresh --store directory"
        )
    report = run_sweep(
        spec,
        store_dir,
        seed=args.seed,
        engine=args.engine,
        kernel=args.kernel,
        n_workers=args.workers,
        n_threads=args.threads,
        max_points=args.max_points,
        progress=print,
    )
    _print_sweep_report(report)
    return 0


def _cmd_sweep_resume(args: argparse.Namespace) -> int:
    from .sweeps import resume_sweep

    report = resume_sweep(args.store, max_points=args.max_points, progress=print)
    _print_sweep_report(report)
    return 0


def _cmd_sweep_status(args: argparse.Namespace) -> int:
    from .sweeps import sweep_status

    status = sweep_status(args.store)
    state = "finished" if status.finished else "in progress"
    print(
        f"sweep {status.name!r}: {status.n_completed}/{status.n_points} "
        f"point(s) completed ({state})"
    )
    if status.pending_indexes:
        pending = ", ".join(str(i) for i in status.pending_indexes[:16])
        more = "" if status.n_remaining <= 16 else ", ..."
        print(f"pending point index(es): {pending}{more}")
    return 0


def _cmd_sweep_query(args: argparse.Namespace) -> int:
    from .experiments.tables import rows_to_csv
    from .store import ResultStore

    store = ResultStore.open(args.store)
    filters = _parse_overrides(args.where)
    table = store.select(**filters)
    if not table.rows:
        print("(no matching points)")
        return 0
    columns = args.columns if args.columns else _QUERY_COLUMNS
    style = "markdown" if args.markdown else "text"
    print(format_table(table.rows, columns=columns, style=style))
    if args.csv_path:
        path = Path(args.csv_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(rows_to_csv(table.rows))
        print(f"wrote {path}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.sweep_command == "list":
        return _cmd_sweep_list()
    if args.sweep_command == "run":
        return _cmd_sweep_run(args)
    if args.sweep_command == "resume":
        return _cmd_sweep_resume(args)
    if args.sweep_command == "status":
        return _cmd_sweep_status(args)
    if args.sweep_command == "query":
        return _cmd_sweep_query(args)
    raise ReproError(f"unknown sweep command {args.sweep_command!r}")


def _cmd_scenario_list() -> int:
    from .scenarios import available_scenarios

    rows = [
        {"name": name, "default schedule": description}
        for name, description in sorted(available_scenarios().items())
    ]
    print(format_table(rows, columns=["name", "default schedule"]))
    print(
        "\nuse name:key=value,... to override parameters, or pass an "
        "inline JSON object (see `repro scenario validate`)"
    )
    return 0


def _cmd_scenario_validate(args: argparse.Namespace) -> int:
    from .scenarios import resolve_scenario

    scenario = resolve_scenario(args.spec)
    label = scenario.name or "(inline)"
    print(f"scenario {label}: {len(scenario.events)} event(s)")
    if scenario.description:
        print(f"  {scenario.description}")
    print(f"  canonical JSON: {scenario.to_json()}")
    if args.rounds is not None:
        expanded = scenario.expand_events(args.rounds)
        print(f"  expanded over {args.rounds} rounds: {len(expanded)} firing(s)")
        for when, event in expanded:
            payload = {
                key: getattr(event, key)
                for key in ("count", "adversary", "topology", "value")
                if getattr(event, key) is not None
            }
            detail = ", ".join(f"{k}={v}" for k, v in payload.items())
            print(f"    round {when:>6}: {event.kind}({detail})")
    return 0


def _cmd_scenario_run(args: argparse.Namespace) -> int:
    import numpy as np

    from .parallel.ensemble import EnsembleSpec, run_ensemble

    config = dict(
        n_bins=args.n_bins,
        n_replicas=args.replicas,
        rounds=args.rounds,
        start=args.start,
        scenario=args.spec,
        observe_every=args.observe_every,
    )
    if args.process != "rbb":
        config["process"] = args.process
    if args.topology is not None:
        config["topology"] = args.topology
    if args.metrics is not None:
        config["metrics"] = args.metrics
    spec = EnsembleSpec(**config)
    scenario = spec.resolved_scenario()
    result = run_ensemble(
        spec, seed=args.seed, engine=args.engine, kernel=args.kernel
    )
    label = scenario.name or "(inline)"
    summary = {
        "scenario": label,
        "events": len(scenario.expand_events(args.rounds)),
        "n_bins": args.n_bins,
        "n_replicas": args.replicas,
        "rounds": args.rounds,
        "final_balls_mean": float(np.mean(result.final_loads.sum(axis=1))),
        "window_max_load_mean": float(np.mean(result.max_load_seen)),
        "window_max_load_max": int(np.max(result.max_load_seen)),
        "min_empty_bins_min": int(np.min(result.min_empty_bins_seen)),
        "converged_fraction": result.converged_fraction,
    }
    print(format_table([summary], columns=list(summary)))
    for name, payload in sorted(result.metrics.items()):
        print(
            f"metric {name}: {payload.n_observations} observation(s) at "
            f"rounds {', '.join(str(int(r)) for r in payload.rounds[:8])}"
            + (" ..." if payload.n_observations > 8 else "")
        )
    if args.json_path:
        path = Path(args.json_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(summary, indent=2) + "\n")
        print(f"wrote {path}")
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    if args.scenario_command == "list":
        return _cmd_scenario_list()
    if args.scenario_command == "validate":
        return _cmd_scenario_validate(args)
    if args.scenario_command == "run":
        return _cmd_scenario_run(args)
    raise ReproError(f"unknown scenario command {args.scenario_command!r}")


def _cmd_verify(args: argparse.Namespace) -> int:
    from .verify import (
        DEFAULT_ARTIFACT_DIR,
        build_cases,
        replay_artifact,
        run_conformance,
    )

    if args.replay is not None:
        report = replay_artifact(args.replay)
        print(report.render())
        return 0 if report.passed else 1
    if args.list:
        rows = [
            {
                "case": case.name,
                "engine": case.engine_label,
                "horizons": ",".join(str(h) for h in case.horizons),
                "ground_truth": case.ground_truth,
            }
            for case in build_cases(args.level)
        ]
        print(format_table(rows, columns=["case", "engine", "horizons", "ground_truth"]))
        return 0
    artifacts_dir = None if args.no_artifacts else (args.artifacts or DEFAULT_ARTIFACT_DIR)
    report = run_conformance(
        args.level, seed=args.seed, only=args.only, artifacts_dir=artifacts_dir
    )
    print(report.render())
    return 0 if report.passed else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint.cli import main as lint_main

    argv: List[str] = []
    if args.root is not None:
        argv += ["--root", args.root]
    if args.select is not None:
        argv += ["--select", args.select]
    argv += ["--format", args.format]
    if args.list_rules:
        argv.append("--list-rules")
    return lint_main(argv)


def _cmd_report(args: argparse.Namespace) -> int:
    from .experiments.report import generate_full_report

    report = generate_full_report(
        experiment_ids=args.only, seed=args.seed, engine=args.engine
    )
    Path(args.out).write_text(report)
    print(f"wrote {args.out}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "describe":
            return _cmd_describe(args.experiment_id)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "scenario":
            return _cmd_scenario(args)
        if args.command == "verify":
            return _cmd_verify(args)
        if args.command == "lint":
            return _cmd_lint(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    parser.error(f"unknown command {args.command!r}")
    return 2  # pragma: no cover - argparse exits before reaching this


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
