"""``python -m repro.lint`` — run the project linter."""

import sys

from .cli import main

sys.exit(main())
