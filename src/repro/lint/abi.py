"""C <-> ctypes ABI cross-checker for the native kernels.

The compiled kernels (``rbb_kernel.c``, ``graphs/walk_kernel.c``, plus
``_kernel_common.h``) mark every exported function with the ``REPRO_ABI``
macro; :mod:`repro.core.native` declares each symbol's ``ctypes``
signature as data in :data:`~repro.core.native.KERNEL_ABI`.  This module
parses the marked C definitions (no compiler needed) and verifies, per
symbol:

* **presence** — every declared symbol exists in its source file, and
  every marked C export has a Python declaration;
* **arity and argument order** — parameter-by-parameter;
* **integer widths and signedness** — ``int64_t`` vs ``int32_t`` vs
  ``uint8_t`` etc., including pointee types of pointer parameters.

Types compare through a normalized descriptor (pointer-ness, kind,
width), so aliases that are genuinely the same ABI (``int`` vs
``int32_t`` on the supported platforms) do not false-positive, while a
drifted width (``int32_t *`` vs ``int64_t *``) always fires.
"""

from __future__ import annotations

import ctypes
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .findings import Finding

__all__ = [
    "CParam",
    "CFunction",
    "parse_exported_functions",
    "compare_symbol",
    "check_abi",
]


@dataclass(frozen=True)
class CParam:
    """One parameter of an exported C function (normalized spelling)."""

    name: str
    type: str  # e.g. "const int32_t *" -> "int32_t*"


@dataclass(frozen=True)
class CFunction:
    """One ``REPRO_ABI``-marked function definition."""

    name: str
    return_type: str
    params: Tuple[CParam, ...]
    path: str
    line: int


# --------------------------------------------------------------------
# C source parsing
# --------------------------------------------------------------------
def _strip_comments(text: str) -> str:
    """Blank out comments, preserving every newline (line numbers hold)."""

    def blank(match: re.Match) -> str:
        return re.sub(r"[^\n]", " ", match.group(0))

    text = re.sub(r"/\*.*?\*/", blank, text, flags=re.S)
    text = re.sub(r"//[^\n]*", blank, text)
    # Preprocessor lines go too: `#define REPRO_ABI` itself would
    # otherwise seed a bogus match that swallows the next definition.
    text = re.sub(r"(?m)^[ \t]*#[^\n]*", blank, text)
    return text


_EXPORT_RE = re.compile(
    r"\bREPRO_ABI\s+(?P<ret>[A-Za-z_][A-Za-z0-9_ \t]*?[ \t*]+)"
    r"(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*\((?P<params>[^)]*)\)",
    flags=re.S,
)


def _normalize_type(tokens: Sequence[str], pointer: bool) -> str:
    base = " ".join(t for t in tokens if t not in ("const", "volatile"))
    return f"{base}*" if pointer else base


def _parse_param(raw: str) -> Optional[CParam]:
    raw = raw.strip()
    if not raw or raw == "void":
        return None
    pointer = "*" in raw
    raw = raw.replace("*", " ")
    tokens = raw.split()
    if len(tokens) < 2:
        # e.g. an unnamed parameter — keep the type, synthesize a name
        return CParam(name="<unnamed>", type=_normalize_type(tokens, pointer))
    *type_tokens, name = tokens
    return CParam(name=name, type=_normalize_type(type_tokens, pointer))


def parse_exported_functions(path: Path) -> List[CFunction]:
    """All ``REPRO_ABI``-marked function definitions in one C file."""
    text = _strip_comments(Path(path).read_text())
    functions: List[CFunction] = []
    for match in _EXPORT_RE.finditer(text):
        params = [
            p
            for p in (
                _parse_param(raw) for raw in match.group("params").split(",")
            )
            if p is not None
        ]
        ret_tokens = match.group("ret").replace("*", " * ").split()
        pointer = "*" in ret_tokens
        return_type = _normalize_type(
            [t for t in ret_tokens if t != "*"], pointer
        )
        functions.append(
            CFunction(
                name=match.group("name"),
                return_type=return_type,
                params=tuple(params),
                path=str(path),
                line=text.count("\n", 0, match.start()) + 1,
            )
        )
    return functions


# --------------------------------------------------------------------
# Type descriptors: the common language both sides normalize into
# --------------------------------------------------------------------
@dataclass(frozen=True)
class _TypeDesc:
    pointer: bool
    kind: str  # "int" | "uint" | "float" | "void"
    size: int  # bytes of the scalar (or pointee); 0 for void

    def render(self) -> str:
        if self.kind == "void":
            return "void*" if self.pointer else "void"
        width = self.size * 8
        base = {"int": f"int{width}", "uint": f"uint{width}", "float": f"float{width}"}[
            self.kind
        ]
        return f"{base}*" if self.pointer else base


#: C scalar type name -> (kind, size).  Covers the spellings the kernels
#: use; extend as the kernels grow.
_C_SCALARS: Dict[str, Tuple[str, int]] = {
    "int8_t": ("int", 1),
    "int16_t": ("int", 2),
    "int32_t": ("int", 4),
    "int64_t": ("int", 8),
    "uint8_t": ("uint", 1),
    "uint16_t": ("uint", 2),
    "uint32_t": ("uint", 4),
    "uint64_t": ("uint", 8),
    "char": ("int", 1),
    "int": ("int", ctypes.sizeof(ctypes.c_int)),
    "unsigned": ("uint", ctypes.sizeof(ctypes.c_uint)),
    "unsigned int": ("uint", ctypes.sizeof(ctypes.c_uint)),
    "long": ("int", ctypes.sizeof(ctypes.c_long)),
    "unsigned long": ("uint", ctypes.sizeof(ctypes.c_ulong)),
    "size_t": ("uint", ctypes.sizeof(ctypes.c_size_t)),
    "float": ("float", 4),
    "double": ("float", 8),
    "void": ("void", 0),
}


def _desc_of_c(type_name: str) -> Optional[_TypeDesc]:
    pointer = type_name.endswith("*")
    base = type_name.rstrip("*").strip()
    if base not in _C_SCALARS:
        return None
    kind, size = _C_SCALARS[base]
    return _TypeDesc(pointer=pointer, kind=kind, size=size)


def _desc_of_ctypes(tp: object) -> Optional[_TypeDesc]:
    if tp is None:
        return _TypeDesc(pointer=False, kind="void", size=0)
    if isinstance(tp, type) and issubclass(tp, ctypes._Pointer):
        inner = _desc_of_ctypes(tp._type_)
        if inner is None or inner.pointer:
            return None
        return _TypeDesc(pointer=True, kind=inner.kind, size=inner.size)
    if tp is ctypes.c_void_p:
        return _TypeDesc(pointer=True, kind="void", size=0)
    if isinstance(tp, type) and issubclass(tp, ctypes._SimpleCData):
        code = getattr(tp, "_type_", "")
        size = ctypes.sizeof(tp)
        if code in ("f", "d", "g"):
            return _TypeDesc(pointer=False, kind="float", size=size)
        if code in ("b", "h", "i", "l", "q", "n"):
            return _TypeDesc(pointer=False, kind="int", size=size)
        if code in ("B", "H", "I", "L", "Q", "N", "P"):
            return _TypeDesc(pointer=False, kind="uint", size=size)
    return None


# --------------------------------------------------------------------
# Comparison
# --------------------------------------------------------------------
def compare_symbol(cfunc: CFunction, abi) -> List[Finding]:
    """Cross-check one C definition against its ``SymbolABI`` mirror.

    ``abi`` is a :class:`repro.core.native.SymbolABI` (duck-typed:
    ``name``/``argtypes``/``restype``).
    """
    findings: List[Finding] = []

    def flag(message: str) -> None:
        findings.append(
            Finding(cfunc.path, cfunc.line, "ABI", "abi-drift", message)
        )

    if len(cfunc.params) != len(abi.argtypes):
        flag(
            f"{cfunc.name}: C declares {len(cfunc.params)} parameter(s), "
            f"ctypes argtypes declares {len(abi.argtypes)}"
        )
        return findings  # positional comparison is meaningless past this
    for index, (param, argtype) in enumerate(zip(cfunc.params, abi.argtypes)):
        c_desc = _desc_of_c(param.type)
        py_desc = _desc_of_ctypes(argtype)
        if c_desc is None:
            flag(
                f"{cfunc.name} parameter {index} ({param.name!r}): "
                f"unrecognized C type {param.type!r} — teach "
                "repro.lint.abi about it"
            )
            continue
        if py_desc is None:
            flag(
                f"{cfunc.name} parameter {index} ({param.name!r}): "
                f"unrecognized ctypes argtype {argtype!r}"
            )
            continue
        if c_desc != py_desc:
            flag(
                f"{cfunc.name} parameter {index} ({param.name!r}): C side is "
                f"{c_desc.render()} ({param.type}), ctypes side is "
                f"{py_desc.render()}"
            )
    c_ret = _desc_of_c(cfunc.return_type)
    py_ret = _desc_of_ctypes(abi.restype)
    if c_ret is None:
        flag(f"{cfunc.name}: unrecognized C return type {cfunc.return_type!r}")
    elif py_ret is None:
        flag(f"{cfunc.name}: unrecognized ctypes restype {abi.restype!r}")
    elif c_ret != py_ret:
        flag(
            f"{cfunc.name}: C returns {c_ret.render()}, ctypes restype is "
            f"{py_ret.render()}"
        )
    return findings


def check_abi(symbols: Optional[Mapping[str, object]] = None) -> List[Finding]:
    """Cross-validate every declared kernel symbol against its C source.

    ``symbols`` defaults to :func:`repro.core.native.kernel_abi`; tests
    pass a mapping with deliberately wrong entries.
    """
    if symbols is None:
        from ..core.native import kernel_abi

        symbols = kernel_abi()
    findings: List[Finding] = []
    by_file: Dict[str, List[object]] = {}
    for abi in symbols.values():
        by_file.setdefault(str(abi.source), []).append(abi)
    for path, abis in sorted(by_file.items()):
        if not Path(path).exists():
            findings.append(
                Finding(path, 0, "ABI", "abi-drift", "kernel source missing")
            )
            continue
        exported = {f.name: f for f in parse_exported_functions(Path(path))}
        if not exported:
            findings.append(
                Finding(
                    path,
                    0,
                    "ABI",
                    "abi-drift",
                    "no REPRO_ABI-marked exports found — the marker is how "
                    "the checker sees the ABI; mark every exported function",
                )
            )
            continue
        declared = {abi.name for abi in abis}
        for abi in sorted(abis, key=lambda a: a.name):
            cfunc = exported.get(abi.name)
            if cfunc is None:
                findings.append(
                    Finding(
                        path,
                        0,
                        "ABI",
                        "abi-drift",
                        f"declared symbol {abi.name!r} has no REPRO_ABI-marked "
                        "definition in this file",
                    )
                )
                continue
            findings.extend(compare_symbol(cfunc, abi))
        for name, cfunc in sorted(exported.items()):
            if name not in declared:
                findings.append(
                    Finding(
                        cfunc.path,
                        cfunc.line,
                        "ABI",
                        "abi-drift",
                        f"C export {name!r} has no ctypes declaration in "
                        "repro.core.native.KERNEL_ABI",
                    )
                )
    return findings
