"""Contract rules R3 and R4: spec serializability and observer protocol.

These rules are structural rather than textual: they import the real
classes and verify the invariants the rest of the stack assumes —

R3
    Every field of :class:`EnsembleSpec` resolves to a JSON-scalar (or a
    tuple of scalars with a scalar spelling), and the resolved config
    survives the canonical-JSON round trip with an identical content
    hash.  Every catalogued :class:`SweepSpec` and scenario round-trips
    losslessly through its own ``to_dict``/``to_json``.
R4
    Every name in :data:`repro.metrics.METRIC_NAMES` builds a tracker
    that actually implements the batched observer protocol:
    ``bind(n_replicas, n_bins)``, ``observe(t, (R, n) loads)``, and a
    ``payload()`` producing a shard-concatenable
    :class:`~repro.metrics.payload.MetricPayload`.

Both take their check targets as arguments (defaulting to the real
registry/catalogs) so the test suite can feed deliberately broken fakes.
"""

from __future__ import annotations

import dataclasses
import inspect
import json
from typing import Any, Callable, Dict, List, Mapping, Optional

import numpy as np

from .findings import Finding

__all__ = ["check_spec_contracts", "check_observer_contracts"]

_SCALAR_TYPES = (bool, int, float, str, type(None))


def _location(obj: Any) -> tuple:
    """Best-effort (repo-relative path, line) of a class or function."""
    try:
        path = inspect.getsourcefile(obj) or "<unknown>"
        line = inspect.getsourcelines(obj)[1]
    except (OSError, TypeError):
        return "<unknown>", 0
    marker = "src/repro/"
    pos = path.replace("\\", "/").find(marker)
    if pos >= 0:
        path = path[pos:]
    return path, line


def _is_scalar(value: Any) -> bool:
    return isinstance(value, _SCALAR_TYPES)


def _is_scalar_or_scalar_tuple(value: Any) -> bool:
    if _is_scalar(value):
        return True
    if isinstance(value, (tuple, list)):
        return all(_is_scalar(item) for item in value)
    return False


def _canonical_json(config: Mapping[str, Any]) -> str:
    return json.dumps(
        dict(config), sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def _check_ensemble_spec(spec_cls: type, findings: List[Finding]) -> None:
    path, line = _location(spec_cls)

    def flag(message: str) -> None:
        findings.append(
            Finding(path, line, "R3", "spec-json-scalar", message)
        )

    if not dataclasses.is_dataclass(spec_cls):
        flag(f"{spec_cls.__name__} is not a dataclass; fields cannot be audited")
        return
    # Exercise the default surface plus the compound fields (metrics,
    # scenario) that have dedicated scalar spellings.
    try:
        instances = [
            spec_cls(n_bins=8, n_replicas=2, rounds=4),
            spec_cls(
                n_bins=8,
                n_replicas=2,
                rounds=32,
                metrics="max_load,empty_bins",
                observe_every=4,
                scenario='{"events":[{"kind":"burst","round":1,"count":2}]}',
            ),
        ]
    except Exception as exc:  # lint: allow-broad-except(any constructor failure is the finding being reported)
        flag(f"cannot construct a canonical {spec_cls.__name__}: {exc!r}")
        return
    for spec in instances:
        config = {
            f.name: getattr(spec, f.name) for f in dataclasses.fields(spec)
        }
        for name, value in config.items():
            if not _is_scalar_or_scalar_tuple(value):
                flag(
                    f"field {name!r} resolves to {type(value).__name__}, "
                    "which has no JSON-scalar spelling — sweeps cannot hash "
                    "or round-trip it"
                )
        try:
            encoded = _canonical_json(config)
        except (TypeError, ValueError) as exc:
            flag(f"resolved config is not canonical-JSON encodable: {exc}")
            continue
        try:
            rebuilt = spec_cls(**json.loads(encoded))
        except Exception as exc:  # lint: allow-broad-except(any reconstruction failure is the finding being reported)
            flag(
                "resolved config does not reconstruct through "
                f"{spec_cls.__name__}(**json.loads(...)): {exc!r}"
            )
            continue
        rebuilt_config = {
            f.name: getattr(rebuilt, f.name)
            for f in dataclasses.fields(rebuilt)
        }
        if _canonical_json(rebuilt_config) != encoded:
            flag(
                "canonical-JSON round trip is lossy: re-resolved config "
                "differs from the original (point content hashes would "
                "disagree)"
            )


def _check_sweep_catalog(findings: List[Finding]) -> None:
    from ..sweeps import SweepSpec, available_sweeps, get_sweep

    path, line = _location(SweepSpec)
    for name in available_sweeps():
        spec = get_sweep(name)
        first = spec.to_dict()
        try:
            rebuilt = SweepSpec.from_dict(json.loads(json.dumps(first)))
        except Exception as exc:  # lint: allow-broad-except(any round-trip failure is the finding being reported)
            findings.append(
                Finding(
                    path,
                    line,
                    "R3",
                    "spec-json-scalar",
                    f"catalogued sweep {name!r} does not round-trip through "
                    f"to_dict/from_dict: {exc!r}",
                )
            )
            continue
        if rebuilt.to_dict() != first:
            findings.append(
                Finding(
                    path,
                    line,
                    "R3",
                    "spec-json-scalar",
                    f"catalogued sweep {name!r} round-trips lossily through "
                    "to_dict/from_dict",
                )
            )


def _check_scenario_catalog(findings: List[Finding]) -> None:
    from ..scenarios import available_scenarios, resolve_scenario
    from ..scenarios.spec import ScenarioSpec

    path, line = _location(ScenarioSpec)

    def flag(message: str) -> None:
        findings.append(Finding(path, line, "R3", "spec-json-scalar", message))

    for name in available_scenarios():
        scenario = resolve_scenario(name)
        encoded = scenario.to_json()
        rebuilt = ScenarioSpec.from_json(encoded)
        if rebuilt.to_json() != encoded:
            flag(f"catalogued scenario {name!r} round-trips lossily to_json/from_json")
        for event in scenario.to_dict().get("events", []):
            for key, value in event.items():
                if not _is_scalar(value):
                    flag(
                        f"catalogued scenario {name!r} event field {key!r} is "
                        f"{type(value).__name__}, not a JSON scalar"
                    )


def check_spec_contracts(
    spec_cls: Optional[type] = None,
    include_catalogs: bool = True,
) -> List[Finding]:
    """R3: spec fields are JSON scalars and round-trip canonically."""
    if spec_cls is None:
        from ..parallel.ensemble import EnsembleSpec

        spec_cls = EnsembleSpec
    findings: List[Finding] = []
    _check_ensemble_spec(spec_cls, findings)
    if include_catalogs:
        _check_sweep_catalog(findings)
        _check_scenario_catalog(findings)
    return findings


def _default_factories() -> Dict[str, Callable[[], object]]:
    from ..metrics import METRIC_NAMES
    from ..metrics.registry import make_tracker

    return {name: (lambda n=name: make_tracker(n)) for name in METRIC_NAMES}


def check_observer_contracts(
    factories: Optional[Mapping[str, Callable[[], object]]] = None,
) -> List[Finding]:
    """R4: every registered metric honors the batched observer protocol."""
    from ..metrics.payload import MetricPayload

    if factories is None:
        factories = _default_factories()
    findings: List[Finding] = []
    for name in factories:
        tracker = factories[name]()
        path, line = _location(type(tracker))

        def flag(message: str) -> None:
            findings.append(
                Finding(
                    path,
                    line,
                    "R4",
                    "observer-protocol",
                    f"metric {name!r} ({type(tracker).__name__}): {message}",
                )
            )

        missing = [
            leg
            for leg in ("bind", "observe", "payload")
            if not callable(getattr(tracker, leg, None))
        ]
        if missing:
            flag(
                "missing batched observer protocol method(s) "
                + ", ".join(missing)
            )
            continue
        try:
            signature = inspect.signature(tracker.observe)
            positional = [
                p
                for p in signature.parameters.values()
                if p.kind
                in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
            ]
            if len(positional) < 2:
                flag(
                    "observe must accept (round_index, loads), got "
                    f"signature {signature}"
                )
                continue
        except (TypeError, ValueError):
            pass  # builtins without introspectable signatures: exercise below
        # Behavioral smoke: drive the protocol exactly as the engines do.
        try:
            tracker.bind(2, 4)
            loads = np.zeros((2, 4), dtype=np.int64)
            tracker.observe(0, loads)
            payload = tracker.payload()
        except Exception as exc:  # lint: allow-broad-except(any protocol failure is the finding being reported)
            flag(f"driving bind/observe/payload raised {exc!r}")
            continue
        if not isinstance(payload, MetricPayload):
            flag(
                "payload() must return a MetricPayload, got "
                f"{type(payload).__name__}"
            )
    return findings
