"""Project-invariant linter and C<->ctypes ABI cross-checker.

The rules this package enforces are the repo's standing invariants:

========  ==================  ==============================================
Rule      Slug                Invariant
========  ==================  ==============================================
``R1``    unseeded-rng        all randomness derives from parallel.seeding
``R2``    wall-clock          engine code is a pure function of (spec, seed)
``R3``    spec-json-scalar    specs round-trip through canonical JSON
``R4``    observer-protocol   every metric speaks bind/observe/payload
``R5``    broad-except        no blanket handlers without a reasoned pragma
``ABI``   abi-drift           C kernel signatures match the ctypes mirror
========  ==================  ==============================================

Run it as ``repro lint`` or ``python -m repro.lint``; programmatic use
goes through :func:`run_lint`.
"""

from .abi import CFunction, CParam, check_abi, compare_symbol, parse_exported_functions
from .contracts import check_observer_contracts, check_spec_contracts
from .doc import render_static_analysis_doc
from .engine import LintReport, default_root, run_lint
from .findings import Finding, RULE_IDS, RULES, RuleInfo, rule_by_id
from .rules import (
    R1_EXEMPT_FILES,
    R2_SCOPE_DIRS,
    check_broad_except,
    check_unseeded_rng,
    check_wall_clock,
    collect_pragmas,
)

__all__ = [
    "Finding",
    "RuleInfo",
    "RULES",
    "RULE_IDS",
    "rule_by_id",
    "LintReport",
    "run_lint",
    "default_root",
    "collect_pragmas",
    "check_unseeded_rng",
    "check_wall_clock",
    "check_broad_except",
    "check_spec_contracts",
    "check_observer_contracts",
    "check_abi",
    "compare_symbol",
    "parse_exported_functions",
    "CParam",
    "CFunction",
    "R1_EXEMPT_FILES",
    "R2_SCOPE_DIRS",
    "render_static_analysis_doc",
]
