"""Finding and rule-catalog data types for the project linter.

A :class:`Finding` is one violation at one location; findings order by
``(path, line, rule)`` so reports are stable across runs and platforms.
:data:`RULES` is the catalog the engine, the CLI (``--list-rules``) and
the ``docs/STATIC_ANALYSIS.md`` generator all read — rule metadata lives
here and nowhere else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["Finding", "RuleInfo", "RULES", "RULE_IDS", "rule_by_id"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str  # repo-relative (posix) where possible
    line: int  # 1-based; 0 when the finding has no specific line
    rule: str  # rule id, e.g. "R5" or "ABI"
    slug: str  # kebab-case rule slug, e.g. "broad-except"
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} [{self.slug}] {self.message}"


@dataclass(frozen=True)
class RuleInfo:
    """Catalog metadata for one lint rule."""

    rule: str
    slug: str
    title: str
    rationale: str
    suppressible: bool  # whether a `# lint: allow-<slug>(reason)` pragma applies


RULES: Tuple[RuleInfo, ...] = (
    RuleInfo(
        rule="R1",
        slug="unseeded-rng",
        title="No unseeded randomness outside parallel/seeding.py",
        rationale=(
            "Every random stream must derive from `parallel.seeding.trial_seed` "
            "so runs are bit-reproducible regardless of schedule.  Zero-argument "
            "`np.random.default_rng()`, any `np.random.seed(...)` (global-state "
            "seeding), and the stdlib `random` module all create streams the "
            "seeding contract cannot see."
        ),
        suppressible=True,
    ),
    RuleInfo(
        rule="R2",
        slug="wall-clock",
        title="No wall-clock or OS nondeterminism in engine/metrics/scenario code",
        rationale=(
            "Engine results must be a pure function of (spec, seed).  "
            "`time.time`/`time.time_ns`, `datetime.now`/`utcnow`/`today`, "
            "`os.urandom`, `uuid.uuid1`/`uuid4` and the `secrets` module leak "
            "host state into simulation code paths.  Duration measurement via "
            "`time.perf_counter`/`time.monotonic` is allowed (and belongs in "
            "the reporting layers anyway)."
        ),
        suppressible=True,
    ),
    RuleInfo(
        rule="R3",
        slug="spec-json-scalar",
        title="Spec fields are JSON-scalar-serializable and round-trip canonically",
        rationale=(
            "Sweeps content-hash resolved `EnsembleSpec` configs and serialize "
            "`SweepSpec`/`ScenarioSpec` through store headers; a field that "
            "does not survive the canonical-JSON round trip silently breaks "
            "point identity, resume, and replay."
        ),
        suppressible=False,
    ),
    RuleInfo(
        rule="R4",
        slug="observer-protocol",
        title="Every registered metric implements the batched observer protocol",
        rationale=(
            "The engines drive metrics exclusively through "
            "`bind(n_replicas, n_bins)` / `observe(t, loads)` / `payload()`; a "
            "registry entry missing any leg fails only when a user first "
            "requests that metric — the linter fails it on every run instead."
        ),
        suppressible=False,
    ),
    RuleInfo(
        rule="R5",
        slug="broad-except",
        title="No blanket `except Exception` without a reasoned pragma",
        rationale=(
            "A broad handler that falls through silently converts programming "
            "errors into wrong numbers.  Where swallowing everything is the "
            "contract (e.g. a picklability probe), say so in a "
            "`# lint: allow-broad-except(reason)` pragma."
        ),
        suppressible=True,
    ),
    RuleInfo(
        rule="ABI",
        slug="abi-drift",
        title="C kernel declarations match the ctypes mirror in core/native.py",
        rationale=(
            "The kernels' exported signatures are hand-mirrored as ctypes "
            "`argtypes`/`restype`; a drifted arity, argument order, or integer "
            "width corrupts memory instead of failing loudly.  Every "
            "`REPRO_ABI`-marked C definition is parsed and cross-checked "
            "against `repro.core.native.KERNEL_ABI`."
        ),
        suppressible=False,
    ),
)

#: Rule ids in catalog order (the engine's default selection).
RULE_IDS: Tuple[str, ...] = tuple(info.rule for info in RULES)

_BY_ID: Dict[str, RuleInfo] = {info.rule: info for info in RULES}
_BY_SLUG: Dict[str, RuleInfo] = {info.slug: info for info in RULES}


def rule_by_id(rule: str) -> RuleInfo:
    """Look up catalog metadata by rule id (``"R1"``) or slug."""
    key = rule.strip()
    if key in _BY_ID:
        return _BY_ID[key]
    if key in _BY_SLUG:
        return _BY_SLUG[key]
    raise KeyError(
        f"unknown lint rule {rule!r}; known: "
        f"{', '.join(f'{i.rule} ({i.slug})' for i in RULES)}"
    )
