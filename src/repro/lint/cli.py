"""Command-line front end for the project linter.

Exit codes: 0 clean, 1 findings, 2 usage error.  Invoked either as
``python -m repro.lint`` or through the umbrella ``repro lint``
subcommand (which delegates here).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .engine import default_root, run_lint
from .findings import RULES

__all__ = ["build_parser", "main"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Project-invariant linter: seeded-RNG discipline, wall-clock "
            "bans, spec serializability, observer protocol, broad-except "
            "hygiene, and the C<->ctypes ABI cross-check."
        ),
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help=(
            "directory tree to lint with the AST rules "
            "(default: the installed repro package)"
        ),
    )
    parser.add_argument(
        "--select",
        default=None,
        help=(
            "comma-separated rule ids or slugs to run "
            "(default: all rules); e.g. --select R1,R5 or "
            "--select abi-drift"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for info in RULES:
        pragma = (
            f"suppressible via # lint: allow-{info.slug}(reason)"
            if info.suppressible
            else "not suppressible"
        )
        lines.append(f"{info.rule} [{info.slug}] {info.title} ({pragma})")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage errors and 0 on --help; keep both.
        return int(exc.code or 0)
    if args.list_rules:
        print(_list_rules())
        return EXIT_CLEAN
    root = args.root if args.root is not None else default_root()
    if not Path(root).is_dir():
        print(f"repro lint: --root {root} is not a directory", file=sys.stderr)
        return EXIT_USAGE
    select: Optional[List[str]] = None
    if args.select is not None:
        select = [token for token in args.select.split(",") if token.strip()]
        if not select:
            print("repro lint: --select needs at least one rule", file=sys.stderr)
            return EXIT_USAGE
    try:
        report = run_lint(root=root, select=select)
    except KeyError as exc:
        print(f"repro lint: {exc.args[0]}", file=sys.stderr)
        return EXIT_USAGE
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return EXIT_CLEAN if report.clean else EXIT_FINDINGS


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
