"""AST rules: R1 (unseeded RNG), R2 (wall clock), R5 (broad except).

Each rule is a function ``(tree, rel_path, pragmas) -> List[Finding]``
over one parsed module.  ``pragmas`` maps line numbers to the rule slugs
suppressed there (see :func:`collect_pragmas`); a finding is suppressed
when its line — or the line directly above it — carries a matching
``# lint: allow-<slug>(reason)`` pragma with a non-empty reason.

The rules are deliberately alias-aware (``import numpy as np``,
``from time import time as now``) but make no attempt at data-flow
analysis: they catch the spellings that occur in practice, and the
dynamic tiers (`repro verify`, the test suite) back them up.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .findings import Finding, rule_by_id

__all__ = [
    "collect_pragmas",
    "check_unseeded_rng",
    "check_wall_clock",
    "check_broad_except",
    "R1_EXEMPT_FILES",
    "R2_SCOPE_DIRS",
]

#: Files (relative to the lint root, posix) exempt from R1 — the one
#: place allowed to construct seed material.
R1_EXEMPT_FILES: Tuple[str, ...] = ("parallel/seeding.py",)

#: Top-level package directories whose modules count as engine/metrics/
#: scenario code for R2.  Reporting layers (experiments, sweeps, verify,
#: store) legitimately measure durations and are out of scope.
R2_SCOPE_DIRS: Tuple[str, ...] = (
    "core",
    "metrics",
    "scenarios",
    "graphs",
    "adversary",
    "baselines",
    "traversal",
    "parallel",
)

_PRAGMA_RE = re.compile(r"#\s*lint:\s*allow-([a-z0-9-]+)\s*(\(([^)]*)\))?")


def collect_pragmas(
    source: str, rel_path: str
) -> Tuple[Dict[int, Set[str]], List[Finding]]:
    """Extract ``# lint: allow-<slug>(reason)`` pragmas from one module.

    Returns ``(line -> suppressed slugs, malformed-pragma findings)``.
    A pragma with an unknown slug, no parenthesized reason, or an empty
    reason is itself a finding — an unreadable suppression is worse than
    none.
    """
    pragmas: Dict[int, Set[str]] = {}
    findings: List[Finding] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return {}, []  # unparsable files are reported by the engine
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _PRAGMA_RE.search(tok.string)
        if match is None:
            continue
        slug, parens, reason = match.group(1), match.group(2), match.group(3)
        line = tok.start[0]
        try:
            info = rule_by_id(slug)
        except KeyError:
            findings.append(
                Finding(
                    rel_path,
                    line,
                    "R0",
                    "pragma",
                    f"pragma names unknown rule slug {slug!r}",
                )
            )
            continue
        if not info.suppressible:
            findings.append(
                Finding(
                    rel_path,
                    line,
                    "R0",
                    "pragma",
                    f"rule {info.rule} ({info.slug}) cannot be suppressed "
                    "with a pragma",
                )
            )
            continue
        if parens is None or not (reason or "").strip():
            findings.append(
                Finding(
                    rel_path,
                    line,
                    "R0",
                    "pragma",
                    f"pragma allow-{slug} needs a non-empty reason: "
                    f"# lint: allow-{slug}(why this is safe)",
                )
            )
            continue
        pragmas.setdefault(line, set()).add(slug)
    return pragmas, findings


def _suppressed(pragmas: Dict[int, Set[str]], line: int, slug: str) -> bool:
    """Same line or the line directly above."""
    return slug in pragmas.get(line, ()) or slug in pragmas.get(line - 1, ())


class _ImportMap(ast.NodeVisitor):
    """Track what local names are bound to the modules the rules watch."""

    def __init__(self) -> None:
        #: local alias -> fully qualified module ("np" -> "numpy")
        self.modules: Dict[str, str] = {}
        #: local name -> fully qualified function ("now" -> "time.time")
        self.names: Dict[str, str] = {}
        #: ``from X import ...`` statements seen: (lineno, module, names)
        self.from_imports: List[Tuple[int, str, List[str]]] = []
        #: plain ``import X`` statements seen: (lineno, module)
        self.plain_imports: List[Tuple[int, str]] = []

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.plain_imports.append((node.lineno, alias.name))
            if alias.asname:
                self.modules[alias.asname] = alias.name
            else:
                root = alias.name.split(".")[0]
                self.modules[root] = root
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            self.from_imports.append(
                (node.lineno, node.module, [a.name for a in node.names])
            )
            for alias in node.names:
                self.names[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
        self.generic_visit(node)


def _qualify(node: ast.expr, imports: _ImportMap) -> Optional[str]:
    """Resolve a call target to a dotted name rooted at a real module.

    ``np.random.default_rng`` -> ``numpy.random.default_rng`` when ``np``
    aliases numpy; a bare name resolves through ``from X import name``.
    Returns ``None`` for targets the import map cannot anchor.
    """
    parts: List[str] = []
    cursor = node
    while isinstance(cursor, ast.Attribute):
        parts.append(cursor.attr)
        cursor = cursor.value
    if isinstance(cursor, ast.Name):
        root = cursor.id
        if root in imports.modules:
            parts.append(imports.modules[root])
        elif root in imports.names and not parts:
            return imports.names[root]
        elif root in imports.names:
            parts.append(imports.names[root])
        else:
            return None
        return ".".join(reversed(parts))
    return None


def _iter_calls(tree: ast.AST) -> Iterable[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def check_unseeded_rng(
    tree: ast.AST, rel_path: str, pragmas: Dict[int, Set[str]]
) -> List[Finding]:
    """R1: unseeded/global RNG outside the seeding module."""
    slug = "unseeded-rng"
    if rel_path.replace("\\", "/") in R1_EXEMPT_FILES:
        return []
    imports = _ImportMap()
    imports.visit(tree)
    findings: List[Finding] = []

    def flag(line: int, message: str) -> None:
        if not _suppressed(pragmas, line, slug):
            findings.append(Finding(rel_path, line, "R1", slug, message))

    for lineno, module, names in imports.from_imports:
        if module == "random" or module.startswith("random."):
            flag(
                lineno,
                f"stdlib random import ({', '.join(names)}) — derive streams "
                "from parallel.seeding.trial_seed instead",
            )
    for call in _iter_calls(tree):
        target = _qualify(call.func, imports)
        if target is None:
            continue
        if target in ("numpy.random.seed", "numpy.random.mtrand.seed"):
            flag(
                call.lineno,
                "np.random.seed mutates global RNG state; seed an explicit "
                "Generator via parallel.seeding.trial_seed",
            )
        elif target == "numpy.random.default_rng" and not (
            call.args or call.keywords
        ):
            flag(
                call.lineno,
                "unseeded np.random.default_rng() draws OS entropy; pass a "
                "seed derived from parallel.seeding.trial_seed",
            )
        elif target.startswith("random.") and target.count(".") == 1:
            flag(
                call.lineno,
                f"stdlib {target}() uses the global, schedule-dependent RNG; "
                "derive streams from parallel.seeding.trial_seed",
            )
    return findings


#: Fully qualified callables R2 bans in engine-scope modules.
_R2_BANNED: Dict[str, str] = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.datetime.today": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "os.urandom": "OS entropy",
    "uuid.uuid1": "host/time-derived id",
    "uuid.uuid4": "OS-entropy id",
}


def check_wall_clock(
    tree: ast.AST, rel_path: str, pragmas: Dict[int, Set[str]]
) -> List[Finding]:
    """R2: wall-clock / OS nondeterminism in engine-scope modules."""
    slug = "wall-clock"
    rel = rel_path.replace("\\", "/")
    if rel.split("/", 1)[0] not in R2_SCOPE_DIRS:
        return []
    imports = _ImportMap()
    imports.visit(tree)
    findings: List[Finding] = []

    def flag(line: int, message: str) -> None:
        if not _suppressed(pragmas, line, slug):
            findings.append(Finding(rel_path, line, "R2", slug, message))

    secrets_imports = [
        (lineno, module)
        for lineno, module in imports.plain_imports
        if module == "secrets" or module.startswith("secrets.")
    ] + [
        (lineno, module)
        for lineno, module, _names in imports.from_imports
        if module == "secrets"
    ]
    for lineno, _module in secrets_imports:
        flag(
            lineno,
            "the secrets module is OS entropy by definition; engine code "
            "must stay a pure function of (spec, seed)",
        )
    for call in _iter_calls(tree):
        target = _qualify(call.func, imports)
        if target is None:
            continue
        why = _R2_BANNED.get(target)
        if why is not None:
            flag(
                call.lineno,
                f"{target} is {why}; engine results must depend only on "
                "(spec, seed) — durations belong to the reporting layers "
                "via time.perf_counter/monotonic",
            )
    return findings


_BROAD_NAMES = ("Exception", "BaseException")


def check_broad_except(
    tree: ast.AST, rel_path: str, pragmas: Dict[int, Set[str]]
) -> List[Finding]:
    """R5: blanket exception handlers without a reasoned pragma."""
    slug = "broad-except"
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        broad: Optional[str] = None
        if node.type is None:
            broad = "bare except:"
        elif isinstance(node.type, ast.Name) and node.type.id in _BROAD_NAMES:
            broad = f"except {node.type.id}"
        elif isinstance(node.type, ast.Tuple):
            for element in node.type.elts:
                if isinstance(element, ast.Name) and element.id in _BROAD_NAMES:
                    broad = f"except (..., {element.id}, ...)"
                    break
        if broad is None:
            continue
        if _suppressed(pragmas, node.lineno, slug):
            continue
        findings.append(
            Finding(
                rel_path,
                node.lineno,
                "R5",
                slug,
                f"{broad} swallows programming errors; narrow the handler "
                "or justify it with # lint: allow-broad-except(reason)",
            )
        )
    return findings
