"""Lint engine: file discovery, rule dispatch, and report assembly.

``run_lint`` walks every Python module under the lint root (by default
the installed ``repro`` package itself), runs the AST rules per file,
then the structural rules (R3/R4 contracts, the ABI cross-check) once.
Findings come back sorted and deduplicated; the CLI turns them into an
exit code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .findings import Finding, RULE_IDS, rule_by_id
from .rules import (
    check_broad_except,
    check_unseeded_rng,
    check_wall_clock,
    collect_pragmas,
)

__all__ = ["LintReport", "run_lint", "default_root", "normalize_selection"]

#: Rules that run once per Python file on its AST.
_AST_RULES = {
    "R1": check_unseeded_rng,
    "R2": check_wall_clock,
    "R5": check_broad_except,
}


def default_root() -> Path:
    """The installed ``repro`` package directory (the self-hosting root)."""
    return Path(__file__).resolve().parent.parent


def normalize_selection(select: Optional[Sequence[str]]) -> Tuple[str, ...]:
    """Validate a rule selection (ids or slugs) into canonical rule ids."""
    if select is None:
        return RULE_IDS
    if isinstance(select, str):
        select = [token for token in select.split(",") if token.strip()]
    resolved = []
    for token in select:
        info = rule_by_id(token.strip())  # raises KeyError on unknown rules
        if info.rule not in resolved:
            resolved.append(info.rule)
    return tuple(resolved)


@dataclass(frozen=True)
class LintReport:
    """The outcome of one lint run."""

    findings: Tuple[Finding, ...]
    rules: Tuple[str, ...]
    n_files: int
    root: str
    skipped: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def clean(self) -> bool:
        return not self.findings

    def render(self) -> str:
        lines = [finding.render() for finding in self.findings]
        summary = (
            f"repro lint: {len(self.findings)} finding(s) across "
            f"{self.n_files} file(s) under {self.root} "
            f"[rules: {', '.join(self.rules)}]"
        )
        if self.clean:
            summary = (
                f"repro lint: clean — {self.n_files} file(s) under "
                f"{self.root} [rules: {', '.join(self.rules)}]"
            )
        lines.append(summary)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "root": self.root,
            "rules": list(self.rules),
            "n_files": self.n_files,
            "clean": self.clean,
            "findings": [
                {
                    "path": f.path,
                    "line": f.line,
                    "rule": f.rule,
                    "slug": f.slug,
                    "message": f.message,
                }
                for f in self.findings
            ],
        }


def iter_python_files(root: Path) -> List[Path]:
    """Every ``.py`` file under ``root`` (sorted, ``__pycache__`` skipped)."""
    return sorted(
        p
        for p in root.rglob("*.py")
        if "__pycache__" not in p.parts
    )


def run_lint(
    root: Optional[Path] = None,
    select: Optional[Sequence[str]] = None,
) -> LintReport:
    """Run the selected rules and return a sorted, stable report.

    ``root`` defaults to the installed ``repro`` package.  The AST rules
    (R1/R2/R5) run over the files below ``root``; R3/R4/ABI are
    structural — they check the imported library and the kernel sources
    regardless of ``root``, so pointing ``root`` at a fixture tree and
    selecting only AST rules is how the linter lints its own test bait.
    """
    root = Path(root) if root is not None else default_root()
    rules = normalize_selection(select)
    findings: List[Finding] = []
    files = iter_python_files(root) if any(r in _AST_RULES for r in rules) else []
    for path in files:
        rel = path.relative_to(root).as_posix()
        source = path.read_text()
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            findings.append(
                Finding(
                    rel,
                    exc.lineno or 0,
                    "R0",
                    "parse-error",
                    f"file does not parse: {exc.msg}",
                )
            )
            continue
        pragmas, pragma_findings = collect_pragmas(source, rel)
        findings.extend(pragma_findings)
        for rule in rules:
            checker = _AST_RULES.get(rule)
            if checker is not None:
                findings.extend(checker(tree, rel, pragmas))
    if "R3" in rules:
        from .contracts import check_spec_contracts

        findings.extend(check_spec_contracts())
    if "R4" in rules:
        from .contracts import check_observer_contracts

        findings.extend(check_observer_contracts())
    if "ABI" in rules:
        from .abi import check_abi

        findings.extend(check_abi())
    unique: Set[Finding] = set(findings)
    return LintReport(
        findings=tuple(sorted(unique)),
        rules=rules,
        n_files=len(files),
        root=str(root),
    )
