"""Exception hierarchy for :mod:`repro`.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library-specific failures with a single ``except`` clause
while letting programming errors (``TypeError`` from NumPy, etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "CouplingError",
    "GraphError",
    "ExperimentError",
    "ScenarioError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An invalid load configuration or process parameter was supplied.

    Raised, for example, when a load vector contains negative entries, when
    the number of balls is inconsistent with an explicit initial
    configuration, or when a legitimacy constant ``beta`` is non-positive.
    """


class SimulationError(ReproError):
    """A simulation was driven into an inconsistent state.

    This signals an internal invariant violation (e.g. ball-count
    non-conservation) rather than bad user input; it should never trigger in
    normal operation and exists mostly to make property tests loud.
    """


class CouplingError(ReproError):
    """The coupled pair of processes violated a coupling precondition."""


class GraphError(ReproError):
    """An invalid graph topology was supplied (empty, disconnected, ...)."""


class ExperimentError(ReproError):
    """An experiment spec is malformed or references an unknown experiment."""


class ScenarioError(ConfigurationError):
    """A scenario spec is malformed or incompatible with its ensemble spec.

    Subclasses :class:`ConfigurationError`: a bad scenario is a bad
    process parameterization, so callers that already handle spec
    validation failures handle scenario failures for free.
    """
