"""Durable, queryable result store for parameter sweeps.

A :class:`ResultStore` is an **append-only** record of completed sweep
points.  On disk it is a directory:

.. code-block:: text

    store/
      sweep.json         # header: the SweepSpec + root seed + engine config
      manifest.jsonl     # one JSON line per completed point, append-only
      shards/<id>.npz    # per-replica metric vectors, keyed by point id

Each manifest line carries the point's resolved configuration, its
content-hashed ``point_id``, the execution context (engine, kernel, root
seed entropy), and a *streaming* summary (Welford moments per metric, an
exact max-load tail histogram, the converged fraction).  Because the
summary is computed incrementally while the point is written and stored in
the manifest, queries and cross-point aggregation never load replica
vectors; the npz shards exist for the minority of analyses that do want
every replica.

Points run with an observed-metric selection (``EnsembleSpec.metrics``,
see :mod:`repro.metrics`) additionally carry, per observed metric, a
summary block under ``summary["observed"]`` — streaming moments of every
per-replica tracker summary, folded inline at write time through
:func:`repro.metrics.adapters.summarize_payloads` — while the full
per-replica series/arrays land in the point's npz shard under
``observed.<metric>.*`` keys.

The store is the sweep scheduler's checkpoint: the set of ``point_id``
values present in the manifest is exactly the set of completed points, so
a killed sweep resumes where it stopped.  Records are encoded canonically
(sorted keys, compact separators, ``allow_nan=False``), which makes
manifests byte-comparable across a run and its kill/resume counterpart.

An in-memory variant (:meth:`ResultStore.in_memory`) implements the same
interface without touching disk; experiments use it to run sweep-generated
parameter families without leaving files behind.
"""

from __future__ import annotations

import dataclasses
import json
import warnings
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Union

import numpy as np

from .streaming import StreamingMoments, TailCounter
from ..core.batched import EnsembleResult
from ..errors import ConfigurationError
from ..parallel.ensemble import EnsembleSpec

__all__ = ["ResultStore", "PointTable", "canonical_json"]

PathLike = Union[str, Path]

#: Metric vectors extracted from an :class:`EnsembleResult`, in the order
#: they appear in flattened query rows and npz shards.
METRICS = (
    "window_max_load",
    "min_empty_bins",
    "first_legitimate_round",
    "rounds",
    "final_max_load",
    "final_empty_bins",
)

#: Replicas are folded into the streaming summary in chunks of this size,
#: so summarising arbitrarily large ensembles needs O(chunk) extra memory.
REPLICA_CHUNK = 1024

#: Filter aliases accepted by :meth:`ResultStore.select` (paper notation).
FILTER_ALIASES = {"n": "n_bins", "m": "n_balls", "R": "n_replicas"}

#: Canonical config-key order for flattened rows (EnsembleSpec field order).
_CONFIG_ORDER = tuple(f.name for f in dataclasses.fields(EnsembleSpec))


def canonical_json(payload: Any) -> str:
    """The canonical encoding used for manifest lines and content hashes."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def _metric_vectors(result: EnsembleResult) -> Dict[str, np.ndarray]:
    return {
        "window_max_load": np.asarray(result.max_load_seen, dtype=np.int64),
        "min_empty_bins": np.asarray(result.min_empty_bins_seen, dtype=np.int64),
        "first_legitimate_round": np.asarray(
            result.first_legitimate_round, dtype=np.int64
        ),
        "rounds": np.asarray(result.rounds, dtype=np.int64),
        "final_max_load": np.asarray(result.final_max_load, dtype=np.int64),
        "final_empty_bins": np.asarray(result.final_empty_bins, dtype=np.int64),
    }


def _observed_arrays(result: EnsembleResult) -> Dict[str, np.ndarray]:
    """Flatten observed metric payloads into namespaced shard arrays."""
    arrays: Dict[str, np.ndarray] = {}
    for name, payload in result.metrics.items():
        arrays[f"observed.{name}.rounds"] = np.asarray(
            payload.rounds, dtype=np.int64
        )
        for key, series in payload.series.items():
            arrays[f"observed.{name}.series.{key}"] = np.asarray(series)
        for key, vector in payload.summaries.items():
            arrays[f"observed.{name}.summary.{key}"] = np.asarray(vector)
        for key, extra in payload.arrays.items():
            arrays[f"observed.{name}.array.{key}"] = np.asarray(extra)
    return arrays


def _streaming_summary(vectors: Mapping[str, np.ndarray]) -> Dict[str, Any]:
    """Fold replica vectors chunk-by-chunk into the manifest summary."""
    moments = {name: StreamingMoments() for name in METRICS}
    tail = TailCounter()
    n_replicas = int(next(iter(vectors.values())).size)
    converged = 0
    for lo in range(0, n_replicas, REPLICA_CHUNK):
        hi = min(lo + REPLICA_CHUNK, n_replicas)
        for name in METRICS:
            moments[name].update(vectors[name][lo:hi])
        tail.update(vectors["window_max_load"][lo:hi])
        converged += int(
            np.count_nonzero(vectors["first_legitimate_round"][lo:hi] >= 0)
        )
    return {
        "converged_fraction": converged / n_replicas if n_replicas else 0.0,
        "max_load_tail": tail.to_dict(),
        "metrics": {name: moments[name].to_dict() for name in METRICS},
    }


class PointTable:
    """Column-oriented view of a store query: one row per sweep point.

    ``rows`` are flat dictionaries (config fields plus scalar summary
    fields) in manifest order, directly consumable by
    :func:`repro.experiments.tables.format_table` and the CSV writer.
    """

    def __init__(self, records: Sequence[Mapping[str, Any]]):
        self.records = list(records)
        self.rows = [self._flatten(record) for record in self.records]

    @staticmethod
    def _flatten(record: Mapping[str, Any]) -> Dict[str, Any]:
        config = record["config"]
        row: Dict[str, Any] = {
            "index": record["index"],
            "point_id": record["point_id"],
        }
        for key in _CONFIG_ORDER:
            if key in config:
                row[key] = config[key]
        summary = record["summary"]
        row["converged_fraction"] = summary["converged_fraction"]
        for name in METRICS:
            moments = StreamingMoments.from_dict(summary["metrics"][name])
            row[f"{name}_mean"] = moments.mean
            row[f"{name}_std"] = moments.std(ddof=1)
            row[f"{name}_min"] = moments.minimum
            row[f"{name}_max"] = moments.maximum
        # observed-metric summaries (points run with EnsembleSpec.metrics)
        for name, entry in sorted(summary.get("observed", {}).items()):
            for key, payload_moments in sorted(entry.items()):
                moments = StreamingMoments.from_dict(payload_moments)
                row[f"{name}_{key}_mean"] = moments.mean
                row[f"{name}_{key}_max"] = moments.maximum
        return row

    def __len__(self) -> int:
        return len(self.rows)

    def column(self, name: str) -> np.ndarray:
        """One column across all rows, as an array."""
        if not self.rows:
            return np.asarray([])
        if name not in self.rows[0]:
            raise ConfigurationError(
                f"unknown column {name!r}; available: "
                f"{', '.join(sorted(self.rows[0]))}"
            )
        return np.asarray([row[name] for row in self.rows])

    def columns(self) -> Dict[str, np.ndarray]:
        if not self.rows:
            return {}
        return {name: self.column(name) for name in self.rows[0]}


class ResultStore:
    """Append-only sweep result store (on disk or in memory).

    Use :meth:`create` for a fresh on-disk store, :meth:`open` to attach
    to an existing one (resume / query), or :meth:`in_memory` for an
    ephemeral store with the identical interface.
    """

    HEADER_NAME = "sweep.json"
    MANIFEST_NAME = "manifest.jsonl"
    SHARD_DIR = "shards"

    def __init__(self, directory: Optional[Path], records: List[dict], lines: List[str]):
        self.directory = directory
        self._records = records
        self._lines = lines
        self._shards: Dict[str, Dict[str, np.ndarray]] = {}
        self._header: Optional[dict] = None
        if directory is not None:
            header_path = directory / self.HEADER_NAME
            if header_path.exists():
                self._header = json.loads(header_path.read_text())

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def in_memory(cls) -> "ResultStore":
        """An ephemeral store that never touches the filesystem."""
        return cls(directory=None, records=[], lines=[])

    @classmethod
    def create(cls, directory: PathLike) -> "ResultStore":
        """Create a fresh on-disk store (refuses to reuse an existing one)."""
        directory = Path(directory)
        if (directory / cls.MANIFEST_NAME).exists() or (
            directory / cls.HEADER_NAME
        ).exists():
            raise ConfigurationError(
                f"store {directory} already exists; use ResultStore.open "
                "(or `repro sweep resume`) to continue it"
            )
        directory.mkdir(parents=True, exist_ok=True)
        (directory / cls.SHARD_DIR).mkdir(exist_ok=True)
        return cls(directory=directory, records=[], lines=[])

    @classmethod
    def open(cls, directory: PathLike) -> "ResultStore":
        """Attach to an existing on-disk store (for resume or queries)."""
        directory = Path(directory)
        if not (directory / cls.HEADER_NAME).exists():
            raise ConfigurationError(
                f"{directory} is not a sweep store (no {cls.HEADER_NAME}); "
                "create one with `repro sweep run`"
            )
        records, lines = cls._load_manifest(directory / cls.MANIFEST_NAME)
        (directory / cls.SHARD_DIR).mkdir(exist_ok=True)
        return cls(directory=directory, records=records, lines=lines)

    @staticmethod
    def _load_manifest(path: Path) -> "tuple[List[dict], List[str]]":
        """Parse the manifest, truncating a torn trailing line (kill mid-write)."""
        records: List[dict] = []
        lines: List[str] = []
        if not path.exists():
            return records, lines
        text = path.read_text()
        good_length = 0
        for raw in text.splitlines(keepends=True):
            if not raw.endswith("\n"):
                break  # torn write: no trailing newline
            try:
                records.append(json.loads(raw))
            except json.JSONDecodeError:
                break
            lines.append(raw)
            good_length += len(raw)
        if good_length != len(text):
            warnings.warn(
                f"store manifest {path} ends with a torn record; truncating "
                f"to the last {len(lines)} complete record(s)",
                RuntimeWarning,
                stacklevel=2,
            )
            path.write_text(text[:good_length])
        return records, lines

    # ------------------------------------------------------------------
    # Header (the sweep checkpoint context)
    # ------------------------------------------------------------------
    def write_header(self, header: Mapping[str, Any]) -> None:
        """Record the sweep context; idempotent, refuses a *different* one."""
        payload = json.loads(canonical_json(header))
        if self._header is not None:
            if self._header != payload:
                raise ConfigurationError(
                    "store already belongs to a different sweep (spec, seed, "
                    "or engine configuration differ); refusing to mix results"
                )
            return
        self._header = payload
        if self.directory is not None:
            (self.directory / self.HEADER_NAME).write_text(
                canonical_json(payload) + "\n"
            )

    def read_header(self) -> Optional[dict]:
        return None if self._header is None else dict(self._header)

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def completed_point_ids(self) -> Set[str]:
        """Point ids already present in the manifest (the resume checkpoint)."""
        return {record["point_id"] for record in self._records}

    def append_point(
        self,
        index: int,
        point_id: str,
        config: Mapping[str, Any],
        result: EnsembleResult,
        engine: str = "auto",
        kernel: str = "auto",
        seed_entropy: Optional[int] = None,
    ) -> dict:
        """Persist one completed point: shard first, then the manifest line."""
        if point_id in self.completed_point_ids():
            raise ConfigurationError(
                f"point {point_id} already recorded; the store is append-only"
            )
        vectors = _metric_vectors(result)
        shard_name = f"{self.SHARD_DIR}/{point_id}.npz"
        summary = _streaming_summary(vectors)
        if result.metrics:
            # summarize observed trackers inline (single streaming pass at
            # write time) so queries never re-read replica shards
            from ..metrics.adapters import summarize_payloads

            summary["observed"] = summarize_payloads(result.metrics)
        record = {
            "index": int(index),
            "point_id": point_id,
            "config": dict(config),
            "engine": engine,
            "kernel": kernel,
            "seed_entropy": seed_entropy,
            "n_bins": int(result.n_bins),
            "beta": float(result.beta),
            "shard": shard_name,
            "summary": summary,
        }
        line = canonical_json(record) + "\n"
        shard_arrays = {**vectors, **_observed_arrays(result)}
        if self.directory is None:
            self._shards[point_id] = shard_arrays
        else:
            shard_path = self.directory / shard_name
            tmp_path = shard_path.with_suffix(".npz.tmp")
            with tmp_path.open("wb") as handle:
                np.savez(handle, **shard_arrays)
            tmp_path.replace(shard_path)
            with (self.directory / self.MANIFEST_NAME).open("a") as handle:
                handle.write(line)
        self._records.append(json.loads(line))
        self._lines.append(line)
        return self._records[-1]

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> List[dict]:
        """Raw manifest records, in append order."""
        return list(self._records)

    def manifest_bytes(self) -> bytes:
        """The manifest's exact byte content (for resume-equality checks)."""
        if self.directory is not None:
            manifest = self.directory / self.MANIFEST_NAME
            return manifest.read_bytes() if manifest.exists() else b""
        return "".join(self._lines).encode()

    def _matches(self, record: Mapping[str, Any], filters: Mapping[str, Any]) -> bool:
        for key, wanted in filters.items():
            key = FILTER_ALIASES.get(key, key)
            if key in ("point_id", "index", "engine", "kernel"):
                actual = record.get(key)
            elif key in record["config"]:
                actual = record["config"][key]
            else:
                raise ConfigurationError(
                    f"unknown filter field {key!r}; filterable: point_id, "
                    "index, engine, kernel, and any config field "
                    f"({', '.join(sorted(record['config']))})"
                )
            if actual != wanted:
                return False
        return True

    def select(self, **filters: Any) -> PointTable:
        """Points whose config matches every filter, as a column table.

        Filters are exact-match on config fields (paper aliases ``n``,
        ``m``, ``R`` are accepted) plus ``point_id`` / ``index`` /
        ``engine`` / ``kernel``::

            store.select(process="faulty", n=1024)
        """
        return PointTable(
            [r for r in self._records if self._matches(r, filters)]
        )

    def replicas(self, point_id: str) -> Dict[str, np.ndarray]:
        """Load one point's per-replica metric vectors from its shard."""
        if self.directory is None:
            if point_id not in self._shards:
                raise ConfigurationError(f"unknown point id {point_id!r}")
            return {k: np.array(v, copy=True) for k, v in self._shards[point_id].items()}
        record = next(
            (r for r in self._records if r["point_id"] == point_id), None
        )
        if record is None:
            raise ConfigurationError(f"unknown point id {point_id!r}")
        with np.load(self.directory / record["shard"]) as payload:
            return {name: np.array(payload[name]) for name in payload.files}

    def summarize(self, metric: str, **filters: Any) -> StreamingMoments:
        """Merge the selected points' streaming moments for one metric.

        Reads only manifest summaries — never the replica shards — so the
        cost is O(points), independent of ensemble sizes.
        """
        if metric not in METRICS:
            raise ConfigurationError(
                f"unknown metric {metric!r}; available: {', '.join(METRICS)}"
            )
        merged = StreamingMoments()
        for record in self.select(**filters).records:
            merged = merged.merged(
                StreamingMoments.from_dict(record["summary"]["metrics"][metric])
            )
        return merged

    def summarize_observed(
        self, metric: str, key: str, **filters: Any
    ) -> StreamingMoments:
        """Merge the selected points' *observed*-metric moments.

        ``metric`` / ``key`` name a tracker and one of its per-replica
        summaries (e.g. ``("legitimacy", "violations")``); points recorded
        without that observation are skipped.  Like :meth:`summarize`,
        this reads only manifest summaries.
        """
        from ..metrics.registry import METRIC_NAMES

        if metric not in METRIC_NAMES:
            raise ConfigurationError(
                f"unknown observed metric {metric!r}; available: "
                f"{', '.join(METRIC_NAMES)}"
            )
        merged = StreamingMoments()
        for record in self.select(**filters).records:
            entry = record["summary"].get("observed", {}).get(metric)
            if entry is None:
                continue
            if key not in entry:
                raise ConfigurationError(
                    f"observed metric {metric!r} has no summary {key!r}; "
                    f"available: {', '.join(sorted(entry))}"
                )
            merged = merged.merged(StreamingMoments.from_dict(entry[key]))
        return merged

    def max_load_tail(self, **filters: Any) -> TailCounter:
        """Merged max-load tail histogram of the selected points."""
        merged = TailCounter()
        for record in self.select(**filters).records:
            merged = merged.merged(
                TailCounter.from_dict(record["summary"]["max_load_tail"])
            )
        return merged
