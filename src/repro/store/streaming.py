"""Streaming (single-pass, mergeable) aggregation of replica metrics.

The result store records, for every sweep point, a summary of each metric
vector *without* ever requiring all replicas in memory at query time:

:class:`StreamingMoments`
    Welford/Chan running moments (count, mean, M2, min, max).  Updates
    consume values one batch at a time; two accumulators over disjoint
    data merge exactly (Chan's parallel formula), so per-point summaries
    stored in the manifest can later be combined across points — or
    recomputed chunk by chunk — and agree with a full batch computation to
    floating-point accuracy.
:class:`TailCounter`
    An exact integer histogram used for max-load tail counts: from the
    per-value counts, ``tail(k)`` (how many replicas ever saw a window
    maximum ``>= k``) is available for every threshold without revisiting
    the replicas.

Both accumulators round-trip through plain-JSON dictionaries
(:meth:`~StreamingMoments.to_dict` / :meth:`~StreamingMoments.from_dict`),
which is how they live inside manifest records.

Example
-------
>>> m = StreamingMoments()
>>> m.update([1.0, 2.0])
>>> m.update([3.0])
>>> m.count, m.mean, round(m.variance(), 12)
(3, 2.0, 0.666666666667)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Union

import numpy as np

from ..errors import ConfigurationError

__all__ = ["StreamingMoments", "TailCounter"]


@dataclass
class StreamingMoments:
    """Single-pass running moments with exact pairwise merging.

    Maintains ``count``, ``mean``, the centered second moment ``m2``
    (``sum (x - mean)^2``), and the running ``min``/``max``.  ``update``
    accepts scalar batches of any size; ``merge`` combines two
    accumulators computed over disjoint data, which makes the statistic
    decomposable across store shards.
    """

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def update(self, values: Union[float, Iterable[float], np.ndarray]) -> None:
        """Fold a batch of values into the running moments."""
        arr = np.atleast_1d(np.asarray(values, dtype=float)).ravel()
        if arr.size == 0:
            return
        if not np.isfinite(arr).all():
            raise ConfigurationError(
                "StreamingMoments.update received non-finite values"
            )
        batch = StreamingMoments(
            count=int(arr.size),
            mean=float(arr.mean()),
            m2=float(((arr - arr.mean()) ** 2).sum()),
            minimum=float(arr.min()),
            maximum=float(arr.max()),
        )
        merged = self.merged(batch)
        self.count, self.mean, self.m2 = merged.count, merged.mean, merged.m2
        self.minimum, self.maximum = merged.minimum, merged.maximum

    def merged(self, other: "StreamingMoments") -> "StreamingMoments":
        """The exact moments of the union of both accumulators' data."""
        if other.count == 0:
            return StreamingMoments(
                self.count, self.mean, self.m2, self.minimum, self.maximum
            )
        if self.count == 0:
            return StreamingMoments(
                other.count, other.mean, other.m2, other.minimum, other.maximum
            )
        n = self.count + other.count
        delta = other.mean - self.mean
        mean = self.mean + delta * other.count / n
        m2 = self.m2 + other.m2 + delta * delta * self.count * other.count / n
        return StreamingMoments(
            count=n,
            mean=mean,
            m2=m2,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
        )

    def variance(self, ddof: int = 0) -> float:
        """Variance of the data seen so far (0.0 when under-determined)."""
        if ddof < 0:
            raise ConfigurationError(f"ddof must be >= 0, got {ddof}")
        if self.count <= ddof:
            return 0.0
        return self.m2 / (self.count - ddof)

    def std(self, ddof: int = 0) -> float:
        return math.sqrt(self.variance(ddof=ddof))

    def to_dict(self) -> Dict[str, float]:
        """Plain-JSON representation stored in manifest records."""
        if self.count == 0:
            return {"count": 0, "mean": 0.0, "m2": 0.0, "min": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "mean": self.mean,
            "m2": self.m2,
            "min": self.minimum,
            "max": self.maximum,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, float]) -> "StreamingMoments":
        count = int(payload["count"])
        if count == 0:
            return cls()
        return cls(
            count=count,
            mean=float(payload["mean"]),
            m2=float(payload["m2"]),
            minimum=float(payload["min"]),
            maximum=float(payload["max"]),
        )


@dataclass
class TailCounter:
    """Exact integer histogram supporting tail queries and merging.

    >>> t = TailCounter()
    >>> t.update([3, 3, 5])
    >>> t.tail(4)
    1
    >>> t.tail_fraction(3)
    1.0
    """

    counts: Dict[int, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def update(self, values: Union[int, Iterable[int], np.ndarray]) -> None:
        arr = np.atleast_1d(np.asarray(values)).ravel()
        if arr.size == 0:
            return
        if not np.issubdtype(arr.dtype, np.integer):
            rounded = np.rint(np.asarray(arr, dtype=float))
            if not np.all(rounded == arr):
                raise ConfigurationError(
                    "TailCounter.update requires integer-valued data"
                )
            arr = rounded.astype(np.int64)
        uniques, counts = np.unique(arr, return_counts=True)
        for value, count in zip(uniques.tolist(), counts.tolist()):
            self.counts[int(value)] = self.counts.get(int(value), 0) + int(count)

    def merged(self, other: "TailCounter") -> "TailCounter":
        merged = dict(self.counts)
        for value, count in other.counts.items():
            merged[value] = merged.get(value, 0) + count
        return TailCounter(counts=merged)

    def tail(self, threshold: int) -> int:
        """Number of recorded values ``>= threshold``."""
        return sum(c for v, c in self.counts.items() if v >= int(threshold))

    def tail_fraction(self, threshold: int) -> float:
        total = self.total
        return self.tail(threshold) / total if total else 0.0

    def to_dict(self) -> Dict[str, int]:
        """JSON object keyed by the stringified value (JSON keys are strings)."""
        return {str(value): self.counts[value] for value in sorted(self.counts)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, int]) -> "TailCounter":
        return cls(counts={int(v): int(c) for v, c in payload.items()})
