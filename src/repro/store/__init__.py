"""Durable, queryable storage for sweep results.

The store layer persists completed sweep points (one manifest line plus
one npz shard of per-replica metric vectors each) and answers queries
from streaming summaries alone:

* :class:`ResultStore` — append-only on-disk (or in-memory) store with
  ``select`` / ``summarize`` / ``max_load_tail`` query methods.
* :class:`PointTable` — column-oriented view of a query, whose rows feed
  :func:`repro.experiments.tables.format_table` directly.
* :class:`StreamingMoments` / :class:`TailCounter` — single-pass,
  mergeable aggregation primitives (Welford/Chan moments, exact max-load
  tail histograms).
"""

from .store import PointTable, ResultStore, canonical_json
from .streaming import StreamingMoments, TailCounter

__all__ = [
    "ResultStore",
    "PointTable",
    "StreamingMoments",
    "TailCounter",
    "canonical_json",
]
